"""Unit tests for the real-data loaders."""

import io

import numpy as np
import pytest

from repro.apps.iplookup.evaluate import evaluate_ip_design
from repro.apps.iplookup.designs import IpDesign
from repro.apps.iplookup.loader import (
    dump_prefix_table,
    load_prefix_table,
)
from repro.apps.iplookup.table_gen import SyntheticBgpConfig, generate_bgp_table
from repro.apps.trigram.loader import load_trigram_database
from repro.core.config import Arrangement
from repro.errors import ConfigurationError, KeyFormatError


class TestPrefixLoader:
    def test_basic(self):
        text = io.StringIO(
            "10.0.0.0/8 3\n"
            "192.168.0.0/16 peer-a\n"
            "# a comment\n"
            "\n"
            "192.168.1.0/24\n"
        )
        table = load_prefix_table(text)
        assert len(table) == 3
        assert table.lengths.tolist() == [8, 16, 24]
        assert table.next_hops[0] == 3       # integer token kept
        assert table.next_hops[2] == 0       # default

    def test_string_hops_interned(self):
        text = io.StringIO("10.0.0.0/8 a\n11.0.0.0/8 b\n12.0.0.0/8 a\n")
        table = load_prefix_table(text)
        assert table.next_hops[0] == table.next_hops[2]
        assert table.next_hops[0] != table.next_hops[1]

    def test_inline_comment(self):
        table = load_prefix_table(io.StringIO("10.0.0.0/8 1 # default\n"))
        assert len(table) == 1

    def test_duplicates_collapsed(self):
        text = io.StringIO("10.0.0.0/8 1\n10.0.0.0/8 2\n")
        table = load_prefix_table(text)
        assert len(table) == 1
        assert table.next_hops[0] == 1  # first announcement wins

    def test_malformed_line_reports_number(self):
        with pytest.raises(KeyFormatError, match="line 2"):
            load_prefix_table(io.StringIO("10.0.0.0/8\nnot-an-ip/9\n"))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            load_prefix_table(io.StringIO("# nothing\n"))

    def test_round_trip(self, tmp_path):
        table = generate_bgp_table(
            SyntheticBgpConfig(total_prefixes=2000, seed=3)
        )
        path = tmp_path / "rib.txt"
        dump_prefix_table(table, path)
        loaded = load_prefix_table(path)
        assert len(loaded) == len(table)
        assert set(zip(loaded.values.tolist(), loaded.lengths.tolist())) == (
            set(zip(table.values.tolist(), table.lengths.tolist()))
        )

    def test_loaded_table_runs_the_pipeline(self, tmp_path):
        """A dumped-and-reloaded table feeds evaluate_ip_design."""
        table = generate_bgp_table(
            SyntheticBgpConfig(total_prefixes=5000, seed=4)
        )
        path = tmp_path / "rib.txt"
        dump_prefix_table(table, path)
        loaded = load_prefix_table(path)
        design = IpDesign("L", 8, 32, 2, Arrangement.HORIZONTAL)
        result = evaluate_ip_design(design, loaded, seed=4)
        assert result.amal_uniform >= 1.0


class TestTrigramLoader:
    def test_basic(self):
        text = io.StringIO(
            "-2.5 of the roadway\n"
            "in the basement\n"
            "# comment\n"
        )
        result = load_trigram_database(text)
        assert result.loaded == 2
        assert result.database.string_at(0) == b"of the roadway"
        # ARPA logprob quantized, plain lines default to prob 0.
        assert result.database.probabilities[0] > 0
        assert result.database.probabilities[1] == 0

    def test_length_window_filter(self):
        text = io.StringIO(
            "a b c\n"                      # 5 chars: skipped
            "of the road\n"                # 11 chars: skipped
            "within the window\n"          # 17 chars: skipped
            "with the windo\n"             # 14 chars: kept
        )
        result = load_trigram_database(text)
        assert result.loaded == 1
        assert result.skipped_length == 3

    def test_malformed(self):
        text = io.StringIO("only two\nof the road xx\nin the window\n")
        result = load_trigram_database(text)
        assert result.skipped_malformed == 2
        assert result.loaded == 1

    def test_case_folded_and_deduped(self):
        text = io.StringIO("Of The Road12\nof the road12\n")
        result = load_trigram_database(text)
        assert result.loaded == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            load_trigram_database(io.StringIO(""))

    def test_loaded_database_hashes(self):
        text = io.StringIO("one two threex\nfour five sixx\n")
        result = load_trigram_database(text)
        buckets = result.database.bucket_indices(64)
        assert buckets.shape == (2,)
