"""Unit tests for the synthetic BGP table generator."""

import numpy as np
import pytest

from repro.apps.iplookup.table_gen import (
    FULL_TABLE_LENGTH_COUNTS,
    FULL_TABLE_PREFIX_COUNT,
    PrefixTable,
    SyntheticBgpConfig,
    generate_bgp_table,
)
from repro.errors import ConfigurationError

SMALL = 20_000


@pytest.fixture(scope="module")
def small_table():
    return generate_bgp_table(
        SyntheticBgpConfig(total_prefixes=SMALL, seed=123)
    )


class TestStructure:
    def test_total_count(self, small_table):
        assert len(small_table) == SMALL

    def test_unique_prefixes(self, small_table):
        combined = (
            small_table.values << np.uint64(6)
        ) | small_table.lengths.astype(np.uint64)
        assert np.unique(combined).size == SMALL

    def test_host_bits_zero(self, small_table):
        lengths = small_table.lengths.astype(np.uint64)
        host_mask = (np.uint64(1) << (np.uint64(32) - lengths)) - np.uint64(1)
        assert ((small_table.values & host_mask) == 0).all()

    def test_minimum_length_eight(self, small_table):
        # "the minimum length of the prefixes is 8"
        assert small_table.lengths.min() >= 8

    def test_98_percent_at_least_16(self, small_table):
        # "over 98% of the prefixes ... are at least 16 bits long"
        assert small_table.fraction_at_least(16) > 0.97

    def test_slash24_dominates(self, small_table):
        histogram = small_table.length_histogram()
        assert histogram[24] > 0.4 * SMALL

    def test_deterministic(self):
        a = generate_bgp_table(SyntheticBgpConfig(total_prefixes=5000, seed=1))
        b = generate_bgp_table(SyntheticBgpConfig(total_prefixes=5000, seed=1))
        assert (a.values == b.values).all()
        assert (a.lengths == b.lengths).all()

    def test_seed_changes_table(self):
        a = generate_bgp_table(SyntheticBgpConfig(total_prefixes=5000, seed=1))
        b = generate_bgp_table(SyntheticBgpConfig(total_prefixes=5000, seed=2))
        assert not (a.values == b.values).all()

    def test_default_full_scale_count(self):
        # The default config targets the paper's 186,760 prefixes.
        assert FULL_TABLE_PREFIX_COUNT == 186_760
        assert sum(FULL_TABLE_LENGTH_COUNTS.values()) == 186_760


class TestClustering:
    def test_clustered_beats_uniform_variance(self):
        clustered = generate_bgp_table(
            SyntheticBgpConfig(total_prefixes=SMALL, seed=5)
        )
        uniform = generate_bgp_table(
            SyntheticBgpConfig(
                total_prefixes=SMALL, seed=5, block_model="uniform"
            )
        )

        def block_variance(table):
            blocks = (table.values >> np.uint64(16)).astype(np.int64)
            counts = np.bincount(blocks, minlength=1 << 16)
            return counts.var()

        assert block_variance(clustered) > 3 * block_variance(uniform)

    def test_block_cap_respected(self):
        config = SyntheticBgpConfig(
            total_prefixes=SMALL, seed=5, block_max_prefixes=150
        )
        table = generate_bgp_table(config)
        blocks = (table.values >> np.uint64(16)).astype(np.int64)
        counts = np.bincount(blocks, minlength=1 << 16)
        # The cap bounds the *expected* count; allow sampling noise.
        assert counts.max() < 300

    def test_zipf_model_runs(self):
        table = generate_bgp_table(
            SyntheticBgpConfig(
                total_prefixes=5000, seed=5, block_model="zipf",
                zipf_exponent=1.0,
            )
        )
        assert len(table) == 5000


class TestAccessors:
    def test_prefixes_iterator(self, small_table):
        first = next(small_table.prefixes())
        assert first.value == int(small_table.values[0])
        assert first.length == int(small_table.lengths[0])

    def test_subset(self, small_table):
        subset = small_table.subset(np.arange(10))
        assert len(subset) == 10

    def test_next_hops_in_range(self, small_table):
        assert small_table.next_hops.max() < 256


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            SyntheticBgpConfig(total_prefixes=0)
        with pytest.raises(ConfigurationError):
            SyntheticBgpConfig(block_model="weird")
        with pytest.raises(ConfigurationError):
            SyntheticBgpConfig(block_sigma=0)
        with pytest.raises(ConfigurationError):
            SyntheticBgpConfig(block_max_prefixes=0)
