"""Unit tests for IPv4 prefixes."""

import pytest

from repro.apps.iplookup.prefix import ADDRESS_BITS, Prefix
from repro.errors import KeyFormatError


class TestConstruction:
    def test_from_string(self):
        prefix = Prefix.from_string("192.168.0.0/16")
        assert prefix.length == 16
        assert prefix.value == 0xC0A80000

    def test_from_string_default_length(self):
        assert Prefix.from_string("10.0.0.1").length == 32

    def test_from_string_truncates_host_bits(self):
        prefix = Prefix.from_string("10.1.2.3/8")
        assert prefix.value == 0x0A000000

    def test_from_bits(self):
        prefix = Prefix.from_bits(0b1010, 4)
        assert prefix.value == 0xA0000000
        assert prefix.prefix_bits == 0b1010

    def test_zero_length(self):
        prefix = Prefix.from_bits(0, 0)
        assert prefix.matches(0xFFFFFFFF)

    def test_nonzero_host_bits_rejected(self):
        with pytest.raises(KeyFormatError):
            Prefix(value=0x0A000001, length=8)

    def test_bad_string(self):
        with pytest.raises(KeyFormatError):
            Prefix.from_string("10.0.0/8")
        with pytest.raises(KeyFormatError):
            Prefix.from_string("10.0.0.256/8")

    def test_str_round_trip(self):
        text = "172.16.0.0/12"
        assert str(Prefix.from_string(text)) == text


class TestMatching:
    def test_matches(self):
        prefix = Prefix.from_string("10.0.0.0/8")
        assert prefix.matches(0x0A123456)
        assert not prefix.matches(0x0B000000)

    def test_host_route(self):
        prefix = Prefix.from_string("1.2.3.4/32")
        assert prefix.matches(0x01020304)
        assert not prefix.matches(0x01020305)

    def test_bad_address(self):
        with pytest.raises(KeyFormatError):
            Prefix.from_string("10.0.0.0/8").matches(1 << 32)


class TestTernaryConversion:
    def test_pattern_shape(self):
        prefix = Prefix.from_string("128.0.0.0/1")
        key = prefix.to_ternary_key()
        assert key.to_pattern() == "1" + "X" * 31

    def test_matches_agree(self):
        prefix = Prefix.from_string("10.32.0.0/11")
        key = prefix.to_ternary_key()
        for address in (0x0A200000, 0x0A3FFFFF, 0x0A400000, 0xFF000000):
            assert key.matches(address, ADDRESS_BITS) == prefix.matches(address)


class TestFirstBits:
    def test_window(self):
        prefix = Prefix.from_string("192.168.0.0/16")
        assert prefix.first_bits(16) == 0xC0A8
        assert prefix.first_bits(8) == 0xC0
        assert prefix.first_bits(0) == 0

    def test_out_of_range(self):
        with pytest.raises(KeyFormatError):
            Prefix.from_string("10.0.0.0/8").first_bits(33)


class TestOrdering:
    def test_sortable(self):
        prefixes = [
            Prefix.from_string("10.0.0.0/8"),
            Prefix.from_string("9.0.0.0/8"),
        ]
        assert sorted(prefixes)[0].value == 0x09000000
