"""Unit tests for the binary-trie LPM reference."""

import pytest

from repro.apps.iplookup.prefix import Prefix
from repro.apps.iplookup.trie import BinaryTrie


def p(text):
    return Prefix.from_string(text)


class TestLpm:
    def test_longest_wins(self):
        trie = BinaryTrie()
        trie.insert(p("10.0.0.0/8"), data=8)
        trie.insert(p("10.1.0.0/16"), data=16)
        assert trie.lookup(0x0A010203).data == 16
        assert trie.lookup(0x0A020304).data == 8

    def test_miss(self):
        trie = BinaryTrie()
        trie.insert(p("10.0.0.0/8"), data=1)
        result = trie.lookup(0x0B000000)
        assert not result.hit
        assert result.data is None

    def test_default_route(self):
        trie = BinaryTrie()
        trie.insert(p("0.0.0.0/0"), data=99)
        assert trie.lookup(0xDEADBEEF).data == 99

    def test_exact_host_route(self):
        trie = BinaryTrie()
        trie.insert(p("1.2.3.4/32"), data=5)
        assert trie.lookup(0x01020304).data == 5
        assert not trie.lookup(0x01020305).hit

    def test_update_in_place(self):
        trie = BinaryTrie()
        trie.insert(p("10.0.0.0/8"), data=1)
        trie.insert(p("10.0.0.0/8"), data=2)
        assert trie.lookup(0x0A000000).data == 2
        assert len(trie) == 1


class TestTrace:
    def test_nodes_visited_counts_depth(self):
        trie = BinaryTrie()
        trie.insert(p("10.0.0.0/8"), data=1)
        result = trie.lookup(0x0A000000)
        # Root + 8 levels... the walk continues until a child is missing.
        assert result.nodes_visited >= 9
        assert len(result.addresses) == result.nodes_visited

    def test_pointer_chasing_cost_grows_with_depth(self):
        trie = BinaryTrie()
        trie.insert(p("10.0.0.0/8"), data=1)
        trie.insert(p("10.1.1.0/24"), data=2)
        shallow = trie.lookup(0x0B000000)
        deep = trie.lookup(0x0A010100)
        assert deep.nodes_visited > shallow.nodes_visited


class TestDelete:
    def test_delete(self):
        trie = BinaryTrie()
        trie.insert(p("10.0.0.0/8"), data=1)
        assert trie.delete(p("10.0.0.0/8")) is True
        assert not trie.lookup(0x0A000000).hit
        assert len(trie) == 0

    def test_delete_missing(self):
        trie = BinaryTrie()
        assert trie.delete(p("10.0.0.0/8")) is False

    def test_delete_keeps_descendants(self):
        trie = BinaryTrie()
        trie.insert(p("10.0.0.0/8"), data=1)
        trie.insert(p("10.1.0.0/16"), data=2)
        trie.delete(p("10.0.0.0/8"))
        assert trie.lookup(0x0A010000).data == 2

    def test_bad_address(self):
        from repro.errors import KeyFormatError

        trie = BinaryTrie()
        with pytest.raises(KeyFormatError):
            trie.lookup(-1)
