"""Unit tests for the prefix-to-bucket mapping (duplication rules)."""

import numpy as np
import pytest

from repro.apps.iplookup.mapping import (
    dont_care_hash_bits,
    map_prefixes_to_buckets,
)
from repro.apps.iplookup.table_gen import PrefixTable
from repro.errors import ConfigurationError


def make_table(entries):
    """entries: list of (value, length)."""
    values = np.array([v for v, _ in entries], dtype=np.uint64)
    lengths = np.array([l for _, l in entries], dtype=np.uint8)
    hops = np.zeros(len(entries), dtype=np.uint16)
    return PrefixTable(values=values, lengths=lengths, next_hops=hops)


class TestDontCareHashBits:
    def test_long_prefix_no_dont_care(self):
        assert dont_care_hash_bits(24, 11) == 0
        assert dont_care_hash_bits(16, 11) == 0

    def test_short_prefix(self):
        # R=11: window covers bits [5, 16); a /8 leaves bits 8..15 free.
        assert dont_care_hash_bits(8, 11) == 8
        assert dont_care_hash_bits(15, 11) == 1

    def test_independent_of_r_when_window_covered(self):
        # "a 6.4% increase ... regardless of the design": R > 8 keeps the
        # overlap equal for every length >= 8.
        for length in range(8, 16):
            assert dont_care_hash_bits(length, 11) == dont_care_hash_bits(
                length, 13
            )

    def test_very_small_r(self):
        # Window [12, 16); a /13 leaves 3 free bits.
        assert dont_care_hash_bits(13, 4) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dont_care_hash_bits(8, 0)
        with pytest.raises(ConfigurationError):
            dont_care_hash_bits(8, 17)


class TestMapping:
    def test_long_prefix_single_bucket(self):
        table = make_table([(0xC0A80000, 24)])  # 192.168.0.0/24
        mapping = map_prefixes_to_buckets(table, 11)
        assert mapping.record_count == 1
        # Bucket = bits [5, 16) of the address = 0xC0A8 & 0x7FF.
        assert mapping.home[0] == 0xC0A8 & 0x7FF

    def test_short_prefix_duplicated(self):
        table = make_table([(0x0A000000, 8)])  # 10.0.0.0/8
        mapping = map_prefixes_to_buckets(table, 11)
        assert mapping.record_count == 256
        assert mapping.duplicate_count == 255
        # Copies are contiguous bucket indices.
        homes = np.sort(mapping.home)
        assert (np.diff(homes) == 1).all()

    def test_source_tracking(self):
        table = make_table([(0x0A000000, 8), (0xC0A80000, 24)])
        mapping = map_prefixes_to_buckets(table, 11)
        copies = mapping.copies_per_source()
        assert copies.tolist() == [256, 1]
        assert mapping.duplication_overhead == pytest.approx(255 / 2)

    def test_duplication_overhead_band(self):
        # The calibrated full-profile table lands near the paper's 6.4%.
        from repro.apps.iplookup.table_gen import (
            SyntheticBgpConfig,
            generate_bgp_table,
        )

        table = generate_bgp_table(SyntheticBgpConfig(seed=7))
        mapping = map_prefixes_to_buckets(table, 11)
        assert 0.04 < mapping.duplication_overhead < 0.10

    def test_all_homes_in_range(self):
        table = make_table([(0x0A000000, 8), (0xFFFF0000, 16)])
        mapping = map_prefixes_to_buckets(table, 12)
        assert mapping.home.min() >= 0
        assert mapping.home.max() < 4096

    def test_validation(self):
        table = make_table([(0, 8)])
        with pytest.raises(ConfigurationError):
            map_prefixes_to_buckets(table, 0)
