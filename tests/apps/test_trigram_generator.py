"""Unit tests for the synthetic trigram database generator."""

import numpy as np
import pytest

from repro.apps.trigram.generator import (
    MAX_CHARS,
    MIN_CHARS,
    TrigramConfig,
    TrigramDatabase,
    generate_trigram_database,
)
from repro.errors import ConfigurationError
from repro.hashing.djb import djb2_bytes

SMALL = 30_000


@pytest.fixture(scope="module")
def database():
    return generate_trigram_database(
        TrigramConfig(total_entries=SMALL, seed=21)
    )


class TestStructure:
    def test_count(self, database):
        assert len(database) == SMALL

    def test_length_window(self, database):
        # "we ... focus only on the entries with 13-16 characters"
        lengths = database.lengths()
        assert lengths.min() >= MIN_CHARS
        assert lengths.max() <= MAX_CHARS

    def test_unique_entries(self, database):
        strings = set()
        for row in range(0, SMALL, 17):
            strings.add(database.string_at(row))
        assert len(strings) == len(range(0, SMALL, 17))
        # Full uniqueness via the packed matrix.
        view = database.packed.view(
            [("bytes", f"({MAX_CHARS + 1},)u1")]
        ).ravel()
        assert np.unique(view).size == SMALL

    def test_word_trigram_shape(self, database):
        # Two spaces separating three lowercase words.
        for row in range(50):
            text = database.string_at(row)
            words = text.split(b" ")
            assert len(words) == 3
            assert all(w.isalpha() and w.islower() for w in words)

    def test_padding_zeroed(self, database):
        lengths = database.lengths().astype(np.int64)
        for row in range(100):
            length = lengths[row]
            assert (database.packed[row, length:MAX_CHARS] == 0).all()

    def test_deterministic(self):
        a = generate_trigram_database(TrigramConfig(total_entries=2000, seed=3))
        b = generate_trigram_database(TrigramConfig(total_entries=2000, seed=3))
        assert (a.packed == b.packed).all()


class TestHashing:
    def test_bucket_indices_match_scalar_djb(self, database):
        buckets = database.bucket_indices(4096)
        for row in range(0, 500, 13):
            expected = djb2_bytes(database.string_at(row)) % 4096
            assert buckets[row] == expected

    def test_spread_near_poisson(self, database):
        # DJB over the synthetic corpus must spread near-uniformly — the
        # property Figure 7 depends on.
        buckets = database.bucket_indices(256)
        counts = np.bincount(buckets, minlength=256)
        mean = counts.mean()
        assert counts.std() < 2.5 * np.sqrt(mean)

    def test_hashes_are_32bit(self, database):
        hashes = database.hashes()
        assert hashes.max() < (1 << 32)


class TestAccessors:
    def test_subset(self, database):
        sub = database.subset(np.arange(10))
        assert len(sub) == 10
        assert sub.string_at(0) == database.string_at(0)

    def test_strings_iterator(self, database):
        first = next(database.strings())
        assert first == database.string_at(0)

    def test_probabilities_shape(self, database):
        assert database.probabilities.shape == (SMALL,)


class TestValidation:
    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            TrigramConfig(total_entries=0)
        with pytest.raises(ConfigurationError):
            TrigramConfig(vocabulary_size=2)
        with pytest.raises(ConfigurationError):
            TrigramConfig(word_zipf_exponent=-1)

    def test_tiny_vocabulary_cannot_fill(self):
        with pytest.raises(ConfigurationError):
            generate_trigram_database(
                TrigramConfig(total_entries=100_000, vocabulary_size=4, seed=1)
            )
