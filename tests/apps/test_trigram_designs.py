"""Unit tests for the Table 3 designs and their evaluation."""

import pytest

from repro.apps.trigram.designs import (
    KEYS_PER_ROW,
    TRIGRAM_DESIGNS,
    TRIGRAM_KEY_BITS,
    TrigramDesign,
)
from repro.apps.trigram.evaluate import evaluate_trigram_design
from repro.apps.trigram.generator import (
    FULL_TRIGRAM_COUNT,
    TrigramConfig,
    generate_trigram_database,
)
from repro.core.config import Arrangement
from repro.errors import ConfigurationError

#: 1/64 scale keeps unit tests fast (~84k entries, R=8).
SCALE_SHIFT = 6


class TestDesignGeometry:
    def test_all_four_designs(self):
        assert sorted(TRIGRAM_DESIGNS) == list("ABCD")

    def test_paper_constants(self):
        # "the length of a key (N) is 16x8 = 128 bits ... C is
        # 96x128 = 12,288 bits"
        assert TRIGRAM_KEY_BITS == 128
        assert KEYS_PER_ROW == 96
        assert TRIGRAM_DESIGNS["A"].row_bits == 12_288

    def test_vertical_design_a(self):
        d = TRIGRAM_DESIGNS["A"]
        assert d.arrangement is Arrangement.VERTICAL
        assert d.bucket_count == 4 * (1 << 14)
        assert d.slots_per_bucket == 96

    def test_horizontal_design_c(self):
        d = TRIGRAM_DESIGNS["C"]
        assert d.bucket_count == 1 << 14
        assert d.slots_per_bucket == 384

    def test_paper_load_factors(self):
        # alpha = 5,385,231 / capacity: 0.86 for 4 slices, 0.68 for 5.
        for name, alpha in (("A", 0.86), ("B", 0.68), ("C", 0.86),
                            ("D", 0.68)):
            design = TRIGRAM_DESIGNS[name]
            assert FULL_TRIGRAM_COUNT / design.capacity_records == pytest.approx(
                alpha, abs=0.01
            )

    def test_scaled_preserves_load_factor(self):
        design = TRIGRAM_DESIGNS["A"]
        scaled = design.scaled(3)
        assert scaled.capacity_records * 8 == design.capacity_records

    def test_scaled_validation(self):
        with pytest.raises(ConfigurationError):
            TRIGRAM_DESIGNS["A"].scaled(-1)
        with pytest.raises(ConfigurationError):
            TRIGRAM_DESIGNS["A"].scaled(14)

    def test_bad_design(self):
        with pytest.raises(ConfigurationError):
            TrigramDesign("X", 0, Arrangement.VERTICAL)


class TestEvaluation:
    @pytest.fixture(scope="class")
    def database(self):
        return generate_trigram_database(
            TrigramConfig(
                total_entries=FULL_TRIGRAM_COUNT >> SCALE_SHIFT, seed=31
            )
        )

    @pytest.fixture(scope="class")
    def results(self, database):
        return {
            name: evaluate_trigram_design(
                TRIGRAM_DESIGNS[name].scaled(SCALE_SHIFT), database
            )
            for name in "ABCD"
        }

    def test_design_a_band(self, results):
        # Paper: alpha 0.86, ~6% overflowing, ~0.34% spilled, AMAL 1.003.
        res = results["A"]
        assert res.load_factor == pytest.approx(0.86, abs=0.01)
        assert 2.0 < res.overflowing_buckets_pct < 12.0
        assert 0.05 < res.spilled_records_pct < 1.5
        assert 1.0 < res.amal < 1.02

    def test_other_designs_near_perfect(self, results):
        # Paper: B/C/D have essentially no spills and AMAL 1.000.
        for name in "BCD":
            assert results[name].spilled_records_pct < 0.1
            assert results[name].amal == pytest.approx(1.0, abs=0.005)

    def test_horizontal_absorbs_overflow(self, results):
        # A vs C: same alpha, C's 4x-wider buckets nearly eliminate
        # overflow ("the trade-off between horizontal vs. vertical slice
        # arrangement").
        assert (
            results["C"].overflowing_buckets_pct
            < results["A"].overflowing_buckets_pct
        )

    def test_row_shape(self, results):
        row = results["A"].row()
        assert row["design"] == "A"
        assert "AMAL" in row
