"""Integration tests for the behavioral trigram CA-RAM."""

import pytest

from repro.apps.trigram.caram import (
    PackedStringDJBHash,
    StringKeyCodec,
    build_trigram_caram,
    trigram_lookup,
    trigram_slice_config,
)
from repro.apps.trigram.designs import TrigramDesign
from repro.apps.trigram.generator import TrigramConfig, generate_trigram_database
from repro.core.config import Arrangement
from repro.errors import KeyFormatError
from repro.hashing.djb import djb2_bytes

SMALL_DESIGN = TrigramDesign("S", 2, Arrangement.VERTICAL, index_bits=5)


class TestStringKeyCodec:
    def test_round_trip(self):
        for text in (b"of the road", b"a b c", b"x" * 16):
            assert StringKeyCodec.decode(StringKeyCodec.encode(text)) == text

    def test_str_input(self):
        assert StringKeyCodec.encode("abc") == StringKeyCodec.encode(b"abc")

    def test_too_long_rejected(self):
        with pytest.raises(KeyFormatError):
            StringKeyCodec.encode(b"x" * 17)

    def test_nul_rejected(self):
        with pytest.raises(KeyFormatError):
            StringKeyCodec.encode(b"a\x00b")

    def test_distinct_strings_distinct_keys(self):
        assert StringKeyCodec.encode(b"ab") != StringKeyCodec.encode(b"ab ")


class TestPackedStringDJBHash:
    def test_matches_scalar_djb(self):
        h = PackedStringDJBHash(1 << 10)
        for text in (b"hello there you", b"one two three"):
            key = StringKeyCodec.encode(text)
            assert h(key) == djb2_bytes(text) % (1 << 10)

    def test_rebucketed(self):
        assert PackedStringDJBHash(64).rebucketed(128).bucket_count == 128


class TestBehavioralCaram:
    @pytest.fixture(scope="class")
    def entries(self):
        database = generate_trigram_database(
            TrigramConfig(total_entries=2500, seed=41)
        )
        return [
            (database.string_at(row), int(database.probabilities[row]))
            for row in range(len(database))
        ]

    @pytest.fixture(scope="class")
    def group(self, entries):
        return build_trigram_caram(entries, SMALL_DESIGN)

    def test_config_geometry(self):
        config = trigram_slice_config(SMALL_DESIGN)
        assert config.slots_per_bucket == 96
        assert not config.record_format.ternary

    def test_every_entry_findable(self, group, entries):
        for text, probability in entries[:400]:
            assert trigram_lookup(group, text) == probability

    def test_misses(self, group):
        assert trigram_lookup(group, b"zzz qqq jjj") is None

    def test_load_factor(self, group, entries):
        expected = len(entries) / SMALL_DESIGN.capacity_records
        assert group.load_factor == pytest.approx(expected)

    def test_amal_near_one(self, group, entries):
        group.stats.reset()
        for text, _ in entries[:300]:
            group.search(StringKeyCodec.encode(text))
        assert group.stats.amal < 1.3

    def test_agrees_with_vectorized_homes(self, entries):
        """The behavioral hash and the packed-matrix hash agree bucket by
        bucket."""
        database = generate_trigram_database(
            TrigramConfig(total_entries=200, seed=42)
        )
        buckets = database.bucket_indices(SMALL_DESIGN.bucket_count)
        h = PackedStringDJBHash(SMALL_DESIGN.bucket_count)
        for row in range(len(database)):
            key = StringKeyCodec.encode(database.string_at(row))
            assert h(key) == buckets[row]
