"""Unit tests for the update-churn study and SliceGroup.rebuild."""

import pytest

from repro.apps.iplookup.churn import run_update_churn
from repro.apps.iplookup.designs import IpDesign
from repro.apps.iplookup.prefix import Prefix
from repro.core.config import Arrangement, SliceConfig
from repro.core.record import RecordFormat
from repro.core.subsystem import SliceGroup
from repro.errors import ConfigurationError
from repro.hashing.base import ModuloHash
from repro.utils.rng import make_rng

DESIGN = IpDesign("churn", 7, 32, 2, Arrangement.HORIZONTAL)


def prefix_pairs(count, seed):
    rng = make_rng(seed)
    pairs = {}
    while len(pairs) < count:
        length = int(rng.choice([16, 20, 24], p=[0.2, 0.2, 0.6]))
        bits = int(rng.integers(0, 1 << length))
        prefix = Prefix.from_bits(bits, length)
        pairs.setdefault((prefix.value, prefix.length), (prefix, 1))
    return list(pairs.values())


class TestGroupRebuild:
    def make_group(self):
        config = SliceConfig(
            index_bits=4, row_bits=128,
            record_format=RecordFormat(key_bits=16, data_bits=8),
        )
        return SliceGroup(
            config, 1, Arrangement.VERTICAL, ModuloHash(16), name="r"
        )

    def test_rebuild_preserves_records(self):
        group = self.make_group()
        for k in range(40):
            group.insert(k, data=k % 100)
        group.rebuild()
        assert group.record_count == 40
        for k in range(40):
            assert group.lookup(k) == k % 100

    def test_rebuild_compacts_reach(self):
        group = self.make_group()
        slots = group.slots_per_bucket
        keys = [i * 16 for i in range(slots + 2)]  # overload bucket 0
        for key in keys:
            group.insert(key)
        spilled = [k for k in keys if group.search(k).bucket_accesses > 1]
        for key in spilled:
            group.delete(key)
        # Reach is stale: misses on bucket 0 still over-scan.
        group.stats.reset()
        group.search(0xFFF0)  # bucket 0 miss
        assert group.stats.total_bucket_accesses > 1
        group.rebuild()
        group.stats.reset()
        group.search(0xFFF0)
        assert group.stats.total_bucket_accesses == 1


class TestChurn:
    def test_zero_flaps(self):
        result = run_update_churn(prefix_pairs(100, 3), DESIGN, flaps=0, seed=3)
        assert result.amal_fresh >= 1.0
        assert result.updates_per_flap_entries == 0.0

    def test_lookups_survive_churn(self):
        # run_update_churn asserts internally that every route resolves.
        result = run_update_churn(
            prefix_pairs(150, 4), DESIGN, flaps=300, seed=4
        )
        assert result.flaps == 300

    def test_rebuild_restores_fresh_amal(self):
        result = run_update_churn(
            prefix_pairs(150, 5), DESIGN, flaps=400, seed=5
        )
        assert result.amal_after_rebuild <= result.amal_after_churn + 1e-9
        assert result.amal_after_rebuild == pytest.approx(
            result.amal_fresh, abs=0.05
        )

    def test_reach_shrinks_on_rebuild(self):
        result = run_update_churn(
            prefix_pairs(150, 6), DESIGN, flaps=400, seed=6
        )
        assert (
            result.mean_reach_after_rebuild
            <= result.mean_reach_after_churn + 1e-9
        )

    def test_update_touch_cost_is_small(self):
        """Point updates touch a handful of entries (duplication aside) —
        no TCAM-style block moves."""
        result = run_update_churn(
            prefix_pairs(150, 7), DESIGN, flaps=200, seed=7
        )
        assert result.updates_per_flap_entries < 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_update_churn([], DESIGN, flaps=1)
        with pytest.raises(ConfigurationError):
            run_update_churn(prefix_pairs(10, 8), DESIGN, flaps=-1)
