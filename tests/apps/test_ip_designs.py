"""Unit tests for the Table 2 design points and their evaluation."""

import pytest

from repro.apps.iplookup.designs import IP_DESIGNS, IpDesign
from repro.apps.iplookup.evaluate import evaluate_ip_design
from repro.apps.iplookup.table_gen import SyntheticBgpConfig, generate_bgp_table
from repro.core.config import Arrangement
from repro.errors import ConfigurationError


class TestDesignGeometry:
    def test_all_six_designs(self):
        assert sorted(IP_DESIGNS) == list("ABCDEF")

    def test_design_a(self):
        d = IP_DESIGNS["A"]
        assert d.bucket_count == 2048
        assert d.slots_per_bucket == 32 * 6
        assert d.row_bits == 2048
        assert d.effective_index_bits == 11

    def test_design_f_vertical(self):
        d = IP_DESIGNS["F"]
        assert d.bucket_count == 8192
        assert d.slots_per_bucket == 64
        assert d.effective_index_bits == 13

    def test_d_and_f_equal_capacity(self):
        # "for the same area (same alpha)" — D and F hold the same records.
        assert (
            IP_DESIGNS["D"].capacity_records
            == IP_DESIGNS["F"].capacity_records
        )

    def test_paper_load_factors(self):
        # Table 2's alpha column (on the 186,760-prefix table).
        n = 186_760
        expected = {"A": 0.47, "B": 0.40, "C": 0.36, "D": 0.36, "E": 0.24,
                    "F": 0.36}
        for name, alpha in expected.items():
            assert n / IP_DESIGNS[name].capacity_records == pytest.approx(
                alpha, abs=0.01
            )

    def test_capacity_bits_area_accounting(self):
        d = IP_DESIGNS["D"]
        assert d.capacity_bits == (1 << 12) * 4096 * 2

    def test_invalid_designs_rejected(self):
        with pytest.raises(ConfigurationError):
            IpDesign("X", 11, 48, 2, Arrangement.HORIZONTAL)
        with pytest.raises(ConfigurationError):
            IpDesign("X", 11, 32, 3, Arrangement.VERTICAL)  # non-pow2 vertical

    def test_describe(self):
        assert "R=11" in IP_DESIGNS["A"].describe()


class TestEvaluation:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_bgp_table(
            SyntheticBgpConfig(total_prefixes=40_000, seed=17)
        )

    @pytest.fixture(scope="class")
    def results(self, table):
        return {
            name: evaluate_ip_design(IP_DESIGNS[name], table, seed=17)
            for name in "ABCDEF"
        }

    def test_amal_at_least_one(self, results):
        for res in results.values():
            assert res.amal_uniform >= 1.0
            assert res.amal_skewed >= 1.0

    def test_sorted_placement_helps(self, results):
        # AMALs <= AMALu in every design (Table 2's consistent pattern).
        for res in results.values():
            assert res.amal_skewed <= res.amal_uniform + 1e-9

    def test_more_area_lower_amal(self, results):
        # A -> B -> C adds slices at fixed hash: AMAL must not increase.
        assert results["A"].amal_uniform >= results["B"].amal_uniform
        assert results["B"].amal_uniform >= results["C"].amal_uniform
        assert results["D"].amal_uniform >= results["E"].amal_uniform

    def test_vertical_worse_than_horizontal_at_same_area(self, results):
        # "This is evident from designs D and F."
        assert results["F"].amal_uniform > results["D"].amal_uniform

    def test_wide_buckets_beat_narrow_at_same_alpha(self, results):
        # C vs D: same load factor, C's 256-slot buckets win.
        assert results["C"].amal_uniform < results["D"].amal_uniform

    def test_row_shape(self, results):
        row = results["A"].row()
        assert row["design"] == "A"
        assert row["arrangement"] == "horizontal"
        assert set(row) >= {"load_factor", "AMALu", "AMALs"}

    def test_mapping_mismatch_rejected(self, table):
        from repro.apps.iplookup.mapping import map_prefixes_to_buckets

        mapping = map_prefixes_to_buckets(table, 11)
        with pytest.raises(ValueError):
            evaluate_ip_design(IP_DESIGNS["D"], table, mapping=mapping)
