"""Integration tests: behavioral CA-RAM LPM vs binary trie vs TCAM."""

import numpy as np
import pytest

from repro.apps.iplookup.baseline_tcam import build_lpm_tcam, lpm_lookup
from repro.apps.iplookup.caram import (
    build_ip_caram,
    ip_hash_function,
    ip_slice_config,
    lpm_search,
    prefix_priority,
)
from repro.apps.iplookup.designs import IpDesign
from repro.apps.iplookup.prefix import Prefix
from repro.apps.iplookup.trie import BinaryTrie
from repro.core.config import Arrangement
from repro.utils.rng import make_rng

#: A small design for behavioral runs: 2^8 buckets of 32 x 6 keys.
SMALL_DESIGN = IpDesign("S", 8, 32, 2, Arrangement.HORIZONTAL)


def random_prefix_set(count, seed):
    """Distinct prefixes with realistic length spread."""
    rng = make_rng(seed)
    prefixes = {}
    lengths = rng.choice(
        [8, 12, 16, 20, 24, 28, 32], size=count * 2,
        p=[0.02, 0.05, 0.15, 0.2, 0.45, 0.08, 0.05],
    )
    for length in lengths:
        bits = int(rng.integers(0, 1 << int(length))) if length else 0
        prefix = Prefix.from_bits(bits, int(length))
        prefixes.setdefault((prefix.value, prefix.length), prefix)
        if len(prefixes) == count:
            break
    return list(prefixes.values())


@pytest.fixture(scope="module")
def prefix_set():
    return [(p, i % 251) for i, p in enumerate(random_prefix_set(400, 99))]


@pytest.fixture(scope="module")
def trie(prefix_set):
    t = BinaryTrie()
    t.insert_all(prefix_set)
    return t


@pytest.fixture(scope="module")
def caram(prefix_set):
    return build_ip_caram(prefix_set, SMALL_DESIGN)


@pytest.fixture(scope="module")
def tcam(prefix_set):
    return build_lpm_tcam(prefix_set)


class TestConfigHelpers:
    def test_slice_config_slots(self):
        config = ip_slice_config(SMALL_DESIGN)
        assert config.slots_per_bucket == 32
        assert config.record_format.ternary

    def test_hash_uses_last_bits_of_first_16(self):
        h = ip_hash_function(SMALL_DESIGN)
        assert h.positions == tuple(range(8, 16))

    def test_prefix_priority_is_length(self):
        from repro.core.record import Record

        record = Record(key=Prefix.from_string("10.0.0.0/8").to_ternary_key())
        assert prefix_priority(record) == 8.0


class TestLpmAgreement:
    def test_caram_matches_trie_on_random_addresses(self, caram, trie):
        rng = make_rng(7)
        addresses = rng.integers(0, 1 << 32, size=500)
        for address in addresses:
            address = int(address)
            expected = trie.lookup(address)
            got = lpm_search(caram, address)
            if expected.hit:
                assert got == expected.data, hex(address)
            else:
                assert got is None, hex(address)

    def test_caram_matches_trie_on_covered_addresses(self, caram, trie,
                                                     prefix_set):
        # Probe inside every prefix to force hits.
        rng = make_rng(8)
        for prefix, _ in prefix_set[:200]:
            host_bits = 32 - prefix.length
            offset = int(rng.integers(0, 1 << host_bits)) if host_bits else 0
            address = prefix.value | offset
            assert lpm_search(caram, address) == trie.lookup(address).data

    def test_tcam_matches_trie(self, tcam, trie):
        rng = make_rng(9)
        for address in rng.integers(0, 1 << 32, size=300):
            address = int(address)
            expected = trie.lookup(address)
            got = lpm_lookup(tcam, address)
            assert got == (expected.data if expected.hit else None)

    def test_caram_load_factor_sane(self, caram, prefix_set):
        assert 0 < caram.load_factor < 1
        assert caram.record_count >= len(prefix_set)  # duplicates add

    def test_amal_close_to_one(self, caram, trie):
        caram.stats.reset()
        rng = make_rng(10)
        for address in rng.integers(0, 1 << 32, size=300):
            caram.search(int(address))
        assert 1.0 <= caram.stats.amal < 2.0
