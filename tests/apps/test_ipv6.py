"""Unit tests for the IPv6 scaling study."""

import numpy as np
import pytest

from repro.apps.iplookup.ipv6 import (
    FULL_V6_PREFIX_COUNT,
    HASH_WINDOW_BITS_V6,
    IPV6_DESIGN_D6,
    Ipv6Config,
    Ipv6Design,
    compare_ipv6,
    generate_ipv6_table,
    map_ipv6_to_buckets,
)
from repro.apps.iplookup.table_gen import FULL_TABLE_PREFIX_COUNT
from repro.core.config import Arrangement
from repro.errors import ConfigurationError

SMALL = 30_000


@pytest.fixture(scope="module")
def table():
    return generate_ipv6_table(Ipv6Config(total_prefixes=SMALL, seed=9))


class TestGenerator:
    def test_count(self, table):
        assert len(table) == SMALL

    def test_quadruple_default(self):
        # "The size of a routing table will even quadruple"
        assert FULL_V6_PREFIX_COUNT == 4 * FULL_TABLE_PREFIX_COUNT

    def test_lengths_menu(self, table):
        lengths = set(np.unique(table.lengths).tolist())
        assert lengths <= {16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 64}
        assert 48 in lengths

    def test_48_dominates(self, table):
        assert (table.lengths == 48).mean() > 0.4

    def test_mostly_at_least_32(self, table):
        assert table.fraction_at_least(32) > 0.97

    def test_host_bits_zero(self, table):
        lengths = table.lengths.astype(np.uint64)
        host = (np.uint64(1) << (np.uint64(64) - lengths)) - np.uint64(1)
        assert ((table.values & host) == 0).all()

    def test_unique(self, table):
        pairs = set(zip(table.values.tolist(), table.lengths.tolist()))
        assert len(pairs) == SMALL

    def test_deterministic(self):
        a = generate_ipv6_table(Ipv6Config(total_prefixes=3000, seed=1))
        b = generate_ipv6_table(Ipv6Config(total_prefixes=3000, seed=1))
        assert (a.values == b.values).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Ipv6Config(total_prefixes=0)
        with pytest.raises(ConfigurationError):
            Ipv6Config(block_sigma=0)


class TestMapping:
    def test_long_prefixes_single_copy(self, table):
        mapping = map_ipv6_to_buckets(table, 10)
        long_count = int((table.lengths >= HASH_WINDOW_BITS_V6).sum())
        assert mapping.record_count >= long_count

    def test_offload_caps_duplication(self, table):
        strict = map_ipv6_to_buckets(table, 12, dc_limit=0)
        loose = map_ipv6_to_buckets(table, 12, dc_limit=6)
        # Tighter limits offload more and duplicate less.
        assert strict.tcam_offloaded >= loose.tcam_offloaded
        assert strict.duplicate_count == 0
        assert loose.duplicate_count >= 0

    def test_homes_in_range(self, table):
        mapping = map_ipv6_to_buckets(table, 12)
        assert mapping.home.min() >= 0
        assert mapping.home.max() < (1 << 12)

    def test_validation(self, table):
        with pytest.raises(ConfigurationError):
            map_ipv6_to_buckets(table, 0)
        with pytest.raises(ConfigurationError):
            map_ipv6_to_buckets(table, 12, dc_limit=-1)


class TestDesignAndComparison:
    @pytest.fixture(scope="class")
    def mid_table(self):
        return generate_ipv6_table(
            Ipv6Config(total_prefixes=4 * SMALL, seed=9)
        )

    def test_design_d6_matches_table2_alpha(self):
        # Same 0.36 load factor as design D, at 4x the table.
        alpha = FULL_V6_PREFIX_COUNT / IPV6_DESIGN_D6.capacity_records
        assert alpha == pytest.approx(0.36, abs=0.01)

    def test_mid_scale_comparison(self, mid_table):
        design = Ipv6Design("M", 11, 64, 2, Arrangement.HORIZONTAL)
        result = compare_ipv6(mid_table, design=design)
        assert result.report.amal_uniform >= 1.0
        assert 0.30 < result.area_saving < 0.60
        assert result.power_saving > 0.4

    def test_small_tables_lose_on_power(self, table):
        """Crossover: against a 30k-entry TCAM, a 128-slot bucket of
        256-bit keys (32,768 fetched bits) costs about as much energy as
        searching the whole TCAM — CA-RAM's advantage is a *large-table*
        advantage, exactly the regime the paper targets."""
        design = Ipv6Design("S", 9, 64, 2, Arrangement.HORIZONTAL)
        result = compare_ipv6(table, design=design)
        assert result.power_saving < 0.2

    def test_power_advantage_grows_with_scale(self, table, mid_table):
        """The paper's scaling argument: TCAM power grows with capacity,
        CA-RAM's does not (same bucket width, more rows)."""
        small = compare_ipv6(
            table, design=Ipv6Design("S", 9, 64, 2, Arrangement.HORIZONTAL)
        )
        mid = compare_ipv6(
            mid_table,
            design=Ipv6Design("M", 11, 64, 2, Arrangement.HORIZONTAL),
        )
        assert mid.power_saving > small.power_saving
