"""Unit tests for the access-pattern weights."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.access import (
    sample_accesses,
    skewed_rank_weights,
    uniform_weights,
    zipf_weights,
)


class TestUniform:
    def test_normalized(self):
        weights = uniform_weights(10)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights == weights[0]).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_weights(0)


class TestZipf:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert (np.diff(weights) <= 0).all()

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_heavier_exponent_more_skew(self):
        light = zipf_weights(100, 0.5)
        heavy = zipf_weights(100, 1.5)
        assert heavy[0] > light[0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0)
        with pytest.raises(ConfigurationError):
            zipf_weights(10, -1.0)


class TestSkewedRankWeights:
    def test_same_multiset_as_zipf(self):
        assigned = skewed_rank_weights(50, 1.0, seed=5)
        assert np.allclose(sorted(assigned), sorted(zipf_weights(50, 1.0)))

    def test_shuffled(self):
        assigned = skewed_rank_weights(50, 1.0, seed=5)
        assert not np.allclose(assigned, zipf_weights(50, 1.0))

    def test_deterministic(self):
        a = skewed_rank_weights(50, 1.0, seed=5)
        b = skewed_rank_weights(50, 1.0, seed=5)
        assert np.allclose(a, b)


class TestSampleAccesses:
    def test_respects_weights(self):
        weights = np.array([0.9, 0.1])
        picks = sample_accesses(weights, 1000, seed=6)
        assert (picks == 0).mean() > 0.8

    def test_count(self):
        assert sample_accesses(np.ones(4), 17, seed=1).size == 17

    def test_negative_count(self):
        with pytest.raises(ConfigurationError):
            sample_accesses(np.ones(4), -1)
