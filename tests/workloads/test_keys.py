"""Unit tests for the generic key generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.keys import (
    random_byte_strings,
    random_keys,
    unique_random_keys,
)


class TestRandomKeys:
    def test_count_and_range(self):
        keys = random_keys(100, 8, seed=1)
        assert keys.size == 100
        assert keys.max() < 256

    def test_deterministic(self):
        assert (random_keys(10, 16, seed=3) == random_keys(10, 16, seed=3)).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_keys(-1, 8)
        with pytest.raises(ConfigurationError):
            random_keys(1, 0)
        with pytest.raises(ConfigurationError):
            random_keys(1, 65)


class TestUniqueRandomKeys:
    def test_uniqueness(self):
        keys = unique_random_keys(1000, 16, seed=2)
        assert np.unique(keys).size == 1000

    def test_dense_draw(self):
        # More than half the space: permutation path.
        keys = unique_random_keys(200, 8, seed=2)
        assert np.unique(keys).size == 200

    def test_full_space(self):
        keys = unique_random_keys(256, 8, seed=2)
        assert sorted(keys.tolist()) == list(range(256))

    def test_space_too_small(self):
        with pytest.raises(ConfigurationError):
            unique_random_keys(257, 8)


class TestRandomByteStrings:
    def test_lengths(self):
        strings = random_byte_strings(50, 3, 7, seed=4)
        assert len(strings) == 50
        assert all(3 <= len(s) <= 7 for s in strings)

    def test_alphabet_respected(self):
        strings = random_byte_strings(20, 2, 4, alphabet=b"ab", seed=4)
        assert all(set(s) <= set(b"ab") for s in strings)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_byte_strings(1, 0, 3)
        with pytest.raises(ConfigurationError):
            random_byte_strings(1, 5, 3)
        with pytest.raises(ConfigurationError):
            random_byte_strings(1, 1, 2, alphabet=b"")
