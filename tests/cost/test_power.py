"""Unit tests for the power models (Figure 6(b), Figure 8 power half)."""

import pytest

from repro.cam.cells import TCAM_6T_DYNAMIC_NODA05, TCAM_16T_SRAM_NODA03
from repro.cost.power import (
    ca_ram_search_energy_j,
    ca_ram_search_power_w,
    cam_search_power_w,
    power_comparison,
)
from repro.errors import ConfigurationError
from repro.experiments import paper_values


class TestCaRamPower:
    def test_energy_scales_with_row_bits(self):
        assert ca_ram_search_energy_j(2048) > ca_ram_search_energy_j(512)

    def test_horizontal_fetch_costs_more(self):
        assert ca_ram_search_energy_j(512, rows_fetched=4) > (
            3 * ca_ram_search_energy_j(512, rows_fetched=1)
        )

    def test_power_scales_with_rate(self):
        slow = ca_ram_search_power_w(512, 100e6)
        fast = ca_ram_search_power_w(512, 200e6)
        assert fast == pytest.approx(2 * slow)

    def test_amal_multiplies_energy(self):
        base = ca_ram_search_power_w(512, 100e6, amal=1.0)
        probed = ca_ram_search_power_w(512, 100e6, amal=1.5)
        assert probed == pytest.approx(1.5 * base)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ca_ram_search_energy_j(0)
        with pytest.raises(ConfigurationError):
            ca_ram_search_power_w(512, 100e6, amal=0.5)


class TestCamPower:
    def test_scales_with_capacity(self):
        # The O(w*n) structure: double the entries, double the power.
        small = cam_search_power_w(1000, 32, TCAM_6T_DYNAMIC_NODA05, 100e6)
        large = cam_search_power_w(2000, 32, TCAM_6T_DYNAMIC_NODA05, 100e6)
        assert large == pytest.approx(2 * small, rel=1e-3)

    def test_16t_burns_more_than_6t(self):
        p16 = cam_search_power_w(1000, 32, TCAM_16T_SRAM_NODA03, 100e6)
        p6 = cam_search_power_w(1000, 32, TCAM_6T_DYNAMIC_NODA05, 100e6)
        assert p16 > 3 * p6

    def test_uncalibrated_cell_rejected(self):
        from repro.cam.cells import DRAM_CELL_MORISHITA

        with pytest.raises(ConfigurationError):
            cam_search_power_w(1000, 32, DRAM_CELL_MORISHITA, 100e6)


class TestFigure6b:
    def test_paper_ratios(self):
        rows = {r.scheme: r.power_w for r in power_comparison()}
        ca_ram = rows["ternary DRAM CA-RAM"]
        assert rows["16T SRAM TCAM"] / ca_ram == pytest.approx(
            paper_values.FIG6_POWER_VS_16T, abs=0.5
        )
        assert rows["6T dynamic TCAM"] / ca_ram == pytest.approx(
            paper_values.FIG6_POWER_VS_6T, abs=0.3
        )

    def test_ordering(self):
        rows = power_comparison()
        powers = [r.power_w for r in rows]
        # 16T > 8T > 6T > CA-RAM.
        assert powers == sorted(powers, reverse=True)

    def test_rate_independence_of_ratios(self):
        at_100 = {r.scheme: r.relative for r in power_comparison(100e6)}
        at_200 = {r.scheme: r.relative for r in power_comparison(200e6)}
        for scheme in at_100:
            assert at_100[scheme] == pytest.approx(at_200[scheme])
