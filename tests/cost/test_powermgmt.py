"""Unit tests for the power-management policy model."""

import pytest

from repro.core.config import Arrangement, SliceConfig
from repro.core.record import RecordFormat
from repro.core.subsystem import SliceGroup
from repro.cost.powermgmt import (
    DROWSY_WAKEUP_CYCLES,
    PowerPolicy,
    SubsystemPowerModel,
)
from repro.errors import ConfigurationError
from repro.hashing.base import ModuloHash
from repro.memory.timing import DRAM_TIMING


def make_group(slice_count=4, arrangement=Arrangement.VERTICAL):
    config = SliceConfig(
        index_bits=8, row_bits=1024,
        record_format=RecordFormat(key_bits=32, data_bits=16),
        timing=DRAM_TIMING,
    )
    buckets = (
        config.rows * slice_count
        if arrangement is Arrangement.VERTICAL
        else config.rows
    )
    return SliceGroup(
        config, slice_count, arrangement, ModuloHash(buckets), name="pm"
    )


@pytest.fixture
def model():
    return SubsystemPowerModel([make_group()])


class TestDynamicPower:
    def test_scales_with_rate(self, model):
        assert model.dynamic_power_w(100e6) == pytest.approx(
            2 * model.dynamic_power_w(50e6)
        )

    def test_amal_multiplier(self, model):
        assert model.dynamic_power_w(50e6, amal=1.5) == pytest.approx(
            1.5 * model.dynamic_power_w(50e6)
        )

    def test_horizontal_costs_more(self):
        vertical = SubsystemPowerModel([make_group(4, Arrangement.VERTICAL)])
        horizontal = SubsystemPowerModel(
            [make_group(4, Arrangement.HORIZONTAL)]
        )
        assert horizontal.dynamic_power_w(50e6) > 3 * vertical.dynamic_power_w(
            50e6
        )

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.dynamic_power_w(-1)
        with pytest.raises(ConfigurationError):
            model.dynamic_power_w(1e6, amal=0.5)


class TestPolicies:
    def test_policy_ordering_when_idle(self, model):
        """Idle subsystem: ALWAYS_ON > BANK_SELECT > DROWSY."""
        rates = [model.background_power_w(p, 0.0) for p in (
            PowerPolicy.ALWAYS_ON, PowerPolicy.BANK_SELECT, PowerPolicy.DROWSY
        )]
        assert rates[0] > rates[1] > rates[2]

    def test_policies_converge_at_saturation(self, model):
        """Fully busy slices leave nothing to gate."""
        saturating = 1e12
        on = model.background_power_w(PowerPolicy.ALWAYS_ON, saturating)
        gated = model.background_power_w(PowerPolicy.BANK_SELECT, saturating)
        assert gated == pytest.approx(on, rel=1e-6)

    def test_breakdown_totals(self, model):
        breakdown = model.breakdown(PowerPolicy.BANK_SELECT, 50e6)
        assert breakdown.total_w == pytest.approx(
            breakdown.dynamic_w + breakdown.background_w
        )

    def test_drowsy_wakeup_penalty(self, model):
        drowsy = model.breakdown(PowerPolicy.DROWSY, 1e6)
        awake = model.breakdown(PowerPolicy.BANK_SELECT, 1e6)
        assert drowsy.wakeup_latency_cycles == DROWSY_WAKEUP_CYCLES
        assert awake.wakeup_latency_cycles == 0

    def test_compare_covers_all_policies(self, model):
        breakdowns = model.compare(10e6)
        assert {b.policy for b in breakdowns} == set(PowerPolicy)

    def test_empty_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            SubsystemPowerModel([])
