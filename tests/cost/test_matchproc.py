"""Unit tests for the Table 1 match-processor synthesis model."""

import pytest

from repro.cost.matchproc import (
    MatchProcessorModel,
    REFERENCE_KEY_BITS,
    REFERENCE_POWER_MW,
    REFERENCE_ROW_BITS,
)
from repro.errors import ConfigurationError
from repro.experiments import paper_values


@pytest.fixture(scope="module")
def model():
    return MatchProcessorModel()


class TestReferencePoint:
    def test_stage_values_match_table1(self, model):
        result = model.synthesize()
        for stage in result.stages:
            cells, area, delay, overlapped = paper_values.TABLE1[stage.name]
            assert stage.cells == cells
            assert stage.area_um2 == pytest.approx(area)
            assert stage.delay_ns == pytest.approx(delay)
            assert stage.overlapped == overlapped

    def test_totals_match_table1(self, model):
        result = model.synthesize()
        assert result.total_cells == paper_values.TABLE1_TOTAL[0]
        assert result.total_area_um2 == pytest.approx(paper_values.TABLE1_TOTAL[1])
        # The paper's Total delay excludes the overlapped expand stage.
        assert result.critical_path_ns == pytest.approx(
            paper_values.TABLE1_TOTAL[2]
        )

    def test_single_cycle_over_200mhz(self, model):
        # "we achieve a latency that will fit in a single cycle at over
        # 200MHz"
        assert model.synthesize().max_clock_hz > 200e6

    def test_reference_power(self, model):
        assert model.dynamic_power_mw() == pytest.approx(
            REFERENCE_POWER_MW, rel=1e-6
        )


class TestScaling:
    def test_area_scales_with_row_width(self, model):
        double = model.synthesize(row_bits=2 * REFERENCE_ROW_BITS)
        reference = model.synthesize()
        assert double.total_area_um2 > 1.8 * reference.total_area_um2

    def test_delay_grows_with_slots(self, model):
        wide = model.synthesize(row_bits=4 * REFERENCE_ROW_BITS)
        reference = model.synthesize()
        assert wide.critical_path_ns > reference.critical_path_ns

    def test_fixed_key_simplifies_decode(self, model):
        # Fewer slots at the same C -> smaller priority encoder
        # ("in an application-specific CA-RAM design ... much of this
        # complexity will be removed").
        small_keys = model.synthesize(key_bits=8)
        big_keys = model.synthesize(key_bits=64)
        assert (
            big_keys.stage("decode_match_vector").cells
            < small_keys.stage("decode_match_vector").cells
        )

    def test_power_scales_with_area(self, model):
        assert model.dynamic_power_mw(row_bits=2 * REFERENCE_ROW_BITS) > (
            1.5 * REFERENCE_POWER_MW
        )

    def test_power_scales_with_clock(self, model):
        slow = model.dynamic_power_mw(clock_hz=100e6)
        fast = model.dynamic_power_mw(clock_hz=200e6)
        assert fast == pytest.approx(2 * slow)

    def test_match_energy_positive(self, model):
        energy = model.match_energy_j(row_bits=2048)
        assert 0 < energy < 1e-8

    def test_stage_lookup(self, model):
        result = model.synthesize()
        with pytest.raises(ConfigurationError):
            result.stage("nonexistent")


class TestValidation:
    def test_bad_geometry(self, model):
        with pytest.raises(ConfigurationError):
            model.synthesize(row_bits=0)
        with pytest.raises(ConfigurationError):
            model.synthesize(row_bits=8, key_bits=16)
