"""Unit tests for the bandwidth/latency models (Section 3.4)."""

import pytest

from repro.cost.bandwidth import (
    ca_ram_search_bandwidth,
    cam_search_bandwidth,
    search_latency_comparison,
)
from repro.errors import ConfigurationError
from repro.memory.timing import DRAM_TIMING, SRAM_TIMING


class TestBandwidthFormulas:
    def test_ca_ram_formula(self):
        # B = N_slice / n_mem * f_clk.
        assert ca_ram_search_bandwidth(8, DRAM_TIMING) == pytest.approx(
            8 / 6 * 200e6
        )

    def test_sram_slice_full_rate(self):
        assert ca_ram_search_bandwidth(1, SRAM_TIMING) == pytest.approx(200e6)

    def test_cam_formula(self):
        assert cam_search_bandwidth(143e6) == pytest.approx(143e6)
        assert cam_search_bandwidth(143e6, cycles_per_search=2) == pytest.approx(
            71.5e6
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ca_ram_search_bandwidth(0, DRAM_TIMING)
        with pytest.raises(ConfigurationError):
            cam_search_bandwidth(0)


class TestLatencyComparison:
    def test_data_access_exposed_in_cam(self):
        comparison = search_latency_comparison(
            ca_ram_timing=DRAM_TIMING,
            match_time_s=5e-9,
            cam_clock_hz=143e6,
        )
        assert comparison.cam_with_data_s > comparison.cam_lookup_s
        # "the time to access data (T_mem) is fully exposed in CAM while
        # it is effectively hidden in CA-RAM"
        assert comparison.ca_ram_wins_with_data

    def test_multi_cycle_cam_loses_harder(self):
        fast_cam = search_latency_comparison(
            DRAM_TIMING, 5e-9, 143e6, cam_cycles_per_search=1
        )
        slow_cam = search_latency_comparison(
            DRAM_TIMING, 5e-9, 143e6, cam_cycles_per_search=4
        )
        assert slow_cam.cam_with_data_s > fast_cam.cam_with_data_s

    def test_amal_inflates_ca_ram_latency(self):
        base = search_latency_comparison(DRAM_TIMING, 5e-9, 143e6, amal=1.0)
        probed = search_latency_comparison(DRAM_TIMING, 5e-9, 143e6, amal=2.0)
        assert probed.ca_ram_lookup_s == pytest.approx(
            2 * base.ca_ram_lookup_s
        )

    def test_bad_amal(self):
        with pytest.raises(ConfigurationError):
            search_latency_comparison(DRAM_TIMING, 5e-9, 143e6, amal=0.9)
