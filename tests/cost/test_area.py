"""Unit tests for the area models (Figure 6(a), Figure 8 area half)."""

import pytest

from repro.apps.iplookup.designs import IP_DESIGNS, KEY_SYMBOLS
from repro.apps.trigram.designs import TRIGRAM_DESIGNS, TRIGRAM_KEY_BITS
from repro.cam.cells import (
    CAM_STACKED_YAMAGATA92,
    TCAM_6T_DYNAMIC_NODA05,
)
from repro.cost.area import (
    ca_ram_database_area_um2,
    cam_database_area_um2,
    cell_size_comparison,
    database_area_comparison,
)
from repro.errors import ConfigurationError
from repro.experiments import paper_values


class TestCellComparison:
    def test_four_schemes(self):
        rows = cell_size_comparison()
        assert len(rows) == 4
        assert rows[0].relative == pytest.approx(1.0)

    def test_ca_ram_is_smallest(self):
        rows = cell_size_comparison()
        ca_ram = rows[-1]
        assert all(ca_ram.area_um2 <= r.area_um2 for r in rows)

    def test_paper_headline_ratios(self):
        rows = {r.scheme: r.area_um2 for r in cell_size_comparison()}
        ca_ram = rows["ternary DRAM CA-RAM"]
        assert rows["16T SRAM TCAM"] / ca_ram > paper_values.FIG6_CA_RAM_VS_16T
        assert rows["6T dynamic TCAM"] / ca_ram == pytest.approx(
            paper_values.FIG6_CA_RAM_VS_6T, abs=0.05
        )


class TestDatabaseAreas:
    def test_cam_area_linear(self):
        one = cam_database_area_um2(1000, 32, TCAM_6T_DYNAMIC_NODA05)
        two = cam_database_area_um2(2000, 32, TCAM_6T_DYNAMIC_NODA05)
        assert two == pytest.approx(2 * one)

    def test_ca_ram_includes_overhead(self):
        area = ca_ram_database_area_um2(1_000_000)
        assert area == pytest.approx(1_000_000 * 0.35 * 1.07)

    def test_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            cam_database_area_um2(0, 32, TCAM_6T_DYNAMIC_NODA05)
        with pytest.raises(ConfigurationError):
            ca_ram_database_area_um2(0)


class TestFigure8Areas:
    def test_ip_area_saving_in_paper_band(self):
        # Design D vs 6T TCAM: paper reports ~45% saving.
        design = IP_DESIGNS["D"]
        rows = database_area_comparison(
            cam_entries=paper_values.TABLE2_PREFIX_COUNT,
            cam_symbols_per_entry=KEY_SYMBOLS,
            cam_cell=TCAM_6T_DYNAMIC_NODA05,
            ca_ram_capacity_bits=design.capacity_bits,
        )
        saving = 1.0 - rows[1].relative
        assert 0.35 < saving < 0.50

    def test_trigram_area_ratio_near_paper(self):
        design = TRIGRAM_DESIGNS["A"]
        cam = cam_database_area_um2(
            paper_values.TABLE3_ENTRY_COUNT,
            TRIGRAM_KEY_BITS,
            CAM_STACKED_YAMAGATA92,
        )
        ca_ram = ca_ram_database_area_um2(design.capacity_bits, ternary=False)
        assert cam / ca_ram == pytest.approx(
            paper_values.FIG8_TRIGRAM_AREA_RATIO, abs=0.3
        )
