"""Unit tests for the CA-RAM slice behavioral model."""

import pytest

from repro.core.config import SliceConfig
from repro.core.index import make_index_generator
from repro.core.key import TernaryKey
from repro.core.probing import DoubleHashing
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.errors import CapacityError, LookupError_
from repro.hashing.base import ModuloHash
from repro.hashing.bit_select import BitSelectHash


def make_slice(
    index_bits=4,
    row_bits=128,
    key_bits=16,
    data_bits=8,
    ternary=False,
    hash_positions=None,
    **kw,
):
    config = SliceConfig(
        index_bits=index_bits,
        row_bits=row_bits,
        record_format=RecordFormat(
            key_bits=key_bits, data_bits=data_bits, ternary=ternary
        ),
    )
    positions = hash_positions or range(key_bits - index_bits, key_bits)
    gen = make_index_generator(BitSelectHash(key_bits, list(positions)))
    return CARAMSlice(config, gen, **kw)


class TestBasicOperations:
    def test_insert_search_round_trip(self):
        sl = make_slice()
        sl.insert(0x1234, data=0x56)
        result = sl.search(0x1234)
        assert result.hit
        assert result.data == 0x56
        assert result.bucket_accesses == 1

    def test_lookup_convenience(self):
        sl = make_slice()
        sl.insert(7, data=9)
        assert sl.lookup(7) == 9
        assert sl.lookup(8) is None

    def test_contains(self):
        sl = make_slice()
        sl.insert(7)
        assert 7 in sl
        assert 8 not in sl

    def test_miss_costs_one_access(self):
        sl = make_slice()
        result = sl.search(42)
        assert not result.hit
        assert result.bucket_accesses == 1

    def test_record_count_and_load_factor(self):
        sl = make_slice()
        for k in range(10):
            sl.insert(k * 16)  # spread over buckets
        assert sl.record_count == 10
        assert sl.load_factor == pytest.approx(
            10 / sl.config.capacity_records
        )

    def test_records_iterator(self):
        sl = make_slice()
        sl.insert(3, data=1)
        sl.insert(300, data=2)
        stored = {record.key.value for _, _, record in sl.records()}
        assert stored == {3, 300}

    def test_stats_track_amal(self):
        sl = make_slice()
        sl.insert(1, data=1)
        sl.search(1)
        sl.search(1)
        assert sl.stats.amal == pytest.approx(1.0)
        assert sl.stats.hits == 2


class TestOverflowBehavior:
    def test_spill_to_next_bucket(self):
        # Bucket 0 has 4 slots; the 5th record hashed there must spill.
        sl = make_slice(index_bits=4, key_bits=16)
        slots = sl.config.slots_per_bucket
        keys = [i << 4 for i in range(slots + 1)]  # all hash to bucket 0
        for k in keys:
            sl.insert(k, data=k & 0xFF)
        # Every key is still findable.
        for k in keys:
            assert sl.lookup(k) == k & 0xFF
        # The spilled record costs 2 accesses.
        accesses = [sl.search(k).bucket_accesses for k in keys]
        assert sorted(accesses)[-1] == 2
        assert sum(a == 2 for a in accesses) == 1

    def test_reach_limits_miss_cost(self):
        sl = make_slice()
        slots = sl.config.slots_per_bucket
        for i in range(slots + 2):
            sl.insert(i << 4)
        # A miss on bucket 0 must scan home + reach.
        miss = sl.search(0xFFF0)  # hashes to bucket 0, absent key
        reach = sl.memory.peek_row(0) >> (sl.config.row_bits - 8)
        assert miss.bucket_accesses == 1 + reach

    def test_capacity_error_when_full(self):
        sl = make_slice(index_bits=1, row_bits=64, key_bits=16)
        capacity = sl.config.capacity_records * 2  # both rows
        with pytest.raises(CapacityError):
            for i in range(capacity + 8):
                sl.insert(i << 1)

    def test_double_hashing_policy(self):
        sl = make_slice(probing=DoubleHashing(ModuloHash(16)))
        slots = sl.config.slots_per_bucket
        keys = [i << 4 for i in range(slots + 2)]
        for k in keys:
            sl.insert(k)
        for k in keys:
            assert sl.search(k).hit


class TestDelete:
    def test_delete_removes(self):
        sl = make_slice()
        sl.insert(5, data=1)
        assert sl.delete(5) == 1
        assert sl.lookup(5) is None
        assert sl.record_count == 0

    def test_delete_missing_raises(self):
        sl = make_slice()
        with pytest.raises(LookupError_):
            sl.delete(5)

    def test_delete_spilled_record(self):
        sl = make_slice()
        slots = sl.config.slots_per_bucket
        keys = [i << 4 for i in range(slots + 1)]
        for k in keys:
            sl.insert(k)
        spilled = max(keys, key=lambda k: sl.search(k).bucket_accesses)
        assert sl.delete(spilled) == 1
        assert sl.lookup(spilled) is None

    def test_delete_only_exact_key(self):
        sl = make_slice()
        sl.insert(5, data=1)
        sl.insert(0x15, data=2)
        sl.delete(5)
        assert sl.lookup(0x15) == 2


class TestTernary:
    def test_prefix_match(self):
        sl = make_slice(ternary=True, row_bits=256)
        prefix = TernaryKey.from_prefix(0xAB, 8, 16)  # "AB" then dont care
        sl.insert(prefix, data=3)
        assert sl.lookup(0xAB00) == 3
        assert sl.lookup(0xABFF) == 3
        assert sl.lookup(0xAC00) is None

    def test_duplication_across_hash_buckets(self):
        # Hash uses the last 4 bits; a key with Xs there duplicates.
        sl = make_slice(ternary=True, row_bits=256,
                        hash_positions=range(12, 16))
        key = TernaryKey.from_prefix(0xAB, 8, 16)
        copies = sl.insert(key, data=1)
        assert copies == 16
        assert sl.record_count == 16
        # Any concrete address matches via its own bucket in one access.
        for low in (0x0, 0x7, 0xF):
            result = sl.search(0xAB00 | low)
            assert result.hit
            assert result.bucket_accesses == 1

    def test_delete_removes_all_copies(self):
        sl = make_slice(ternary=True, row_bits=256,
                        hash_positions=range(12, 16))
        key = TernaryKey.from_prefix(0xAB, 8, 16)
        sl.insert(key, data=1)
        assert sl.delete(key) == 16
        assert sl.record_count == 0

    def test_masked_search_probes_multiple_buckets(self):
        sl = make_slice(ternary=True, row_bits=256,
                        hash_positions=range(12, 16))
        sl.insert(TernaryKey.exact(0x1234, 16), data=9)
        result = sl.search(0x1230, search_mask=0x000F)
        assert result.hit
        assert result.data == 9


class TestSlotPriority:
    def test_priority_orders_bucket(self):
        # Longer "prefix" (higher priority) must win the priority encoder.
        def priority(record):
            return 16 - record.key.dont_care_count

        sl = make_slice(ternary=True, row_bits=512, slot_priority=priority)
        short = TernaryKey.from_prefix(0xA, 4, 16)
        long = TernaryKey.from_prefix(0xAB, 8, 16)
        sl.insert(short, data=1)   # inserted first
        sl.insert(long, data=2)    # more specific, inserted second
        result = sl.search(0xAB00)
        assert result.data == 2  # LPM semantics within the bucket


class TestRebuildAndClear:
    def test_rebuild_compacts_reach(self):
        sl = make_slice()
        slots = sl.config.slots_per_bucket
        keys = [i << 4 for i in range(slots + 1)]
        for k in keys:
            sl.insert(k)
        spilled = max(keys, key=lambda k: sl.search(k).bucket_accesses)
        sl.delete(spilled)
        sl.rebuild()
        # After rebuild, all lookups are single-access again.
        for k in keys:
            if k != spilled:
                assert sl.search(k).bucket_accesses == 1

    def test_clear(self):
        sl = make_slice()
        sl.insert(1)
        sl.clear()
        assert sl.record_count == 0
        assert sl.lookup(1) is None
        assert sl.stats.lookups == 1  # the lookup above


class TestRamMode:
    def test_ram_read_write(self):
        sl = make_slice()
        sl.ram_write(3, 0xDEAD)
        assert sl.ram_read(3) == 0xDEAD

    def test_dma_load_recounts_records(self):
        source = make_slice()
        source.insert(0x0102, data=7)
        image = source.memory.snapshot()
        target = make_slice()
        target.dma_load(image)
        assert target.record_count == 1
        assert target.lookup(0x0102) == 7
