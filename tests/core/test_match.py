"""Unit tests for the match processor."""

import pytest

from repro.core.key import TernaryKey
from repro.core.match import MatchProcessor
from repro.core.record import Record, RecordFormat
from repro.errors import KeyFormatError

FMT = RecordFormat(key_bits=8, data_bits=8, ternary=True)


def candidate(pattern, data=0, valid=True):
    return (valid, Record(key=TernaryKey.from_pattern(pattern), data=data))


class TestMatchVector:
    def test_single_hit(self):
        mp = MatchProcessor(8)
        result = mp.match([candidate("10101010", data=7)], 0b10101010)
        assert result.hit
        assert result.matched_slot == 0
        assert result.data == 7
        assert result.match_vector == (True,)

    def test_miss(self):
        mp = MatchProcessor(8)
        result = mp.match([candidate("10101010")], 0b01010101)
        assert not result.hit
        assert result.matched_slot is None
        assert result.data is None

    def test_invalid_slots_never_match(self):
        mp = MatchProcessor(8)
        result = mp.match(
            [candidate("10101010", valid=False)], 0b10101010
        )
        assert not result.hit

    def test_empty_bucket(self):
        mp = MatchProcessor(8)
        result = mp.match([], 0)
        assert not result.hit
        assert result.match_vector == ()


class TestPriorityEncoding:
    def test_lowest_slot_wins(self):
        mp = MatchProcessor(8)
        result = mp.match(
            [
                candidate("00000000", data=1),
                candidate("1010XXXX", data=2),
                candidate("10101010", data=3),
            ],
            0b10101010,
        )
        assert result.matched_slot == 1
        assert result.data == 2
        assert result.multiple_matches

    def test_single_match_not_multiple(self):
        mp = MatchProcessor(8)
        result = mp.match([candidate("11110000", data=4)], 0b11110000)
        assert not result.multiple_matches


class TestTernarySemantics:
    def test_stored_dont_care(self):
        mp = MatchProcessor(8)
        result = mp.match([candidate("1XXXXXXX", data=9)], 0b10000001)
        assert result.hit

    def test_search_mask(self):
        mp = MatchProcessor(8)
        stored = candidate("10101010")
        assert not mp.match([stored], 0b10101011).hit
        assert mp.match([stored], 0b10101011, search_mask=0b1).hit

    def test_both_masks(self):
        mp = MatchProcessor(8)
        stored = candidate("1010XXXX")
        assert mp.match([stored], 0b00101111, search_mask=0b1000_0000).hit


class TestValidation:
    def test_key_too_wide(self):
        mp = MatchProcessor(8)
        with pytest.raises(KeyFormatError):
            mp.match([], 256)

    def test_mask_too_wide(self):
        mp = MatchProcessor(8)
        with pytest.raises(KeyFormatError):
            mp.match([], 0, search_mask=256)

    def test_bad_width(self):
        with pytest.raises(KeyFormatError):
            MatchProcessor(0)
