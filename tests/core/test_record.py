"""Unit tests for records and their serialized format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.key import TernaryKey
from repro.core.record import (
    Record,
    RecordFormat,
    decode_record,
    encode_record,
)
from repro.errors import ConfigurationError, KeyFormatError


class TestRecordFormat:
    def test_binary_slot_bits(self):
        fmt = RecordFormat(key_bits=32, data_bits=16)
        assert fmt.key_storage_bits == 32
        assert fmt.slot_bits == 1 + 32 + 16

    def test_ternary_doubles_key_storage(self):
        # "the number of records that can fit ... will be halved when the
        # ternary search capability is enabled"
        fmt = RecordFormat(key_bits=32, ternary=True)
        assert fmt.key_storage_bits == 64
        assert fmt.slot_bits == 65

    def test_bad_widths(self):
        with pytest.raises(ConfigurationError):
            RecordFormat(key_bits=0)
        with pytest.raises(ConfigurationError):
            RecordFormat(key_bits=8, data_bits=-1)

    def test_normalize_int_key(self):
        fmt = RecordFormat(key_bits=8)
        key = fmt.normalize_key(0xAB)
        assert key == TernaryKey.exact(0xAB, 8)

    def test_normalize_rejects_wrong_width(self):
        fmt = RecordFormat(key_bits=8)
        with pytest.raises(KeyFormatError):
            fmt.normalize_key(TernaryKey.exact(0, 16))

    def test_normalize_rejects_mask_in_binary_format(self):
        fmt = RecordFormat(key_bits=8)
        with pytest.raises(KeyFormatError):
            fmt.normalize_key(TernaryKey.from_pattern("1XXXXXXX"))


class TestRecordMake:
    def test_data_range_checked(self):
        fmt = RecordFormat(key_bits=8, data_bits=4)
        Record.make(1, 15, fmt)
        with pytest.raises(KeyFormatError):
            Record.make(1, 16, fmt)

    def test_zero_data_with_no_data_bits(self):
        fmt = RecordFormat(key_bits=8)
        record = Record.make(1, 0, fmt)
        assert record.data == 0


class TestEncodeDecode:
    def test_binary_round_trip(self):
        fmt = RecordFormat(key_bits=16, data_bits=8)
        record = Record.make(0xBEEF, 0x5A, fmt)
        valid, decoded = decode_record(encode_record(record, fmt), fmt)
        assert valid
        assert decoded == record

    def test_ternary_round_trip(self):
        fmt = RecordFormat(key_bits=8, data_bits=4, ternary=True)
        record = Record.make(TernaryKey.from_pattern("10XX01XX"), 9, fmt)
        valid, decoded = decode_record(encode_record(record, fmt), fmt)
        assert valid
        assert decoded.key.to_pattern() == "10XX01XX"
        assert decoded.data == 9

    def test_zero_slot_is_invalid(self):
        fmt = RecordFormat(key_bits=8)
        valid, _ = decode_record(0, fmt)
        assert not valid

    def test_valid_bit_is_msb(self):
        fmt = RecordFormat(key_bits=8)
        record = Record.make(0, 0, fmt)
        bits = encode_record(record, fmt)
        assert bits == 1 << 8  # valid bit above the key field

    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=255),
    )
    def test_ternary_round_trip_property(self, value, mask, data):
        fmt = RecordFormat(key_bits=16, data_bits=8, ternary=True)
        record = Record(key=TernaryKey(value=value, mask=mask, width=16), data=data)
        valid, decoded = decode_record(encode_record(record, fmt), fmt)
        assert valid
        assert decoded == record
