"""Columnar result sets and the multi-core parallel batch engine.

``search_batch_columnar`` is the native output of the batch engines — a
struct-of-arrays :class:`~repro.core.results.BatchResultSet` whose lazy
``results()`` materialization must be bit-identical to the scalar path
(results *and* ``SearchStats``), under every engine, ternary/masked
queries, reliability overlays, and mid-life engine switches.  The
``parallel-*`` engines fan the same batches out over a worker pool and
must merge shards back into exactly the single-core answer and stats.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Arrangement
from repro.core.subsystem import CARAMSubsystem
from repro.cam.tcam import TCAM
from repro.errors import ConfigurationError
from repro.reliability.faults import FaultConfig
from repro.telemetry.metrics import MetricsRegistry

from tests.core.test_batch_search import (
    KEY_BITS,
    _ternary_or_binary,
    fill_to,
    make_group,
    make_slice,
    mixed_queries,
    snapshot,
)


def columnar_differential(store, queries, search_mask=0):
    """Scalar and columnar lookups over the same store must agree exactly.

    Checks the materialized ``results()``, the ``data_values()`` fast
    path, and the ``SearchStats`` accounting.  Returns the result set.
    """
    store.stats.reset()
    scalar = [store.search(q, search_mask) for q in queries]
    scalar_stats = snapshot(store.stats)

    store.stats.reset()
    result_set = store.search_batch_columnar(queries, search_mask)
    assert store.stats == scalar_stats
    assert len(result_set) == len(queries)
    assert result_set.results() == scalar
    assert result_set.data_values() == [
        r.data if r.hit else None for r in scalar
    ]
    return result_set


class TestColumnarDifferential:
    @pytest.mark.parametrize("engine", ["word", "bitplane"])
    @pytest.mark.parametrize("seed", [5, 6])
    def test_slice_matches_scalar(self, engine, seed):
        rng = random.Random(seed)
        slice_ = make_slice(index_bits=4, slots=4, engine=engine)
        stored = fill_to(slice_, rng, 0.85)
        queries = mixed_queries(rng, stored, 400)
        result_set = columnar_differential(slice_, queries)
        scalar = [slice_.search(q) for q in queries]
        # The columns themselves carry the per-key accounting.
        assert list(result_set.hit) == [r.hit for r in scalar]
        assert list(result_set.bucket_accesses) == [
            r.bucket_accesses for r in scalar
        ]
        assert int(result_set.hit.sum()) > 0

    @pytest.mark.parametrize("engine", ["word", "bitplane"])
    def test_ternary_stores_and_masked_queries(self, engine):
        rng = random.Random(21)
        slice_ = make_slice(index_bits=4, slots=4, ternary=True, engine=engine)
        stored = []
        for _ in range(30):
            value = rng.randrange(1 << KEY_BITS)
            mask = rng.choice([0, 0b11 << 6, 0b101])
            try:
                slice_.insert(_ternary_or_binary(value, mask), value & 0xFF)
                stored.append(value)
            except Exception:
                continue
        for search_mask in (0, 1 << 12, 0b11 << 6):
            columnar_differential(
                slice_, mixed_queries(rng, stored, 150), search_mask
            )

    @pytest.mark.parametrize(
        "arrangement", [Arrangement.VERTICAL, Arrangement.HORIZONTAL]
    )
    def test_group_matches_scalar(self, arrangement):
        rng = random.Random(31)
        group = make_group(arrangement)
        stored = fill_to(group, rng, 0.85)
        columnar_differential(group, mixed_queries(rng, stored, 300))

    def test_subsystem_overflow_overrides(self):
        """Overflow-store hits surface as columnar overrides."""
        sub = CARAMSubsystem()
        group = make_group(Arrangement.VERTICAL)
        sub.add_group(group)
        sub.attach_overflow("batch-test", TCAM(64, KEY_BITS))
        keys = [5 + 32 * i for i in range(group.slots_per_bucket + 3)]
        for key in keys:
            sub.insert("batch-test", key, key & 0xFF)

        scalar = [sub.search("batch-test", k) for k in keys + [9999]]
        result_set = sub.search_batch_columnar("batch-test", keys + [9999])
        assert result_set.results() == scalar
        assert all(r.hit and r.bucket_accesses == 1 for r in scalar[:-1])
        assert not result_set.results()[-1].hit


class TestColumnarResultSet:
    def test_stale_set_refuses_materialization(self):
        """A result set outlived by a mirror re-decode must fail loudly."""
        rng = random.Random(41)
        slice_ = make_slice(index_bits=4, slots=4)
        stored = fill_to(slice_, rng, 0.5)
        unmaterialized = slice_.search_batch_columnar(stored[:20])
        materialized = slice_.search_batch_columnar(stored[:20])
        early = materialized.results()  # snapshot taken before the write
        slice_.delete(stored[0])
        fresh = slice_.search_batch_columnar(stored[:20])  # re-decodes
        assert fresh.results()  # the new set tracks the new version
        # A set materialized before the write keeps its valid snapshot...
        assert materialized.results() is early
        # ...but one that never materialized must not silently pair its
        # stale coordinates with the re-decoded mirror.
        with pytest.raises(ConfigurationError, match="stale"):
            unmaterialized.results()

    def test_columnar_rows_counter_and_provider(self):
        rng = random.Random(43)
        slice_ = make_slice(index_bits=4, slots=4)
        stored = fill_to(slice_, rng, 0.5)
        registry = MetricsRegistry()
        slice_.register_telemetry(registry)
        slice_.search_batch_columnar(stored)
        slice_.search_batch(stored)
        block = registry.snapshot()["stats"]["slice.batch"]
        assert block["columnar_rows"] == 2 * len(stored)
        assert block["worker_count"] == 0


class TestReliabilityOverlay:
    @pytest.mark.parametrize("engine", ["word", "bitplane"])
    def test_dead_row_overlay_matches_scalar(self, engine):
        rng = random.Random(53)
        slice_ = make_slice(index_bits=4, slots=4, engine=engine)
        stored = fill_to(slice_, rng, 0.8)
        slice_.enable_reliability(faults=FaultConfig(dead_rows=(3,)))
        queries = mixed_queries(rng, stored, 200)
        slice_.stats.reset()
        scalar = [slice_.search(q) for q in queries]
        result_set = slice_.search_batch_columnar(queries)
        assert result_set.results() == scalar
        assert result_set.data_values() == [
            r.data if r.hit else None for r in scalar
        ]

    @pytest.mark.parametrize("layout", ["word", "bitplane"])
    def test_parallel_composes_with_reliability(self, layout):
        """Deterministic fault configs (dead rows + stuck cells, zero
        flip rate) consume no RNG at access time, so the parallel engine
        must reproduce the serial reliability path exactly — results,
        overlays, and stats."""
        rng = random.Random(57)
        faults = FaultConfig(
            seed=19,
            dead_rows=(2, 9),
            stuck_cells=((1, 3, 1),),
            stuck_cell_count=3,
        )
        parallel = make_slice(
            index_bits=5, slots=4, engine=f"parallel-{layout}:2"
        )
        reference = make_slice(index_bits=5, slots=4, engine=layout)
        parallel.enable_reliability(faults=faults)
        reference.enable_reliability(faults=faults)
        stored = []
        for key in fill_to(parallel, rng, 0.8):
            reference.insert(key, key & 0xFF)
            stored.append(key)
        queries = mixed_queries(rng, stored, 400)
        try:
            parallel.search_batch_columnar(stored[:1])  # builds the engine
            parallel.batch_engine.min_parallel_keys = 1
            parallel.stats.reset()
            reference.stats.reset()
            par_set = parallel.search_batch_columnar(queries)
            ref_set = reference.search_batch_columnar(queries)
            assert par_set.results() == ref_set.results()
            assert par_set.data_values() == ref_set.data_values()
            assert parallel.stats == reference.stats
            assert parallel.batch_engine.parallel_batches >= 1
        finally:
            parallel._close_batch_engine()

    def test_parallel_bit_flip_chaos_never_silently_wrong(self):
        """With a live ``bit_flip_rate`` the fault *sampling points*
        differ between serial chunks and the batch-merge replay, so exact
        stream parity is out of scope — the contract is the soak
        property: every answer is the clean expected one (ECC corrects
        what the chaos injects) and injected faults really do fire
        through the replayed access sink."""
        rng = random.Random(59)
        slice_ = make_slice(
            index_bits=5, slots=4, engine="parallel-bitplane:2"
        )
        stored = fill_to(slice_, rng, 0.8)
        expected = {key: slice_.search(key).data for key in stored}
        manager = slice_.enable_reliability(
            faults=FaultConfig(seed=23, bit_flip_rate=2e-4)
        )
        try:
            slice_.search_batch_columnar(stored[:1])  # builds the engine
            slice_.batch_engine.min_parallel_keys = 1
            for _ in range(6):
                results = slice_.search_batch_columnar(stored).results()
                for key, result in zip(stored, results):
                    assert result.hit and result.data == expected[key]
            injected = sum(g.stats.faults_injected for g in manager.guards)
            corrected = sum(g.stats.corrections for g in manager.guards)
            assert injected > 0 and corrected > 0
        finally:
            slice_._close_batch_engine()


class TestEngineSwitchMidLife:
    def test_switch_engines_between_batches(self):
        rng = random.Random(61)
        slice_ = make_slice(index_bits=4, slots=4, engine="word")
        stored = fill_to(slice_, rng, 0.8)
        queries = mixed_queries(rng, stored, 250)
        baseline = columnar_differential(slice_, queries)
        for spec in ("bitplane", "word", "bitplane"):
            slice_.engine = spec
            assert slice_.engine == spec
            switched = columnar_differential(slice_, queries)
            assert switched.results() == baseline.results()

    def test_worker_count_switch_keeps_spec_roundtrip(self):
        slice_ = make_slice(index_bits=4, slots=4, engine="bitplane")
        assert slice_.engine_worker_count == 0
        slice_.engine = "parallel-bitplane:3"
        assert slice_.engine == "parallel-bitplane:3"
        assert slice_.engine_worker_count == 3
        slice_.engine = "bitplane"
        assert slice_.engine_worker_count == 0


class TestParallelEngine:
    @pytest.mark.parametrize("layout", ["word", "bitplane"])
    def test_parity_and_merged_stats(self, layout):
        """Two workers must reproduce the single-core answer and stats."""
        rng = random.Random(71)
        parallel = make_slice(
            index_bits=5, slots=4, engine=f"parallel-{layout}:2"
        )
        reference = make_slice(index_bits=5, slots=4, engine=layout)
        stored = []
        for key in fill_to(parallel, rng, 0.85):
            reference.insert(key, key & 0xFF)
            stored.append(key)
        queries = mixed_queries(rng, stored, 600)
        try:
            parallel.search_batch_columnar(stored[:1])  # builds the engine
            engine = parallel.batch_engine
            engine.min_parallel_keys = 1  # force the pool even when small
            parallel.stats.reset()
            reference.stats.reset()
            par_set = parallel.search_batch_columnar(queries)
            ref_set = reference.search_batch_columnar(queries)
            assert par_set.results() == ref_set.results()
            assert parallel.stats == reference.stats
            assert engine.parallel_batches == 1

            # Determinism: the same batch re-merged gives the same stats.
            parallel.stats.reset()
            reference.stats.reset()
            again = parallel.search_batch_columnar(queries)
            reference.search_batch_columnar(queries)
            assert again.results() == par_set.results()
            assert parallel.stats == reference.stats
        finally:
            parallel._close_batch_engine()

    def test_parity_after_churn(self):
        """Mutations between batches re-export the shared mirror."""
        rng = random.Random(73)
        parallel = make_slice(index_bits=5, slots=4, engine="parallel-bitplane:2")
        reference = make_slice(index_bits=5, slots=4, engine="bitplane")
        stored = []
        for key in fill_to(parallel, rng, 0.7):
            reference.insert(key, key & 0xFF)
            stored.append(key)
        queries = mixed_queries(rng, stored, 400)
        try:
            parallel.search_batch_columnar(stored[:1])  # builds the engine
            parallel.batch_engine.min_parallel_keys = 1
            assert (
                parallel.search_batch_columnar(queries).results()
                == reference.search_batch_columnar(queries).results()
            )
            for victim in stored[:4]:
                parallel.delete(victim)
                reference.delete(victim)
                parallel.insert(victim, (victim + 1) & 0xFF)
                reference.insert(victim, (victim + 1) & 0xFF)
            parallel.stats.reset()
            reference.stats.reset()
            assert (
                parallel.search_batch_columnar(queries).results()
                == reference.search_batch_columnar(queries).results()
            )
            assert parallel.stats == reference.stats
        finally:
            parallel._close_batch_engine()

    def test_small_batches_stay_in_process(self):
        """Below ``min_parallel_keys`` the pool is never consulted."""
        rng = random.Random(79)
        slice_ = make_slice(index_bits=4, slots=4, engine="parallel-bitplane:2")
        stored = fill_to(slice_, rng, 0.5)
        try:
            columnar_differential(slice_, mixed_queries(rng, stored, 50))
            assert slice_.batch_engine.parallel_batches == 0
        finally:
            slice_._close_batch_engine()

    def test_invalid_worker_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            make_slice(engine="parallel-bitplane:x")
        with pytest.raises(ConfigurationError):
            make_slice(engine="parallel-tcam:2")


class TestWorkerSpanCapture:
    """Worker-side phase/latency spans ship back and merge in the parent."""

    def run_profiled(self, queries_seed=83):
        from repro.telemetry.profiling import PhaseProfiler, set_profiler

        rng = random.Random(queries_seed)
        slice_ = make_slice(index_bits=5, slots=4, engine="parallel-word:2")
        stored = fill_to(slice_, rng, 0.8)
        queries = mixed_queries(rng, stored, 400)
        slice_.enable_latency_tracking()
        profiler = PhaseProfiler(enabled=True, track_latency=True)
        previous = set_profiler(profiler)
        try:
            slice_.search_batch_columnar(stored[:1])  # builds the engine
            slice_.batch_engine.min_parallel_keys = 1
            slice_.stats.reset()
            slice_.search_batch_columnar(queries)
            shards = list(slice_.batch_engine.shard_stats)
        finally:
            set_profiler(previous)
            slice_._close_batch_engine()
        return slice_, profiler, shards

    def test_worker_phases_merge_into_parent_profiler(self):
        slice_, profiler, _shards = self.run_profiled()
        phases = profiler.as_dict()
        worker_phases = [p for p in phases if p.startswith("worker.")]
        assert "worker.batch.home_match" in worker_phases
        for phase in worker_phases:
            assert phases[phase]["calls"] > 0
            assert phases[phase]["seconds"] >= 0.0
            # track_latency propagated: every worker span carries a sketch.
            assert "latency" in phases[phase]
        # The worker latency sketches merged, not overwritten: the match
        # phase saw one span per shard-chunk, i.e. at least one per worker.
        assert phases["worker.batch.home_match"]["latency"]["count"] >= 2

    def test_worker_span_totals_are_deterministic(self):
        first_slice, first, _ = self.run_profiled()
        second_slice, second, _ = self.run_profiled()
        assert first_slice.stats == second_slice.stats
        first_phases = first.as_dict()
        second_phases = second.as_dict()
        assert sorted(first_phases) == sorted(second_phases)
        for phase, entry in first_phases.items():
            assert entry["calls"] == second_phases[phase]["calls"]
            if "latency" in entry:
                assert (
                    entry["latency"]["count"]
                    == second_phases[phase]["latency"]["count"]
                )

    def test_shard_latency_merges_into_parent_stats(self):
        slice_, _profiler, shards = self.run_profiled()
        latency = slice_.stats.latency
        assert latency is not None
        assert latency.count >= 2  # one observation per worker chunk
        assert len(shards) == 2
        assert sum(s.latency.count for s in shards) == latency.count


class TestColumnarEquivalenceProperty:
    """Hypothesis: under any interleaving of inserts, deletes, engine
    switches, and masked columnar searches, ``results()`` stays
    bit-identical to the scalar path (results and stats)."""

    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("insert"),
                    st.integers(0, (1 << KEY_BITS) - 1),
                    st.sampled_from([0, 0b11 << 6, 0b101]),
                ),
                st.tuples(st.just("delete"), st.integers(0, 1 << 20)),
                st.tuples(
                    st.just("switch"), st.sampled_from(["word", "bitplane"])
                ),
                st.tuples(
                    st.just("search"),
                    st.integers(0, 1 << 20),
                    st.sampled_from([0, 1 << 12, 0b11 << 6]),
                ),
            ),
            min_size=5,
            max_size=25,
        )
    )
    def test_random_interleavings(self, ops):
        slice_ = make_slice(index_bits=4, slots=4, ternary=True)
        live = []
        for op in ops:
            if op[0] == "insert":
                _, value, mask = op
                try:
                    slice_.insert(
                        _ternary_or_binary(value, mask), value & 0xFF
                    )
                    live.append(value)
                except Exception:
                    continue
            elif op[0] == "delete":
                if live:
                    try:
                        slice_.delete(live.pop(op[1] % len(live)))
                    except Exception:
                        continue
            elif op[0] == "switch":
                slice_.engine = op[1]
            else:
                _, seed, mask = op
                rng = random.Random(seed)
                queries = mixed_queries(rng, live or [0], 20)
                columnar_differential(slice_, queries, search_mask=mask)
        columnar_differential(slice_, live or [1])
