"""Unit tests for the index generator."""

import pytest

from repro.core.index import IndexGenerator, make_index_generator
from repro.core.key import TernaryKey
from repro.errors import ConfigurationError, KeyFormatError
from repro.hashing.base import ModuloHash
from repro.hashing.bit_select import BitSelectHash


class TestConstruction:
    def test_row_count_must_match(self):
        with pytest.raises(ConfigurationError):
            IndexGenerator(ModuloHash(16), rows=32)

    def test_make_index_generator(self):
        gen = make_index_generator(ModuloHash(16))
        assert gen.rows == 16


class TestIndexing:
    def test_int_key(self):
        gen = make_index_generator(BitSelectHash(8, [0, 1]))
        assert gen.index(0b1100_0000) == 0b11

    def test_ternary_key_uses_value(self):
        gen = make_index_generator(BitSelectHash(8, [0, 1]))
        key = TernaryKey.from_pattern("10XXXXXX")
        assert gen.index(key) == 0b10


class TestStoredEnumeration:
    def test_binary_key_single_row(self):
        gen = make_index_generator(BitSelectHash(8, [0, 1, 2]))
        assert gen.indices_for_stored(0b10100000) == [0b101]

    def test_dont_care_in_hash_bits_duplicates(self):
        # "if a prefix has n don't care bits in the hash bit positions, it
        # must be duplicated and placed in 2^n buckets"
        gen = make_index_generator(BitSelectHash(8, [0, 1, 2]))
        key = TernaryKey.from_pattern("1XX00000")
        rows = gen.indices_for_stored(key)
        assert rows == [0b100, 0b101, 0b110, 0b111]

    def test_dont_care_outside_hash_bits_single_row(self):
        gen = make_index_generator(BitSelectHash(8, [0, 1, 2]))
        key = TernaryKey.from_pattern("101XXXXX")
        assert gen.indices_for_stored(key) == [0b101]

    def test_non_bit_select_rejects_masked_keys(self):
        gen = make_index_generator(ModuloHash(8))
        key = TernaryKey.from_pattern("1XX00000")
        with pytest.raises(KeyFormatError):
            gen.indices_for_stored(key)

    def test_non_bit_select_accepts_binary_ternary_key(self):
        gen = make_index_generator(ModuloHash(8))
        key = TernaryKey.exact(13, 8)
        assert gen.indices_for_stored(key) == [13 % 8]


class TestSearchEnumeration:
    def test_plain_search_single_row(self):
        gen = make_index_generator(BitSelectHash(8, [0, 1]))
        assert gen.indices_for_search(0b11000000) == [0b11]

    def test_search_mask_over_hash_bits_multi_probe(self):
        # "if the search key contains don't care bits which are taken by
        # the hash function, multiple buckets must be accessed"
        gen = make_index_generator(BitSelectHash(8, [0, 1]))
        rows = gen.indices_for_search(0b00000000, search_mask=0b1000_0000)
        assert rows == [0b00, 0b10]

    def test_search_mask_outside_hash_bits(self):
        gen = make_index_generator(BitSelectHash(8, [0, 1]))
        rows = gen.indices_for_search(0b11000000, search_mask=0b0000_1111)
        assert rows == [0b11]

    def test_ternary_search_key(self):
        gen = make_index_generator(BitSelectHash(8, [0, 1]))
        key = TernaryKey.from_pattern("X1000000")
        assert gen.indices_for_search(key) == [0b01, 0b11]

    def test_masked_search_without_width_info_rejected(self):
        gen = make_index_generator(ModuloHash(8))
        with pytest.raises(KeyFormatError):
            gen.indices_for_search(3, search_mask=1)
