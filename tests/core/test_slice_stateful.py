"""Stateful property test: a CA-RAM slice against a dictionary model.

Hypothesis drives random interleavings of insert / delete / search /
rebuild / clear and checks, after every step, that the slice agrees with a
plain dict on membership, data, and record count.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.config import SliceConfig
from repro.core.index import make_index_generator
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.errors import CapacityError
from repro.hashing.base import ModuloHash

INDEX_BITS = 4
ROWS = 1 << INDEX_BITS
SLOTS = 3
CAPACITY = ROWS * SLOTS

KEYS = st.integers(min_value=0, max_value=255)
DATA = st.integers(min_value=0, max_value=255)


def build_slice() -> CARAMSlice:
    record_format = RecordFormat(key_bits=8, data_bits=8)
    config = SliceConfig(
        index_bits=INDEX_BITS,
        row_bits=8 + SLOTS * record_format.slot_bits,
        record_format=record_format,
        slots_override=SLOTS,
    )
    return CARAMSlice(config, make_index_generator(ModuloHash(ROWS)))


class SliceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.caram = build_slice()
        self.model = {}

    @rule(key=KEYS, data=DATA)
    def insert(self, key, data):
        if key in self.model:
            # The behavioral model stores duplicates; keep the state
            # machine simple by skipping keys already present.
            return
        if len(self.model) >= CAPACITY:
            return
        try:
            self.caram.insert(key, data)
        except CapacityError:
            # Legal when probing is reach-limited; the key is absent.
            assert not self.caram.search(key).hit
            return
        self.model[key] = data

    @rule(key=KEYS)
    def delete(self, key):
        if key in self.model:
            removed = self.caram.delete(key)
            assert removed == 1
            del self.model[key]
        else:
            from repro.errors import LookupError_

            try:
                self.caram.delete(key)
            except LookupError_:
                pass
            else:  # pragma: no cover - would be a bug
                raise AssertionError("delete of absent key succeeded")

    @rule(key=KEYS)
    def search(self, key):
        result = self.caram.search(key)
        if key in self.model:
            assert result.hit
            assert result.data == self.model[key]
        else:
            assert not result.hit

    @rule()
    def rebuild(self):
        self.caram.rebuild()

    @precondition(lambda self: len(self.model) > 0)
    @rule()
    def clear(self):
        self.caram.clear()
        self.model.clear()

    @invariant()
    def record_count_matches(self):
        assert self.caram.record_count == len(self.model)

    @invariant()
    def load_factor_bounded(self):
        assert 0.0 <= self.caram.load_factor <= 1.0


TestSliceStateMachine = SliceMachine.TestCase
