"""Unit tests for the memory-mapped register/port interface."""

import pytest

from repro.core.registers import (
    MODE_CAM,
    MODE_RAM,
    MemoryMappedCaRam,
    PORT_DELETE,
    PORT_INSERT,
    PORT_RAM_DATA,
    PORT_SEARCH,
    REG_DATA_BITS,
    REG_INSERT_DATA,
    REG_KEY_BYTES,
    REG_MODE,
    REG_RAM_ADDR,
    REG_SEARCH_MASK,
    REG_STATUS,
    REG_TERNARY,
    STATUS_HIT,
    STATUS_MULTI_MATCH,
    STATUS_RESULT_VALID,
)
from repro.errors import ConfigurationError, RamModeError


@pytest.fixture
def device():
    return MemoryMappedCaRam(index_bits=4, row_bits=512, key_bytes=2)


class TestPortProtocol:
    def test_store_load_search(self, device):
        # "to submit a request, an application will issue a store
        # instruction at the port address, passing the search key"
        device.store(REG_INSERT_DATA, 99)
        device.store(PORT_INSERT, 0xBEEF)
        device.store(PORT_SEARCH, 0xBEEF)
        status = device.load(REG_STATUS)
        assert status & STATUS_RESULT_VALID
        assert status & STATUS_HIT
        assert device.load(PORT_SEARCH) == 99

    def test_result_consumed_on_read(self, device):
        device.store(PORT_SEARCH, 1)
        device.load(PORT_SEARCH)
        assert not device.load(REG_STATUS) & STATUS_RESULT_VALID

    def test_miss_status(self, device):
        device.store(PORT_SEARCH, 42)
        status = device.load(REG_STATUS)
        assert status & STATUS_RESULT_VALID
        assert not status & STATUS_HIT
        assert device.search(42) is None

    def test_multi_match_status(self, device):
        device.store(REG_INSERT_DATA, 1)
        device.store(PORT_INSERT, 7)
        device.store(PORT_INSERT, 7)
        device.store(PORT_SEARCH, 7)
        assert device.load(REG_STATUS) & STATUS_MULTI_MATCH

    def test_search_mask_register(self, device):
        device.store(REG_INSERT_DATA, 5)
        device.store(PORT_INSERT, 0xAB00)
        device.store(REG_SEARCH_MASK, 0x00FF)
        assert device.search(0xABCD) == 5

    def test_delete_port(self, device):
        device.store(PORT_INSERT, 7)
        device.store(PORT_DELETE, 7)
        assert device.search(7) is None

    def test_delete_missing_does_not_trap(self, device):
        device.store(PORT_DELETE, 9)  # no exception

    def test_driver_search(self, device):
        device.store(REG_INSERT_DATA, 12)
        device.store(PORT_INSERT, 3)
        assert device.search(3) == 12


class TestReconfiguration:
    def test_key_size_select(self, device):
        # §3.3: "we limited the key size to be 1, 2, 3, 4, 6, 8, 12, and
        # 16 bytes"
        for key_bytes in (1, 2, 3, 4, 6, 8, 12, 16):
            device.store(REG_KEY_BYTES, key_bytes)
            assert device.load(REG_KEY_BYTES) == key_bytes

    def test_unsupported_key_size(self, device):
        with pytest.raises(ConfigurationError):
            device.store(REG_KEY_BYTES, 5)

    def test_reconfigure_clears_contents(self, device):
        device.store(PORT_INSERT, 7)
        device.store(REG_KEY_BYTES, 4)
        assert device.search(7) is None
        assert device.slice.record_count == 0

    def test_ternary_enable_halves_slots(self, device):
        binary_slots = device.slots_per_bucket
        device.store(REG_TERNARY, 1)
        assert device.slots_per_bucket < binary_slots
        assert device.load(REG_TERNARY) == 1

    def test_smaller_keys_more_slots(self, device):
        device.store(REG_KEY_BYTES, 1)
        small_key_slots = device.slots_per_bucket
        device.store(REG_KEY_BYTES, 16)
        assert device.slots_per_bucket < small_key_slots

    def test_data_bits_register(self, device):
        device.store(REG_DATA_BITS, 8)
        device.store(REG_INSERT_DATA, 255)
        device.store(PORT_INSERT, 1)
        assert device.search(1) == 255


class TestRamMode:
    def test_ram_window(self, device):
        device.store(REG_MODE, MODE_RAM)
        device.store(REG_RAM_ADDR, 3)
        device.store(PORT_RAM_DATA, 0xDEAD)
        assert device.load(PORT_RAM_DATA) == 0xDEAD

    def test_cam_ports_blocked_in_ram_mode(self, device):
        device.store(REG_MODE, MODE_RAM)
        with pytest.raises(ConfigurationError):
            device.store(PORT_SEARCH, 1)

    def test_ram_port_blocked_in_cam_mode(self, device):
        with pytest.raises(ConfigurationError):
            device.store(PORT_RAM_DATA, 1)

    def test_invalid_mode(self, device):
        with pytest.raises(ConfigurationError):
            device.store(REG_MODE, 5)

    def test_mode_round_trip(self, device):
        device.store(REG_MODE, MODE_RAM)
        assert device.load(REG_MODE) == MODE_RAM
        device.store(REG_MODE, MODE_CAM)
        device.store(PORT_INSERT, 1)  # CAM works again


class TestAddressDecode:
    def test_unmapped_load(self, device):
        with pytest.raises(RamModeError):
            device.load(0x1000)

    def test_unmapped_store(self, device):
        with pytest.raises(RamModeError):
            device.store(0x1000, 0)

    def test_negative_value(self, device):
        with pytest.raises(ConfigurationError):
            device.store(REG_INSERT_DATA, -1)
