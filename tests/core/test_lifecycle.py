"""Explicit teardown: close()/context-manager on slice, group, subsystem.

The serving tier drains shards and then closes them; these tests pin the
contract that close() releases the batch engine (worker pools, shared
memory for the parallel engines) everywhere in the composition hierarchy,
is idempotent, and leaves the structure lazily reusable.
"""

from repro.core.config import Arrangement, SliceConfig
from repro.core.index import IndexGenerator
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.core.subsystem import CARAMSubsystem, SliceGroup
from repro.hashing.base import ModuloHash


def make_config():
    return SliceConfig(
        index_bits=3,
        row_bits=128,
        record_format=RecordFormat(key_bits=16, data_bits=8),
    )


def make_slice():
    config = make_config()
    return CARAMSlice(
        config, IndexGenerator(ModuloHash(config.rows), config.rows)
    )


def make_group(name="db"):
    config = make_config()
    return SliceGroup(
        config=config,
        slice_count=2,
        arrangement=Arrangement.VERTICAL,
        hash_function=ModuloHash(config.rows * 2),
        name=name,
    )


class TestSliceClose:
    def test_close_releases_engine_and_is_idempotent(self):
        slice_ = make_slice()
        slice_.insert(1, 2)
        slice_.search_batch([1, 3])
        assert slice_._batch_engine is not None
        slice_.close()
        assert slice_._batch_engine is None
        slice_.close()  # idempotent

    def test_closed_slice_lazily_rebuilds(self):
        slice_ = make_slice()
        slice_.insert(1, 2)
        slice_.search_batch([1])
        slice_.close()
        assert slice_.search_batch([1])[0].data == 2

    def test_context_manager(self):
        with make_slice() as slice_:
            slice_.insert(4, 5)
            slice_.search_batch([4])
        assert slice_._batch_engine is None


class TestGroupClose:
    def test_close_releases_group_engine(self):
        group = make_group()
        group.bulk_load([(1, 2), (3, 4)])
        group.search_batch([1, 3])
        assert group._batch_engine is not None
        group.close()
        assert group._batch_engine is None
        group.close()

    def test_context_manager(self):
        with make_group() as group:
            group.bulk_load([(1, 2)])
            group.search_batch([1])
        assert group._batch_engine is None


class TestSubsystemClose:
    def test_close_reaches_every_group(self):
        subsystem = CARAMSubsystem()
        subsystem.add_group(make_group("a"))
        subsystem.add_group(make_group("b"))
        subsystem.bulk_load("a", [(1, 2)])
        subsystem.bulk_load("b", [(3, 4)])
        subsystem.search_batch_columnar("a", [1]).results()
        subsystem.search_batch_columnar("b", [3]).results()
        groups = [subsystem.group("a"), subsystem.group("b")]
        assert all(g._batch_engine is not None for g in groups)
        subsystem.close()
        assert all(g._batch_engine is None for g in groups)

    def test_context_manager(self):
        with CARAMSubsystem() as subsystem:
            subsystem.add_group(make_group("a"))
            subsystem.bulk_load("a", [(1, 2)])
            assert subsystem.search("a", 1).data == 2
        assert subsystem.group("a")._batch_engine is None
