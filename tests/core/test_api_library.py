"""Unit tests for the Section 3.2 class-library API."""

import pytest

from repro.api import CaRamLibrary, ExceptionEvent
from repro.core.composer import OverflowKind
from repro.core.config import Arrangement
from repro.core.record import RecordFormat
from repro.cost.powermgmt import PowerPolicy
from repro.errors import CapacityError, ConfigurationError
from repro.hashing.base import ModuloHash


def make_library(slice_count=8):
    return CaRamLibrary(slice_count=slice_count, index_bits=5, row_bits=512)


FMT16 = RecordFormat(key_bits=16, data_bits=8)


class TestAllocation:
    def test_database_claims_slices(self):
        lib = make_library()
        db = lib.allocate_database("a", FMT16, slice_count=3)
        assert lib.free_slices == 5
        assert len(db.slice_ids) == 3

    def test_overflow_slice_claims_extra(self):
        lib = make_library()
        db = lib.allocate_database(
            "a", FMT16, slice_count=2, overflow=OverflowKind.CA_RAM_SLICE
        )
        assert lib.free_slices == 5
        assert len(db.slice_ids) == 3

    def test_scratchpad(self):
        lib = make_library()
        pad = lib.allocate_scratchpad("pad", 2)
        assert lib.free_slices == 6
        pad.write(3, 0xABCD)
        assert pad.read(3) == 0xABCD
        assert pad.rows == 2 * 32

    def test_pool_exhaustion(self):
        lib = make_library(slice_count=2)
        lib.allocate_database("a", FMT16, slice_count=2)
        with pytest.raises(CapacityError):
            lib.allocate_database("b", FMT16, slice_count=1)

    def test_duplicate_name_rejected(self):
        lib = make_library()
        lib.allocate_database("a", FMT16, slice_count=1)
        with pytest.raises(ConfigurationError):
            lib.allocate_database("a", FMT16, slice_count=1)
        with pytest.raises(ConfigurationError):
            lib.allocate_scratchpad("a", 1)

    def test_free_returns_slices(self):
        lib = make_library()
        db = lib.allocate_database("a", FMT16, slice_count=4)
        lib.free("a")
        assert lib.free_slices == 8
        assert "a" not in lib.allocation_names
        # The name is reusable.
        lib.allocate_database("a", FMT16, slice_count=8)

    def test_close_is_idempotent(self):
        lib = make_library()
        db = lib.allocate_database("a", FMT16, slice_count=1)
        db.close()
        db.close()
        assert lib.free_slices == 8

    def test_freed_handle_rejects_operations(self):
        lib = make_library()
        db = lib.allocate_database("a", FMT16, slice_count=1)
        db.close()
        with pytest.raises(ConfigurationError):
            db.lookup(1)

    def test_free_unknown_name(self):
        lib = make_library()
        with pytest.raises(ConfigurationError):
            lib.free("nope")


class TestDatabaseOperations:
    def test_round_trip(self):
        lib = make_library()
        db = lib.allocate_database("a", FMT16, slice_count=2)
        for k in range(100):
            db.insert(k * 31, data=k % 200)
        for k in range(100):
            assert db.lookup(k * 31) == k % 200
        assert db.record_count == 100
        assert 0 < db.load_factor < 1

    def test_contains_and_delete(self):
        lib = make_library()
        db = lib.allocate_database("a", FMT16, slice_count=1)
        db.insert(7, data=1)
        assert 7 in db
        db.delete(7)
        assert 7 not in db

    def test_ternary_database(self):
        from repro.core.key import TernaryKey
        from repro.hashing.bit_select import BitSelectHash

        lib = make_library()
        db = lib.allocate_database(
            "t", RecordFormat(key_bits=16, data_bits=8, ternary=True),
            slice_count=1,
            # Bit selection over the top 5 bits so prefix keys (concrete
            # high bits) index without duplication surprises.
            hash_function=BitSelectHash(16, range(5)),
        )
        db.insert(TernaryKey.from_prefix(0xAB, 8, 16), data=5)
        assert db.lookup(0xAB00) == 5
        assert db.lookup(0xABFF) == 5

    def test_stats_exposed(self):
        lib = make_library()
        db = lib.allocate_database("a", FMT16, slice_count=1)
        db.insert(1, data=1)
        db.search(1)
        assert db.stats.lookups == 1


class TestExceptionConditions:
    def test_miss_handler(self):
        lib = make_library()
        db = lib.allocate_database("a", FMT16, slice_count=1)
        events = []
        db.on_exception(ExceptionEvent.MISS, lambda e, p: events.append(p))
        db.search(42)
        assert events == [42]

    def test_multiple_match_handler(self):
        lib = make_library()
        db = lib.allocate_database("a", FMT16, slice_count=1)
        events = []
        db.on_exception(
            ExceptionEvent.MULTIPLE_MATCH, lambda e, p: events.append(p)
        )
        db.insert(9, data=1)
        db.insert(9, data=2)
        result = db.search(9)
        assert result.multiple_matches
        assert len(events) == 1

    def test_capacity_handler(self):
        lib = CaRamLibrary(slice_count=1, index_bits=1, row_bits=64)
        db = lib.allocate_database(
            "tiny", RecordFormat(key_bits=16), slice_count=1,
            hash_function=ModuloHash(2),
        )
        events = []
        db.on_exception(ExceptionEvent.CAPACITY, lambda e, p: events.append(p))
        with pytest.raises(CapacityError):
            for k in range(64):
                db.insert(k)
        assert len(events) == 1


class TestOverflowIntegration:
    def test_victim_tcam_through_handle(self):
        lib = make_library()
        db = lib.allocate_database(
            "a", FMT16, slice_count=1, overflow=OverflowKind.TCAM,
            tcam_entries=32, hash_function=ModuloHash(32),
        )
        slots = db._composed.main.slots_per_bucket
        keys = [i * 32 for i in range(slots + 2)]
        for key in keys:
            db.insert(key, data=key % 100)
        assert db.overflow_entry_count == 2
        for key in keys:
            result = db.search(key)
            assert result.hit and result.bucket_accesses == 1


class TestPowerManagement:
    def test_breakdown(self):
        lib = make_library()
        lib.allocate_database("a", FMT16, slice_count=2)
        breakdown = lib.power_breakdown(10e6)
        assert breakdown.policy is PowerPolicy.BANK_SELECT
        assert breakdown.total_w > 0

    def test_policy_switch(self):
        lib = make_library()
        lib.allocate_database("a", FMT16, slice_count=2)
        lib.power_policy = PowerPolicy.DROWSY
        assert lib.power_breakdown(1e6).wakeup_latency_cycles > 0

    def test_no_databases_rejected(self):
        lib = make_library()
        with pytest.raises(ConfigurationError):
            lib.power_breakdown(1e6)
