"""Differential tests: ``search_batch`` must be bit-identical to ``search``.

The batch engine is an optimization, not a second model — every test here
drives the same store through the scalar path and the batch path and
asserts exact equality of the result lists *and* of the ``SearchStats``
accounting (lookups, hits, bucket accesses, match passes, access
histogram), which is what keeps AMAL trustworthy.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cam.tcam import TCAM
from repro.core.config import Arrangement, SliceConfig
from repro.core.index import IndexGenerator
from repro.core.key import TernaryKey
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.core.stats import SearchStats
from repro.core.subsystem import CARAMSubsystem, SliceGroup
from repro.errors import ConfigurationError, KeyFormatError
from repro.hashing.base import ModuloHash
from repro.hashing.bit_select import BitSelectHash

KEY_BITS = 16


def snapshot(stats: SearchStats) -> SearchStats:
    copy = SearchStats()
    copy.merge(stats)
    return copy


def assert_differential(store, queries, search_mask=0, check_fetches=False):
    """Scalar and batch lookups over the same store must agree exactly."""
    store.stats.reset()
    if check_fetches:
        store.physical_row_fetches = 0
    scalar = [store.search(q, search_mask) for q in queries]
    scalar_stats = snapshot(store.stats)
    scalar_fetches = store.physical_row_fetches if check_fetches else None

    store.stats.reset()
    if check_fetches:
        store.physical_row_fetches = 0
    batch = store.search_batch(queries, search_mask)
    assert batch == scalar
    assert store.stats == scalar_stats
    if check_fetches:
        assert store.physical_row_fetches == scalar_fetches
    return scalar


def make_slice(
    index_bits=4,
    slots=4,
    match_processors=None,
    ternary=False,
    bit_select=True,
    **slice_kwargs,
):
    fmt = RecordFormat(key_bits=KEY_BITS, data_bits=8, ternary=ternary)
    aux_bits = 8
    config = SliceConfig(
        index_bits=index_bits,
        row_bits=aux_bits + slots * fmt.slot_bits,
        record_format=fmt,
        aux_bits=aux_bits,
        match_processors=match_processors,
    )
    if bit_select:
        hash_function = BitSelectHash(
            KEY_BITS, tuple(range(KEY_BITS - index_bits, KEY_BITS))
        )
    else:
        hash_function = ModuloHash(config.rows)
    return CARAMSlice(
        config, IndexGenerator(hash_function, config.rows), **slice_kwargs
    )


def mixed_queries(rng, stored_keys, count):
    """Half stored keys (hits), half random (mostly misses), shuffled."""
    queries = [rng.choice(stored_keys) for _ in range(count // 2)]
    queries += [rng.randrange(1 << KEY_BITS) for _ in range(count - len(queries))]
    rng.shuffle(queries)
    return queries


class TestSliceDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("processors", [None, 1, 3])
    def test_binary_with_spills(self, seed, processors):
        """Dense load on a modulo-hashed slice: many probe extensions."""
        rng = random.Random(seed)
        slice_ = make_slice(
            index_bits=3, slots=2, match_processors=processors, bit_select=False
        )
        stored = []
        for _ in range(14):  # 14 of 16 capacity: heavy spilling
            key = rng.randrange(1 << KEY_BITS)
            slice_.insert(key, key & 0xFF)
            stored.append(key)
        assert any(slice_.memory.peek_row(r) for r in range(8))
        results = assert_differential(
            slice_, mixed_queries(rng, stored, 300)
        )
        assert any(r.hit for r in results)
        assert any(r.bucket_accesses > 1 for r in results)

    @pytest.mark.parametrize("seed", [10, 11])
    def test_ternary_records_and_queries(self, seed):
        """Ternary stores/queries, with don't-cares in and out of hash bits."""
        rng = random.Random(seed)
        slice_ = make_slice(index_bits=4, slots=4, ternary=True)
        hash_mask = slice_.index_generator.hash_function.position_mask
        in_hash = hash_mask & -hash_mask  # one bit the hash consumes
        out_of_hash = (0b11 << 6) & ~hash_mask
        assert in_hash and out_of_hash
        stored = []
        for _ in range(28):
            value = rng.randrange(1 << KEY_BITS)
            choice = rng.random()
            if choice < 0.3:
                key = value  # binary record
            elif choice < 0.6:
                # don't-cares outside the hash bits: stays single-home
                key = TernaryKey(value=value, mask=out_of_hash, width=KEY_BITS)
            else:
                # a don't-care inside the hash bits: duplicated rows
                key = TernaryKey(value=value, mask=in_hash, width=KEY_BITS)
            try:
                slice_.insert(key, rng.randrange(256))
                stored.append(key)
            except Exception:
                pass
        queries = []
        for _ in range(200):
            choice = rng.random()
            value = rng.randrange(1 << KEY_BITS)
            if choice < 0.4:
                queries.append(value)
            elif choice < 0.7:
                queries.append(
                    TernaryKey(value=value, mask=out_of_hash, width=KEY_BITS)
                )
            else:
                # don't-care over a hash bit: forces the multi-row path
                queries.append(
                    TernaryKey(value=value, mask=in_hash, width=KEY_BITS)
                )
        queries += stored[:10]
        assert_differential(slice_, queries)

    def test_uniform_search_mask(self):
        rng = random.Random(5)
        slice_ = make_slice(index_bits=4, slots=4)
        hash_mask = slice_.index_generator.hash_function.position_mask
        stored = [rng.randrange(1 << KEY_BITS) for _ in range(30)]
        for key in stored:
            slice_.insert(key, 1)
        # Mask clear of the hash bits: stays vectorized.
        assert_differential(
            slice_,
            mixed_queries(rng, stored, 100),
            search_mask=(0b11 << 6) & ~hash_mask,
        )
        # Mask overlapping the hash bits: every key takes the scalar path.
        assert_differential(
            slice_,
            mixed_queries(rng, stored, 50),
            search_mask=hash_mask & -hash_mask,
        )

    def test_empty_batch(self):
        slice_ = make_slice()
        assert slice_.search_batch([]) == []
        assert slice_.stats.lookups == 0

    def test_key_out_of_range_rejected(self):
        slice_ = make_slice()
        with pytest.raises(KeyFormatError):
            slice_.search_batch([0, 1 << KEY_BITS])
        with pytest.raises(KeyFormatError):
            slice_.search_batch([0], search_mask=1 << KEY_BITS)
        with pytest.raises(KeyFormatError):
            slice_.search_batch([TernaryKey(value=0, mask=0, width=KEY_BITS - 1)])

    def test_shared_miss_results_are_equal_values(self):
        """Plain misses may share one SearchResult instance — by value they
        must still equal the scalar miss result."""
        slice_ = make_slice()
        results = slice_.search_batch([1, 2, 3])
        assert all(not r.hit and r.bucket_accesses == 1 for r in results)
        assert results[0] == replace(results[1])


class TestMirrorInvalidation:
    def test_interleaved_inserts_deletes_and_batches(self):
        """The mirror must track every mutation between batch calls."""
        rng = random.Random(21)
        slice_ = make_slice(index_bits=4, slots=4)
        live = []
        for round_no in range(6):
            for _ in range(8):
                key = rng.randrange(1 << KEY_BITS)
                try:
                    slice_.insert(key, key & 0xFF)
                    live.append(key)
                except Exception:
                    pass
            for _ in range(min(3, len(live) - 1)):
                victim = live.pop(rng.randrange(len(live)))
                try:
                    slice_.delete(victim)
                except Exception:
                    pass
            queries = mixed_queries(rng, live, 60)
            assert_differential(slice_, queries)

    def test_ram_mode_writes_are_visible_to_batches(self):
        slice_ = make_slice(index_bits=3, slots=2, bit_select=False)
        slice_.insert(0x1234, 7)
        assert slice_.search_batch([0x1234])[0].hit
        home = slice_.index_generator.index(0x1234)
        slice_.ram_write(home, 0)
        assert slice_.record_count == 0
        assert not slice_.search_batch([0x1234])[0].hit

    def test_incremental_sync_decodes_only_dirty_rows(self):
        slice_ = make_slice(index_bits=4, slots=4)
        for key in range(0, 3000, 100):
            slice_.insert(key, 1)
        slice_.search_batch(list(range(50)))
        mirror = slice_._synced_mirror()
        decoded_after_build = mirror.rows_decoded
        slice_.search_batch(list(range(50)))
        assert mirror.rows_decoded == decoded_after_build  # nothing dirty
        slice_.insert(0x4242, 9)
        slice_.search_batch([0x4242])
        # Only the touched row(s) re-decoded, not the whole array.
        assert 0 < mirror.rows_decoded - decoded_after_build < slice_.config.rows


def make_group(arrangement, slice_count=2, match_processors=3, **group_kwargs):
    fmt = RecordFormat(key_bits=KEY_BITS, data_bits=8)
    config = SliceConfig(
        index_bits=4,
        row_bits=8 + 3 * fmt.slot_bits,
        record_format=fmt,
        aux_bits=8,
        match_processors=match_processors,
    )
    buckets = (
        config.rows * slice_count
        if arrangement is Arrangement.VERTICAL
        else config.rows
    )
    return SliceGroup(
        config=config,
        slice_count=slice_count,
        arrangement=arrangement,
        hash_function=ModuloHash(buckets),
        name="batch-test",
        **group_kwargs,
    )


class TestGroupDifferential:
    @pytest.mark.parametrize(
        "arrangement", [Arrangement.VERTICAL, Arrangement.HORIZONTAL]
    )
    @pytest.mark.parametrize("seed", [31, 32])
    def test_group_matches_scalar(self, arrangement, seed):
        rng = random.Random(seed)
        group = make_group(arrangement)
        stored = []
        target = int(group.capacity_records * 0.85)
        while len(stored) < target:
            key = rng.randrange(1 << KEY_BITS)
            try:
                group.insert(key, key & 0xFF)
                stored.append(key)
            except Exception:
                break
        results = assert_differential(
            group, mixed_queries(rng, stored, 400), check_fetches=True
        )
        assert any(r.hit for r in results)

    def test_group_probe_extension(self):
        """Force spills so batch lookups exercise the probe fallback."""
        group = make_group(Arrangement.HORIZONTAL)
        bucket_capacity = group.slots_per_bucket
        # All keys hash to bucket 3 -> guaranteed overflow chains.
        keys = [3 + 16 * i for i in range(bucket_capacity + 4)]
        for key in keys:
            group.insert(key, 1)
        queries = keys + [3 + 16 * 99, 7]
        results = assert_differential(group, queries, check_fetches=True)
        assert any(r.bucket_accesses > 1 for r in results)


def fill_to(store, rng, load_factor):
    """Insert random keys until the store reaches the target load factor."""
    stored = []
    capacity = getattr(store, "capacity_records", None)
    if capacity is None:
        capacity = store.config.capacity_records
    target = int(capacity * load_factor)
    while len(stored) < target:
        key = rng.randrange(1 << KEY_BITS)
        try:
            store.insert(key, key & 0xFF)
            stored.append(key)
        except Exception:
            break
    return stored


class TestProbeWalkVectorized:
    @pytest.mark.parametrize("processors", [None, 2])
    def test_high_load_walk_never_goes_scalar(self, processors):
        """At alpha=0.9 with uniform misses, every binary key resolves in
        the vectorized walk — zero scalar fallbacks."""
        rng = random.Random(77)
        slice_ = make_slice(
            index_bits=3, slots=4, match_processors=processors,
            bit_select=False,
        )
        stored = fill_to(slice_, rng, 0.9)
        assert slice_.load_factor >= 0.85
        results = assert_differential(slice_, mixed_queries(rng, stored, 400))
        engine = slice_.batch_engine
        assert engine.scalar_fallbacks == 0
        assert engine.probe_walk_keys > 0
        assert any(r.bucket_accesses > 1 for r in results)

    @pytest.mark.parametrize(
        "arrangement", [Arrangement.VERTICAL, Arrangement.HORIZONTAL]
    )
    def test_group_walk_never_goes_scalar(self, arrangement):
        rng = random.Random(78)
        group = make_group(arrangement)
        stored = fill_to(group, rng, 0.9)
        assert_differential(
            group, mixed_queries(rng, stored, 400), check_fetches=True
        )
        assert group.batch_engine.scalar_fallbacks == 0
        assert group.batch_engine.probe_walk_keys > 0

    def test_only_multi_home_keys_fall_back(self):
        """Ternary queries masked over hash bits are the one scalar case."""
        rng = random.Random(79)
        slice_ = make_slice(index_bits=4, slots=4, ternary=True)
        hash_mask = slice_.index_generator.hash_function.position_mask
        stored = fill_to(slice_, rng, 0.5)
        in_hash = hash_mask & -hash_mask
        queries = mixed_queries(rng, stored, 60)
        multi = [
            TernaryKey(value=rng.randrange(1 << KEY_BITS), mask=in_hash,
                       width=KEY_BITS)
            for _ in range(5)
        ]
        assert_differential(slice_, queries + multi)
        assert slice_.batch_engine.scalar_fallbacks == len(multi)


class TestAccountReads:
    def test_slice_read_counter_parity(self):
        rng = random.Random(91)
        slice_ = make_slice(
            index_bits=3, slots=2, bit_select=False, account_reads=True
        )
        stored = fill_to(slice_, rng, 0.9)
        queries = mixed_queries(rng, stored, 200)

        slice_.stats.reset()
        slice_.memory.stats.reset()
        scalar = [slice_.search(q) for q in queries]
        scalar_reads = slice_.memory.stats.reads

        slice_.stats.reset()
        slice_.memory.stats.reset()
        batch = slice_.search_batch(queries)
        assert batch == scalar
        assert slice_.memory.stats.reads == scalar_reads

    def test_slice_mirror_reads_uncounted_by_default(self):
        slice_ = make_slice(index_bits=3, slots=2, bit_select=False)
        slice_.insert(5, 1)
        slice_.memory.stats.reset()
        slice_.search_batch([5, 6])
        assert slice_.memory.stats.reads == 0

    @pytest.mark.parametrize(
        "arrangement", [Arrangement.VERTICAL, Arrangement.HORIZONTAL]
    )
    def test_group_read_counter_parity(self, arrangement):
        rng = random.Random(92)
        group = make_group(arrangement, account_reads=True)
        stored = fill_to(group, rng, 0.9)
        queries = mixed_queries(rng, stored, 300)

        group.stats.reset()
        for array in group._arrays:
            array.stats.reset()
        scalar = [group.search(q) for q in queries]
        scalar_reads = [array.stats.reads for array in group._arrays]

        group.stats.reset()
        for array in group._arrays:
            array.stats.reset()
        batch = group.search_batch(queries)
        assert batch == scalar
        assert [a.stats.reads for a in group._arrays] == scalar_reads


class TestChunkSize:
    def test_small_chunks_differential(self):
        """A chunk size forcing many chunks must not change anything."""
        rng = random.Random(93)
        slice_ = make_slice(
            index_bits=3, slots=2, bit_select=False, batch_chunk_size=16
        )
        stored = fill_to(slice_, rng, 0.9)
        slice_.search_batch([stored[0]])
        assert slice_.batch_engine.chunk_size == 16
        assert_differential(slice_, mixed_queries(rng, stored, 200))

    def test_default_chunk_scales_with_row_width(self):
        from repro.core.batch import (
            DEFAULT_CHUNK_SIZE,
            MIN_CHUNK_SIZE,
            default_chunk_size,
        )

        # Narrow geometries keep the legacy chunk size.
        assert default_chunk_size(4, 1) == DEFAULT_CHUNK_SIZE
        # The trigram study's horizontal bucket: 384 slots x 2 words.
        wide = default_chunk_size(384, 2)
        assert MIN_CHUNK_SIZE <= wide < DEFAULT_CHUNK_SIZE
        # Degenerate widths clamp at the floor.
        assert default_chunk_size(1 << 20, 4) == MIN_CHUNK_SIZE

    def test_bitplane_chunk_accounts_for_planes(self):
        from repro.core.batch import (
            DEFAULT_CHUNK_SIZE,
            MIN_CHUNK_SIZE,
            default_chunk_size,
        )

        # Narrow geometry: 16 planes x 1 lane is cheaper than 4 slots x 1
        # word, so the legacy default survives.
        assert (
            default_chunk_size(4, 1, engine="bitplane", key_bits=16)
            == DEFAULT_CHUNK_SIZE
        )
        # Wide ternary bucket: 2*128 planes x 6 lanes per key dwarfs the
        # word footprint, so the bit-plane chunk shrinks further.
        word = default_chunk_size(384, 2)
        plane = default_chunk_size(
            384, 2, engine="bitplane", key_bits=128, ternary=True
        )
        assert MIN_CHUNK_SIZE <= plane < word


class TestSubsystemBatch:
    def test_overflow_store_consulted_on_misses(self):
        sub = CARAMSubsystem()
        group = make_group(Arrangement.VERTICAL)
        sub.add_group(group)
        sub.attach_overflow("batch-test", TCAM(64, KEY_BITS))
        # Fill one bucket through the subsystem so overflow diverts.
        keys = [5 + 32 * i for i in range(group.slots_per_bucket + 3)]
        for key in keys:
            sub.insert("batch-test", key, key & 0xFF)

        scalar = [sub.search("batch-test", k) for k in keys + [9999]]
        group.stats.reset()
        batch = sub.search_batch("batch-test", keys + [9999])
        assert batch == scalar
        # Every stored key hits (some via the TCAM), each at one access.
        assert all(r.hit and r.bucket_accesses == 1 for r in batch[:-1])
        assert not batch[-1].hit

    def test_no_overflow_store_passthrough(self):
        sub = CARAMSubsystem()
        group = make_group(Arrangement.HORIZONTAL)
        sub.add_group(group)
        group.insert(77, 1)
        results = sub.search_batch("batch-test", [77, 78])
        assert results[0].hit and not results[1].hit


class TestBitPlaneEngine:
    """The bit-plane backend must be a pure layout change: bit-identical
    results and SearchStats versus both the scalar path and the word
    engine, on every workload shape the word engine is tested on."""

    @pytest.mark.parametrize("processors", [None, 1, 3])
    def test_slice_spills_differential(self, processors):
        rng = random.Random(41)
        slice_ = make_slice(
            index_bits=3,
            slots=2,
            match_processors=processors,
            bit_select=False,
            engine="bitplane",
        )
        stored = fill_to(slice_, rng, 0.85)
        results = assert_differential(slice_, mixed_queries(rng, stored, 300))
        assert any(r.hit for r in results)
        assert any(r.bucket_accesses > 1 for r in results)
        assert slice_.batch_engine.engine == "bitplane"

    def test_ternary_differential(self):
        rng = random.Random(42)
        slice_ = make_slice(index_bits=4, slots=4, ternary=True, engine="bitplane")
        hash_mask = slice_.index_generator.hash_function.position_mask
        in_hash = hash_mask & -hash_mask
        out_of_hash = (0b11 << 6) & ~hash_mask
        stored = []
        for _ in range(28):
            value = rng.randrange(1 << KEY_BITS)
            choice = rng.random()
            if choice < 0.4:
                key = value
            else:
                mask = out_of_hash if choice < 0.7 else in_hash
                key = TernaryKey(value=value, mask=mask, width=KEY_BITS)
            try:
                slice_.insert(key, rng.randrange(256))
                stored.append(key)
            except Exception:
                pass
        queries = mixed_queries(rng, [getattr(k, "value", k) for k in stored], 100)
        queries += [
            TernaryKey(
                value=rng.randrange(1 << KEY_BITS), mask=out_of_hash, width=KEY_BITS
            )
            for _ in range(20)
        ]
        assert_differential(slice_, queries)
        assert_differential(slice_, queries, search_mask=out_of_hash)

    @pytest.mark.parametrize(
        "arrangement", [Arrangement.VERTICAL, Arrangement.HORIZONTAL]
    )
    def test_group_differential(self, arrangement):
        rng = random.Random(43)
        group = make_group(arrangement, engine="bitplane")
        stored = fill_to(group, rng, 0.9)
        assert_differential(
            group, mixed_queries(rng, stored, 400), check_fetches=True
        )
        assert group.batch_engine.scalar_fallbacks == 0
        assert group.batch_engine.probe_walk_keys > 0

    def test_post_churn_resync_parity(self):
        """Interleaved mutations keep the planes coherent round after round."""
        rng = random.Random(44)
        slice_ = make_slice(index_bits=4, slots=4, engine="bitplane")
        live = []
        for _ in range(6):
            for _ in range(8):
                key = rng.randrange(1 << KEY_BITS)
                try:
                    slice_.insert(key, key & 0xFF)
                    live.append(key)
                except Exception:
                    pass
            for _ in range(min(3, len(live) - 1)):
                victim = live.pop(rng.randrange(len(live)))
                try:
                    slice_.delete(victim)
                except Exception:
                    pass
            assert_differential(slice_, mixed_queries(rng, live, 60))
        mirror = slice_._synced_mirror()
        assert mirror.plane_refreshes > 1  # incremental, not rebuilt once

    def test_engine_switch_midlife(self):
        rng = random.Random(45)
        slice_ = make_slice(index_bits=4, slots=4)
        stored = fill_to(slice_, rng, 0.7)
        queries = mixed_queries(rng, stored, 100)
        word_results = assert_differential(slice_, queries)
        assert slice_.engine == "word"
        slice_.engine = "bitplane"
        plane_results = assert_differential(slice_, queries)
        assert plane_results == word_results
        slice_.engine = "word"
        assert assert_differential(slice_, queries) == word_results

    def test_subsystem_set_engine(self):
        sub = CARAMSubsystem()
        group = make_group(Arrangement.VERTICAL)
        sub.add_group(group)
        keys = [5 + 32 * i for i in range(8)]
        for key in keys:
            sub.insert("batch-test", key, key & 0xFF)
        before = sub.search_batch("batch-test", keys + [9999])
        sub.set_engine("bitplane")
        assert group.engine == "bitplane"
        assert sub.search_batch("batch-test", keys + [9999]) == before
        sub.set_engine("word", group="batch-test")
        assert group.engine == "word"

    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            make_slice(engine="simd")
        slice_ = make_slice()
        with pytest.raises(ConfigurationError):
            slice_.engine = "simd"
        sub = CARAMSubsystem()
        with pytest.raises(ConfigurationError):
            sub.set_engine("simd")

    def test_reliability_overlay_parity(self):
        """Quarantine + victim overlay must behave identically under the
        bit-plane engine: batch == scalar, and bitplane == word."""
        from repro.reliability.faults import FaultConfig

        outcomes = {}
        for engine in ("word", "bitplane"):
            rng = random.Random(46)
            slice_ = make_slice(
                index_bits=3, slots=2, bit_select=False, engine=engine
            )
            stored = fill_to(slice_, rng, 0.6)
            slice_.search_batch(stored[:4])  # warm the mirror (last-good copy)
            target = slice_.index_generator.index(stored[0])
            slice_.enable_reliability(faults=FaultConfig(dead_rows=(target,)))
            queries = stored + mixed_queries(rng, stored, 80)
            scalar = [
                (r.hit, r.data if r.hit else None)
                for r in map(slice_.search, queries)
            ]
            batch = [
                (r.hit, r.data if r.hit else None)
                for r in slice_.search_batch(queries)
            ]
            assert batch == scalar
            assert target in slice_.reliability.quarantined_buckets
            outcomes[engine] = batch
        assert outcomes["bitplane"] == outcomes["word"]


def _ternary_or_binary(value, mask):
    return TernaryKey(value=value, mask=mask, width=KEY_BITS) if mask else value


class TestEngineEquivalenceProperty:
    """Hypothesis: under any interleaving of inserts, deletes, syncs, and
    batch searches, the word and bit-plane engines stay bit-identical to
    the scalar path and to each other — results and stats."""

    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("insert"),
                    st.integers(0, (1 << KEY_BITS) - 1),
                    st.sampled_from([0, 0b11 << 6, 1 << 12, 0b101]),
                ),
                st.tuples(st.just("delete"), st.integers(0, 1 << 20)),
                st.tuples(st.just("search"), st.integers(0, 1 << 20)),
            ),
            min_size=5,
            max_size=30,
        )
    )
    def test_random_interleavings(self, ops):
        stores = {
            engine: make_slice(
                index_bits=4, slots=4, ternary=True, engine=engine
            )
            for engine in ("word", "bitplane")
        }
        live = []
        for op in ops:
            if op[0] == "insert":
                _, value, mask = op
                key = _ternary_or_binary(value, mask)
                outcomes = set()
                for store in stores.values():
                    try:
                        store.insert(key, value & 0xFF)
                        outcomes.add(True)
                    except Exception as exc:
                        outcomes.add(type(exc).__name__)
                assert len(outcomes) == 1
                if outcomes == {True}:
                    live.append(key)
            elif op[0] == "delete":
                if not live:
                    continue
                victim = live.pop(op[1] % len(live))
                outcomes = set()
                for store in stores.values():
                    try:
                        store.delete(victim)
                        outcomes.add(True)
                    except Exception as exc:
                        outcomes.add(type(exc).__name__)
                assert len(outcomes) == 1
            else:
                rng = random.Random(op[1])
                values = [getattr(k, "value", k) for k in live] or [0]
                queries = mixed_queries(rng, values, 20)
                word = assert_differential(stores["word"], queries)
                plane = assert_differential(stores["bitplane"], queries)
                assert plane == word
                assert stores["word"].stats == stores["bitplane"].stats
        final = [getattr(k, "value", k) for k in live] or [1]
        word = assert_differential(stores["word"], final)
        plane = assert_differential(stores["bitplane"], final)
        assert plane == word
