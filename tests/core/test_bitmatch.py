"""Unit tests for the packed bit-plane match kernel."""

import numpy as np
import pytest

from repro.core.bitmatch import (
    SLOT_WORD_BITS,
    plane_match,
    priority_encode_packed,
)
from repro.core.match import priority_encode_batch
from repro.errors import ConfigurationError, KeyFormatError
from repro.memory.bitplane import pack_slot_axis


def unpack_words(words, slots):
    """Expand packed match words back to a (batch, slots) bool matrix."""
    batch, lanes = words.shape
    out = np.zeros((batch, slots), dtype=bool)
    for slot in range(slots):
        lane, bit = divmod(slot, SLOT_WORD_BITS)
        out[:, slot] = (words[:, lane] >> np.uint64(bit)) & np.uint64(1) == 1
    return out


def naive_plane_match(key_planes, valid_words, query_bits, mask_planes, query_mask_bits):
    """Slot-at-a-time reference for plane_match."""
    batch, planes, lanes = key_planes.shape
    slots = lanes * SLOT_WORD_BITS
    out = np.zeros((batch, lanes), dtype=np.uint64)
    for b in range(batch):
        for slot in range(slots):
            lane, bit = divmod(slot, SLOT_WORD_BITS)
            if not (valid_words[b, lane] >> np.uint64(bit)) & np.uint64(1):
                continue
            ok = True
            for plane in range(planes):
                stored = int(key_planes[b, plane, lane] >> np.uint64(bit)) & 1
                tm = (
                    int(mask_planes[b, plane, lane] >> np.uint64(bit)) & 1
                    if mask_planes is not None
                    else 0
                )
                qm = (
                    int(query_mask_bits[b, plane])
                    if query_mask_bits is not None
                    else 0
                )
                if not (tm or qm) and stored != int(query_bits[b, plane]):
                    ok = False
                    break
            if ok:
                out[b, lane] |= np.uint64(1 << bit)
    return out


class TestPlaneMatch:
    @pytest.mark.parametrize("with_masks", [False, True])
    @pytest.mark.parametrize("slots", [5, 64, 70])
    def test_matches_naive_reference(self, slots, with_masks):
        rng = np.random.default_rng(slots + with_masks)
        batch, planes = 12, 10
        key_bits = rng.random((batch, slots, planes)) < 0.5
        mask_bits = rng.random((batch, slots, planes)) < 0.2 if with_masks else None
        valid_bits = rng.random((batch, slots)) < 0.7
        key_planes = pack_slot_axis(np.swapaxes(key_bits, 1, 2))
        mask_planes = (
            pack_slot_axis(np.swapaxes(mask_bits, 1, 2)) if with_masks else None
        )
        valid_words = pack_slot_axis(valid_bits)
        query_bits = rng.random((batch, planes)) < 0.5
        query_mask_bits = (
            (rng.random((batch, planes)) < 0.2) if with_masks else None
        )
        got = plane_match(
            key_planes, valid_words, query_bits, mask_planes, query_mask_bits
        )
        want = naive_plane_match(
            key_planes, valid_words, query_bits, mask_planes, query_mask_bits
        )
        assert (got == want).all()

    def test_rejects_bad_shapes(self):
        planes = np.zeros((2, 4, 1), dtype=np.uint64)
        valid = np.zeros((2, 1), dtype=np.uint64)
        with pytest.raises(ConfigurationError):
            plane_match(planes[0], valid, np.zeros((2, 4), dtype=bool))
        with pytest.raises(ConfigurationError):
            plane_match(planes, valid, np.zeros((2, 3), dtype=bool))


class TestPriorityEncodePacked:
    @pytest.mark.parametrize("slots", [1, 5, 64, 70, 130])
    @pytest.mark.parametrize("processors", [None, 1, 3, 64])
    def test_equals_boolean_encoder(self, slots, processors):
        rng = np.random.default_rng(slots * 7 + (processors or 0))
        # Mix dense, sparse, and empty match vectors.
        match = rng.random((64, slots)) < rng.uniform(0.0, 0.6, (64, 1))
        match[:4] = False
        match[4] = True
        packed = pack_slot_axis(match)
        want = priority_encode_batch(match, processors)
        got = priority_encode_packed(packed, slots, processors)
        for w, g in zip(want, got):
            assert (w == g).all()

    def test_bit63_and_lane_boundaries(self):
        # Winners at word boundaries exercise the frexp/prefix-mask paths.
        slots = 130
        match = np.zeros((4, slots), dtype=bool)
        match[0, 63] = True
        match[1, 64] = True
        match[2, 127] = match[2, 128] = True
        match[3, 129] = True
        packed = pack_slot_axis(match)
        hit, slot, passes, multiple = priority_encode_packed(packed, slots)
        assert hit.all()
        assert list(slot) == [63, 64, 127, 129]
        assert list(multiple) == [False, False, True, False]
        want = priority_encode_batch(match, 2)
        got = priority_encode_packed(packed, slots, 2)
        for w, g in zip(want, got):
            assert (w == g).all()

    def test_rejects_nonpositive_processors(self):
        packed = np.zeros((1, 1), dtype=np.uint64)
        with pytest.raises(KeyFormatError):
            priority_encode_packed(packed, 4, 0)
        with pytest.raises(KeyFormatError):
            priority_encode_packed(packed, 4, -2)
