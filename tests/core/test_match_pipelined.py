"""Unit tests for pipelined matching (P < S configurations)."""

import pytest

from repro.core.config import SliceConfig
from repro.core.index import make_index_generator
from repro.core.key import TernaryKey
from repro.core.match import MatchProcessor
from repro.core.record import Record, RecordFormat
from repro.core.slice import CARAMSlice
from repro.errors import KeyFormatError
from repro.hashing.base import ModuloHash

FMT = RecordFormat(key_bits=8, data_bits=8)


def candidate(value, data=0, valid=True):
    return (valid, Record(key=TernaryKey.exact(value, 8), data=data))


class TestMatchPipelined:
    def test_single_pass_when_p_covers_slots(self):
        mp = MatchProcessor(8)
        candidates = [candidate(i) for i in range(4)]
        result, passes = mp.match_pipelined(candidates, 2, processors=8)
        assert passes == 1
        assert result.matched_slot == 2

    def test_none_means_full_parallel(self):
        mp = MatchProcessor(8)
        candidates = [candidate(i) for i in range(10)]
        _, passes = mp.match_pipelined(candidates, 9, processors=None)
        assert passes == 1

    def test_multiple_passes(self):
        mp = MatchProcessor(8)
        candidates = [candidate(i) for i in range(8)]
        result, passes = mp.match_pipelined(candidates, 7, processors=2)
        assert result.matched_slot == 7
        assert passes == 4

    def test_early_stop_on_match(self):
        mp = MatchProcessor(8)
        candidates = [candidate(i) for i in range(8)]
        result, passes = mp.match_pipelined(candidates, 1, processors=2)
        assert result.matched_slot == 1
        assert passes == 1  # found in the first chunk

    def test_priority_preserved_across_passes(self):
        mp = MatchProcessor(8)
        # Duplicate keys in different chunks: the lower slot must win.
        candidates = [candidate(9, data=1), candidate(0), candidate(9, data=2)]
        result, passes = mp.match_pipelined(candidates, 9, processors=1)
        assert result.matched_slot == 0
        assert result.record.data == 1
        assert passes == 1

    def test_miss_scans_all_passes(self):
        mp = MatchProcessor(8)
        candidates = [candidate(i) for i in range(6)]
        result, passes = mp.match_pipelined(candidates, 99, processors=2)
        assert not result.hit
        assert passes == 3

    def test_bad_processor_count(self):
        mp = MatchProcessor(8)
        with pytest.raises(KeyFormatError):
            mp.match_pipelined([candidate(0), candidate(1)], 0, processors=0)


class TestConfigMatchPasses:
    def make_config(self, processors):
        return SliceConfig(
            index_bits=3,
            row_bits=8 + 8 * FMT.slot_bits,
            record_format=FMT,
            slots_override=8,
            match_processors=processors,
        )

    def test_default_is_one_pass(self):
        config = self.make_config(None)
        assert config.match_processor_count == 8
        assert config.match_passes == 1

    def test_half_processors_two_passes(self):
        config = self.make_config(4)
        assert config.match_passes == 2

    def test_ceil_division(self):
        config = self.make_config(3)
        assert config.match_passes == 3

    def test_invalid_count(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            self.make_config(0)


class TestSliceWithFewProcessors:
    def make_slice(self, processors):
        config = SliceConfig(
            index_bits=3,
            row_bits=8 + 8 * FMT.slot_bits,
            record_format=FMT,
            slots_override=8,
            match_processors=processors,
        )
        return CARAMSlice(config, make_index_generator(ModuloHash(8)))

    def test_results_identical_to_full_parallel(self):
        full = self.make_slice(None)
        narrow = self.make_slice(2)
        for sl in (full, narrow):
            for k in range(40):
                sl.insert(k, data=k % 100)
        for k in range(40):
            assert full.search(k).data == narrow.search(k).data

    def test_pass_accounting(self):
        sl = self.make_slice(2)
        sl.insert(0, data=1)
        sl.search(99999 % 256)  # a miss scans all 4 chunks
        assert sl.stats.total_match_passes >= 4
        assert sl.stats.average_match_passes > 1.0

    def test_latency_includes_passes(self):
        narrow = self.make_slice(2)
        full = self.make_slice(None)
        narrow.insert(1, data=1)
        full.insert(1, data=1)
        narrow_result = narrow.search(1)
        full_result = full.search(1)
        assert narrow.search_latency_cycles(narrow_result) > (
            full.search_latency_cycles(full_result)
        )
