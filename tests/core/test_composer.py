"""Unit tests for mixed-arrangement database composition."""

import pytest

from repro.cam.tcam import TCAM
from repro.core.composer import (
    ComposedDatabase,
    OverflowKind,
    compose_database,
)
from repro.core.config import Arrangement, SliceConfig
from repro.core.record import RecordFormat
from repro.core.subsystem import CARAMSubsystem, SliceGroup
from repro.hashing.base import ModuloHash


def make_config(index_bits=4, slots=4):
    record_format = RecordFormat(key_bits=16, data_bits=8)
    return SliceConfig(
        index_bits=index_bits,
        row_bits=8 + slots * record_format.slot_bits,
        record_format=record_format,
        slots_override=slots,
    )


def compose(overflow=OverflowKind.NONE, slice_count=2, **kw):
    sub = CARAMSubsystem()
    config = make_config()
    composed = compose_database(
        sub,
        name="db",
        config=config,
        slice_count=slice_count,
        arrangement=Arrangement.VERTICAL,
        hash_function=ModuloHash(config.rows * slice_count),
        overflow=overflow,
        **kw,
    )
    return sub, composed


class TestComposition:
    def test_no_overflow(self):
        sub, composed = compose()
        assert composed.overflow is None
        assert composed.total_slices == 2
        assert composed.overflow_entry_count == 0
        assert sub.group("db") is composed.main

    def test_port_mapped(self):
        sub, composed = compose()
        sub.insert("db", 5, data=9)
        assert sub.search_port("db", 5).data == 9

    def test_tcam_overflow(self):
        sub, composed = compose(overflow=OverflowKind.TCAM, tcam_entries=64)
        assert isinstance(composed.overflow, TCAM)
        assert composed.total_slices == 2  # TCAM is not a pool slice

    def test_caram_slice_overflow(self):
        sub, composed = compose(overflow=OverflowKind.CA_RAM_SLICE)
        assert isinstance(composed.overflow, SliceGroup)
        assert composed.total_slices == 3  # "the remaining one set aside"


class TestOverflowBehavior:
    def overload_bucket(self, sub, composed):
        """Force more records into bucket 0 than its slots."""
        slots = composed.main.slots_per_bucket
        buckets = composed.main.bucket_count
        keys = [i * buckets for i in range(slots + 3)]
        for key in keys:
            sub.insert("db", key, data=key % 251)
        return keys

    def test_tcam_absorbs_spills_amal_one(self):
        sub, composed = compose(overflow=OverflowKind.TCAM, tcam_entries=64)
        keys = self.overload_bucket(sub, composed)
        assert composed.overflow_entry_count == 3
        for key in keys:
            result = sub.search("db", key)
            assert result.hit and result.data == key % 251
            assert result.bucket_accesses == 1

    def test_caram_slice_absorbs_spills(self):
        sub, composed = compose(overflow=OverflowKind.CA_RAM_SLICE)
        keys = self.overload_bucket(sub, composed)
        assert composed.overflow_entry_count == 3
        for key in keys:
            result = sub.search("db", key)
            assert result.hit and result.data == key % 251
            # Overflow slice is searched in parallel with the home bucket.
            assert result.bucket_accesses == 1

    def test_overflow_slice_shares_hash_locality(self):
        """Records in the overflow slice land at their home index there."""
        sub, composed = compose(overflow=OverflowKind.CA_RAM_SLICE)
        self.overload_bucket(sub, composed)
        overflow = composed.overflow
        rows = {bucket for bucket, _ in overflow.records()}
        # All spills share home bucket 0 of the main group; the overflow
        # hash maps them to row 0 of the overflow slice.
        assert rows == {0}
