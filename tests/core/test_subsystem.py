"""Unit tests for slice groups and the CA-RAM subsystem."""

import pytest

from repro.core.config import Arrangement, SliceConfig
from repro.core.record import RecordFormat
from repro.core.subsystem import CARAMSubsystem, SliceGroup
from repro.errors import CapacityError, ConfigurationError, LookupError_
from repro.cam.tcam import TCAM
from repro.hashing.base import ModuloHash


def make_config(index_bits=3, row_bits=128, key_bits=16, data_bits=8):
    return SliceConfig(
        index_bits=index_bits,
        row_bits=row_bits,
        record_format=RecordFormat(key_bits=key_bits, data_bits=data_bits),
    )


def make_group(slice_count=2, arrangement=Arrangement.VERTICAL, **kw):
    config = make_config()
    buckets = (
        config.rows * slice_count
        if arrangement is Arrangement.VERTICAL
        else config.rows
    )
    return SliceGroup(
        config=config,
        slice_count=slice_count,
        arrangement=arrangement,
        hash_function=ModuloHash(buckets),
        name=kw.pop("name", "test"),
        **kw,
    )


class TestGeometry:
    def test_vertical_more_rows(self):
        group = make_group(slice_count=3, arrangement=Arrangement.VERTICAL)
        assert group.bucket_count == 24
        assert group.slots_per_bucket == group.config.slots_per_bucket
        assert group.rows_fetched_per_access == 1

    def test_horizontal_wider_buckets(self):
        group = make_group(slice_count=3, arrangement=Arrangement.HORIZONTAL)
        assert group.bucket_count == 8
        assert group.slots_per_bucket == 3 * group.config.slots_per_bucket
        assert group.rows_fetched_per_access == 3

    def test_equal_capacity_both_arrangements(self):
        v = make_group(slice_count=2, arrangement=Arrangement.VERTICAL)
        h = make_group(slice_count=2, arrangement=Arrangement.HORIZONTAL)
        assert v.capacity_records == h.capacity_records

    def test_hash_function_must_match_buckets(self):
        config = make_config()
        with pytest.raises(ConfigurationError):
            SliceGroup(
                config, 2, Arrangement.VERTICAL, ModuloHash(config.rows)
            )


class TestOperations:
    @pytest.mark.parametrize(
        "arrangement", [Arrangement.VERTICAL, Arrangement.HORIZONTAL]
    )
    def test_round_trip(self, arrangement):
        group = make_group(arrangement=arrangement)
        for k in range(40):
            group.insert(k, data=k % 256)
        for k in range(40):
            assert group.lookup(k) == k % 256
        assert group.record_count == 40

    def test_horizontal_parallel_fetch_counts_one_access(self):
        group = make_group(slice_count=4, arrangement=Arrangement.HORIZONTAL)
        group.insert(5, data=1)
        result = group.search(5)
        assert result.bucket_accesses == 1
        # But four physical rows were fetched.
        assert group.physical_row_fetches == 4

    def test_vertical_routes_to_one_slice(self):
        group = make_group(slice_count=4, arrangement=Arrangement.VERTICAL)
        group.insert(5, data=1)
        group.search(5)
        # Only the owning slice's row is fetched (inserts peek, searches
        # count).
        assert group.physical_row_fetches == 1

    def test_spill_across_slice_boundary_vertical(self):
        group = make_group(slice_count=2, arrangement=Arrangement.VERTICAL)
        slots = group.slots_per_bucket
        # Fill bucket 7 (last of slice 0) so it spills into bucket 8
        # (first of slice 1).
        keys = [7 + 16 * i for i in range(slots + 1)]
        for k in keys:
            group.insert(k, data=k % 251)
        for k in keys:
            assert group.lookup(k) == k % 251

    def test_delete(self):
        group = make_group()
        group.insert(5, data=1)
        assert group.delete(5) == 1
        assert group.lookup(5) is None
        with pytest.raises(LookupError_):
            group.delete(5)

    def test_records_iterator(self):
        group = make_group()
        group.insert(1, data=1)
        group.insert(20, data=2)
        assert {r.key.value for _, r in group.records()} == {1, 20}

    def test_clear(self):
        group = make_group()
        group.insert(1)
        group.clear()
        assert group.record_count == 0
        assert group.physical_row_fetches == 0

    def test_insert_no_spill_raises_when_home_full(self):
        group = make_group()
        slots = group.slots_per_bucket
        for i in range(slots):
            group.insert(i * 16, data=0, allow_spill=False)
        with pytest.raises(CapacityError):
            group.insert(slots * 16, data=0, allow_spill=False)


class TestSlotPriority:
    def test_sorted_bucket(self):
        # Two records with the same key: the priority encoder must return
        # the higher-priority one (lower slot after sorted insert).
        group = make_group(slot_priority=lambda r: float(r.data))
        group.insert(0, data=1)
        group.insert(0, data=9)
        result = group.search(0)
        assert result.record.data == 9
        assert result.multiple_matches


class TestSubsystem:
    def test_group_registration(self):
        sub = CARAMSubsystem()
        group = sub.add_group(make_group(name="ip"))
        assert sub.group("ip") is group
        assert sub.group_names == ["ip"]
        with pytest.raises(ConfigurationError):
            sub.add_group(make_group(name="ip"))

    def test_unknown_group(self):
        sub = CARAMSubsystem()
        with pytest.raises(ConfigurationError):
            sub.group("nope")

    def test_ports(self):
        sub = CARAMSubsystem()
        sub.add_group(make_group(name="db"))
        sub.map_port("port0", "db")
        sub.insert("db", 3, data=7)
        assert sub.search_port("port0", 3).data == 7
        with pytest.raises(ConfigurationError):
            sub.search_port("portX", 3)

    def test_multiple_databases(self):
        sub = CARAMSubsystem()
        sub.add_group(make_group(name="a"))
        sub.add_group(make_group(name="b"))
        sub.insert("a", 1, data=10)
        sub.insert("b", 1, data=20)
        assert sub.search("a", 1).data == 10
        assert sub.search("b", 1).data == 20

    def test_total_stats(self):
        sub = CARAMSubsystem()
        sub.add_group(make_group(name="a"))
        sub.insert("a", 1, data=1)
        sub.search("a", 1)
        assert sub.total_stats().lookups == 1


class TestVictimOverflow:
    def make_subsystem(self):
        sub = CARAMSubsystem()
        sub.add_group(make_group(slice_count=1, name="db"))
        sub.attach_overflow("db", TCAM(64, 16))
        return sub

    def test_overflow_insert_diverts_to_tcam(self):
        sub = self.make_subsystem()
        group = sub.group("db")
        slots = group.slots_per_bucket
        keys = [i * 8 for i in range(slots + 3)]  # all hash to bucket 0
        for k in keys:
            sub.insert("db", k, data=k % 100)
        store = sub.overflow_store("db")
        assert store.entry_count == 3

    def test_amal_is_one_with_victim(self):
        # Section 4.3: "If this TCAM is accessed simultaneously with the
        # main CA-RAM, AMAL becomes 1."
        sub = self.make_subsystem()
        group = sub.group("db")
        slots = group.slots_per_bucket
        keys = [i * 8 for i in range(slots + 3)]
        for k in keys:
            sub.insert("db", k, data=k % 100)
        for k in keys:
            result = sub.search("db", k)
            assert result.hit
            assert result.data == k % 100
            assert result.bucket_accesses == 1

    def test_miss_with_victim(self):
        sub = self.make_subsystem()
        result = sub.search("db", 999)
        assert not result.hit
