"""Unit tests for search statistics."""

import pytest

from repro.core.stats import SearchStats
from repro.utils.rng import make_rng


class TestRecording:
    def test_amal(self):
        stats = SearchStats()
        stats.record_lookup(1, hit=True)
        stats.record_lookup(3, hit=True)
        assert stats.amal == pytest.approx(2.0)

    def test_hit_rate(self):
        stats = SearchStats()
        stats.record_lookup(1, hit=True)
        stats.record_lookup(1, hit=False)
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.misses == 1

    def test_histogram(self):
        stats = SearchStats()
        for accesses in (1, 1, 2):
            stats.record_lookup(accesses, hit=True)
        assert stats.access_histogram[1] == 2
        assert stats.access_histogram[2] == 1

    def test_insert_probes(self):
        stats = SearchStats()
        stats.record_insert(1)
        stats.record_insert(3)
        assert stats.average_insert_probes == pytest.approx(2.0)

    def test_empty_stats(self):
        stats = SearchStats()
        assert stats.amal == 0.0
        assert stats.hit_rate == 0.0
        assert stats.average_insert_probes == 0.0


class TestMergeReset:
    def test_merge(self):
        a = SearchStats()
        a.record_lookup(1, hit=True)
        b = SearchStats()
        b.record_lookup(3, hit=False)
        b.record_insert(2)
        a.merge(b)
        assert a.lookups == 2
        assert a.amal == pytest.approx(2.0)
        assert a.inserts == 1

    def test_reset(self):
        stats = SearchStats()
        stats.record_lookup(5, hit=True)
        stats.record_insert(1)
        stats.record_delete()
        stats.reset()
        assert stats.lookups == 0
        assert stats.deletes == 0
        assert not stats.access_histogram

    def test_merge_and_reset_cover_engine_counters(self):
        a = SearchStats()
        a.record_scalar_fallbacks(2)
        a.record_probe_walk(5)
        b = SearchStats()
        b.record_scalar_fallbacks(3)
        b.record_probe_walk(7)
        a.merge(b)
        assert a.scalar_fallbacks == 5
        assert a.probe_walk_keys == 12
        a.reset()
        assert a.scalar_fallbacks == 0
        assert a.probe_walk_keys == 0


class TestEngineCounters:
    """scalar_fallbacks / probe_walk_keys: accumulated, not compared."""

    def test_accumulation_ignores_non_positive(self):
        stats = SearchStats()
        stats.record_scalar_fallbacks(3)
        stats.record_scalar_fallbacks(0)
        stats.record_probe_walk(4)
        stats.record_probe_walk(-1)
        assert stats.scalar_fallbacks == 3
        assert stats.probe_walk_keys == 4

    def test_excluded_from_equality(self):
        scalar = SearchStats()
        batch = SearchStats()
        scalar.record_lookup(1, hit=True)
        batch.record_lookup(1, hit=True)
        batch.record_scalar_fallbacks(1)
        batch.record_probe_walk(9)
        # Scalar/batch differential parity is over lookup semantics; the
        # engine-path counters must not break it.
        assert scalar == batch

    def test_exported_in_as_dict(self):
        stats = SearchStats()
        stats.record_scalar_fallbacks(2)
        stats.record_probe_walk(6)
        exported = stats.as_dict()
        assert exported["scalar_fallbacks"] == 2
        assert exported["probe_walk_keys"] == 6


class TestLookupBatchVaried:
    def test_differential_vs_scalar_recording(self):
        rng = make_rng(7)
        accesses = [int(a) for a in rng.integers(1, 5, size=200)]
        hit_flags = [bool(h) for h in rng.integers(0, 2, size=200)]

        scalar = SearchStats()
        for a, h in zip(accesses, hit_flags):
            scalar.record_lookup(a, h)

        batched = SearchStats()
        batched.record_lookup_batch_varied(accesses, hit_flags)
        assert batched == scalar
        assert batched.access_histogram == scalar.access_histogram
        assert batched.amal == pytest.approx(scalar.amal)

    def test_hits_as_total_count(self):
        stats = SearchStats()
        stats.record_lookup_batch_varied([1, 2, 3], hits=2)
        assert stats.lookups == 3
        assert stats.hits == 2
        assert stats.total_bucket_accesses == 6

    def test_accepts_numpy_arrays(self):
        import numpy as np

        stats = SearchStats()
        stats.record_lookup_batch_varied(
            np.array([1, 1, 2]), np.array([True, False, True])
        )
        assert stats.lookups == 3
        assert stats.hits == 2
        assert stats.access_histogram == {1: 2, 2: 1}

    def test_empty_batch_is_noop(self):
        stats = SearchStats()
        stats.record_lookup_batch_varied([], hits=0)
        assert stats == SearchStats()

    def test_hit_count_out_of_range_rejected(self):
        stats = SearchStats()
        with pytest.raises(ValueError):
            stats.record_lookup_batch_varied([1, 1], hits=3)
        with pytest.raises(ValueError):
            stats.record_lookup_batch_varied([1, 1], hits=-1)

    def test_equivalent_to_uniform_batch(self):
        uniform = SearchStats()
        uniform.record_lookup_batch(4, hits=2, accesses_per_lookup=3)
        varied = SearchStats()
        varied.record_lookup_batch_varied([3, 3, 3, 3], hits=2)
        assert varied == uniform
