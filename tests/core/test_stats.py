"""Unit tests for search statistics."""

import pytest

from repro.core.stats import SearchStats


class TestRecording:
    def test_amal(self):
        stats = SearchStats()
        stats.record_lookup(1, hit=True)
        stats.record_lookup(3, hit=True)
        assert stats.amal == pytest.approx(2.0)

    def test_hit_rate(self):
        stats = SearchStats()
        stats.record_lookup(1, hit=True)
        stats.record_lookup(1, hit=False)
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.misses == 1

    def test_histogram(self):
        stats = SearchStats()
        for accesses in (1, 1, 2):
            stats.record_lookup(accesses, hit=True)
        assert stats.access_histogram[1] == 2
        assert stats.access_histogram[2] == 1

    def test_insert_probes(self):
        stats = SearchStats()
        stats.record_insert(1)
        stats.record_insert(3)
        assert stats.average_insert_probes == pytest.approx(2.0)

    def test_empty_stats(self):
        stats = SearchStats()
        assert stats.amal == 0.0
        assert stats.hit_rate == 0.0
        assert stats.average_insert_probes == 0.0


class TestMergeReset:
    def test_merge(self):
        a = SearchStats()
        a.record_lookup(1, hit=True)
        b = SearchStats()
        b.record_lookup(3, hit=False)
        b.record_insert(2)
        a.merge(b)
        assert a.lookups == 2
        assert a.amal == pytest.approx(2.0)
        assert a.inserts == 1

    def test_reset(self):
        stats = SearchStats()
        stats.record_lookup(5, hit=True)
        stats.record_insert(1)
        stats.record_delete()
        stats.reset()
        assert stats.lookups == 0
        assert stats.deletes == 0
        assert not stats.access_histogram
