"""Unit tests for the overflow probing policies."""

import pytest

from repro.core.probing import DoubleHashing, LinearProbing, QuadraticProbing
from repro.errors import ConfigurationError
from repro.hashing.base import ModuloHash


class TestLinearProbing:
    def test_sequence(self):
        policy = LinearProbing()
        assert [policy.probe(5, a, 8, None) for a in range(4)] == [5, 6, 7, 0]

    def test_attempt_zero_is_home(self):
        assert LinearProbing().probe(3, 0, 8, None) == 3

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearProbing().probe(0, -1, 8, None)


class TestDoubleHashing:
    def test_home_first(self):
        policy = DoubleHashing(ModuloHash(8))
        assert policy.probe(3, 0, 8, key=10) == 3

    def test_step_is_odd(self):
        policy = DoubleHashing(ModuloHash(8))
        # key=4 -> step hash 4, forced odd to 5.
        assert policy.probe(0, 1, 8, key=4) == 5
        assert policy.probe(0, 2, 8, key=4) == 2

    def test_covers_all_rows_power_of_two(self):
        policy = DoubleHashing(ModuloHash(16))
        for key in range(20):
            visited = {policy.probe(0, a, 16, key) for a in range(16)}
            assert visited == set(range(16))

    def test_different_keys_different_sequences(self):
        policy = DoubleHashing(ModuloHash(64))
        seq_a = [policy.probe(0, a, 64, key=1) for a in range(5)]
        seq_b = [policy.probe(0, a, 64, key=2) for a in range(5)]
        assert seq_a != seq_b


class TestQuadraticProbing:
    def test_triangular_offsets(self):
        policy = QuadraticProbing()
        assert [policy.probe(0, a, 16, None) for a in range(5)] == [0, 1, 3, 6, 10]

    def test_covers_all_rows_power_of_two(self):
        policy = QuadraticProbing()
        visited = {policy.probe(0, a, 16, None) for a in range(16)}
        assert visited == set(range(16))
