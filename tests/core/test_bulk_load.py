"""Property tests: ``bulk_load`` must equal sequential ``insert`` bit for bit.

The bulk-build pipeline is an optimization of the construction path, not a
second model: for any record set that sequential insertion can place, the
vectorized build must produce the *same memory image* (every row, including
reach fields), the same record counts, the same ``SearchStats``, and a
decoded mirror identical to one decoded fresh from the rows.  Hypothesis
drives random geometries, load factors up to 0.9, ternary keys (including
multi-home duplication), and sorted-bucket priorities through both a
:class:`CARAMSlice` and both :class:`SliceGroup` arrangements.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Arrangement, SliceConfig
from repro.core.index import IndexGenerator
from repro.core.key import TernaryKey
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.core.subsystem import SliceGroup
from repro.errors import CapacityError, ConfigurationError
from repro.hashing.base import ModuloHash
from repro.hashing.bit_select import BitSelectHash
from repro.memory.mirror import DecodedMirror

KEY_BITS = 16


def make_config(index_bits, slots, ternary, aux_bits=8):
    fmt = RecordFormat(key_bits=KEY_BITS, data_bits=8, ternary=ternary)
    return SliceConfig(
        index_bits=index_bits,
        row_bits=aux_bits + slots * fmt.slot_bits,
        record_format=fmt,
        aux_bits=aux_bits,
    )


def value_priority(record):
    """A deliberately tie-heavy priority so sorted buckets are exercised."""
    return float(record.key.value % 7)


def make_slice(index_bits, slots, ternary, bit_select, priority):
    config = make_config(index_bits, slots, ternary)
    if bit_select:
        hash_function = BitSelectHash(
            KEY_BITS, tuple(range(KEY_BITS - index_bits, KEY_BITS))
        )
    else:
        hash_function = ModuloHash(config.rows)
    return CARAMSlice(
        config,
        IndexGenerator(hash_function, config.rows),
        slot_priority=value_priority if priority else None,
    )


def make_pairs(rng, count, ternary, multi_home, hash_mask):
    """Random (key, data) pairs; ternary masks stay off the hash bits unless
    ``multi_home`` asks for duplicated copies."""
    pairs = []
    for _ in range(count):
        value = rng.randrange(1 << KEY_BITS)
        data = rng.randrange(256)
        if ternary and rng.random() < 0.5:
            if multi_home and rng.random() < 0.3:
                mask = hash_mask & -hash_mask  # one hash bit -> two homes
            else:
                mask = (0b11 << 6) & ~hash_mask
            pairs.append((TernaryKey(value=value, mask=mask, width=KEY_BITS), data))
        else:
            pairs.append((value, data))
    return pairs


def sequential_reference(store_factory, pairs):
    """Build the scalar reference; returns (store, error-or-None)."""
    store = store_factory()
    try:
        for key, data in pairs:
            store.insert(key, data)
    except CapacityError as exc:
        return store, exc
    return store, None


def array_snapshots(store):
    if isinstance(store, CARAMSlice):
        return [store.memory.snapshot()]
    return [array.snapshot() for array in store._arrays]


def assert_same_state(bulk, reference):
    assert array_snapshots(bulk) == array_snapshots(reference)
    assert bulk.record_count == reference.record_count
    assert bulk.stats == reference.stats


def assert_mirror_matches_rows(store):
    """The installed mirror must equal one decoded fresh from the rows."""
    if isinstance(store, CARAMSlice):
        arrays, layout = [store._memory], store._layout
        horizontal = False
    else:
        arrays, layout = store._arrays, store._layout
        horizontal = store.arrangement is Arrangement.HORIZONTAL
    installed = store._synced_mirror()
    fresh = DecodedMirror(arrays, layout, horizontal=horizontal)
    fresh.sync()
    assert np.array_equal(installed.valid, fresh.valid)
    assert np.array_equal(installed.key_words, fresh.key_words)
    assert np.array_equal(installed.mask_words, fresh.mask_words)
    assert np.array_equal(installed.reach, fresh.reach)
    for bucket, slot in np.argwhere(fresh.valid):
        assert installed.records[bucket, slot] == fresh.records[bucket, slot]


@st.composite
def slice_case(draw):
    index_bits = draw(st.integers(2, 5))
    slots = draw(st.integers(1, 4))
    ternary = draw(st.booleans())
    # Multi-home duplication needs bit-selection (other hashes reject
    # don't-cares over hash input); binary stores exercise both hashes.
    bit_select = draw(st.booleans()) if not ternary else True
    priority = draw(st.booleans())
    load = draw(st.floats(0.1, 0.9))
    multi_home = ternary and draw(st.booleans())
    seed = draw(st.integers(0, 1 << 20))
    return index_bits, slots, ternary, bit_select, priority, load, multi_home, seed


@given(slice_case())
@settings(max_examples=60, deadline=None)
def test_slice_bulk_load_equals_sequential_insert(case):
    index_bits, slots, ternary, bit_select, priority, load, multi_home, seed = case
    rng = random.Random(seed)
    factory = lambda: make_slice(index_bits, slots, ternary, bit_select, priority)
    capacity = (1 << index_bits) * slots
    pairs = make_pairs(
        rng,
        max(1, int(capacity * load)),
        ternary,
        multi_home,
        hash_mask=(
            factory().index_generator.hash_function.position_mask
            if bit_select
            else 0
        ),
    )
    reference, error = sequential_reference(factory, pairs)
    bulk = factory()
    if error is not None:
        before = array_snapshots(bulk)
        with pytest.raises(CapacityError):
            bulk.bulk_load(pairs)
        # All-or-nothing: the failed bulk load wrote nothing.
        assert array_snapshots(bulk) == before
        assert bulk.record_count == 0
        return
    copies = bulk.bulk_load(pairs)
    assert copies == reference.record_count
    assert_same_state(bulk, reference)
    assert_mirror_matches_rows(bulk)
    # The installed mirror serves lookups identically to the scalar store.
    queries = [rng.randrange(1 << KEY_BITS) for _ in range(40)]
    assert bulk.search_batch(queries) == [reference.search(q) for q in queries]


@st.composite
def group_case(draw):
    index_bits = draw(st.integers(2, 4))
    slots = draw(st.integers(1, 3))
    slice_count = draw(st.integers(1, 3))
    arrangement = draw(st.sampled_from([Arrangement.VERTICAL, Arrangement.HORIZONTAL]))
    priority = draw(st.booleans())
    load = draw(st.floats(0.1, 0.9))
    seed = draw(st.integers(0, 1 << 20))
    return index_bits, slots, slice_count, arrangement, priority, load, seed


@given(group_case())
@settings(max_examples=40, deadline=None)
def test_group_bulk_load_equals_sequential_insert(case):
    index_bits, slots, slice_count, arrangement, priority, load, seed = case
    rng = random.Random(seed)
    config = make_config(index_bits, slots, ternary=False)
    buckets = (
        config.rows * slice_count
        if arrangement is Arrangement.VERTICAL
        else config.rows
    )
    factory = lambda: SliceGroup(
        config=config,
        slice_count=slice_count,
        arrangement=arrangement,
        hash_function=ModuloHash(buckets),
        slot_priority=value_priority if priority else None,
        name="bulk-test",
    )
    capacity = factory().capacity_records
    pairs = make_pairs(
        rng, max(1, int(capacity * load)), ternary=False, multi_home=False,
        hash_mask=0,
    )
    reference, error = sequential_reference(factory, pairs)
    bulk = factory()
    if error is not None:
        with pytest.raises(CapacityError):
            bulk.bulk_load(pairs)
        assert bulk.record_count == 0
        return
    copies = bulk.bulk_load(pairs)
    assert copies == reference.record_count
    assert_same_state(bulk, reference)
    assert_mirror_matches_rows(bulk)
    queries = [rng.randrange(1 << KEY_BITS) for _ in range(40)]
    assert bulk.search_batch(queries) == [reference.search(q) for q in queries]


class TestBulkLoadTargeted:
    def test_multi_home_ternary_group(self):
        """Horizontal group + bit-selection + duplicated ternary copies."""
        rng = random.Random(4242)
        config = make_config(4, 3, ternary=True)
        hash_function = BitSelectHash(KEY_BITS, tuple(range(12, 16)))
        factory = lambda: SliceGroup(
            config=config,
            slice_count=2,
            arrangement=Arrangement.HORIZONTAL,
            hash_function=hash_function,
            slot_priority=value_priority,
            name="ternary-bulk",
        )
        pairs = make_pairs(
            rng, 40, ternary=True, multi_home=True,
            hash_mask=hash_function.position_mask,
        )
        reference, error = sequential_reference(factory, pairs)
        assert error is None
        bulk = factory()
        bulk.bulk_load(pairs)
        assert_same_state(bulk, reference)
        assert_mirror_matches_rows(bulk)
        # Duplicated copies mean more stored copies than input records.
        assert bulk.record_count > len(pairs)

    def test_non_empty_store_falls_back_to_sequential(self):
        factory = lambda: make_slice(3, 2, False, False, False)
        reference = factory()
        pairs = [(k, k & 0xFF) for k in range(10)]
        for key, data in pairs:
            reference.insert(key, data)
        staged = factory()
        staged.insert(*pairs[0])
        staged.bulk_load(pairs[1:])
        assert_same_state(staged, reference)

    def test_capacity_error_before_any_write(self):
        slice_ = make_slice(2, 1, False, False, False)
        # Far more records than the 4-bucket, 1-slot geometry can hold.
        with pytest.raises(CapacityError):
            slice_.bulk_load([(k, 0) for k in range(16)])
        assert slice_.record_count == 0
        assert all(v == 0 for v in slice_.memory.snapshot())

    def test_reach_limited_capacity_error_is_untouched(self):
        """Overflow past the reach limit (not raw capacity) must also leave
        the store untouched, where sequential insertion would fail midway."""
        config = make_config(2, 1, ternary=False, aux_bits=1)  # reach <= 1
        slice_ = CARAMSlice(config, IndexGenerator(ModuloHash(4), 4))
        # Three keys in bucket 0: the third needs displacement 2 > reach 1.
        with pytest.raises(CapacityError):
            slice_.bulk_load([(0, 0), (4, 0), (8, 0), (1, 0)])
        assert slice_.record_count == 0
        assert all(v == 0 for v in slice_.memory.snapshot())

    def test_empty_bulk_load_is_a_noop(self):
        slice_ = make_slice(3, 2, False, True, False)
        assert slice_.bulk_load([]) == 0
        assert slice_.record_count == 0
        assert slice_.stats.inserts == 0

    def test_group_dma_load_validates_images(self):
        config = make_config(3, 2, ternary=False)
        group = SliceGroup(
            config=config,
            slice_count=2,
            arrangement=Arrangement.VERTICAL,
            hash_function=ModuloHash(config.rows * 2),
            name="dma-test",
        )
        with pytest.raises(ConfigurationError):
            group.dma_load([[0] * config.rows])  # one image for two slices
        with pytest.raises(ConfigurationError):
            group.dma_load([[0] * 3, [0] * config.rows])  # short image
