"""Unit tests for slice configuration."""

import pytest

from repro.core.config import (
    Arrangement,
    PROTOTYPE_KEY_BYTES,
    SliceConfig,
    prototype_key_supported,
)
from repro.core.record import RecordFormat
from repro.errors import ConfigurationError


def make_config(**kw):
    defaults = dict(
        index_bits=8,
        row_bits=256,
        record_format=RecordFormat(key_bits=16, data_bits=8),
    )
    defaults.update(kw)
    return SliceConfig(**defaults)


class TestGeometry:
    def test_rows(self):
        assert make_config(index_bits=11).rows == 2048

    def test_slots_per_bucket(self):
        config = make_config()  # slot 25 bits, (256-8)//25 = 9
        assert config.slots_per_bucket == 9

    def test_capacity(self):
        config = make_config()
        assert config.capacity_records == 256 * 9
        assert config.capacity_bits == 256 * 256

    def test_load_factor(self):
        config = make_config()
        assert config.load_factor(config.capacity_records) == pytest.approx(1.0)

    def test_describe_mentions_geometry(self):
        text = make_config().describe()
        assert "2^8 rows" in text
        assert "16-bit" in text


class TestValidation:
    def test_bad_index_bits(self):
        with pytest.raises(ConfigurationError):
            make_config(index_bits=0)
        with pytest.raises(ConfigurationError):
            make_config(index_bits=32)

    def test_row_too_narrow(self):
        with pytest.raises(ConfigurationError):
            make_config(row_bits=16)


class TestTernaryToggle:
    def test_with_ternary_halves_slots(self):
        binary = make_config(row_bits=512)
        ternary = binary.with_ternary(True)
        assert ternary.record_format.ternary
        assert ternary.slots_per_bucket < binary.slots_per_bucket

    def test_round_trip(self):
        config = make_config()
        assert config.with_ternary(True).with_ternary(False) == config


class TestPrototypeKeySizes:
    def test_supported_sizes(self):
        # Section 3.3: "1, 2, 3, 4, 6, 8, 12, and 16 bytes".
        for size in PROTOTYPE_KEY_BYTES:
            assert prototype_key_supported(size * 8)

    def test_unsupported(self):
        assert not prototype_key_supported(5 * 8)
        assert not prototype_key_supported(12)  # not byte-aligned


class TestArrangement:
    def test_values(self):
        assert Arrangement.HORIZONTAL.value == "horizontal"
        assert Arrangement.VERTICAL.value == "vertical"
