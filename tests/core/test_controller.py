"""Unit tests for the input controller and throughput simulator."""

import pytest

from repro.core.config import Arrangement, SliceConfig
from repro.core.controller import InputController, ThroughputSimulator
from repro.core.record import RecordFormat
from repro.core.subsystem import CARAMSubsystem, SliceGroup
from repro.errors import ConfigurationError
from repro.hashing.base import ModuloHash
from repro.memory.timing import DRAM_TIMING, SRAM_TIMING


def make_subsystem():
    config = SliceConfig(
        index_bits=4, row_bits=128,
        record_format=RecordFormat(key_bits=16, data_bits=8),
    )
    sub = CARAMSubsystem()
    group = SliceGroup(
        config, 2, Arrangement.VERTICAL, ModuloHash(32), name="db"
    )
    sub.add_group(group)
    sub.map_port("p0", "db")
    return sub, group


def make_group(slice_count, arrangement=Arrangement.VERTICAL, timing=DRAM_TIMING):
    config = SliceConfig(
        index_bits=6, row_bits=128,
        record_format=RecordFormat(key_bits=16, data_bits=8),
        timing=timing,
    )
    buckets = (
        config.rows * slice_count
        if arrangement is Arrangement.VERTICAL
        else config.rows
    )
    return SliceGroup(
        config, slice_count, arrangement, ModuloHash(buckets), name="tp"
    )


class TestInputController:
    def test_submit_and_drain(self):
        sub, group = make_subsystem()
        sub.insert("db", 3, data=9)
        controller = InputController(sub)
        tag = controller.submit("p0", 3)
        assert controller.pending_requests == 1
        assert controller.drain() == 1
        response = controller.fetch_result()
        assert response.tag == tag
        assert response.result.data == 9
        assert controller.fetch_result() is None

    def test_fifo_order(self):
        sub, group = make_subsystem()
        sub.insert("db", 1, data=1)
        sub.insert("db", 2, data=2)
        controller = InputController(sub)
        t1 = controller.submit("p0", 1)
        t2 = controller.submit("p0", 2)
        controller.drain()
        assert controller.fetch_result().tag == t1
        assert controller.fetch_result().tag == t2

    def test_queue_depth_backpressure(self):
        sub, _ = make_subsystem()
        controller = InputController(sub, queue_depth=2)
        controller.submit("p0", 1)
        controller.submit("p0", 2)
        with pytest.raises(ConfigurationError):
            controller.submit("p0", 3)

    def test_step_idle(self):
        sub, _ = make_subsystem()
        assert InputController(sub).step() is False


class TestThroughputSimulator:
    def test_single_slice_bandwidth(self):
        # One DRAM slice, n_mem=6: 1 lookup per 6 cycles.
        group = make_group(1)
        sim = ThroughputSimulator(group)
        lookups = [(i % group.bucket_count, 1) for i in range(600)]
        report = sim.simulate(lookups)
        assert report.lookups_per_second == pytest.approx(
            DRAM_TIMING.clock_hz / 6, rel=0.05
        )

    def test_vertical_slices_scale_bandwidth(self):
        reports = {}
        for count in (1, 4):
            group = make_group(count)
            lookups = [(i % group.bucket_count, 1) for i in range(2000)]
            reports[count] = ThroughputSimulator(group).simulate(lookups)
        ratio = (
            reports[4].lookups_per_second / reports[1].lookups_per_second
        )
        assert ratio == pytest.approx(4.0, rel=0.1)

    def test_horizontal_does_not_scale(self):
        # Horizontal fetches hold every slice: bandwidth stays 1/n_mem.
        group = make_group(4, arrangement=Arrangement.HORIZONTAL)
        lookups = [(i % group.bucket_count, 1) for i in range(600)]
        report = ThroughputSimulator(group).simulate(lookups)
        assert report.lookups_per_second == pytest.approx(
            DRAM_TIMING.clock_hz / 6, rel=0.05
        )

    def test_dispatch_port_caps_throughput(self):
        # With SRAM (n_mem=1) and many slices, the 1/cycle port is the cap.
        group = make_group(8, timing=SRAM_TIMING)
        lookups = [(i % group.bucket_count, 1) for i in range(2000)]
        report = ThroughputSimulator(group).simulate(lookups)
        assert report.lookups_per_cycle <= 1.0 + 1e-9
        assert report.lookups_per_cycle == pytest.approx(1.0, rel=0.05)

    def test_multi_access_lookups_cost_more(self):
        group = make_group(1)
        single = ThroughputSimulator(group).simulate([(0, 1)] * 100)
        double = ThroughputSimulator(group).simulate([(0, 2)] * 100)
        assert double.cycles > single.cycles

    def test_zero_accesses_rejected(self):
        group = make_group(1)
        with pytest.raises(ConfigurationError):
            ThroughputSimulator(group).simulate([(0, 0)])

    def test_utilization_bounds(self):
        group = make_group(2)
        report = ThroughputSimulator(group).simulate(
            [(i % group.bucket_count, 1) for i in range(500)]
        )
        assert 0.0 < report.utilization <= 1.0
