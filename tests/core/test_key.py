"""Unit tests for ternary keys."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.key import TernaryKey
from repro.errors import KeyFormatError


class TestConstruction:
    def test_exact(self):
        key = TernaryKey.exact(0b1010, 4)
        assert key.is_binary
        assert key.value == 0b1010

    def test_masked_value_normalized(self):
        # Bits under the mask are forced to zero.
        key = TernaryKey(value=0b1111, mask=0b0011, width=4)
        assert key.value == 0b1100

    def test_normalization_makes_equal_keys_equal(self):
        a = TernaryKey(value=0b1111, mask=0b0011, width=4)
        b = TernaryKey(value=0b1100, mask=0b0011, width=4)
        assert a == b

    def test_bad_width(self):
        with pytest.raises(KeyFormatError):
            TernaryKey(value=0, mask=0, width=0)

    def test_value_too_wide(self):
        with pytest.raises(KeyFormatError):
            TernaryKey(value=16, mask=0, width=4)

    def test_mask_too_wide(self):
        with pytest.raises(KeyFormatError):
            TernaryKey(value=0, mask=16, width=4)


class TestFromPrefix:
    def test_paper_example(self):
        # "110XX" matches "11000".."11011".
        key = TernaryKey.from_prefix(0b110, 3, 5)
        assert key.to_pattern() == "110XX"
        for value in (0b11000, 0b11001, 0b11010, 0b11011):
            assert key.matches(value, 5)
        assert not key.matches(0b10000, 5)

    def test_zero_length(self):
        key = TernaryKey.from_prefix(0, 0, 4)
        assert key.to_pattern() == "XXXX"
        assert key.matches(0b1111, 4)

    def test_full_length(self):
        key = TernaryKey.from_prefix(0b1010, 4, 4)
        assert key.is_binary

    def test_bad_length(self):
        with pytest.raises(KeyFormatError):
            TernaryKey.from_prefix(0, 5, 4)


class TestFromPattern:
    def test_round_trip(self):
        for pattern in ("101", "1X0", "XXXX", "0"):
            assert TernaryKey.from_pattern(pattern).to_pattern() == pattern

    def test_lowercase_x(self):
        assert TernaryKey.from_pattern("1x0").to_pattern() == "1X0"

    def test_bad_symbol(self):
        with pytest.raises(KeyFormatError):
            TernaryKey.from_pattern("102")


class TestMatching:
    def test_stored_dont_care(self):
        key = TernaryKey.from_pattern("1X1")
        assert key.matches(0b101, 3)
        assert key.matches(0b111, 3)
        assert not key.matches(0b001, 3)

    def test_search_mask(self):
        key = TernaryKey.from_pattern("101")
        # Search with the middle bit masked out.
        assert key.matches(0b111, 3, search_mask=0b010)
        assert not key.matches(0b111, 3)

    def test_width_mismatch(self):
        key = TernaryKey.exact(1, 3)
        with pytest.raises(KeyFormatError):
            key.matches(1, 4)

    def test_bit_accessor(self):
        key = TernaryKey.from_pattern("1X0")
        assert key.bit(0) == "1"
        assert key.bit(1) == "X"
        assert key.bit(2) == "0"


class TestOverlap:
    def test_overlapping_patterns(self):
        a = TernaryKey.from_pattern("1X0")
        b = TernaryKey.from_pattern("10X")
        assert a.overlaps(b)

    def test_disjoint_patterns(self):
        a = TernaryKey.from_pattern("1X0")
        b = TernaryKey.from_pattern("0XX")
        assert not a.overlaps(b)

    def test_width_mismatch(self):
        with pytest.raises(KeyFormatError):
            TernaryKey.exact(0, 3).overlaps(TernaryKey.exact(0, 4))


class TestExpansion:
    def test_dont_care_positions(self):
        key = TernaryKey.from_pattern("1X0X")
        assert key.dont_care_positions() == [1, 3]
        assert key.dont_care_count == 2

    def test_expand_positions(self):
        key = TernaryKey.from_pattern("1X0X")
        expanded = list(key.expand_positions([1]))
        assert len(expanded) == 2
        patterns = {k.to_pattern() for k in expanded}
        assert patterns == {"100X", "110X"}

    def test_expand_skips_concrete_positions(self):
        key = TernaryKey.from_pattern("1X0")
        expanded = list(key.expand_positions([0, 2]))  # both concrete
        assert len(expanded) == 1
        assert expanded[0] == key

    def test_expand_all(self):
        key = TernaryKey.from_pattern("XX")
        patterns = {k.to_pattern() for k in key.expand_positions([0, 1])}
        assert patterns == {"00", "01", "10", "11"}

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_expansions_cover_exactly_the_matches(self, value, mask):
        """Every concrete key matching the original is matched by exactly
        one expansion over all don't-care positions."""
        key = TernaryKey(value=value, mask=mask, width=8)
        expanded = list(key.expand_positions(range(8)))
        assert len(expanded) == 1 << key.dont_care_count
        for probe in range(256):
            matching = [e for e in expanded if e.matches(probe, 8)]
            if key.matches(probe, 8):
                assert len(matching) == 1
            else:
                assert not matching
