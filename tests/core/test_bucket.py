"""Unit tests for the bucket row layout."""

import pytest

from repro.core.bucket import BucketLayout
from repro.core.record import Record, RecordFormat
from repro.errors import ConfigurationError


def make_layout(row_bits=128, key_bits=16, data_bits=8, aux_bits=8, **kw):
    return BucketLayout(
        row_bits=row_bits,
        record_format=RecordFormat(key_bits=key_bits, data_bits=data_bits),
        aux_bits=aux_bits,
        **kw,
    )


def make_record(layout, key, data=0):
    return Record.make(key, data, layout.record_format)


class TestGeometry:
    def test_slots_per_bucket(self):
        layout = make_layout()  # slot = 25 bits, (128-8)//25 = 4
        assert layout.slots_per_bucket == 4

    def test_paper_floor_c_over_n(self):
        # No aux, no data, no valid-bit economy: floor(C / slot_bits).
        layout = BucketLayout(
            row_bits=12_288,
            record_format=RecordFormat(key_bits=128),
            aux_bits=0,
        )
        assert layout.slots_per_bucket == 12_288 // 129

    def test_slots_override(self):
        layout = make_layout(slots_override=2)
        assert layout.slots_per_bucket == 2

    def test_slots_override_too_large(self):
        with pytest.raises(ConfigurationError):
            make_layout(slots_override=10).slots_per_bucket

    def test_row_too_small(self):
        with pytest.raises(ConfigurationError):
            make_layout(row_bits=16)

    def test_max_reach(self):
        assert make_layout(aux_bits=8).max_reach == 255
        assert make_layout(aux_bits=0).max_reach == 0


class TestAuxField:
    def test_round_trip(self):
        layout = make_layout()
        row = layout.write_aux(0, 42)
        assert layout.read_aux(row) == 42

    def test_aux_does_not_clobber_slots(self):
        layout = make_layout()
        record = make_record(layout, 0xABCD, 0x12)
        row = layout.write_slot(0, 0, record)
        row = layout.write_aux(row, 7)
        valid, decoded = layout.read_slot(row, 0)
        assert valid and decoded == record
        assert layout.read_aux(row) == 7

    def test_reach_overflow_rejected(self):
        layout = make_layout(aux_bits=4)
        with pytest.raises(ConfigurationError):
            layout.write_aux(0, 16)

    def test_disabled_aux(self):
        layout = make_layout(aux_bits=0)
        assert layout.read_aux(123) == 0
        with pytest.raises(ConfigurationError):
            layout.write_aux(0, 1)


class TestSlots:
    def test_write_read_each_slot(self):
        layout = make_layout()
        row = 0
        records = [make_record(layout, 100 + i, i) for i in range(4)]
        for slot, record in enumerate(records):
            row = layout.write_slot(row, slot, record)
        for slot, record in enumerate(records):
            valid, decoded = layout.read_slot(row, slot)
            assert valid and decoded == record

    def test_clear_slot(self):
        layout = make_layout()
        row = layout.write_slot(0, 1, make_record(layout, 5))
        row = layout.write_slot(row, 1, None)
        valid, _ = layout.read_slot(row, 1)
        assert not valid

    def test_write_preserves_neighbors(self):
        layout = make_layout()
        a, b = make_record(layout, 1, 1), make_record(layout, 2, 2)
        row = layout.write_slot(0, 0, a)
        row = layout.write_slot(row, 1, b)
        row = layout.write_slot(row, 0, None)
        valid, decoded = layout.read_slot(row, 1)
        assert valid and decoded == b

    def test_slot_out_of_range(self):
        layout = make_layout()
        with pytest.raises(ConfigurationError):
            layout.read_slot(0, 4)


class TestHelpers:
    def test_find_free_slot(self):
        layout = make_layout()
        row = layout.write_slot(0, 0, make_record(layout, 1))
        assert layout.find_free_slot(row) == 1
        for slot in range(1, 4):
            row = layout.write_slot(row, slot, make_record(layout, slot + 1))
        assert layout.find_free_slot(row) is None

    def test_occupancy(self):
        layout = make_layout()
        row = layout.write_slot(0, 2, make_record(layout, 9))
        assert layout.occupancy(row) == 1

    def test_read_all(self):
        layout = make_layout()
        row = layout.write_slot(0, 1, make_record(layout, 3))
        slots = layout.read_all(row)
        assert len(slots) == 4
        assert [valid for valid, _ in slots] == [False, True, False, False]

    def test_pack(self):
        layout = make_layout()
        records = [make_record(layout, i + 1, i) for i in range(3)]
        row = layout.pack(records, reach=5)
        assert layout.read_aux(row) == 5
        assert layout.occupancy(row) == 3
        valid, decoded = layout.read_slot(row, 0)
        assert valid and decoded == records[0]
        valid, _ = layout.read_slot(row, 3)
        assert not valid

    def test_pack_too_many(self):
        layout = make_layout()
        records = [make_record(layout, i, 0) for i in range(5)]
        with pytest.raises(ConfigurationError):
            layout.pack(records)
