"""The typed error hierarchy and its CLI exit-code contract."""

import pytest

from repro.errors import (
    CaRamError,
    CapacityError,
    ConfigError,
    ConfigurationError,
    CorruptionError,
    KeyFormatError,
    LookupError_,
    RamModeError,
    ReliabilityError,
    ReproError,
)

EXPECTED_EXIT_CODES = {
    CaRamError: 1,
    ConfigurationError: 3,
    CapacityError: 4,
    KeyFormatError: 5,
    LookupError_: 6,
    RamModeError: 7,
    ReliabilityError: 8,
    CorruptionError: 9,
}


class TestHierarchy:
    def test_every_class_derives_from_base(self):
        for cls in EXPECTED_EXIT_CODES:
            assert issubclass(cls, CaRamError)

    def test_exit_codes_distinct_and_stable(self):
        for cls, code in EXPECTED_EXIT_CODES.items():
            assert cls.exit_code == code
        codes = [cls.exit_code for cls in EXPECTED_EXIT_CODES]
        assert len(set(codes)) == len(codes)
        assert 0 not in codes and 2 not in codes  # 0=ok, 2=argparse

    def test_value_error_compatibility(self):
        """Errors that replaced historical ``ValueError`` raises must stay
        catchable as ``ValueError``."""
        for cls in (ConfigurationError, KeyFormatError, RamModeError):
            assert issubclass(cls, ValueError)
            with pytest.raises(ValueError):
                raise cls("boom")
        assert not issubclass(CapacityError, ValueError)

    def test_aliases(self):
        assert ReproError is CaRamError
        assert ConfigError is ConfigurationError

    def test_corruption_error_carries_location(self):
        error = CorruptionError("bad row", array_index=2, row=17)
        assert error.array_index == 2
        assert error.row == 17
        assert isinstance(error, ReliabilityError)
        bare = CorruptionError("unknown site")
        assert bare.array_index is None and bare.row is None


class TestLibraryRaisesTypedErrors:
    def test_configuration_error_from_bad_config(self):
        from repro.core.config import SliceConfig
        from repro.core.record import RecordFormat

        with pytest.raises(ConfigurationError):
            SliceConfig(
                index_bits=0,
                row_bits=64,
                record_format=RecordFormat(key_bits=8, data_bits=4),
            )

    def test_key_format_error_from_oversized_key(self):
        from repro.memory.mirror import keys_to_words

        with pytest.raises(KeyFormatError):
            keys_to_words([1 << 16], 16)

    def test_ram_mode_error_from_bad_row(self):
        from repro.memory.array import MemoryArray

        with pytest.raises(RamModeError):
            MemoryArray(8, 32).read_row(99)


class TestCliExitCodes:
    def test_library_error_maps_to_class_exit_code(self, capsys):
        from repro.cli import main

        code = main(
            ["reliability", "soak", "--queries", "-5", "--rates", "1e-4"]
        )
        assert code == ConfigurationError.exit_code
        assert "error:" in capsys.readouterr().err

    def test_success_exits_zero(self, capsys):
        from repro.cli import main

        code = main(
            [
                "reliability",
                "soak",
                "--queries",
                "200",
                "--rates",
                "1e-4",
                "--workloads",
                "ip",
            ]
        )
        assert code == 0
