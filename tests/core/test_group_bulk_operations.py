"""Unit tests for SliceGroup bulk evaluation/modification and the handle
delegation."""

import pytest

from repro.api import CaRamLibrary
from repro.core.config import Arrangement, SliceConfig
from repro.core.record import RecordFormat
from repro.core.subsystem import SliceGroup
from repro.hashing.base import ModuloHash
from repro.utils.bits import mask_of


def make_group(arrangement=Arrangement.VERTICAL, slice_count=2):
    config = SliceConfig(
        index_bits=3, row_bits=128,
        record_format=RecordFormat(key_bits=16, data_bits=8),
    )
    buckets = (
        config.rows * slice_count
        if arrangement is Arrangement.VERTICAL
        else config.rows
    )
    return SliceGroup(
        config, slice_count, arrangement, ModuloHash(buckets), name="bulk"
    )


@pytest.mark.parametrize(
    "arrangement", [Arrangement.VERTICAL, Arrangement.HORIZONTAL]
)
class TestGroupBulkOps:
    def test_scan_everything(self, arrangement):
        group = make_group(arrangement)
        for k in range(30):
            group.insert(k, data=k)
        matches = group.scan()
        assert len(matches) == 30

    def test_scan_predicate(self, arrangement):
        group = make_group(arrangement)
        for k in range(30):
            group.insert(k, data=k)
        mask = mask_of(16) & ~0x7  # select low 3 bits == 0b101
        keys = sorted(
            record.key.value for _, record in group.scan(0x5, mask)
        )
        assert keys == [5, 13, 21, 29]

    def test_update_where(self, arrangement):
        group = make_group(arrangement)
        for k in range(30):
            group.insert(k, data=1)
        modified = group.update_where(0, mask_of(16), lambda r: 9)
        assert modified == 30
        assert all(group.lookup(k) == 9 for k in range(30))

    def test_update_preserves_spilled_records(self, arrangement):
        group = make_group(arrangement)
        slots = group.slots_per_bucket
        buckets = group.bucket_count
        keys = [i * buckets for i in range(slots + 2)]  # overload bucket 0
        for key in keys:
            group.insert(key, data=1)
        group.update_where(0, mask_of(16), lambda r: 3)
        for key in keys:
            assert group.lookup(key) == 3


class TestHandleDelegation:
    def test_scan_and_update_through_handle(self):
        lib = CaRamLibrary(slice_count=2, index_bits=4, row_bits=256)
        db = lib.allocate_database(
            "d", RecordFormat(key_bits=16, data_bits=8), slice_count=2
        )
        for k in range(20):
            db.insert(k * 3, data=0)
        assert len(db.scan()) == 20
        assert db.update_where(0, mask_of(16), lambda r: 4) == 20
        assert db.lookup(9) == 4
