"""Unit tests for massive data evaluation and modification (§1 / §3.2)."""

import pytest

from repro.core.config import SliceConfig
from repro.core.index import make_index_generator
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.hashing.base import ModuloHash
from repro.utils.bits import mask_of


def make_slice():
    record_format = RecordFormat(key_bits=16, data_bits=8)
    config = SliceConfig(
        index_bits=4,
        row_bits=8 + 8 * record_format.slot_bits,
        record_format=record_format,
        slots_override=8,
    )
    return CARAMSlice(config, make_index_generator(ModuloHash(16)))


@pytest.fixture
def populated():
    sl = make_slice()
    for k in range(60):
        sl.insert(k, data=k % 100)
    return sl


class TestScan:
    def test_scan_everything(self, populated):
        matches = populated.scan()
        assert len(matches) == 60
        keys = {record.key.value for _, _, record in matches}
        assert keys == set(range(60))

    def test_scan_count(self, populated):
        assert populated.scan_count() == 60

    def test_ternary_predicate(self, populated):
        # Select keys whose low 4 bits are 0b0011: 3, 19, 35, 51.
        mask = mask_of(16) & ~0xF  # care only about the low nibble
        matches = populated.scan(search_key=0x3, search_mask=mask)
        keys = sorted(record.key.value for _, _, record in matches)
        assert keys == [3, 19, 35, 51]

    def test_exact_predicate(self, populated):
        matches = populated.scan(search_key=42, search_mask=0)
        assert len(matches) == 1
        assert matches[0][2].data == 42

    def test_scan_costs_one_access_per_row(self, populated):
        before = populated.memory.stats.reads
        populated.scan()
        assert populated.memory.stats.reads - before == 16

    def test_empty_slice(self):
        assert make_slice().scan() == []


class TestUpdateWhere:
    def test_update_all(self, populated):
        full_mask = mask_of(16)
        modified = populated.update_where(0, full_mask, lambda r: 7)
        assert modified == 60
        for k in range(60):
            assert populated.lookup(k) == 7

    def test_update_subset(self, populated):
        mask = mask_of(16) & ~0xF
        modified = populated.update_where(0x3, mask, lambda r: 99)
        assert modified == 4
        assert populated.lookup(3) == 99
        assert populated.lookup(4) == 4 % 100  # untouched

    def test_transform_sees_old_record(self, populated):
        populated.update_where(
            0, mask_of(16), lambda record: (record.data + 1) % 256
        )
        for k in range(60):
            assert populated.lookup(k) == (k % 100 + 1) % 256

    def test_no_matches(self, populated):
        assert populated.update_where(0xFFFF, 0, lambda r: 1) == 0

    def test_keys_and_structure_preserved(self, populated):
        populated.update_where(0, mask_of(16), lambda r: 5)
        assert populated.record_count == 60
        assert populated.scan_count() == 60
