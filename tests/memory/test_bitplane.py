"""Unit tests for the bit-plane (transposed) mirror layout."""

import numpy as np
import pytest

from repro.core.bitmatch import plane_match_rows
from repro.core.bucket import BucketLayout
from repro.core.key import TernaryKey
from repro.core.record import Record, RecordFormat
from repro.memory.array import MemoryArray
from repro.memory.bitplane import BitPlaneMirror, pack_slot_axis
from repro.memory.mirror import DecodedMirror, keys_to_words, words_to_bits

FMT = RecordFormat(key_bits=16, data_bits=8, ternary=True)
LAYOUT = BucketLayout(row_bits=8 + 4 * FMT.slot_bits, record_format=FMT)
ROWS = 8


def make_array():
    return MemoryArray(ROWS, LAYOUT.row_bits)


def record(value, mask=0, data=0):
    return Record.make(
        TernaryKey(value=value, mask=mask, width=16) if mask else value,
        data,
        FMT,
    )


def reference_planes(mirror):
    """Brute-force transpose of the word matrices, slot-by-slot."""
    key_planes = np.zeros_like(mirror.key_planes)
    mask_planes = np.zeros_like(mirror.mask_planes)
    valid_words = np.zeros_like(mirror.valid_words)
    key_bits = mirror.key_bits
    for bucket in range(mirror.buckets):
        for slot in range(mirror.slots):
            lane, bit = divmod(slot, 64)
            if mirror.valid[bucket, slot]:
                valid_words[bucket, lane] |= np.uint64(1 << bit)
            rec = mirror.records[bucket, slot]
            value = rec.key.value if rec is not None else 0
            mask = rec.key.mask if rec is not None else 0
            if rec is None:
                value = mask = 0
            for plane in range(key_bits):
                # Plane 0 is the MSB (words_to_bits column order).
                weight = key_bits - 1 - plane
                if (value >> weight) & 1:
                    key_planes[bucket, plane, lane] |= np.uint64(1 << bit)
                if (mask >> weight) & 1:
                    mask_planes[bucket, plane, lane] |= np.uint64(1 << bit)
    return key_planes, mask_planes, valid_words


class TestPackSlotAxis:
    def test_bit_order_is_lsb_first(self):
        bits = np.zeros((1, 3), dtype=bool)
        bits[0, 0] = True  # slot 0 -> bit 0
        packed = pack_slot_axis(bits)
        assert packed.shape == (1, 1)
        assert int(packed[0, 0]) == 1

    def test_multi_lane_padding(self):
        bits = np.zeros((2, 70), dtype=bool)
        bits[0, 69] = True
        bits[1, 64] = True
        packed = pack_slot_axis(bits)
        assert packed.shape == (2, 2)
        assert int(packed[0, 1]) == 1 << 5
        assert int(packed[1, 1]) == 1

    def test_nd_input(self):
        bits = np.zeros((2, 3, 65), dtype=bool)
        bits[1, 2, 64] = True
        packed = pack_slot_axis(bits)
        assert packed.shape == (2, 3, 2)
        assert int(packed[1, 2, 1]) == 1


class TestPlaneCoherence:
    def test_planes_match_brute_force_transpose(self):
        array = make_array()
        array.write_row(
            1, LAYOUT.pack([record(0xAA, data=1), record(0xF0F0, mask=0xF)])
        )
        array.write_row(5, LAYOUT.pack([None, None, record(0x1234)]))
        mirror = BitPlaneMirror([array], LAYOUT)
        mirror.sync()
        key_ref, mask_ref, valid_ref = reference_planes(mirror)
        assert (mirror.key_planes == key_ref).all()
        assert (mirror.mask_planes == mask_ref).all()
        assert (mirror.valid_words == valid_ref).all()
        assert mirror.has_stored_masks

    def test_incremental_refresh_touches_only_dirty_buckets(self):
        array = make_array()
        for row in range(ROWS):
            array.write_row(row, LAYOUT.pack([record(row + 1)]))
        mirror = BitPlaneMirror([array], LAYOUT)
        mirror.sync()
        refreshes = mirror.plane_refreshes
        before = mirror.key_planes.copy()
        array.write_row(3, LAYOUT.pack([record(0x7777)]))
        assert mirror.sync() == 1
        assert mirror.plane_refreshes == refreshes + 1
        changed = np.flatnonzero(
            (mirror.key_planes != before).any(axis=(1, 2))
        )
        assert list(changed) == [3]
        key_ref, _, valid_ref = reference_planes(mirror)
        assert (mirror.key_planes == key_ref).all()
        assert (mirror.valid_words == valid_ref).all()

    def test_mask_planes_skipped_for_binary_content(self):
        array = make_array()
        array.write_row(0, LAYOUT.pack([record(0x42)]))
        mirror = BitPlaneMirror([array], LAYOUT)
        mirror.sync()
        assert not mirror.has_stored_masks
        assert not mirror.mask_planes.any()
        # First masked record flips the flag; planes stay coherent after.
        array.write_row(2, LAYOUT.pack([record(0b1010, mask=0b1)]))
        mirror.sync()
        assert mirror.has_stored_masks
        _, mask_ref, _ = reference_planes(mirror)
        assert (mirror.mask_planes == mask_ref).all()

    def test_install_refreshes_planes(self):
        array = make_array()
        array.write_row(4, LAYOUT.pack([record(0xBEEF, data=9)], reach=2))
        source = DecodedMirror([array], LAYOUT)
        source.sync()
        target = BitPlaneMirror([make_array()], LAYOUT)
        target.install(
            source.valid,
            source.key_words,
            source.mask_words,
            source.reach,
            source.records,
        )
        key_ref, _, valid_ref = reference_planes(target)
        assert (target.key_planes == key_ref).all()
        assert (target.valid_words == valid_ref).all()
        assert int(target.reach[4]) == 2

    def test_detach_stops_refreshes(self):
        array = make_array()
        mirror = BitPlaneMirror([array], LAYOUT)
        mirror.sync()
        mirror.detach()
        array.write_row(0, LAYOUT.pack([record(1)]))
        assert mirror.dirty_row_count == 0
        assert mirror.sync() == 0
        assert not mirror.valid[0, 0]


class TestPlaneMatchParity:
    @pytest.mark.parametrize(
        "key_bits,slots", [(16, 4), (128, 2), (32, 70)]
    )
    def test_matches_word_mirror(self, key_bits, slots):
        fmt = RecordFormat(key_bits=key_bits, data_bits=4, ternary=True)
        layout = BucketLayout(
            row_bits=8 + slots * fmt.slot_bits, record_format=fmt
        )
        array = MemoryArray(ROWS, layout.row_bits)
        rng = np.random.default_rng(17)
        top = min(key_bits, 60)
        for row in range(ROWS):
            records = []
            for _ in range(layout.slots_per_bucket):
                if rng.random() < 0.3:
                    records.append(None)
                    continue
                value = int(rng.integers(0, 1 << top))
                mask = (
                    int(rng.integers(0, 1 << top))
                    if rng.random() < 0.5
                    else 0
                )
                key = (
                    TernaryKey(value=value, mask=mask, width=key_bits)
                    if mask
                    else value
                )
                records.append(Record.make(key, int(rng.integers(0, 16)), fmt))
            array.write_row(row, layout.pack(records))
        word = DecodedMirror([array], layout)
        plane = BitPlaneMirror([array], layout)
        word.sync()
        plane.sync()
        batch = 120
        ids = rng.integers(0, ROWS, batch)
        values = [int(v) for v in rng.integers(0, 1 << top, batch)]
        masks = [
            int(m) if rng.random() < 0.5 else 0
            for m in rng.integers(0, 1 << top, batch)
        ]
        query_words = keys_to_words(values, key_bits)
        query_masks = keys_to_words(masks, key_bits)
        expected = word.match_rows(ids, query_words, query_masks)
        packed = plane_match_rows(
            plane,
            ids,
            words_to_bits(query_words, key_bits),
            words_to_bits(query_masks, key_bits),
        )
        got = np.zeros_like(expected)
        for lane in range(plane.lanes):
            for bit in range(64):
                slot = lane * 64 + bit
                if slot >= plane.slots:
                    break
                got[:, slot] = (packed[:, lane] >> np.uint64(bit)) & np.uint64(1)
        assert (expected == got).all()
