"""Unit tests for banked memory."""

import pytest

from repro.errors import ConfigurationError, RamModeError
from repro.memory.bank import BankedMemory


class TestGeometry:
    def test_bank_split(self):
        banked = BankedMemory(rows=16, row_bits=32, bank_count=4)
        assert banked.bank_count == 4
        assert all(b.rows == 4 for b in banked.banks)

    def test_uneven_split_rejected(self):
        with pytest.raises(ConfigurationError):
            BankedMemory(rows=10, row_bits=8, bank_count=4)

    def test_zero_banks_rejected(self):
        with pytest.raises(ConfigurationError):
            BankedMemory(rows=8, row_bits=8, bank_count=0)


class TestAddressing:
    def test_locate_block_partition(self):
        banked = BankedMemory(rows=16, row_bits=8, bank_count=4)
        assert banked.locate(0) == (0, 0)
        assert banked.locate(3) == (0, 3)
        assert banked.locate(4) == (1, 0)
        assert banked.locate(15) == (3, 3)

    def test_locate_out_of_range(self):
        banked = BankedMemory(rows=8, row_bits=8, bank_count=2)
        with pytest.raises(RamModeError):
            banked.locate(8)

    def test_read_write_through_banks(self):
        banked = BankedMemory(rows=8, row_bits=8, bank_count=2)
        banked.write_row(5, 0x5A)
        assert banked.read_row(5) == 0x5A
        # Row 5 lives in bank 1.
        assert banked.banks[1].stats.writes == 1
        assert banked.banks[0].stats.writes == 0


class TestStats:
    def test_total_accesses(self):
        banked = BankedMemory(rows=8, row_bits=8, bank_count=2)
        banked.write_row(0, 1)
        banked.read_row(7)
        assert banked.total_accesses() == 2

    def test_reset(self):
        banked = BankedMemory(rows=8, row_bits=8, bank_count=2)
        banked.write_row(0, 1)
        banked.reset_stats()
        assert banked.total_accesses() == 0
