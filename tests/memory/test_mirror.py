"""Unit tests for the decoded NumPy mirror and its invalidation protocol."""

import numpy as np
import pytest

from repro.core.bucket import BucketLayout
from repro.core.key import TernaryKey
from repro.core.record import Record, RecordFormat
from repro.errors import KeyFormatError
from repro.memory.array import MemoryArray
from repro.memory.mirror import (
    DecodedMirror,
    bits_to_words,
    int_to_words,
    keys_to_words,
    words_for_bits,
    words_to_bits,
)

FMT = RecordFormat(key_bits=16, data_bits=8, ternary=True)
LAYOUT = BucketLayout(row_bits=8 + 4 * FMT.slot_bits, record_format=FMT)
ROWS = 8


def make_array():
    return MemoryArray(ROWS, LAYOUT.row_bits)


def pack(records, reach=0):
    return LAYOUT.pack(records, reach)


def record(value, mask=0, data=0):
    return Record.make(
        TernaryKey(value=value, mask=mask, width=16) if mask else value,
        data,
        FMT,
    )


class TestWordPacking:
    def test_words_for_bits(self):
        assert words_for_bits(1) == 1
        assert words_for_bits(64) == 1
        assert words_for_bits(65) == 2
        assert words_for_bits(128) == 2

    def test_int_to_words_little_endian(self):
        value = (0xABCD << 64) | 0x1234
        assert int_to_words(value, 2) == [0x1234, 0xABCD]

    def test_narrow_keys(self):
        words = keys_to_words([0, 1, 0xFFFF], 16)
        assert words.shape == (3, 1)
        assert words.dtype == np.uint64
        assert list(words[:, 0]) == [0, 1, 0xFFFF]

    def test_wide_keys(self):
        wide = (0xDEAD << 64) | 0xBEEF
        words = keys_to_words([wide, 1], 128)
        assert words.shape == (2, 2)
        assert int(words[0, 0]) == 0xBEEF
        assert int(words[0, 1]) == 0xDEAD
        assert int(words[1, 0]) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(KeyFormatError):
            keys_to_words([1 << 16], 16)
        with pytest.raises(KeyFormatError):
            keys_to_words([-1], 16)
        with pytest.raises(KeyFormatError):
            keys_to_words([1 << 128], 128)

    @pytest.mark.parametrize("bits", [1, 16, 64, 65, 128])
    def test_bits_to_words_inverts_words_to_bits(self, bits):
        rng = np.random.default_rng(bits)
        words = keys_to_words(
            [int(v) for v in rng.integers(0, 1 << min(bits, 60), 20)], bits
        )
        round_tripped = bits_to_words(words_to_bits(words, bits), bits)
        assert round_tripped.dtype == np.uint64
        assert (round_tripped == words).all()

    def test_bits_to_words_rejects_bad_shape(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            bits_to_words(np.zeros((2, 5), dtype=np.uint8), 16)


class TestSyncAndInvalidation:
    def test_initial_sync_decodes_everything(self):
        array = make_array()
        array.write_row(2, pack([record(0x42, data=7)], reach=3))
        mirror = DecodedMirror([array], LAYOUT)
        assert mirror.sync() == ROWS
        assert mirror.valid[2, 0]
        assert not mirror.valid[2, 1]
        assert int(mirror.key_words[2, 0, 0]) == 0x42
        assert int(mirror.reach[2]) == 3
        assert mirror.records[2, 0].data == 7

    def test_write_row_marks_only_that_row_dirty(self):
        array = make_array()
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        array.write_row(5, pack([record(1)]))
        assert mirror.dirty_row_count == 1
        assert mirror.sync() == 1
        assert mirror.valid[5, 0]
        assert mirror.sync() == 0

    def test_load_and_fill_invalidate(self):
        array = make_array()
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        array.load([pack([record(9)]), pack([record(8)])], offset=3)
        assert mirror.dirty_row_count == 2
        mirror.sync()
        assert mirror.valid[3, 0] and mirror.valid[4, 0]
        array.fill(0)
        assert mirror.dirty_row_count == ROWS
        mirror.sync()
        assert not mirror.valid.any()

    def test_stale_reads_without_sync(self):
        array = make_array()
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        array.write_row(0, pack([record(1)]))
        assert not mirror.valid[0, 0]  # not synced yet
        mirror.sync()
        assert mirror.valid[0, 0]


class TestComposition:
    def test_vertical_concatenates_row_spaces(self):
        arrays = [make_array(), make_array()]
        arrays[1].write_row(2, pack([record(0x77)], reach=1))
        mirror = DecodedMirror(arrays, LAYOUT, horizontal=False)
        mirror.sync()
        assert mirror.buckets == 2 * ROWS
        bucket = ROWS + 2
        assert mirror.valid[bucket, 0]
        assert int(mirror.reach[bucket]) == 1

    def test_horizontal_concatenates_slots(self):
        arrays = [make_array(), make_array()]
        arrays[0].write_row(4, pack([record(0x11)], reach=2))
        arrays[1].write_row(4, pack([record(0x22)]))
        mirror = DecodedMirror(arrays, LAYOUT, horizontal=True)
        mirror.sync()
        assert mirror.buckets == ROWS
        assert mirror.slots == 2 * LAYOUT.slots_per_bucket
        assert mirror.records[4, 0].key.value == 0x11
        assert mirror.records[4, LAYOUT.slots_per_bucket].key.value == 0x22
        # Reach of the logical bucket comes from slice 0 only.
        assert int(mirror.reach[4]) == 2


class TestMatching:
    def test_match_rows_binary(self):
        array = make_array()
        array.write_row(1, pack([record(0xAA), record(0xBB)]))
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        match = mirror.match_rows(
            np.array([1, 1, 0]), keys_to_words([0xBB, 0xCC, 0xAA], 16)
        )
        assert match.shape == (3, LAYOUT.slots_per_bucket)
        assert list(match[0][:2]) == [False, True]
        assert not match[1].any()
        assert not match[2].any()  # row 0 is empty

    def test_match_respects_stored_masks(self):
        array = make_array()
        # Stored 0b101X: matches 0b1010 and 0b1011.
        array.write_row(0, pack([record(0b1010, mask=0b1)]))
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        match = mirror.match_rows(
            np.array([0, 0, 0]), keys_to_words([0b1010, 0b1011, 0b1110], 16)
        )
        assert list(match[:, 0]) == [True, True, False]

    def test_match_respects_query_masks(self):
        array = make_array()
        array.write_row(0, pack([record(0b1100)]))
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        match = mirror.match_rows(
            np.array([0, 0]),
            keys_to_words([0b0100, 0b0100], 16),
            query_mask_words=keys_to_words([0b1000, 0], 16),
        )
        assert bool(match[0, 0]) and not bool(match[1, 0])

    def test_match_predicate_full_wildcard(self):
        array = make_array()
        array.write_row(3, pack([record(5), record(6)]))
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        match = mirror.match_predicate(0, (1 << 16) - 1)
        assert match.sum() == 2
        triples = list(mirror.iter_valid())
        assert [(b, s) for b, s, _ in triples] == [(3, 0), (3, 1)]


class TestWideKeyMirror:
    def test_128_bit_keys_round_trip(self):
        fmt = RecordFormat(key_bits=128, data_bits=8)
        layout = BucketLayout(row_bits=8 + 2 * fmt.slot_bits, record_format=fmt)
        array = MemoryArray(4, layout.row_bits)
        key = (0xFACE << 100) | 0xCAFE
        array.write_row(2, layout.pack([Record.make(key, 3, fmt)]))
        mirror = DecodedMirror([array], layout)
        mirror.sync()
        assert mirror.word_count == 2
        match = mirror.match_rows(
            np.array([2, 2]), keys_to_words([key, key + 1], 128)
        )
        assert bool(match[0, 0]) and not bool(match[1, 0])


def reference_decode(mirror, arrays, layout, horizontal):
    """Scalar per-slot decode via the layout readers — the old sync path."""
    valid = np.zeros_like(mirror.valid)
    key_words = np.zeros_like(mirror.key_words)
    mask_words = np.zeros_like(mirror.mask_words)
    reach = np.zeros_like(mirror.reach)
    records = np.empty_like(mirror.records)
    slots = layout.slots_per_bucket
    word_count = mirror.word_count
    for slice_id, array in enumerate(arrays):
        for row in range(array.rows):
            value = array.peek_row(row)
            if horizontal:
                bucket, base = row, slice_id * slots
                if slice_id == 0:
                    reach[bucket] = layout.read_aux(value)
            else:
                bucket, base = slice_id * array.rows + row, 0
                reach[bucket] = layout.read_aux(value)
            for slot in range(slots):
                is_valid, rec = layout.read_slot(value, slot)
                col = base + slot
                valid[bucket, col] = is_valid
                records[bucket, col] = rec if is_valid else None
                if is_valid:
                    key_words[bucket, col] = int_to_words(
                        rec.key.value, word_count
                    )
                    mask_words[bucket, col] = int_to_words(
                        rec.key.mask, word_count
                    )
    return valid, key_words, mask_words, reach, records


class TestVectorizedSyncIdentity:
    """The vectorized decode must reproduce the per-slot readers exactly."""

    @pytest.mark.parametrize("horizontal", [False, True])
    def test_identical_to_scalar_decode(self, horizontal):
        rng = np.random.default_rng(99)
        arrays = [make_array(), make_array()]
        for array in arrays:
            for row in range(ROWS):
                recs = []
                for _ in range(LAYOUT.slots_per_bucket):
                    if rng.random() < 0.4:
                        recs.append(None)
                        continue
                    mask = int(rng.integers(0, 16)) if rng.random() < 0.5 else 0
                    recs.append(
                        record(
                            int(rng.integers(0, 1 << 16)),
                            mask=mask,
                            data=int(rng.integers(0, 256)),
                        )
                    )
                array.write_row(row, pack(recs, reach=int(rng.integers(0, 4))))
        mirror = DecodedMirror(arrays, LAYOUT, horizontal=horizontal)
        mirror.sync()
        valid, key_words, mask_words, reach, records = reference_decode(
            mirror, arrays, LAYOUT, horizontal
        )
        assert (mirror.valid == valid).all()
        assert (mirror.key_words == key_words).all()
        assert (mirror.mask_words == mask_words).all()
        assert (mirror.reach == reach).all()
        for bucket in range(mirror.buckets):
            for slot in range(mirror.slots):
                got, want = mirror.records[bucket, slot], records[bucket, slot]
                if want is None:
                    assert got is None
                else:
                    assert got.key == want.key and got.data == want.data

    def test_identical_after_partial_churn(self):
        array = make_array()
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        array.write_row(1, pack([record(0xF00D, mask=0b11, data=5)], reach=2))
        array.write_row(6, pack([None, record(0x1F)]))
        assert mirror.sync() == 2
        valid, key_words, mask_words, reach, _ = reference_decode(
            mirror, [array], LAYOUT, False
        )
        assert (mirror.valid == valid).all()
        assert (mirror.key_words == key_words).all()
        assert (mirror.mask_words == mask_words).all()
        assert (mirror.reach == reach).all()
        # Stored key values are normalized under the stored mask.
        assert mirror.records[1, 0].key.value == 0xF00D & ~0b11

    def test_wide_key_vectorized_decode(self):
        fmt = RecordFormat(key_bits=128, data_bits=8, ternary=True)
        layout = BucketLayout(
            row_bits=8 + 2 * fmt.slot_bits, record_format=fmt
        )
        array = MemoryArray(4, layout.row_bits)
        key = TernaryKey(
            value=(0xFACE << 100) | 0xCAFE, mask=(1 << 70) | 1, width=128
        )
        array.write_row(1, layout.pack([Record.make(key, 9, fmt)], reach=1))
        mirror = DecodedMirror([array], layout)
        mirror.sync()
        is_valid, rec = layout.read_slot(array.peek_row(1), 0)
        assert is_valid and mirror.valid[1, 0]
        assert mirror.records[1, 0].key == rec.key
        assert list(mirror.key_words[1, 0]) == int_to_words(rec.key.value, 2)
        assert list(mirror.mask_words[1, 0]) == int_to_words(rec.key.mask, 2)
        assert int(mirror.reach[1]) == 1
