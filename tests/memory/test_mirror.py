"""Unit tests for the decoded NumPy mirror and its invalidation protocol."""

import numpy as np
import pytest

from repro.core.bucket import BucketLayout
from repro.core.key import TernaryKey
from repro.core.record import Record, RecordFormat
from repro.errors import KeyFormatError
from repro.memory.array import MemoryArray
from repro.memory.mirror import (
    DecodedMirror,
    int_to_words,
    keys_to_words,
    words_for_bits,
)

FMT = RecordFormat(key_bits=16, data_bits=8, ternary=True)
LAYOUT = BucketLayout(row_bits=8 + 4 * FMT.slot_bits, record_format=FMT)
ROWS = 8


def make_array():
    return MemoryArray(ROWS, LAYOUT.row_bits)


def pack(records, reach=0):
    return LAYOUT.pack(records, reach)


def record(value, mask=0, data=0):
    return Record.make(
        TernaryKey(value=value, mask=mask, width=16) if mask else value,
        data,
        FMT,
    )


class TestWordPacking:
    def test_words_for_bits(self):
        assert words_for_bits(1) == 1
        assert words_for_bits(64) == 1
        assert words_for_bits(65) == 2
        assert words_for_bits(128) == 2

    def test_int_to_words_little_endian(self):
        value = (0xABCD << 64) | 0x1234
        assert int_to_words(value, 2) == [0x1234, 0xABCD]

    def test_narrow_keys(self):
        words = keys_to_words([0, 1, 0xFFFF], 16)
        assert words.shape == (3, 1)
        assert words.dtype == np.uint64
        assert list(words[:, 0]) == [0, 1, 0xFFFF]

    def test_wide_keys(self):
        wide = (0xDEAD << 64) | 0xBEEF
        words = keys_to_words([wide, 1], 128)
        assert words.shape == (2, 2)
        assert int(words[0, 0]) == 0xBEEF
        assert int(words[0, 1]) == 0xDEAD
        assert int(words[1, 0]) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(KeyFormatError):
            keys_to_words([1 << 16], 16)
        with pytest.raises(KeyFormatError):
            keys_to_words([-1], 16)
        with pytest.raises(KeyFormatError):
            keys_to_words([1 << 128], 128)


class TestSyncAndInvalidation:
    def test_initial_sync_decodes_everything(self):
        array = make_array()
        array.write_row(2, pack([record(0x42, data=7)], reach=3))
        mirror = DecodedMirror([array], LAYOUT)
        assert mirror.sync() == ROWS
        assert mirror.valid[2, 0]
        assert not mirror.valid[2, 1]
        assert int(mirror.key_words[2, 0, 0]) == 0x42
        assert int(mirror.reach[2]) == 3
        assert mirror.records[2, 0].data == 7

    def test_write_row_marks_only_that_row_dirty(self):
        array = make_array()
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        array.write_row(5, pack([record(1)]))
        assert mirror.dirty_row_count == 1
        assert mirror.sync() == 1
        assert mirror.valid[5, 0]
        assert mirror.sync() == 0

    def test_load_and_fill_invalidate(self):
        array = make_array()
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        array.load([pack([record(9)]), pack([record(8)])], offset=3)
        assert mirror.dirty_row_count == 2
        mirror.sync()
        assert mirror.valid[3, 0] and mirror.valid[4, 0]
        array.fill(0)
        assert mirror.dirty_row_count == ROWS
        mirror.sync()
        assert not mirror.valid.any()

    def test_stale_reads_without_sync(self):
        array = make_array()
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        array.write_row(0, pack([record(1)]))
        assert not mirror.valid[0, 0]  # not synced yet
        mirror.sync()
        assert mirror.valid[0, 0]


class TestComposition:
    def test_vertical_concatenates_row_spaces(self):
        arrays = [make_array(), make_array()]
        arrays[1].write_row(2, pack([record(0x77)], reach=1))
        mirror = DecodedMirror(arrays, LAYOUT, horizontal=False)
        mirror.sync()
        assert mirror.buckets == 2 * ROWS
        bucket = ROWS + 2
        assert mirror.valid[bucket, 0]
        assert int(mirror.reach[bucket]) == 1

    def test_horizontal_concatenates_slots(self):
        arrays = [make_array(), make_array()]
        arrays[0].write_row(4, pack([record(0x11)], reach=2))
        arrays[1].write_row(4, pack([record(0x22)]))
        mirror = DecodedMirror(arrays, LAYOUT, horizontal=True)
        mirror.sync()
        assert mirror.buckets == ROWS
        assert mirror.slots == 2 * LAYOUT.slots_per_bucket
        assert mirror.records[4, 0].key.value == 0x11
        assert mirror.records[4, LAYOUT.slots_per_bucket].key.value == 0x22
        # Reach of the logical bucket comes from slice 0 only.
        assert int(mirror.reach[4]) == 2


class TestMatching:
    def test_match_rows_binary(self):
        array = make_array()
        array.write_row(1, pack([record(0xAA), record(0xBB)]))
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        match = mirror.match_rows(
            np.array([1, 1, 0]), keys_to_words([0xBB, 0xCC, 0xAA], 16)
        )
        assert match.shape == (3, LAYOUT.slots_per_bucket)
        assert list(match[0][:2]) == [False, True]
        assert not match[1].any()
        assert not match[2].any()  # row 0 is empty

    def test_match_respects_stored_masks(self):
        array = make_array()
        # Stored 0b101X: matches 0b1010 and 0b1011.
        array.write_row(0, pack([record(0b1010, mask=0b1)]))
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        match = mirror.match_rows(
            np.array([0, 0, 0]), keys_to_words([0b1010, 0b1011, 0b1110], 16)
        )
        assert list(match[:, 0]) == [True, True, False]

    def test_match_respects_query_masks(self):
        array = make_array()
        array.write_row(0, pack([record(0b1100)]))
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        match = mirror.match_rows(
            np.array([0, 0]),
            keys_to_words([0b0100, 0b0100], 16),
            query_mask_words=keys_to_words([0b1000, 0], 16),
        )
        assert bool(match[0, 0]) and not bool(match[1, 0])

    def test_match_predicate_full_wildcard(self):
        array = make_array()
        array.write_row(3, pack([record(5), record(6)]))
        mirror = DecodedMirror([array], LAYOUT)
        mirror.sync()
        match = mirror.match_predicate(0, (1 << 16) - 1)
        assert match.sum() == 2
        triples = list(mirror.iter_valid())
        assert [(b, s) for b, s, _ in triples] == [(3, 0), (3, 1)]


class TestWideKeyMirror:
    def test_128_bit_keys_round_trip(self):
        fmt = RecordFormat(key_bits=128, data_bits=8)
        layout = BucketLayout(row_bits=8 + 2 * fmt.slot_bits, record_format=fmt)
        array = MemoryArray(4, layout.row_bits)
        key = (0xFACE << 100) | 0xCAFE
        array.write_row(2, layout.pack([Record.make(key, 3, fmt)]))
        mirror = DecodedMirror([array], layout)
        mirror.sync()
        assert mirror.word_count == 2
        match = mirror.match_rows(
            np.array([2, 2]), keys_to_words([key, key + 1], 128)
        )
        assert bool(match[0, 0]) and not bool(match[1, 0])
