"""Unit tests for the set-associative cache model."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.cache import CacheSimulator, CacheStats


class TestConfiguration:
    def test_geometry(self):
        cache = CacheSimulator(size_bytes=1024, line_bytes=64, associativity=4)
        assert cache.set_count == 4

    def test_line_not_power_of_two(self):
        with pytest.raises(ConfigurationError):
            CacheSimulator(line_bytes=48)

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            CacheSimulator(size_bytes=1000, line_bytes=64, associativity=4)


class TestAccessBehavior:
    def test_cold_miss_then_hit(self):
        cache = CacheSimulator(size_bytes=1024, line_bytes=64, associativity=2)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True  # same line

    def test_different_lines_miss(self):
        cache = CacheSimulator(size_bytes=1024, line_bytes=64, associativity=2)
        cache.access(0)
        assert cache.access(64) is False

    def test_lru_eviction(self):
        # 2-way, 1 set: capacity two lines.
        cache = CacheSimulator(size_bytes=128, line_bytes=64, associativity=2)
        cache.access(0)      # line 0
        cache.access(64)     # line 1
        cache.access(0)      # touch line 0 -> line 1 becomes LRU
        cache.access(128)    # evicts line 1
        assert cache.access(0) is True
        assert cache.access(64) is False

    def test_negative_address_rejected(self):
        cache = CacheSimulator()
        with pytest.raises(ValueError):
            cache.access(-1)


class TestBlockAccess:
    def test_block_spanning_lines(self):
        cache = CacheSimulator(size_bytes=1024, line_bytes=64, associativity=2)
        misses = cache.access_block(0, 130)  # lines 0, 1, 2
        assert misses == 3
        assert cache.access_block(0, 130) == 0

    def test_empty_block(self):
        cache = CacheSimulator()
        assert cache.access_block(0, 0) == 0


class TestStats:
    def test_miss_rate(self):
        cache = CacheSimulator(size_bytes=1024, line_bytes=64, associativity=2)
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_average_latency(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.average_latency_cycles(1, 101) == pytest.approx(26.0)

    def test_flush_keeps_stats(self):
        cache = CacheSimulator(size_bytes=1024, line_bytes=64, associativity=2)
        cache.access(0)
        cache.flush()
        assert cache.stats.misses == 1
        assert cache.access(0) is False

    def test_reset_clears_stats(self):
        cache = CacheSimulator(size_bytes=1024, line_bytes=64, associativity=2)
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
