"""Unit tests for the row-organized memory array."""

import pytest

from repro.errors import ConfigurationError, RamModeError
from repro.memory.array import MemoryArray
from repro.memory.timing import DRAM_TIMING


class TestConstruction:
    def test_geometry(self):
        array = MemoryArray(rows=16, row_bits=128)
        assert array.rows == 16
        assert array.row_bits == 128
        assert array.capacity_bits == 2048

    def test_zero_initialized(self):
        array = MemoryArray(rows=4, row_bits=8)
        assert all(array.peek_row(r) == 0 for r in range(4))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryArray(rows=0, row_bits=8)
        with pytest.raises(ConfigurationError):
            MemoryArray(rows=8, row_bits=0)

    def test_timing_attached(self):
        array = MemoryArray(rows=4, row_bits=8, timing=DRAM_TIMING)
        assert array.timing.access_cycles == 6


class TestRowAccess:
    def test_write_read_round_trip(self):
        array = MemoryArray(rows=8, row_bits=64)
        array.write_row(3, 0xDEADBEEF)
        assert array.read_row(3) == 0xDEADBEEF

    def test_wide_row(self):
        array = MemoryArray(rows=2, row_bits=12_288)
        value = (1 << 12_287) | 1
        array.write_row(0, value)
        assert array.read_row(0) == value

    def test_out_of_range_row(self):
        array = MemoryArray(rows=4, row_bits=8)
        with pytest.raises(RamModeError):
            array.read_row(4)
        with pytest.raises(RamModeError):
            array.write_row(-1, 0)

    def test_value_too_wide(self):
        array = MemoryArray(rows=4, row_bits=8)
        with pytest.raises(RamModeError):
            array.write_row(0, 256)

    def test_access_counters(self):
        array = MemoryArray(rows=4, row_bits=8)
        array.write_row(0, 1)
        array.read_row(0)
        array.read_row(1)
        assert array.stats.writes == 1
        assert array.stats.reads == 2
        assert array.stats.total_accesses == 3

    def test_peek_does_not_count(self):
        array = MemoryArray(rows=4, row_bits=8)
        array.peek_row(0)
        assert array.stats.total_accesses == 0


class TestFieldAccess:
    def test_read_field(self):
        array = MemoryArray(rows=2, row_bits=16)
        array.write_row(0, 0b1010_1111_0000_0101)
        assert array.read_field(0, 0, 4) == 0b1010
        assert array.read_field(0, 4, 4) == 0b1111
        assert array.read_field(0, 12, 4) == 0b0101

    def test_write_field_preserves_rest(self):
        array = MemoryArray(rows=2, row_bits=16)
        array.write_row(0, 0xFFFF)
        array.write_field(0, 4, 4, 0)
        assert array.peek_row(0) == 0xF0FF

    def test_write_field_counts_read_modify_write(self):
        array = MemoryArray(rows=2, row_bits=16)
        array.write_field(0, 0, 4, 5)
        assert array.stats.reads == 1
        assert array.stats.writes == 1

    def test_field_value_too_wide(self):
        array = MemoryArray(rows=2, row_bits=16)
        with pytest.raises(RamModeError):
            array.write_field(0, 0, 4, 16)


class TestBulkOperations:
    def test_fill(self):
        array = MemoryArray(rows=4, row_bits=8)
        array.fill(0xAA)
        assert all(array.peek_row(r) == 0xAA for r in range(4))
        assert array.stats.total_accesses == 0

    def test_snapshot_is_copy(self):
        array = MemoryArray(rows=2, row_bits=8)
        array.write_row(0, 7)
        snap = array.snapshot()
        array.write_row(0, 9)
        assert snap == [7, 0]

    def test_load_at_offset(self):
        array = MemoryArray(rows=4, row_bits=8)
        array.load([1, 2], offset=1)
        assert [array.peek_row(r) for r in range(4)] == [0, 1, 2, 0]

    def test_load_counts_writes(self):
        array = MemoryArray(rows=4, row_bits=8)
        array.load([1, 2, 3])
        assert array.stats.writes == 3

    def test_load_overflow_rejected(self):
        array = MemoryArray(rows=2, row_bits=8)
        with pytest.raises(RamModeError):
            array.load([1, 2, 3])

    def test_load_bad_value_rejected(self):
        array = MemoryArray(rows=2, row_bits=8)
        with pytest.raises(RamModeError):
            array.load([300])


class TestInvalidationListeners:
    def test_multiple_listeners_all_notified_in_order(self):
        array = MemoryArray(rows=8, row_bits=8)
        first, second = [], []
        array.subscribe_invalidation(lambda s, n: first.append((s, n)))
        array.subscribe_invalidation(lambda s, n: second.append((s, n)))
        array.write_row(3, 1)
        array.load([1, 2], offset=5)
        array.fill(0)
        expected = [(3, 1), (5, 2), (0, 8)]
        assert first == expected
        assert second == expected

    def test_listeners_fire_per_mutation_not_per_read(self):
        array = MemoryArray(rows=4, row_bits=8)
        calls = []
        array.subscribe_invalidation(lambda s, n: calls.append((s, n)))
        array.read_row(0)
        array.peek_row(1)
        array.charge_reads(5)
        assert calls == []

    def test_late_subscriber_sees_only_later_mutations(self):
        array = MemoryArray(rows=4, row_bits=8)
        array.write_row(0, 1)
        calls = []
        array.subscribe_invalidation(lambda s, n: calls.append((s, n)))
        array.write_row(1, 1)
        assert calls == [(1, 1)]


class TestChargeReads:
    def test_charge_reads_advances_counter(self):
        array = MemoryArray(rows=4, row_bits=8)
        array.read_row(0)
        array.charge_reads(10)
        assert array.stats.reads == 11
        assert array.stats.total_accesses == 11

    def test_negative_count_rejected(self):
        array = MemoryArray(rows=4, row_bits=8)
        with pytest.raises(ConfigurationError):
            array.charge_reads(-1)

    def test_as_dict_export(self):
        array = MemoryArray(rows=4, row_bits=8)
        array.write_row(0, 1)
        array.charge_reads(3)
        assert array.stats.as_dict() == {
            "reads": 3,
            "writes": 1,
            "total_accesses": 4,
        }


class TestTracerHooks:
    def test_no_tracer_by_default(self):
        assert MemoryArray(rows=4, row_bits=8).tracer is None

    def test_read_and_charge_emit_bucket_read(self):
        from repro.telemetry.trace import Tracer

        array = MemoryArray(rows=4, row_bits=8)
        array.tracer = Tracer()
        array.read_row(2)
        array.charge_reads(5)
        array.charge_reads(0)  # zero-count charges stay silent
        events = array.tracer.events("bucket_read")
        assert [e.payload for e in events] == [
            {"row": 2},
            {"count": 5, "mirror_served": True},
        ]
        assert array.stats.reads == 6

    def test_mutations_emit_invalidate_and_dma(self):
        from repro.telemetry.trace import Tracer

        array = MemoryArray(rows=8, row_bits=8)
        array.tracer = Tracer()
        array.write_row(1, 3)
        array.load([1, 2, 3], offset=4)
        assert [e.payload for e in array.tracer.events("mirror_invalidate")] \
            == [{"start": 1, "rows": 1}, {"start": 4, "rows": 3}]
        assert array.tracer.events("dma_burst")[0].payload == {
            "offset": 4,
            "rows": 3,
        }

    def test_tracer_and_listeners_compose(self):
        from repro.telemetry.trace import Tracer

        array = MemoryArray(rows=4, row_bits=8)
        calls = []
        array.subscribe_invalidation(lambda s, n: calls.append((s, n)))
        array.tracer = Tracer()
        array.write_row(0, 1)
        assert calls == [(0, 1)]
        assert array.tracer.summary()["mirror_invalidate"] == 1
