"""Unit tests for memory device timing."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.timing import (
    DRAM_TIMING,
    SRAM_TIMING,
    MemoryTechnology,
    MemoryTiming,
)


class TestDefaults:
    def test_sram_single_cycle(self):
        assert SRAM_TIMING.access_cycles == 1
        assert SRAM_TIMING.cycle_between_accesses == 1

    def test_dram_multi_cycle(self):
        # Figure 8 assumption: "memory access latency is at least 6 cycles
        # (DRAM)" at 200 MHz.
        assert DRAM_TIMING.access_cycles == 6
        assert DRAM_TIMING.clock_hz == 200e6

    def test_access_time(self):
        assert DRAM_TIMING.access_time_s == pytest.approx(30e-9)
        assert SRAM_TIMING.access_time_s == pytest.approx(5e-9)


class TestDerived:
    def test_accesses_per_second(self):
        assert DRAM_TIMING.accesses_per_second() == pytest.approx(200e6 / 6)

    def test_scaled_to(self):
        fast = DRAM_TIMING.scaled_to(312e6)
        assert fast.clock_hz == 312e6
        assert fast.access_cycles == DRAM_TIMING.access_cycles
        assert fast.technology is MemoryTechnology.DRAM


class TestValidation:
    def test_bad_clock(self):
        with pytest.raises(ConfigurationError):
            MemoryTiming(MemoryTechnology.SRAM, 0, 1, 1)

    def test_bad_access_cycles(self):
        with pytest.raises(ConfigurationError):
            MemoryTiming(MemoryTechnology.SRAM, 1e6, 0, 1)

    def test_bad_back_to_back(self):
        with pytest.raises(ConfigurationError):
            MemoryTiming(MemoryTechnology.SRAM, 1e6, 1, 0)
