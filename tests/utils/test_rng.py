"""Unit tests for the deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_default_is_deterministic(self):
        a = make_rng(None).integers(0, 1 << 30, size=8)
        b = make_rng(None).integers(0, 1 << 30, size=8)
        assert (a == b).all()

    def test_integer_seed_deterministic(self):
        a = make_rng(42).random(4)
        b = make_rng(42).random(4)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).random(8)
        b = make_rng(2).random(8)
        assert not (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(5)
        assert make_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not (a.random(8) == b.random(8)).all()

    def test_deterministic(self):
        first = [g.random(2).tolist() for g in spawn_rngs(9, 3)]
        second = [g.random(2).tolist() for g in spawn_rngs(9, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, "x") == derive_seed(3, "x")

    def test_salt_changes_seed(self):
        assert derive_seed(3, "a") != derive_seed(3, "b")

    def test_none_uses_default(self):
        assert derive_seed(None, "x") == derive_seed(DEFAULT_SEED, "x")
