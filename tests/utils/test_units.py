"""Unit tests for units/formatting helpers."""

from repro.utils.units import (
    format_area_um2,
    format_power_mw,
    format_si,
    mbits,
    mm2,
)


class TestConversions:
    def test_mm2(self):
        assert mm2(1_000_000) == 1.0

    def test_mbits(self):
        assert mbits(1024 * 1024) == 1.0


class TestFormatSi:
    def test_zero(self):
        assert format_si(0, "Hz") == "0 Hz"

    def test_mega(self):
        assert format_si(200e6, "Hz") == "200 MHz"

    def test_giga(self):
        assert format_si(2.5e9, "Hz") == "2.5 GHz"

    def test_milli(self):
        assert format_si(0.0608, "W") == "60.8 mW"

    def test_no_unit(self):
        assert format_si(1500.0) == "1.5 k"


class TestAreaPowerFormat:
    def test_small_area_in_um2(self):
        assert "um^2" in format_area_um2(100.0)

    def test_large_area_in_mm2(self):
        assert "mm^2" in format_area_um2(5e6)

    def test_small_power_in_mw(self):
        assert format_power_mw(60.8) == "60.80 mW"

    def test_large_power_in_w(self):
        assert "W" in format_power_mw(3200.0)
        assert "mW" not in format_power_mw(3200.0)
