"""Unit tests for the bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    bit_length_for,
    extract_bits,
    from_bit_list,
    mask_of,
    reverse_bits,
    select_bits,
    to_bit_list,
)


class TestMaskOf:
    def test_zero_width(self):
        assert mask_of(0) == 0

    def test_small_masks(self):
        assert mask_of(1) == 1
        assert mask_of(4) == 0xF
        assert mask_of(8) == 0xFF

    def test_wide_mask(self):
        assert mask_of(128) == (1 << 128) - 1

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask_of(-1)


class TestBitLengthFor:
    def test_one_value_needs_zero_bits(self):
        assert bit_length_for(1) == 0

    def test_powers_of_two(self):
        assert bit_length_for(2) == 1
        assert bit_length_for(2048) == 11
        assert bit_length_for(65536) == 16

    def test_non_powers(self):
        assert bit_length_for(3) == 2
        assert bit_length_for(5) == 3

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            bit_length_for(0)


class TestExtractBits:
    def test_msb_extraction(self):
        assert extract_bits(0b1011_0000, 8, 0, 4) == 0b1011

    def test_middle_extraction(self):
        assert extract_bits(0b1011_0000, 8, 2, 3) == 0b110

    def test_single_bit(self):
        assert extract_bits(0b1000_0000, 8, 0, 1) == 1
        assert extract_bits(0b1000_0000, 8, 7, 1) == 0

    def test_full_width(self):
        assert extract_bits(0xAB, 8, 0, 8) == 0xAB

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            extract_bits(0, 8, 5, 4)


class TestSelectBits:
    def test_paper_hash_selection(self):
        # The last 3 bits of the first 4 bits of an 8-bit value.
        value = 0b1010_0000
        assert select_bits(value, 8, [1, 2, 3]) == 0b010

    def test_order_matters(self):
        value = 0b10
        assert select_bits(value, 2, [0, 1]) == 0b10
        assert select_bits(value, 2, [1, 0]) == 0b01


class TestBitListRoundTrip:
    def test_to_bit_list(self):
        assert to_bit_list(0b101, 4) == [0, 1, 0, 1]

    def test_from_bit_list(self):
        assert from_bit_list([1, 0, 1]) == 5

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            to_bit_list(16, 4)

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            from_bit_list([0, 2])

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_round_trip(self, value):
        assert from_bit_list(to_bit_list(value, 64)) == value


class TestReverseBits:
    def test_simple(self):
        assert reverse_bits(0b1100, 4) == 0b0011

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_involution(self, value):
        assert reverse_bits(reverse_bits(value, 32), 32) == value
