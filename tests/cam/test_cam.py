"""Unit tests for the binary CAM baseline."""

import pytest

from repro.cam.cam import BinaryCAM
from repro.errors import CapacityError, ConfigurationError, KeyFormatError, LookupError_


class TestBasic:
    def test_insert_search(self):
        cam = BinaryCAM(entries=8, key_bits=16)
        row = cam.insert(0xBEEF, data=7)
        result = cam.search(0xBEEF)
        assert result.hit
        assert result.index == row
        assert result.data == 7

    def test_miss(self):
        cam = BinaryCAM(8, 16)
        result = cam.search(1)
        assert not result.hit
        assert result.index is None

    def test_explicit_index(self):
        cam = BinaryCAM(8, 16)
        assert cam.insert(5, index=3) == 3
        assert cam.read(3) == 5

    def test_occupied_index_rejected(self):
        cam = BinaryCAM(8, 16)
        cam.insert(1, index=0)
        with pytest.raises(CapacityError):
            cam.insert(2, index=0)

    def test_full_cam(self):
        cam = BinaryCAM(2, 8)
        cam.insert(1)
        cam.insert(2)
        with pytest.raises(CapacityError):
            cam.insert(3)

    def test_entry_count(self):
        cam = BinaryCAM(8, 16)
        cam.insert(1)
        cam.insert(2)
        assert cam.entry_count == 2


class TestPriorityEncoder:
    def test_lowest_index_wins(self):
        cam = BinaryCAM(8, 16)
        cam.insert(7, data=1, index=5)
        cam.insert(7, data=2, index=2)
        result = cam.search(7)
        assert result.index == 2
        assert result.data == 2
        assert result.match_count == 2


class TestDelete:
    def test_delete_all_copies(self):
        cam = BinaryCAM(8, 16)
        cam.insert(7, index=1)
        cam.insert(7, index=4)
        assert cam.delete(7) == 2
        assert not cam.search(7).hit

    def test_delete_missing(self):
        cam = BinaryCAM(8, 16)
        with pytest.raises(LookupError_):
            cam.delete(7)


class TestPowerActivity:
    def test_every_search_activates_all_rows(self):
        # The O(w*n) power story of Section 2.2.
        cam = BinaryCAM(64, 16)
        cam.search(1)
        cam.search(2)
        assert cam.stats.searches == 2
        assert cam.stats.rows_activated == 128


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            BinaryCAM(0, 8)
        with pytest.raises(ConfigurationError):
            BinaryCAM(8, 0)

    def test_key_too_wide(self):
        cam = BinaryCAM(8, 8)
        with pytest.raises(KeyFormatError):
            cam.search(256)

    def test_read_out_of_range(self):
        cam = BinaryCAM(8, 8)
        with pytest.raises(ConfigurationError):
            cam.read(8)

    def test_read_empty(self):
        cam = BinaryCAM(8, 8)
        assert cam.read(0) is None
