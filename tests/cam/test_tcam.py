"""Unit tests for the TCAM baseline."""

import pytest

from repro.cam.tcam import TCAM
from repro.core.key import TernaryKey
from repro.core.record import Record
from repro.errors import CapacityError, KeyFormatError, LookupError_


class TestTernarySearch:
    def test_exact_key(self):
        tcam = TCAM(8, 16)
        tcam.insert(0xBEEF, data=1)
        assert tcam.search(0xBEEF).hit
        assert not tcam.search(0xBEEE).hit

    def test_pattern_matches_range(self):
        tcam = TCAM(8, 5)
        tcam.insert(TernaryKey.from_pattern("110XX"), data=7)
        for value in (0b11000, 0b11011):
            assert tcam.search(value).data == 7
        assert not tcam.search(0b10000).hit

    def test_search_mask(self):
        tcam = TCAM(8, 8)
        tcam.insert(0b10101010, data=3)
        assert not tcam.search(0b10101011).hit
        assert tcam.search(0b10101011, search_mask=0b1).hit

    def test_ternary_search_key(self):
        tcam = TCAM(8, 4)
        tcam.insert(0b1010, data=1)
        probe = TernaryKey.from_pattern("10X0")
        assert tcam.search(probe).hit


class TestLpmPriority:
    def test_sorted_load_gives_lpm(self):
        # "the priority encoder in TCAM can be used to perform LPM when
        # prefixes in TCAM are sorted on prefix length"
        tcam = TCAM(8, 8)
        records = [
            Record(key=TernaryKey.from_prefix(0b1010, 4, 8), data=4),
            Record(key=TernaryKey.from_prefix(0b10, 2, 8), data=2),
        ]
        tcam.load_sorted(records)
        result = tcam.search(0b10101111)
        assert result.data == 4  # longest prefix
        assert result.match_count == 2
        assert tcam.search(0b10111111).data == 2

    def test_load_sorted_replaces(self):
        tcam = TCAM(8, 8)
        tcam.insert(1)
        tcam.load_sorted([Record(key=TernaryKey.exact(2, 8), data=0)])
        assert not tcam.search(1).hit
        assert tcam.search(2).hit

    def test_load_too_many(self):
        tcam = TCAM(1, 8)
        records = [Record(key=TernaryKey.exact(i, 8), data=0) for i in range(2)]
        with pytest.raises(CapacityError):
            tcam.load_sorted(records)


class TestUpdates:
    def test_delete_pattern(self):
        tcam = TCAM(8, 8)
        pattern = TernaryKey.from_pattern("1XXXXXXX")
        tcam.insert(pattern)
        assert tcam.delete(pattern) == 1
        assert not tcam.search(0b10000000).hit

    def test_delete_requires_exact_pattern(self):
        tcam = TCAM(8, 8)
        tcam.insert(TernaryKey.from_pattern("1XXXXXXX"))
        with pytest.raises(LookupError_):
            tcam.delete(TernaryKey.from_pattern("11XXXXXX"))

    def test_full(self):
        tcam = TCAM(1, 8)
        tcam.insert(1)
        with pytest.raises(CapacityError):
            tcam.insert(2)


class TestValidation:
    def test_key_width_checked(self):
        tcam = TCAM(4, 8)
        with pytest.raises(KeyFormatError):
            tcam.insert(TernaryKey.exact(0, 16))
        with pytest.raises(KeyFormatError):
            tcam.search(256)

    def test_activity_counters(self):
        tcam = TCAM(16, 8)
        tcam.search(0)
        assert tcam.stats.rows_activated == 16

    def test_lookup_convenience(self):
        tcam = TCAM(4, 8)
        tcam.insert(9, data=5)
        assert tcam.lookup(9) == 5
        assert tcam.lookup(10) is None
