"""Unit tests for the published cell constants."""

import pytest

from repro.cam.cells import (
    CAM_STACKED_YAMAGATA92,
    DRAM_CELL_MORISHITA,
    MATCH_PROCESSOR_AREA_OVERHEAD,
    PUBLISHED_CELLS,
    TCAM_16T_SRAM_NODA03,
    TCAM_6T_DYNAMIC_NODA05,
    TCAM_8T_DYNAMIC_NODA03,
    ca_ram_binary_cell_area,
    ca_ram_ternary_cell_area,
)


class TestPublishedValues:
    def test_noda_cells(self):
        # The paper's Section 5.1 figures.
        assert TCAM_16T_SRAM_NODA03.area_um2_per_cell == pytest.approx(9.0)
        assert TCAM_8T_DYNAMIC_NODA03.area_um2_per_cell == pytest.approx(4.79)
        assert TCAM_6T_DYNAMIC_NODA05.area_um2_per_cell == pytest.approx(3.59)

    def test_morishita_dram(self):
        # "an embedded DRAM cell ... (0.35 um^2) is an order of magnitude
        # smaller than their smallest TCAM cell"
        assert DRAM_CELL_MORISHITA.area_um2_per_cell == pytest.approx(0.35)
        assert (
            TCAM_6T_DYNAMIC_NODA05.area_um2_per_cell
            / DRAM_CELL_MORISHITA.area_um2_per_cell
            > 10
        )

    def test_dram_clock_over_twice_tcam(self):
        # "operated at over twice the clock rate of the TCAM"
        assert DRAM_CELL_MORISHITA.clock_hz > 2 * TCAM_6T_DYNAMIC_NODA05.clock_hz

    def test_registry(self):
        assert TCAM_16T_SRAM_NODA03.name in PUBLISHED_CELLS
        assert CAM_STACKED_YAMAGATA92.name in PUBLISHED_CELLS
        assert len(PUBLISHED_CELLS) == 5

    def test_same_process_node(self):
        # "the same advanced 130nm process technology to allow a fair
        # comparison"
        for spec in (TCAM_16T_SRAM_NODA03, TCAM_6T_DYNAMIC_NODA05,
                     DRAM_CELL_MORISHITA):
            assert spec.process_nm == 130


class TestCaRamCellArea:
    def test_ternary_cell(self):
        # 2 DRAM bits + 7% match overhead.
        expected = 0.35 * 2 * (1 + MATCH_PROCESSOR_AREA_OVERHEAD)
        assert ca_ram_ternary_cell_area() == pytest.approx(expected)

    def test_binary_cell_is_half_ternary(self):
        assert ca_ram_ternary_cell_area() == pytest.approx(
            2 * ca_ram_binary_cell_area()
        )

    def test_paper_ratios(self):
        # "over 12x smaller than a 16T SRAM-based TCAM cell, and 4.8x
        # smaller than a state-of-the-art 6T dynamic TCAM cell"
        cell = ca_ram_ternary_cell_area()
        assert TCAM_16T_SRAM_NODA03.area_um2_per_cell / cell > 12.0
        assert TCAM_6T_DYNAMIC_NODA05.area_um2_per_cell / cell == pytest.approx(
            4.8, abs=0.05
        )
