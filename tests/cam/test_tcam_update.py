"""Unit tests for the sorted-TCAM update manager."""

import pytest

from repro.apps.iplookup.prefix import Prefix
from repro.cam.tcam_update import SortedTcamManager
from repro.errors import CapacityError, ConfigurationError, LookupError_


def p(text):
    return Prefix.from_string(text)


class TestLpmThroughManager:
    def test_lookup_prefers_longest(self):
        manager = SortedTcamManager(capacity=16)
        manager.insert(p("10.0.0.0/8"), 8)
        manager.insert(p("10.1.0.0/16"), 16)
        manager.insert(p("10.1.1.0/24"), 24)
        assert manager.lookup(0x0A010101) == 24
        assert manager.lookup(0x0A010201) == 16
        assert manager.lookup(0x0A020101) == 8
        assert manager.lookup(0x0B000000) is None

    def test_insertion_order_irrelevant(self):
        a = SortedTcamManager(capacity=8)
        b = SortedTcamManager(capacity=8)
        routes = [(p("10.0.0.0/8"), 1), (p("10.1.0.0/16"), 2)]
        for prefix, hop in routes:
            a.insert(prefix, hop)
        for prefix, hop in reversed(routes):
            b.insert(prefix, hop)
        for address in (0x0A010000, 0x0A020000):
            assert a.lookup(address) == b.lookup(address)


class TestMoveAccounting:
    def test_insert_at_pivot_is_free(self):
        manager = SortedTcamManager(capacity=16, pivot_length=24)
        assert manager.insert(p("10.1.1.0/24"), 1) == 0

    def test_moves_count_intervening_regions(self):
        manager = SortedTcamManager(capacity=32, pivot_length=24)
        manager.insert(p("10.1.1.0/24"), 1)
        manager.insert(p("10.1.0.0/25"), 1)   # hops over /24 region
        assert manager.stats.entry_moves == 1
        # A /32 insert must displace one edge entry per non-empty region
        # between 32 and the pool (here /25 and /24).
        moves = manager.insert(p("10.1.1.1/32"), 1)
        assert moves == 2

    def test_empty_regions_cost_nothing(self):
        manager = SortedTcamManager(capacity=32, pivot_length=24)
        assert manager.insert(p("10.1.1.1/32"), 1) == 0  # nothing between

    def test_short_side_of_pivot(self):
        manager = SortedTcamManager(capacity=32, pivot_length=24)
        manager.insert(p("10.0.0.0/16"), 1)
        moves = manager.insert(p("12.0.0.0/8"), 1)  # hops over /16
        assert moves == 1

    def test_update_in_place_free(self):
        manager = SortedTcamManager(capacity=8)
        manager.insert(p("10.0.0.0/8"), 1)
        assert manager.insert(p("10.0.0.0/8"), 2) == 0
        assert manager.lookup(0x0A000000) == 2
        assert manager.entry_count == 1

    def test_moves_per_insert_statistic(self):
        manager = SortedTcamManager(capacity=64, pivot_length=24)
        for i, length in enumerate((24, 25, 26, 27, 28)):
            prefix = Prefix.from_bits((0x0A << (length - 8)) | i, length)
            manager.insert(prefix, 1)
        assert manager.stats.moves_per_insert >= 1.0


class TestBoundaries:
    def test_capacity(self):
        manager = SortedTcamManager(capacity=1)
        manager.insert(p("10.0.0.0/8"), 1)
        with pytest.raises(CapacityError):
            manager.insert(p("11.0.0.0/8"), 1)

    def test_delete(self):
        manager = SortedTcamManager(capacity=8)
        manager.insert(p("10.0.0.0/8"), 1)
        manager.delete(p("10.0.0.0/8"))
        assert manager.lookup(0x0A000000) is None
        with pytest.raises(LookupError_):
            manager.delete(p("10.0.0.0/8"))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SortedTcamManager(capacity=0)
        with pytest.raises(ConfigurationError):
            SortedTcamManager(capacity=8, pivot_length=40)
