"""Segmented SECDED: encode/check contracts, scalar == vectorized."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reliability.ecc import (
    ECC_CLEAN,
    ECC_CORRECTED,
    ECC_DETECTED,
    ECC_SEGMENT_BITS,
    bits_to_checkwords,
    check_row,
    checkwords_for_rows,
    encode_row,
    segment_count,
)
from repro.utils.rng import make_rng

ROW_BITS = 200  # three full segments + one 8-bit partial


def _random_rows(count, row_bits=ROW_BITS, seed=3):
    rng = make_rng(seed)
    return [
        int.from_bytes(rng.bytes((row_bits + 7) // 8), "big")
        & ((1 << row_bits) - 1)
        for _ in range(count)
    ]


class TestSegmentation:
    def test_segment_count(self):
        assert segment_count(1) == 1
        assert segment_count(64) == 1
        assert segment_count(65) == 2
        assert segment_count(ROW_BITS) == 4

    def test_invalid_row_bits(self):
        with pytest.raises(ConfigurationError):
            segment_count(0)

    def test_checkword_length(self):
        assert len(encode_row(0, ROW_BITS)) == segment_count(ROW_BITS)

    def test_value_must_fit(self):
        with pytest.raises(ConfigurationError):
            encode_row(1 << 64, 64)
        with pytest.raises(ConfigurationError):
            encode_row(-1, 64)


class TestCheckRow:
    def test_clean(self):
        for value in _random_rows(10):
            cw = encode_row(value, ROW_BITS)
            assert check_row(value, cw, ROW_BITS) == (ECC_CLEAN, value, None)

    def test_single_flip_corrected_every_position(self):
        value = _random_rows(1)[0]
        cw = encode_row(value, ROW_BITS)
        for bit in range(ROW_BITS):
            status, corrected, flipped = check_row(
                value ^ (1 << bit), cw, ROW_BITS
            )
            assert status == ECC_CORRECTED
            assert corrected == value
            assert flipped == (bit,)

    def test_double_flip_same_segment_detected(self):
        value = _random_rows(1)[0]
        cw = encode_row(value, ROW_BITS)
        for base in (0, ECC_SEGMENT_BITS, 2 * ECC_SEGMENT_BITS):
            corrupted = value ^ (1 << base) ^ (1 << (base + 1))
            status, returned, flipped = check_row(corrupted, cw, ROW_BITS)
            assert status == ECC_DETECTED
            assert returned == corrupted
            assert flipped is None

    def test_flips_in_distinct_segments_all_corrected(self):
        """The payoff of segmentation: one error per segment is fine."""
        value = _random_rows(1)[0]
        cw = encode_row(value, ROW_BITS)
        positions = (3, ECC_SEGMENT_BITS + 60, 2 * ECC_SEGMENT_BITS + 17, 197)
        corrupted = value
        for bit in positions:
            corrupted ^= 1 << bit
        status, corrected, flipped = check_row(corrupted, cw, ROW_BITS)
        assert status == ECC_CORRECTED
        assert corrected == value
        assert set(flipped) == set(positions)

    def test_checkword_shape_enforced(self):
        with pytest.raises(ConfigurationError):
            check_row(0, (0,), ROW_BITS)


class TestVectorizedEncoders:
    def test_checkwords_for_rows_matches_scalar(self):
        rows = _random_rows(50)
        vectorized = checkwords_for_rows(rows, ROW_BITS, chunk_rows=16)
        assert vectorized == [encode_row(v, ROW_BITS) for v in rows]

    def test_bits_to_checkwords_matches_scalar(self):
        rows = _random_rows(20, row_bits=70, seed=9)
        nbytes = (70 + 7) // 8
        buf = b"".join(v.to_bytes(nbytes, "big") for v in rows)
        matrix = np.frombuffer(buf, dtype=np.uint8).reshape(len(rows), nbytes)
        bits = np.unpackbits(matrix, axis=1)[:, nbytes * 8 - 70 :]
        assert bits_to_checkwords(bits) == [encode_row(v, 70) for v in rows]

    def test_bad_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            bits_to_checkwords(np.zeros(8, dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            checkwords_for_rows([0], 0)
