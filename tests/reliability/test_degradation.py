"""Graceful degradation end to end: restore, quarantine, victim overlay.

Drives a small CARAMSlice and a SliceGroup through manufactured faults
and checks the layer's one contract — detect or correct, never lie —
plus the bookkeeping around it (victims, retries, rebuild, telemetry).
"""

import pytest

from repro.core.config import Arrangement, SliceConfig
from repro.core.index import make_index_generator
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.core.subsystem import SliceGroup
from repro.errors import ConfigurationError, ReliabilityError
from repro.hashing.base import ModuloHash
from repro.hashing.bit_select import BitSelectHash
from repro.reliability.faults import FaultConfig
from repro.reliability.manager import ReliabilityPolicy
from repro.utils.rng import make_rng

INDEX_BITS = 6
KEY_BITS = 32
DATA_BITS = 16


def _build_slice():
    config = SliceConfig(
        index_bits=INDEX_BITS,
        row_bits=256,
        record_format=RecordFormat(key_bits=KEY_BITS, data_bits=DATA_BITS),
    )
    positions = range(KEY_BITS - INDEX_BITS, KEY_BITS)
    gen = make_index_generator(BitSelectHash(KEY_BITS, list(positions)))
    return CARAMSlice(config, gen)


def _build_group(arrangement=Arrangement.HORIZONTAL, slice_count=2):
    config = SliceConfig(
        index_bits=INDEX_BITS,
        row_bits=256,
        record_format=RecordFormat(key_bits=KEY_BITS, data_bits=DATA_BITS),
    )
    buckets = (
        config.rows * slice_count
        if arrangement is Arrangement.VERTICAL
        else config.rows
    )
    return SliceGroup(
        config=config,
        slice_count=slice_count,
        arrangement=arrangement,
        hash_function=ModuloHash(buckets),
    )


def _stored_keys(target, seed=42):
    rng = make_rng(seed)
    keys = []
    seen = set()
    while len(keys) < target:
        key = int(rng.integers(0, 1 << KEY_BITS))
        if key not in seen:
            seen.add(key)
            keys.append(key)
    return keys


@pytest.fixture
def loaded_slice():
    slice_ = _build_slice()
    keys = _stored_keys(int(slice_.config.capacity_records * 0.5))
    slice_.bulk_load([(k, k & 0xFFFF) for k in keys])
    return slice_, keys


def _home(slice_, key):
    return slice_.index_generator.index(key)


class TestEnableDisable:
    def test_enable_installs_guards(self, loaded_slice):
        slice_, _ = loaded_slice
        manager = slice_.enable_reliability()
        assert slice_.reliability is manager
        assert slice_.memory.guard is not None
        slice_.disable_reliability()
        assert slice_.reliability is None
        assert slice_.memory.guard is None

    def test_lookups_unchanged_with_clean_layer(self, loaded_slice):
        slice_, keys = loaded_slice
        expected = [slice_.search(k).data for k in keys[:50]]
        slice_.enable_reliability()
        assert [slice_.search(k).data for k in keys[:50]] == expected


class TestRestore:
    def test_detected_corruption_restored_in_place(self, loaded_slice):
        slice_, keys = loaded_slice
        slice_.search_batch(keys[:4])  # warm the mirror (last-good copy)
        slice_.enable_reliability()
        target = _home(slice_, keys[0])
        expected = slice_.search(keys[0]).data
        slice_.memory._data[target] ^= 0b11  # double flip, one segment
        assert slice_.search(keys[0]).data == expected
        manager = slice_.reliability
        assert manager.restores == 1
        assert not manager.quarantined_buckets
        assert slice_.stats.lookup_retries >= 1

    def test_restore_budget_escalates_to_quarantine(self, loaded_slice):
        slice_, keys = loaded_slice
        slice_.search_batch(keys[:4])
        slice_.enable_reliability(ReliabilityPolicy(restore_attempts=0))
        target = _home(slice_, keys[0])
        expected = slice_.search(keys[0]).data
        slice_.memory._data[target] ^= 0b11
        assert slice_.search(keys[0]).data == expected
        assert target in slice_.reliability.quarantined_buckets


class TestQuarantine:
    def test_dead_row_records_still_found(self, loaded_slice):
        slice_, keys = loaded_slice
        target = _home(slice_, keys[0])
        slice_.enable_reliability(faults=FaultConfig(dead_rows=(target,)))
        for key in keys:
            result = slice_.search(key)
            assert result.hit and result.data == key & 0xFFFF
        manager = slice_.reliability
        assert target in manager.quarantined_buckets
        assert manager.victims
        assert slice_.stats.quarantines >= 1
        assert slice_.stats.victim_hits >= 1

    def test_batch_equals_scalar_under_quarantine(self, loaded_slice):
        slice_, keys = loaded_slice
        target = _home(slice_, keys[0])
        slice_.enable_reliability(faults=FaultConfig(dead_rows=(target,)))
        rng = make_rng(9)
        queries = keys + [
            int(k) for k in rng.integers(0, 1 << KEY_BITS, size=100)
        ]
        scalar = [
            (r.hit, r.data if r.hit else None)
            for r in map(slice_.search, queries)
        ]
        batch = [
            (r.hit, r.data if r.hit else None)
            for r in slice_.search_batch(queries)
        ]
        assert batch == scalar

    def test_victim_store_capacity_enforced(self, loaded_slice):
        slice_, keys = loaded_slice
        target = _home(slice_, keys[0])
        slice_.enable_reliability(
            ReliabilityPolicy(victim_capacity=0, restore_attempts=0),
            FaultConfig(dead_rows=(target,)),
        )
        with pytest.raises(ReliabilityError):
            slice_.search(keys[0])

    def test_rebuild_reabsorbs_victims(self, loaded_slice):
        slice_, keys = loaded_slice
        target = _home(slice_, keys[0])
        slice_.enable_reliability(faults=FaultConfig(dead_rows=(target,)))
        slice_.search(keys[0])  # trigger the quarantine
        manager = slice_.reliability
        assert manager.victims
        slice_.rebuild()
        assert not manager.victims
        assert not manager.quarantined_buckets
        for key in keys:
            assert slice_.search(key).data == key & 0xFFFF


class TestGroupDegradation:
    @pytest.mark.parametrize(
        "arrangement", [Arrangement.HORIZONTAL, Arrangement.VERTICAL]
    )
    def test_dead_row_survival_both_arrangements(self, arrangement):
        group = _build_group(arrangement)
        keys = _stored_keys(int(group.capacity_records * 0.4))
        group.bulk_load([(k, k & 0xFFFF) for k in keys])
        group.enable_reliability(
            faults=FaultConfig(dead_rows=(3, 17), dead_row_count=1, seed=2)
        )
        for key in keys:
            result = group.search(key)
            assert result.hit and result.data == key & 0xFFFF
        scalar = [(r.hit, r.data) for r in map(group.search, keys)]
        batch = [(r.hit, r.data) for r in group.search_batch(keys)]
        assert batch == scalar

    def test_telemetry_provider_exports_reliability(self):
        from repro.telemetry.metrics import MetricsRegistry

        group = _build_group()
        keys = _stored_keys(20)
        group.bulk_load([(k, 1) for k in keys])
        registry = MetricsRegistry()
        group.register_telemetry(registry, prefix="g")
        group.enable_reliability(faults=FaultConfig(dead_rows=(0,)))
        snapshot = registry.snapshot()
        assert snapshot["stats"]["g.reliability"]["ecc"] is True


class TestPolicyValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ReliabilityPolicy(quarantine_threshold=0)
        with pytest.raises(ConfigurationError):
            ReliabilityPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ReliabilityPolicy(restore_attempts=-1)
        with pytest.raises(ConfigurationError):
            ReliabilityPolicy(victim_capacity=-1)
