"""Chaos-soak harness: invariant enforcement, sweep plumbing, chaos mode.

Small query counts keep these fast; the full 10k-per-workload gate runs
in ``benchmarks/bench_fault_soak.py``.
"""

import pytest

from repro.errors import ConfigurationError
from repro.reliability.manager import ReliabilityPolicy
from repro.reliability.soak import (
    SoakReport,
    WorkloadReport,
    format_sweep_table,
    run_soak,
    run_soak_sweep,
)


class TestRunSoak:
    def test_ip_workload_detect_or_correct(self):
        report = run_soak("ip", bit_flip_rate=1e-4, queries=600, seed=3)
        assert report.name == "ip"
        assert report.queries == 600
        assert report.silent_wrong == 0
        assert report.faults_injected > 0

    def test_trigram_workload_detect_or_correct(self):
        report = run_soak("trigram", bit_flip_rate=1e-4, queries=400, seed=3)
        assert report.silent_wrong == 0
        assert report.faults_injected > 0

    def test_zero_rate_is_penalty_free_of_faults(self):
        report = run_soak(
            "ip",
            bit_flip_rate=0.0,
            queries=300,
            seed=1,
            stuck_cells=0,
            dead_rows=0,
        )
        assert report.silent_wrong == 0
        assert report.faults_injected == 0
        assert report.ecc_corrections == 0
        assert report.quarantines == 0

    def test_deterministic_given_seed(self):
        a = run_soak("ip", bit_flip_rate=1e-3, queries=300, seed=11)
        b = run_soak("ip", bit_flip_rate=1e-3, queries=300, seed=11)
        assert a.faults_injected == b.faults_injected
        assert a.ecc_corrections == b.ecc_corrections
        assert a.quarantines == b.quarantines
        assert a.silent_wrong == b.silent_wrong == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            run_soak("bogus", bit_flip_rate=1e-4, queries=100)

    def test_nonpositive_queries_rejected(self):
        with pytest.raises(ConfigurationError):
            run_soak("ip", bit_flip_rate=1e-4, queries=0)
        with pytest.raises(ConfigurationError):
            run_soak("ip", bit_flip_rate=1e-4, queries=-5)

    def test_chaos_mode_ecc_off_runs(self):
        """With ECC disabled the harness must still run and *count* the
        silent corruptions it can no longer prevent."""
        policy = ReliabilityPolicy(ecc=False, victim_capacity=4096)
        report = run_soak(
            "ip", bit_flip_rate=1e-3, queries=500, seed=3, policy=policy
        )
        assert report.queries == 500
        assert report.silent_wrong >= 0  # counted, not asserted zero

    def test_as_dict_round_trips_json(self):
        import json

        report = run_soak("ip", bit_flip_rate=1e-4, queries=200, seed=5)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["name"] == "ip"
        assert payload["silent_wrong"] == 0
        assert "amal_penalty" in payload


class TestSweep:
    def test_sweep_covers_rates_and_workloads(self):
        reports = run_soak_sweep(
            rates=(0.0, 1e-4), workloads=("ip",), queries=200, seed=2
        )
        assert [r.bit_flip_rate for r in reports] == [0.0, 1e-4]
        for soak in reports:
            assert [w.name for w in soak.workloads] == ["ip"]
            assert soak.silent_wrong == 0

    def test_format_sweep_table(self):
        reports = run_soak_sweep(
            rates=(1e-4,), workloads=("ip",), queries=200, seed=2
        )
        table = format_sweep_table(reports)
        lines = table.splitlines()
        assert "workload" in lines[0]
        assert any("ip" in line for line in lines[1:])
        assert any("e-04" in line for line in lines)


class TestReportArithmetic:
    def _workload(self, **kw):
        base = dict(
            name="ip",
            queries=100,
            silent_wrong=0,
            clean_amal=1.0,
            faulty_amal=1.2,
            clean_seconds=1.0,
            faulty_seconds=3.0,
            faults_injected=5,
            ecc_corrections=4,
            corruption_detections=1,
            quarantines=1,
            victim_records=2,
            victim_hits=3,
            lookup_retries=1,
            restores=1,
            scrub_corrected=0,
            scrub_quarantined=0,
            unrecoverable_rows=0,
        )
        base.update(kw)
        return WorkloadReport(**base)

    def test_penalties(self):
        report = self._workload()
        assert report.amal_penalty == pytest.approx(0.2)
        assert report.latency_penalty == pytest.approx(3.0)

    def test_soak_silent_wrong_sums_workloads(self):
        soak = SoakReport(
            bit_flip_rate=1e-4,
            seed=1,
            workloads=[
                self._workload(silent_wrong=2),
                self._workload(name="trigram", silent_wrong=3),
            ],
        )
        assert soak.silent_wrong == 5
