"""Row guard: checkword maintenance, detect-or-correct reads, scrubbing."""

import pytest

from repro.core.stats import SearchStats
from repro.errors import CorruptionError
from repro.memory.array import MemoryArray
from repro.reliability.ecc import (
    ECC_CLEAN,
    ECC_CORRECTED,
    ECC_DETECTED,
    encode_row,
)
from repro.reliability.faults import FaultConfig, FaultInjector
from repro.reliability.guard import RowGuard

ROWS = 16
ROW_BITS = 96


def _guarded(config=None, **kwargs):
    array = MemoryArray(ROWS, ROW_BITS)
    injector = None
    if config is not None:
        injector = FaultInjector(config, ROWS, ROW_BITS)
    guard = RowGuard(array, injector=injector, **kwargs)
    return array, guard


class TestCheckwordMaintenance:
    def test_install_covers_existing_content(self):
        array = MemoryArray(ROWS, ROW_BITS)
        array.write_row(3, 0xDEAD)
        guard = RowGuard(array)
        assert guard.checkwords[3] == encode_row(0xDEAD, ROW_BITS)

    def test_write_updates_checkword(self):
        array, guard = _guarded()
        array.write_row(5, 0xBEEF)
        assert guard.checkwords[5] == encode_row(0xBEEF, ROW_BITS)

    def test_load_vectorized_encode(self):
        array, guard = _guarded()
        rows = [7, 0x123456789, (1 << ROW_BITS) - 1]
        array.load(rows, 2)
        assert guard.checkwords[2:5] == [
            encode_row(v, ROW_BITS) for v in rows
        ]

    def test_fill_resets_all(self):
        array, guard = _guarded()
        array.write_row(1, 99)
        array.fill(0)
        assert guard.checkwords == [encode_row(0, ROW_BITS)] * ROWS


class TestReadPath:
    def test_clean_read_passes_through(self):
        array, guard = _guarded()
        array.write_row(0, 0xABC)
        assert array.read_row(0) == 0xABC

    def test_corruption_corrected_and_written_back(self):
        array, guard = _guarded()
        array.write_row(0, 0xABC)
        array._data[0] ^= 1 << 7  # cosmic ray
        assert array.read_row(0) == 0xABC
        assert array._data[0] == 0xABC  # write-back healed the cell
        assert guard.stats.corrections == 1

    def test_double_flip_raises(self):
        array, guard = _guarded()
        array.write_row(0, 0xABC)
        array._data[0] ^= 0b11 << 4
        with pytest.raises(CorruptionError) as info:
            array.read_row(0)
        assert info.value.row == 0
        assert guard.stats.detections == 1

    def test_flips_in_distinct_segments_corrected(self):
        array, guard = _guarded()
        array.write_row(0, 0xABC)
        array._data[0] ^= (1 << 3) | (1 << 70)  # two segments
        assert array.read_row(0) == 0xABC

    def test_soft_flips_persist_until_corrected(self):
        config = FaultConfig(seed=5, bit_flip_rate=0.02)
        array, guard = _guarded(config, correct_writeback=False)
        array.write_row(0, 0xF00)
        flipped = False
        for _ in range(200):
            try:
                value = array.read_row(0)
            except CorruptionError:
                flipped = True
                break
            if array._data[0] != 0xF00:
                flipped = True
                break
        assert flipped, "no fault in 200 reads at rate 0.02 x 96 bits"

    def test_dead_row_always_raises(self):
        config = FaultConfig(dead_rows=(4,))
        array, guard = _guarded(config)
        array.write_row(4, 0x1)
        for _ in range(3):
            with pytest.raises(CorruptionError):
                array.read_row(4)

    def test_ecc_off_returns_silently_wrong_data(self):
        config = FaultConfig(dead_rows=(4,))
        array, guard = _guarded(config, ecc=False)
        array.write_row(4, 0)
        assert array.read_row(4) != 0  # the overlay leaks through


class TestStuckCells:
    def test_stuck_cell_correctable_on_every_read(self):
        config = FaultConfig(stuck_cells=((2, 9, 1),))
        array, guard = _guarded(config)
        array.write_row(2, 0)
        assert array._data[2] == 1 << 9
        for _ in range(3):
            assert array.read_row(2) == 0
        # Write-back cannot heal a stuck cell: the bit re-sticks.
        assert array._data[2] == 1 << 9
        assert guard.stats.corrections == 3


class TestScrub:
    def test_scrub_row_repairs(self):
        array, guard = _guarded()
        array.write_row(0, 0x77)
        array._data[0] ^= 1 << 2
        assert guard.scrub_row(0) == ECC_CORRECTED
        assert array._data[0] == 0x77
        assert guard.scrub_row(0) == ECC_CLEAN

    def test_scrub_row_flags_dead(self):
        config = FaultConfig(dead_rows=(1,))
        array, guard = _guarded(config)
        assert guard.scrub_row(1) == ECC_DETECTED

    def test_recheck_write_read_back(self):
        config = FaultConfig(stuck_cells=((2, 9, 1),))
        array, guard = _guarded(config)
        array.write_row(2, 0)
        assert guard.scrub_row(2) == ECC_CORRECTED
        # The repair did not hold: the cell is stuck.
        assert guard.recheck(2) == ECC_CORRECTED
        # A transient flip, by contrast, stays healed.
        array.write_row(3, 0x55)
        array._data[3] ^= 1 << 1
        assert guard.scrub_row(3) == ECC_CORRECTED
        assert guard.recheck(3) == ECC_CLEAN


class TestStatsWiring:
    def test_events_land_in_search_stats(self):
        array, guard = _guarded()
        stats = SearchStats()
        guard.search_stats = stats
        array.write_row(0, 0xAA)
        array._data[0] ^= 1 << 3
        array.read_row(0)
        array._data[0] ^= 0b11
        with pytest.raises(CorruptionError):
            array.read_row(0)
        assert stats.ecc_corrections == 1
        assert stats.corruption_detections == 1

    def test_quarantine_resets_row_state(self):
        config = FaultConfig(dead_rows=(4,))
        array, guard = _guarded(config)
        guard.corrected_counts[4] = 7
        guard.quarantine(4)
        assert 4 in guard.quarantined
        assert 4 not in guard.corrected_counts
        assert not guard.injector.is_dead(4)
