"""Fault injector: determinism, stuck cells, dead rows, row sparing."""

import pytest

from repro.errors import ConfigurationError
from repro.reliability.ecc import (
    ECC_DETECTED,
    ECC_SEGMENT_BITS,
    check_row,
    encode_row,
)
from repro.reliability.faults import FaultConfig, FaultInjector

ROWS = 64
ROW_BITS = 160


class TestFaultConfig:
    def test_defaults_are_fault_free(self):
        assert not FaultConfig().any_faults

    def test_any_faults(self):
        assert FaultConfig(bit_flip_rate=1e-4).any_faults
        assert FaultConfig(dead_rows=(3,)).any_faults
        assert FaultConfig(stuck_cells=((0, 1, 1),)).any_faults

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(bit_flip_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultConfig(stuck_cell_count=-1)
        with pytest.raises(ConfigurationError):
            FaultConfig(stuck_cells=((0, 1, 2),))


class TestDeterminism:
    def test_same_seed_same_stream(self):
        config = FaultConfig(seed=11, bit_flip_rate=0.01, dead_row_count=2)
        a = FaultInjector(config, ROWS, ROW_BITS)
        b = FaultInjector(config, ROWS, ROW_BITS)
        assert [a.flips_for_read(r % ROWS) for r in range(50)] == [
            b.flips_for_read(r % ROWS) for r in range(50)
        ]
        assert sorted(a._dead_overlays) == sorted(b._dead_overlays)

    def test_salt_decorrelates_arrays(self):
        config = FaultConfig(seed=11, bit_flip_rate=0.05)
        a = FaultInjector(config, ROWS, ROW_BITS, salt=0)
        b = FaultInjector(config, ROWS, ROW_BITS, salt=1)
        assert [a.flips_for_read(0) for _ in range(30)] != [
            b.flips_for_read(0) for _ in range(30)
        ]


class TestStuckCells:
    def test_applied_at_write(self):
        config = FaultConfig(stuck_cells=((2, 5, 1), (2, 7, 0)))
        injector = FaultInjector(config, ROWS, ROW_BITS)
        stored = injector.apply_write(2, 0)
        assert stored == 1 << 5
        stored = injector.apply_write(2, (1 << 7) | (1 << 3))
        assert stored == (1 << 3) | (1 << 5)

    def test_other_rows_untouched(self):
        config = FaultConfig(stuck_cells=((2, 5, 1),))
        injector = FaultInjector(config, ROWS, ROW_BITS)
        assert injector.apply_write(3, 42) == 42

    def test_random_cells_counted(self):
        injector = FaultInjector(
            FaultConfig(seed=1, stuck_cell_count=5), ROWS, ROW_BITS
        )
        assert injector.stats.stuck_cell_count == 5


class TestDeadRows:
    def test_overlay_always_detected_by_segmented_ecc(self):
        """The two overlay bits share one segment, so every segment size
        of real rows sees a guaranteed-detected double flip."""
        injector = FaultInjector(
            FaultConfig(dead_rows=tuple(range(ROWS))), ROWS, ROW_BITS
        )
        for row in range(ROWS):
            overlay = injector.read_overlay(row)
            assert bin(overlay).count("1") == 2
            low = (overlay & -overlay).bit_length() - 1
            assert overlay == 0b11 << low
            assert low // ECC_SEGMENT_BITS == (low + 1) // ECC_SEGMENT_BITS
            value = 0x5A5A
            cw = encode_row(value, ROW_BITS)
            status, _, _ = check_row(value ^ overlay, cw, ROW_BITS)
            assert status == ECC_DETECTED

    def test_is_dead(self):
        injector = FaultInjector(FaultConfig(dead_rows=(4,)), ROWS, ROW_BITS)
        assert injector.is_dead(4)
        assert not injector.is_dead(5)
        assert injector.read_overlay(5) == 0


class TestRetireRow:
    def test_retire_clears_hard_faults(self):
        config = FaultConfig(dead_rows=(4,), stuck_cells=((4, 1, 1),))
        injector = FaultInjector(config, ROWS, ROW_BITS)
        injector.retire_row(4)
        assert not injector.is_dead(4)
        assert injector.apply_write(4, 0) == 0
        assert injector.stats.retired_rows == 1

    def test_retire_healthy_row_is_noop(self):
        injector = FaultInjector(FaultConfig(dead_rows=(4,)), ROWS, ROW_BITS)
        injector.retire_row(9)
        assert injector.stats.retired_rows == 0
