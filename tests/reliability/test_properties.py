"""Property-based tests for the reliability-critical codecs.

Three invariants Hypothesis explores that example tests cannot cover
exhaustively:

* the mirror's encode/decode pair (``keys_to_words`` → ``words_to_bits``
  → ``rows_from_bits``) round-trips every value and *rejects* corrupted
  widths instead of silently truncating;
* segmented SECDED corrects any single flip and detects any same-segment
  double flip, at every geometry;
* quarantining a bucket never breaks batch ≡ scalar agreement.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, KeyFormatError
from repro.memory.mirror import (
    KEY_WORD_BITS,
    int_to_words,
    keys_to_words,
    rows_from_bits,
    words_for_bits,
    words_to_bits,
)
from repro.reliability.ecc import (
    ECC_CLEAN,
    ECC_CORRECTED,
    ECC_DETECTED,
    ECC_SEGMENT_BITS,
    check_row,
    encode_row,
)


@st.composite
def values_and_bits(draw, max_bits=200):
    bits = draw(st.integers(min_value=1, max_value=max_bits))
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=1,
            max_size=16,
        )
    )
    return values, bits


class TestMirrorCodecRoundTrip:
    @given(values_and_bits())
    @settings(max_examples=60, deadline=None)
    def test_words_to_bits_rows_from_bits_round_trip(self, case):
        values, bits = case
        words = keys_to_words(values, bits)
        bit_matrix = words_to_bits(words, bits)
        assert rows_from_bits(bit_matrix, bits) == values

    @given(values_and_bits())
    @settings(max_examples=40, deadline=None)
    def test_int_to_words_inverts_packing(self, case):
        values, bits = case
        word_count = words_for_bits(bits)
        words = keys_to_words(values, bits)
        for i, value in enumerate(values):
            assert words[i].tolist() == int_to_words(value, word_count)

    @given(values_and_bits(max_bits=120))
    @settings(max_examples=40, deadline=None)
    def test_oversized_keys_rejected(self, case):
        values, bits = case
        oversized = values + [1 << bits]
        with pytest.raises(KeyFormatError):
            keys_to_words(oversized, bits)

    @given(
        values_and_bits(max_bits=120),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_corrupted_width_rejected(self, case, delta):
        """A bit matrix that does not match the declared row width must be
        rejected, never reinterpreted."""
        values, bits = case
        bit_matrix = words_to_bits(keys_to_words(values, bits), bits)
        with pytest.raises(ConfigurationError):
            rows_from_bits(bit_matrix, bits + delta)
        word_count = words_for_bits(bits)
        with pytest.raises(ConfigurationError):
            words_to_bits(
                keys_to_words(values, bits),
                word_count * KEY_WORD_BITS + delta,
            )


class TestSegmentedSecdedProperties:
    @given(
        st.integers(min_value=1, max_value=300),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_single_flip_always_corrected(self, row_bits, data):
        value = data.draw(
            st.integers(min_value=0, max_value=(1 << row_bits) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=row_bits - 1))
        checkword = encode_row(value, row_bits)
        status, corrected, flipped = check_row(
            value ^ (1 << bit), checkword, row_bits
        )
        assert status == ECC_CORRECTED
        assert corrected == value
        assert flipped == (bit,)

    @given(
        st.integers(min_value=2, max_value=300),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_same_segment_double_flip_always_detected(self, row_bits, data):
        value = data.draw(
            st.integers(min_value=0, max_value=(1 << row_bits) - 1)
        )
        # Draw two distinct LSB positions inside one segment.
        segment = data.draw(
            st.integers(
                min_value=0, max_value=(row_bits - 1) // ECC_SEGMENT_BITS
            )
        )
        low = segment * ECC_SEGMENT_BITS
        high = min(row_bits, low + ECC_SEGMENT_BITS) - 1
        bit_a = data.draw(st.integers(min_value=low, max_value=high))
        bit_b = data.draw(st.integers(min_value=low, max_value=high))
        if bit_a == bit_b:
            return  # single flip: covered by the property above
        corrupted = value ^ (1 << bit_a) ^ (1 << bit_b)
        status, returned, flipped = check_row(
            corrupted, encode_row(value, row_bits), row_bits
        )
        assert status == ECC_DETECTED
        assert returned == corrupted
        assert flipped is None

    @given(st.integers(min_value=1, max_value=300), st.data())
    @settings(max_examples=40, deadline=None)
    def test_clean_rows_verify_clean(self, row_bits, data):
        value = data.draw(
            st.integers(min_value=0, max_value=(1 << row_bits) - 1)
        )
        assert check_row(value, encode_row(value, row_bits), row_bits) == (
            ECC_CLEAN,
            value,
            None,
        )


class TestBatchScalarAgreementUnderQuarantine:
    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_quarantined_bucket_keeps_paths_agreeing(self, dead_row, seed):
        from repro.core.config import SliceConfig
        from repro.core.index import make_index_generator
        from repro.core.record import RecordFormat
        from repro.core.slice import CARAMSlice
        from repro.hashing.bit_select import BitSelectHash
        from repro.reliability.faults import FaultConfig
        from repro.utils.rng import make_rng

        config = SliceConfig(
            index_bits=6,
            row_bits=256,
            record_format=RecordFormat(key_bits=32, data_bits=16),
        )
        gen = make_index_generator(BitSelectHash(32, list(range(26, 32))))
        slice_ = CARAMSlice(config, gen)
        rng = make_rng(seed)
        keys = sorted(
            {int(k) for k in rng.integers(0, 1 << 32, size=120)}
        )
        slice_.bulk_load([(k, k & 0xFFFF) for k in keys])
        slice_.enable_reliability(faults=FaultConfig(dead_rows=(dead_row,)))
        queries = keys + [int(k) for k in rng.integers(0, 1 << 32, size=40)]
        scalar = [
            (r.hit, r.data if r.hit else None)
            for r in map(slice_.search, queries)
        ]
        batch = [
            (r.hit, r.data if r.hit else None)
            for r in slice_.search_batch(queries)
        ]
        assert batch == scalar
        for key in keys:
            assert slice_.search(key).data == key & 0xFFFF
