"""MetricsRegistry: instruments, providers, snapshots."""

import json

import pytest

from repro.core.stats import SearchStats
from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = CounterMetric("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ConfigurationError):
            CounterMetric("c").inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = GaugeMetric("g")
        gauge.set(3)
        gauge.set(0.25)
        assert gauge.value == 0.25

    def test_histogram_exact_counts(self):
        histogram = HistogramMetric("h")
        histogram.observe(1, count=3)
        histogram.observe(2)
        histogram.observe_many([1, 4, 4])
        assert histogram.counts == {1: 4, 2: 1, 4: 2}
        assert histogram.observations == 7
        assert histogram.total == 4 + 2 + 8
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.max == 4

    def test_histogram_as_dict_string_keys(self):
        histogram = HistogramMetric("h")
        histogram.observe(2)
        exported = histogram.as_dict()
        assert exported["counts"] == {"2": 1}
        json.dumps(exported)  # must be serializable

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.gauge("g").set(9)
        registry.histogram("h").observe(3)
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 0
        assert snap["gauges"]["g"] == 0
        assert snap["histograms"]["h"]["observations"] == 0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_cross_kind_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_provider_object_with_as_dict(self):
        registry = MetricsRegistry()
        stats = SearchStats()
        registry.register_provider("slice.search", stats)
        stats.record_lookup(2, hit=True)
        snap = registry.snapshot()
        assert snap["stats"]["slice.search"]["lookups"] == 1
        assert snap["stats"]["slice.search"]["amal"] == 2.0

    def test_provider_callable(self):
        registry = MetricsRegistry()
        registry.register_provider("occ", lambda: {"load_factor": 0.5})
        assert registry.snapshot()["stats"]["occ"] == {"load_factor": 0.5}

    def test_provider_reread_each_snapshot(self):
        registry = MetricsRegistry()
        stats = SearchStats()
        registry.register_provider("s", stats)
        first = registry.snapshot()["stats"]["s"]["lookups"]
        stats.record_lookup(1, hit=False)
        second = registry.snapshot()["stats"]["s"]["lookups"]
        assert (first, second) == (0, 1)

    def test_duplicate_provider_prefix_rejected(self):
        registry = MetricsRegistry()
        registry.register_provider("p", lambda: {})
        with pytest.raises(ConfigurationError):
            registry.register_provider("p", lambda: {})

    def test_invalid_provider_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.register_provider("bad", object())

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(3)
        stats = SearchStats()
        stats.record_lookup(1, hit=True)
        registry.register_provider("s", stats)
        json.dumps(registry.snapshot())
        json.loads(registry.to_json())


class TestBulkPlanProvider:
    def test_slice_mounts_planner_totals_after_bulk_load(self):
        from repro.telemetry.workload import build_workload_slice, make_keys

        slice_ = build_workload_slice(index_bits=6, slots=8)
        registry = MetricsRegistry()
        slice_.register_telemetry(registry)
        assert registry.snapshot()["stats"]["slice.bulk"] == {}
        assert slice_.last_bulk_plan is None

        keys = make_keys(slice_, load_factor=0.6, seed=5)
        slice_.bulk_load([(k, i) for i, k in enumerate(keys)])
        plan = registry.snapshot()["stats"]["slice.bulk"]
        assert plan["record_count"] == len(keys)
        assert plan["copy_count"] == len(keys)
        assert plan["spill_rate"] == pytest.approx(
            plan["spilled_copies"] / plan["copy_count"]
        )
        assert slice_.last_bulk_plan.as_dict() == plan
