"""The synthetic workload runner and the ``repro telemetry`` CLI."""

import json

from repro.cli import main as cli_main
from repro.telemetry.workload import run_synthetic_workload


class TestWorkload:
    def test_report_structure(self):
        report = run_synthetic_workload(
            index_bits=6, slots=8, queries=500, scalar_queries=32
        )
        assert set(report) == {"workload", "metrics", "phases", "trace"}
        search = report["metrics"]["stats"]["slice.search"]
        assert search["lookups"] == 500 + 32
        assert 0.0 < search["hit_rate"] < 1.0
        assert search["amal"] >= 1.0
        assert report["trace"]["lookup"] == 32
        assert "bulk.plan" in report["phases"]
        assert "batch.home_match" in report["phases"]
        json.dumps(report)

    def test_no_trace_mode(self):
        report = run_synthetic_workload(
            index_bits=6, slots=8, queries=200, trace=False
        )
        assert report["trace"] is None

    def test_jsonl_trace_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        run_synthetic_workload(
            index_bits=6, slots=8, queries=200, trace_path=str(path)
        )
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert lines, "JSONL trace is empty"
        assert all("kind" in event for event in lines)
        kinds = {event["kind"] for event in lines}
        assert {"bulk_plan", "dma_burst", "lookup"} <= kinds

    def test_deterministic_given_seed(self):
        first = run_synthetic_workload(index_bits=6, slots=8, queries=300)
        second = run_synthetic_workload(index_bits=6, slots=8, queries=300)
        assert (
            first["metrics"]["stats"]["slice.search"]
            == second["metrics"]["stats"]["slice.search"]
        )
        assert first["trace"] == second["trace"]


class TestCli:
    def test_telemetry_run_writes_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = cli_main(
            [
                "telemetry", "run",
                "--queries", "300",
                "--index-bits", "6",
                "--slots", "8",
                "--json", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["workload"]["queries"] == 300
        printed = capsys.readouterr().out
        assert "search:" in printed
        assert "phases:" in printed

    def test_telemetry_diff_flags_regression(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        bad = tmp_path / "bad.json"
        base.write_text(json.dumps({"amal": 1.0}))
        bad.write_text(json.dumps({"amal": 2.0}))
        assert cli_main(["telemetry", "diff", str(base), str(base)]) == 0
        assert cli_main(["telemetry", "diff", str(base), str(bad)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_telemetry_diff_threshold(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps({"amal": 1.0}))
        cur.write_text(json.dumps({"amal": 1.2}))
        assert (
            cli_main(
                [
                    "telemetry", "diff", str(base), str(cur),
                    "--threshold", "0.5",
                ]
            )
            == 0
        )
