"""LatencyHistogram: relative-error bound, exact merge, JSON round-trip."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.telemetry.histogram import (
    DEFAULT_RELATIVE_ERROR,
    EXPORTED_QUANTILES,
    LatencyHistogram,
    is_sketch_dict,
    merge_sketch_dicts,
)


def exact_quantile(values, q):
    """The rank-based quantile the sketch approximates: the
    ``max(1, ceil(q * n))``-th smallest observation."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


latencies = st.floats(
    min_value=1e-9, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestRecording:
    def test_empty_sketch(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(0.99) == 0.0

    def test_counts_and_mean(self):
        hist = LatencyHistogram()
        hist.observe_many([0.001, 0.002, 0.003])
        assert hist.count == 3
        assert hist.mean == pytest.approx(0.002)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.003)

    def test_zero_and_negative_go_to_zero_bucket(self):
        hist = LatencyHistogram()
        hist.observe(0.0)
        hist.observe(-1.0)
        hist.observe(0.5)
        assert hist.zero_count == 2
        assert hist.count == 3
        assert hist.percentile(0.0) == 0.0
        assert hist.percentile(1.0) == pytest.approx(0.5, rel=0.02)

    def test_invalid_relative_error_rejected(self):
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ConfigurationError):
                LatencyHistogram(bad)

    def test_invalid_quantile_rejected(self):
        hist = LatencyHistogram()
        with pytest.raises(ConfigurationError):
            hist.percentile(1.5)


class TestRelativeErrorBound:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(latencies, min_size=1, max_size=300),
        q=st.floats(min_value=0.0, max_value=1.0),
        error=st.sampled_from([0.005, 0.01, 0.05]),
    )
    def test_percentile_within_configured_relative_error(
        self, values, q, error
    ):
        hist = LatencyHistogram(error)
        hist.observe_many(values)
        estimate = hist.percentile(q)
        exact = exact_quantile(values, q)
        assert abs(estimate - exact) <= error * exact * (1 + 1e-9), (
            estimate,
            exact,
        )

    def test_default_error_is_one_percent(self):
        assert DEFAULT_RELATIVE_ERROR == 0.01
        hist = LatencyHistogram()
        hist.observe_many(i / 1000.0 for i in range(1, 1001))
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = exact_quantile([i / 1000.0 for i in range(1, 1001)], q)
            assert abs(hist.percentile(q) - exact) <= 0.01 * exact


class TestMerge:
    @settings(max_examples=40, deadline=None)
    @given(
        chunks=st.lists(
            st.lists(latencies, min_size=1, max_size=60),
            min_size=2,
            max_size=5,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_merge_is_order_independent(self, chunks, q):
        sketches = []
        for chunk in chunks:
            hist = LatencyHistogram()
            hist.observe_many(chunk)
            sketches.append(hist)

        forward = LatencyHistogram()
        for sketch in sketches:
            forward.merge(sketch)
        backward = LatencyHistogram()
        for sketch in reversed(sketches):
            backward.merge(sketch)

        assert forward.counts == backward.counts
        assert forward.zero_count == backward.zero_count
        assert forward.percentile(q) == backward.percentile(q)

    def test_merge_equals_single_sketch(self):
        values_a = [0.001 * i for i in range(1, 50)]
        values_b = [0.01 * i for i in range(1, 50)]
        merged = LatencyHistogram()
        part_a = LatencyHistogram()
        part_a.observe_many(values_a)
        part_b = LatencyHistogram()
        part_b.observe_many(values_b)
        merged.merge(part_a).merge(part_b)

        single = LatencyHistogram()
        single.observe_many(values_a + values_b)
        assert merged.counts == single.counts
        assert merged.count == single.count
        for q in (0.5, 0.9, 0.99):
            assert merged.percentile(q) == single.percentile(q)

    def test_merge_rejects_mismatched_error(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram(0.01).merge(LatencyHistogram(0.05))

    def test_copy_is_independent(self):
        hist = LatencyHistogram()
        hist.observe(0.5)
        dup = hist.copy()
        dup.observe(0.25)
        assert hist.count == 1
        assert dup.count == 2


class TestSerialization:
    def test_json_round_trip(self):
        hist = LatencyHistogram()
        hist.observe_many([0.0, 0.001, 0.002, 0.1, 3.0])
        data = json.loads(json.dumps(hist.as_dict()))
        back = LatencyHistogram.from_dict(data)
        assert back.counts == hist.counts
        assert back.zero_count == hist.zero_count
        assert back.count == hist.count
        assert back.total == pytest.approx(hist.total)
        for q, _name in EXPORTED_QUANTILES:
            assert back.percentile(q) == hist.percentile(q)

    def test_as_dict_exports_percentile_leaves(self):
        hist = LatencyHistogram()
        hist.observe_many(i / 100.0 for i in range(1, 101))
        data = hist.as_dict()
        assert is_sketch_dict(data)
        for _q, name in EXPORTED_QUANTILES:
            assert name in data
        assert data["p50"] <= data["p99"] <= data["p999"]

    def test_is_sketch_dict_rejects_plain_dicts(self):
        assert not is_sketch_dict({"count": 3})
        assert not is_sketch_dict(42)

    def test_merge_sketch_dicts(self):
        part_a = LatencyHistogram()
        part_a.observe_many([0.001, 0.002])
        part_b = LatencyHistogram()
        part_b.observe_many([0.003])
        merged = merge_sketch_dicts([part_a.as_dict(), part_b.as_dict()])
        assert merged["count"] == 3
        assert merge_sketch_dicts([]) == {}


class TestStatsIntegration:
    def test_search_stats_latency_merges(self):
        from repro.core.stats import SearchStats

        left = SearchStats()
        left.enable_latency_tracking()
        left.latency.observe_many([0.001, 0.002])
        right = SearchStats()
        right.enable_latency_tracking()
        right.latency.observe(0.003)
        left.merge(right)
        assert left.latency.count == 3
        assert "latency" in left.as_dict()

    def test_search_stats_reset_clears_latency(self):
        from repro.core.stats import SearchStats

        stats = SearchStats()
        stats.enable_latency_tracking()
        stats.latency.observe(0.001)
        stats.reset()
        assert stats.latency.count == 0

    def test_batch_engine_records_chunk_latency(self):
        from repro.telemetry.workload import (
            build_workload_slice,
            make_keys,
            make_queries,
        )

        slice_ = build_workload_slice(6, 8)
        stored = make_keys(slice_, 0.6, 3)
        slice_.bulk_load([(key, key & 0xFFFF) for key in stored])
        slice_.enable_latency_tracking()
        slice_.search_batch(make_queries(stored, 2000, 0.5, 4))
        latency = slice_.stats.latency
        assert latency is not None
        assert latency.count >= 1
        assert latency.percentile(0.99) > 0.0
        slice_.disable_latency_tracking()
        assert slice_.stats.latency is None
