"""Health monitor: rule bands, trend escalation, exit codes, trace events."""

import pytest

from repro.errors import (
    ConfigurationError,
    HealthCriticalError,
    HealthDegradedError,
)
from repro.telemetry.health import (
    CRITICAL,
    OK,
    WARN,
    AmalDriftRule,
    CorrectionTrendRule,
    HealthMonitor,
    HealthReport,
    LatencySLORule,
    SpillFractionRule,
    default_rules,
)
from repro.telemetry.trace import Tracer


def snapshot(
    amal=1.05,
    spill=0.01,
    corrections=0,
    quarantines=0,
    lookups=10_000,
    p99=0.002,
):
    return {
        "slice.search.amal": amal,
        "slice.search.lookups": lookups,
        "slice.search.ecc_corrections": corrections,
        "slice.search.quarantines": quarantines,
        "slice.search.latency.p99": p99,
        "slice.bulk.spill_rate": spill,
    }


class TestRuleBands:
    def test_amal_drift_bands(self):
        rule = AmalDriftRule(expected_amal=1.0)
        assert rule.evaluate({"slice.search.amal": 1.05}, []).level == OK
        assert rule.evaluate({"slice.search.amal": 1.15}, []).level == WARN
        finding = rule.evaluate({"slice.search.amal": 1.30}, [])
        assert finding.level == CRITICAL
        assert finding.value == pytest.approx(0.30)

    def test_amal_drift_missing_is_ok_skip(self):
        finding = AmalDriftRule(1.0).evaluate({}, [])
        assert finding.level == OK
        assert "skipped" in finding.message

    def test_amal_drift_rejects_bad_expectation(self):
        with pytest.raises(ConfigurationError):
            AmalDriftRule(0.0)

    def test_spill_fraction_bands(self):
        rule = SpillFractionRule()
        flat = {"slice.bulk.spill_rate": 0.05}
        assert rule.evaluate(flat, []).level == OK
        flat["slice.bulk.spill_rate"] = 0.15
        assert rule.evaluate(flat, []).level == WARN
        flat["slice.bulk.spill_rate"] = 0.35
        assert rule.evaluate(flat, []).level == CRITICAL

    def test_correction_rate_bands(self):
        rule = CorrectionTrendRule()
        ok = rule.evaluate(snapshot(corrections=1), [])
        assert ok.level == OK
        warn = rule.evaluate(snapshot(corrections=20), [])
        assert warn.level == WARN
        critical = rule.evaluate(snapshot(corrections=150), [])
        assert critical.level == CRITICAL

    def test_correction_trend_escalates_on_rising_rate(self):
        rule = CorrectionTrendRule(trend_window=3)
        history = [1e-6, 2e-6]
        rising = rule.evaluate(snapshot(corrections=1), history)
        assert rising.level == WARN
        assert "rising" in rising.message
        flat_history = [1e-4, 1e-4]
        steady = rule.evaluate(snapshot(corrections=1), flat_history)
        assert steady.level == OK

    def test_latency_slo_burn(self):
        rule = LatencySLORule(slo_seconds=0.010)
        assert rule.evaluate(snapshot(p99=0.002), []).level == OK
        assert rule.evaluate(snapshot(p99=0.009), []).level == WARN
        finding = rule.evaluate(snapshot(p99=0.012), [])
        assert finding.level == CRITICAL
        assert finding.value == pytest.approx(1.2)

    def test_latency_slo_rejects_bad_bound(self):
        with pytest.raises(ConfigurationError):
            LatencySLORule(slo_seconds=0)


class TestReportAndExitCodes:
    def test_exit_codes_follow_worst_finding(self):
        monitor = HealthMonitor(
            default_rules(expected_amal=1.0, slo_seconds=0.010)
        )
        healthy = monitor.evaluate(snapshot())
        assert healthy.ok
        assert healthy.exit_code == 0

        degraded = monitor.evaluate(snapshot(spill=0.15))
        assert degraded.level == WARN
        assert degraded.exit_code == HealthDegradedError.exit_code == 10

        critical = monitor.evaluate(snapshot(spill=0.15, p99=0.020))
        assert critical.level == CRITICAL
        assert critical.exit_code == HealthCriticalError.exit_code == 11

    def test_report_dict_and_format(self):
        monitor = HealthMonitor(default_rules())
        report = monitor.evaluate(snapshot())
        data = report.as_dict()
        assert data["level"] == OK
        assert data["exit_code"] == 0
        assert len(data["findings"]) == len(monitor.rules)
        assert "health: OK" in report.format()

    def test_empty_report_is_ok(self):
        assert HealthReport().level == OK
        assert HealthReport().exit_code == 0


class TestMonitor:
    def test_rejects_empty_or_duplicate_rules(self):
        with pytest.raises(ConfigurationError):
            HealthMonitor([])
        with pytest.raises(ConfigurationError):
            HealthMonitor([SpillFractionRule(), SpillFractionRule()])

    def test_emits_typed_trace_events(self):
        tracer = Tracer()
        monitor = HealthMonitor(default_rules(), tracer=tracer)
        monitor.evaluate(snapshot(spill=0.15))
        warn_events = tracer.events("health.warn")
        assert len(warn_events) == 1
        assert warn_events[0].payload["rule"] == "spill_fraction"
        verdict = tracer.events("health.verdict")[0]
        assert verdict.payload["level"] == WARN
        assert verdict.payload["exit_code"] == 10

    def test_accepts_registry_and_report_envelopes(self):
        from repro.telemetry.workload import run_synthetic_workload

        report = run_synthetic_workload(queries=2000, track_latency=True)
        monitor = HealthMonitor(default_rules(slo_seconds=10.0))
        # Full CLI report (metrics.stats envelope) ...
        verdict_report = monitor.evaluate(report)
        # ... and the bare registry snapshot both resolve the same rules.
        verdict_snapshot = monitor.evaluate(report["metrics"])
        for verdict in (verdict_report, verdict_snapshot):
            assert all(
                "skipped" not in finding.message
                for finding in verdict.findings
            ), verdict.as_dict()

    def test_default_rules_gate_optional_rules(self):
        names = [rule.name for rule in default_rules()]
        assert "amal_drift" not in names
        assert "latency_slo" not in names
        full = default_rules(expected_amal=1.0, slo_seconds=0.01)
        assert [rule.name for rule in full] == [
            "amal_drift",
            "spill_fraction",
            "correction_trend",
            "latency_slo",
        ]


class TestCliIntegration:
    def test_health_command_exit_codes(self, tmp_path, capsys):
        import json

        from repro.cli import main

        report_path = tmp_path / "snapshot.json"
        report_path.write_text(json.dumps(snapshot()))
        assert main(["telemetry", "health", "--snapshot", str(report_path),
                     "--expected-amal", "1.0", "--slo", "0.01"]) == 0

        report_path.write_text(json.dumps(snapshot(spill=0.15)))
        assert main(["telemetry", "health", "--snapshot", str(report_path),
                     "--expected-amal", "1.0", "--slo", "0.01"]) == 10

        out_path = tmp_path / "health.json"
        report_path.write_text(json.dumps(snapshot(p99=0.5)))
        assert main(["telemetry", "health", "--snapshot", str(report_path),
                     "--expected-amal", "1.0", "--slo", "0.01",
                     "--json", str(out_path)]) == 11
        written = json.loads(out_path.read_text())
        assert written["level"] == CRITICAL
        capsys.readouterr()
