"""Tracer: ring buffer, sinks, JSONL round-trip, stats replay.

The acceptance contract pinned here: a JSONL trace of a 1,000-lookup run
replays to a ``SearchStats`` whose counters are bit-identical to the ones
accumulated live.
"""

import pytest

from repro.core.config import SliceConfig
from repro.core.index import IndexGenerator
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.core.stats import SearchStats
from repro.errors import ConfigurationError
from repro.hashing.bit_select import BitSelectHash
from repro.telemetry.trace import (
    STATS_EVENT_KINDS,
    InMemorySink,
    JsonlSink,
    TraceEvent,
    Tracer,
    read_jsonl,
    replay_search_stats,
)
from repro.utils.rng import make_rng


class TestRingBuffer:
    def test_emit_records_and_counts(self):
        tracer = Tracer()
        tracer.emit("bucket_read", row=3)
        tracer.emit("spill", home=1, attempt=2)
        assert tracer.events_emitted == 2
        assert [e.kind for e in tracer.events()] == ["bucket_read", "spill"]
        assert tracer.events("spill")[0].payload == {"home": 1, "attempt": 2}

    def test_ring_keeps_newest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.emit("lookup", accesses=i, hit=False)
        kept = [e.payload["accesses"] for e in tracer.events()]
        assert kept == [2, 3, 4]
        assert tracer.events_emitted == 5

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)

    def test_clear_drops_ring_only(self):
        sink = InMemorySink()
        tracer = Tracer(sink=sink)
        tracer.emit("delete")
        tracer.clear()
        assert tracer.events() == []
        assert len(sink.events) == 1

    def test_summary_counts_by_kind_and_accounting(self):
        tracer = Tracer()
        tracer.emit("lookup", accesses=1, hit=True)
        tracer.emit("lookup", accesses=2, hit=False)
        tracer.emit("spill", home=0, attempt=1)
        assert tracer.summary() == {
            "lookup": 2,
            "spill": 1,
            "events_emitted": 3,
            "dropped_events": 0,
        }

    def test_ring_overflow_counts_dropped_events(self):
        tracer = Tracer(capacity=2)
        assert tracer.dropped_events == 0
        tracer.emit("lookup", accesses=1, hit=True)
        tracer.emit("lookup", accesses=1, hit=True)
        assert tracer.dropped_events == 0
        for _ in range(3):
            tracer.emit("spill", home=0, attempt=1)
        assert tracer.dropped_events == 3
        assert tracer.summary()["dropped_events"] == 3
        assert tracer.summary()["events_emitted"] == 5


class TestSinks:
    def test_in_memory_sink_receives_all(self):
        sink = InMemorySink()
        tracer = Tracer(sink=sink, capacity=1)
        tracer.emit("a")
        tracer.emit("b")
        # The ring dropped "a"; the sink kept both.
        assert [e.kind for e in sink.events] == ["a", "b"]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlSink(path))
        tracer.emit("bucket_read", row=7)
        tracer.emit("lookup_batch", count=10, hits=4, accesses=1)
        tracer.close()
        events = list(read_jsonl(path))
        assert events == [
            TraceEvent("bucket_read", {"row": 7}),
            TraceEvent(
                "lookup_batch", {"count": 10, "hits": 4, "accesses": 1}
            ),
        ]

    def test_jsonl_sink_flushes_every_emit(self, tmp_path):
        path = tmp_path / "live.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sink=sink)
        tracer.emit("lookup", accesses=1, hit=True)
        tracer.emit("spill", home=2, attempt=1)
        # Events must be durable *before* close: another process tailing
        # the file (or a crash) should never observe a truncated trace.
        events = list(read_jsonl(path))
        assert [e.kind for e in events] == ["lookup", "spill"]
        tracer.close()

    def test_jsonl_sink_context_manager_closes(self, tmp_path):
        path = tmp_path / "ctx.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(TraceEvent("delete", {}))
        assert [e.kind for e in read_jsonl(path)] == ["delete"]
        # Closing twice is harmless.
        sink.close()

    def test_event_dict_round_trip(self):
        event = TraceEvent("spill", {"home": 5, "attempt": 2})
        assert TraceEvent.from_dict(event.as_dict()) == event


class TestReplay:
    def test_replay_each_mutator(self):
        live = SearchStats()
        tracer = Tracer()
        live.tracer = tracer
        live.record_lookup(2, hit=True)
        live.record_lookup_batch(10, hits=3, accesses_per_lookup=1)
        live.record_lookup_batch_varied([1, 2, 2, 3], hits=2)
        live.record_match_passes(4)
        live.record_insert(2)
        live.record_insert_batch(5, probes=7)
        live.record_delete()
        live.record_probe_walk(6)
        live.record_scalar_fallbacks(2)

        replayed = replay_search_stats(tracer.events())
        assert replayed == live
        # compare=False fields must round-trip too.
        assert replayed.scalar_fallbacks == live.scalar_fallbacks
        assert replayed.probe_walk_keys == live.probe_walk_keys

    def test_replay_skips_non_stats_events(self):
        tracer = Tracer()
        tracer.emit("bucket_read", row=1)
        tracer.emit("dma_burst", offset=0, rows=4)
        tracer.emit("lookup", accesses=1, hit=True)
        replayed = replay_search_stats(tracer.events())
        assert replayed.lookups == 1
        assert replayed.hits == 1

    def test_stats_event_kinds_cover_all_mutators(self):
        stats = SearchStats()
        tracer = Tracer()
        stats.tracer = tracer
        stats.record_lookup(1, hit=False)
        stats.record_lookup_batch(2, hits=1)
        stats.record_lookup_batch_varied([1, 2], hits=1)
        stats.record_match_passes(1)
        stats.record_insert(1)
        stats.record_insert_batch(1, probes=1)
        stats.record_delete()
        stats.record_probe_walk(1)
        stats.record_scalar_fallbacks(1)
        stats.record_fault_injected()
        stats.record_ecc_correction()
        stats.record_corruption_detected()
        stats.record_quarantine(records=3)
        stats.record_victim_hit()
        stats.record_lookup_retry()
        assert {e.kind for e in tracer.events()} == STATS_EVENT_KINDS


def _build_slice(index_bits=7, slots=8):
    record_format = RecordFormat(key_bits=32, data_bits=16)
    config = SliceConfig(
        index_bits=index_bits,
        row_bits=8 + slots * record_format.slot_bits,
        record_format=record_format,
        aux_bits=8,
    )
    hash_function = BitSelectHash(32, tuple(range(12, 12 + index_bits)))
    return CARAMSlice(config, IndexGenerator(hash_function, config.rows))


class TestThousandLookupAcceptance:
    """A JSONL trace of a 1k-lookup mixed run replays bit-identically."""

    def test_jsonl_trace_replays_to_identical_counters(self, tmp_path):
        path = tmp_path / "run.jsonl"
        slice_ = _build_slice()
        tracer = Tracer(sink=JsonlSink(path))
        slice_.tracer = tracer

        rng = make_rng(42)
        stored = []
        seen = set()
        while len(stored) < int(slice_.config.capacity_records * 0.8):
            key = int(rng.integers(0, 1 << 32))
            if key not in seen:
                seen.add(key)
                stored.append(key)
        slice_.bulk_load([(k, k & 0xFFFF) for k in stored])

        hits = rng.choice(stored, size=500)
        misses = rng.integers(0, 1 << 32, size=500)
        queries = [int(k) for k in hits] + [int(k) for k in misses]
        rng.shuffle(queries)
        assert len(queries) == 1000

        # Mixed engines: scalar for a prefix, the batch path for the rest.
        for key in queries[:200]:
            slice_.search(key)
        slice_.search_batch(queries[200:])
        slice_.delete(stored[0])
        tracer.close()

        replayed = replay_search_stats(read_jsonl(path))
        live = slice_.stats
        assert replayed == live
        assert replayed.scalar_fallbacks == live.scalar_fallbacks
        assert replayed.probe_walk_keys == live.probe_walk_keys
        assert replayed.as_dict() == live.as_dict()
        assert live.lookups == 1000
