"""compare_telemetry: flattening, direction-aware classification, CLI.

The acceptance contract pinned here: an injected 2x AMAL regression in a
snapshot fixture is flagged as a regression (and fails the CLI).
"""

import json

import pytest

from repro.telemetry.compare import (
    IncomparableRunsError,
    compare_telemetry,
    flatten_numeric,
    is_goodness_metric,
    load_snapshot,
    main as compare_main,
)


def make_snapshot(amal=1.05, keys_per_sec=250_000.0, spills=40):
    """A miniature registry-style snapshot fixture."""
    return {
        "stats": {
            "slice.search": {
                "lookups": 10_000,
                "amal": amal,
                "hit_rate": 0.5,
                "access_histogram": {"1": 9_500, "2": 500},
            },
        },
        "throughput": {"batch_keys_per_sec": keys_per_sec},
        "spills": spills,
        "mode": "full",        # strings are not metrics
        "ok": True,            # booleans are not metrics
    }


class TestFlatten:
    def test_flattens_numeric_leaves_only(self):
        flat = flatten_numeric(make_snapshot())
        assert flat["stats.slice.search.amal"] == 1.05
        assert flat["stats.slice.search.access_histogram.2"] == 500.0
        assert flat["throughput.batch_keys_per_sec"] == 250_000.0
        assert "mode" not in flat
        assert "ok" not in flat

    def test_goodness_suffixes(self):
        assert is_goodness_metric("a.batch_keys_per_sec")
        assert is_goodness_metric("b.speedup")
        assert is_goodness_metric("c.hit_rate")
        assert not is_goodness_metric("stats.amal")
        assert not is_goodness_metric("phases.bulk.plan.seconds")


class TestClassification:
    def test_cost_increase_is_regression(self):
        report = compare_telemetry(
            {"amal": 1.0}, {"amal": 1.2}, threshold=0.05
        )
        assert not report.ok
        assert report.regressions[0].path == "amal"
        assert report.regressions[0].change == pytest.approx(0.2)

    def test_goodness_decrease_is_regression(self):
        report = compare_telemetry(
            {"keys_per_sec": 100.0}, {"keys_per_sec": 80.0}
        )
        assert not report.ok
        assert report.regressions[0].regression

    def test_goodness_increase_is_improvement(self):
        report = compare_telemetry(
            {"keys_per_sec": 100.0}, {"keys_per_sec": 150.0}
        )
        assert report.ok
        assert report.improvements[0].path == "keys_per_sec"

    def test_within_threshold_is_unchanged(self):
        report = compare_telemetry(
            {"amal": 1.00}, {"amal": 1.04}, threshold=0.05
        )
        assert report.ok
        assert report.unchanged == 1

    def test_added_and_removed_leaves(self):
        report = compare_telemetry({"old": 1}, {"new": 2})
        assert report.added == ["new"]
        assert report.removed == ["old"]

    def test_zero_baseline_appearance_is_infinite_change(self):
        report = compare_telemetry({"spills": 0}, {"spills": 9})
        assert not report.ok
        assert report.regressions[0].change == float("inf")
        assert "from zero" in report.regressions[0].describe()

    def test_report_as_dict_serializable(self):
        report = compare_telemetry(make_snapshot(), make_snapshot(amal=2.0))
        json.dumps(report.as_dict())


class TestPercentileDirectionRules:
    """Latency percentiles are cost metrics: up is worse, down is better."""

    def latency_snapshot(self, scale=1.0):
        from repro.telemetry.histogram import LatencyHistogram

        sketch = LatencyHistogram()
        sketch.observe_many(scale * i / 1000.0 for i in range(1, 101))
        return {"stats": {"slice.search": {"latency": sketch.as_dict()}}}

    def test_percentiles_flatten_as_numeric_leaves(self):
        flat = flatten_numeric(self.latency_snapshot())
        for name in ("p50", "p90", "p99", "p999"):
            assert f"stats.slice.search.latency.{name}" in flat
        assert not is_goodness_metric("stats.slice.search.latency.p99")

    def test_p99_increase_is_regression(self):
        report = compare_telemetry(
            self.latency_snapshot(), self.latency_snapshot(scale=2.0)
        )
        assert not report.ok
        paths = [delta.path for delta in report.regressions]
        assert "stats.slice.search.latency.p99" in paths
        assert "stats.slice.search.latency.p50" in paths

    def test_p99_decrease_is_improvement(self):
        report = compare_telemetry(
            self.latency_snapshot(), self.latency_snapshot(scale=0.5)
        )
        assert report.ok
        improved = [delta.path for delta in report.improvements]
        assert "stats.slice.search.latency.p99" in improved


class TestRollupCompareIntegration:
    """Flattened rollup trees are valid compare_telemetry inputs."""

    def make_tree(self, amal_scale=1.0):
        from repro.telemetry.rollup import RollupNode

        root = RollupNode("subsystem")
        for name, lookups, accesses in (
            ("slice0", 100, int(110 * amal_scale)),
            ("slice1", 200, int(260 * amal_scale)),
        ):
            root.mount(
                f"{name}.search",
                {
                    "lookups": lookups,
                    "hits": lookups // 2,
                    "total_bucket_accesses": accesses,
                    "amal": accesses / lookups,
                },
            )
        return root

    def test_flatten_round_trips_through_serialization(self):
        from repro.telemetry.rollup import (
            flatten_rollup,
            rollup_from_dict,
        )

        tree = self.make_tree()
        back = rollup_from_dict(
            json.loads(json.dumps(tree.as_dict())), "subsystem"
        )
        assert flatten_rollup(back) == flatten_rollup(tree)
        report = compare_telemetry(
            flatten_rollup(tree), flatten_rollup(back)
        )
        assert report.ok
        assert not report.regressions and not report.improvements

    def test_aggregate_amal_regression_flagged_across_trees(self):
        from repro.telemetry.rollup import flatten_rollup

        report = compare_telemetry(
            flatten_rollup(self.make_tree()),
            flatten_rollup(self.make_tree(amal_scale=2.0)),
        )
        assert not report.ok
        paths = [delta.path for delta in report.regressions]
        assert "aggregate.search.amal" in paths
        assert "slice0.search.amal" in paths


class TestMetadataGuard:
    """The run-configuration block is compared for equality, not diffed."""

    META = {"engines": ["bitplane"], "worker_count": 4}

    def test_metadata_excluded_from_flattening(self):
        snap = dict(make_snapshot(), metadata={"worker_count": 4})
        flat = flatten_numeric(snap)
        assert not any(path.startswith("metadata") for path in flat)

    def test_matching_metadata_compares_normally(self):
        base = dict(make_snapshot(), metadata=dict(self.META))
        cur = dict(make_snapshot(amal=2.1), metadata=dict(self.META))
        report = compare_telemetry(base, cur)
        assert not report.ok  # the AMAL regression is still flagged

    def test_mismatched_metadata_refuses_comparison(self):
        base = dict(make_snapshot(), metadata=dict(self.META))
        cur = dict(
            make_snapshot(), metadata=dict(self.META, worker_count=1)
        )
        with pytest.raises(IncomparableRunsError, match="worker_count"):
            compare_telemetry(base, cur)

    def test_mismatched_topology_refuses_comparison(self):
        """Shard topology is configuration: a 4-shard run diffed against
        an 8-shard baseline is a layout change, not a regression."""
        base = dict(
            make_snapshot(),
            metadata=dict(
                self.META,
                topology={"shard_count": 4, "router": "ConsistentHashRouter"},
            ),
        )
        cur = dict(
            make_snapshot(),
            metadata=dict(
                self.META,
                topology={"shard_count": 8, "router": "ConsistentHashRouter"},
            ),
        )
        with pytest.raises(IncomparableRunsError, match="topology"):
            compare_telemetry(base, cur)

    def test_legacy_snapshot_without_metadata_still_compares(self):
        base = make_snapshot()
        cur = dict(make_snapshot(), metadata=dict(self.META))
        assert compare_telemetry(base, cur).ok

    def test_cli_exit_code_on_incomparable_runs(self, tmp_path, capsys):
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(
            json.dumps(dict(make_snapshot(), metadata=dict(self.META)))
        )
        cur_path.write_text(
            json.dumps(
                dict(make_snapshot(), metadata=dict(self.META, engines=[]))
            )
        )
        assert compare_main([str(base_path), str(cur_path)]) == 2
        assert "different configurations" in capsys.readouterr().out


class TestInjectedAmalRegressionAcceptance:
    """The 2x-AMAL fixture must be flagged, by API and by CLI."""

    def test_doubled_amal_is_flagged(self):
        baseline = make_snapshot(amal=1.05)
        regressed = make_snapshot(amal=2.10)
        report = compare_telemetry(baseline, regressed)
        assert not report.ok
        paths = [delta.path for delta in report.regressions]
        assert "stats.slice.search.amal" in paths
        amal_delta = next(
            d for d in report.regressions
            if d.path == "stats.slice.search.amal"
        )
        assert amal_delta.change == pytest.approx(1.0)

    def test_cli_exit_codes(self, tmp_path, capsys):
        base_path = tmp_path / "base.json"
        bad_path = tmp_path / "bad.json"
        base_path.write_text(json.dumps(make_snapshot(amal=1.05)))
        bad_path.write_text(json.dumps(make_snapshot(amal=2.10)))

        assert compare_main([str(base_path), str(base_path)]) == 0
        assert compare_main([str(base_path), str(bad_path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "stats.slice.search.amal" in out

    def test_load_snapshot(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"a": 1}))
        assert load_snapshot(path) == {"a": 1}
