"""Exporters: Prometheus rendering, JSONL sampler, HTTP scrape endpoint."""

import json
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.export import (
    JsonlSampler,
    TelemetryServer,
    read_samples,
    render_prometheus,
    sanitize_name,
    validate_exposition,
)
from repro.telemetry.histogram import LatencyHistogram
from repro.telemetry.metrics import MetricsRegistry


def make_registry():
    registry = MetricsRegistry()
    registry.counter("workload.batches").inc(3)
    registry.gauge("slice.mirror_layout").set(1)
    hist = registry.histogram("accesses")
    for value in (1, 1, 2):
        hist.observe(value)
    latency = LatencyHistogram()
    latency.observe_many([0.001, 0.002, 0.010])
    registry.register_provider(
        "slice.search",
        lambda: {
            "lookups": 100,
            "hits": 70,
            "hit_rate": 0.7,
            "latency": latency.as_dict(),
        },
    )
    return registry


class TestPrometheusRendering:
    def test_sanitize_name(self):
        assert sanitize_name("slice.search.amal") == "caram_slice_search_amal"
        assert sanitize_name("a-b c", namespace="x") == "x_a_b_c"

    def test_render_and_validate(self):
        text = render_prometheus(make_registry().snapshot())
        samples = validate_exposition(text)
        assert samples > 0
        assert "caram_workload_batches 3" in text
        assert 'caram_latency{path="slice.search",quantile="0.99"}' in text
        assert 'caram_hits{path="slice.search"} 70' in text

    def test_validator_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            validate_exposition("caram_x not-a-number\n")
        with pytest.raises(ConfigurationError):
            validate_exposition("")
        with pytest.raises(ConfigurationError):
            validate_exposition(
                "# TYPE caram_x gauge\ncaram_x 1\n"
                "# TYPE caram_x gauge\ncaram_x 2\n"
            )

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.register_provider('weird"path', lambda: {"reads": 1})
        text = render_prometheus(registry.snapshot())
        validate_exposition(text)
        assert '\\"' in text


class TestJsonlSampler:
    def test_manual_samples_flushed(self, tmp_path):
        registry = make_registry()
        path = tmp_path / "samples.jsonl"
        sampler = JsonlSampler(registry, path, interval=60.0)
        sampler.sample()
        registry.counter("workload.batches").inc()
        sampler.sample()
        sampler.close()
        samples = read_samples(path)
        assert [s["seq"] for s in samples] == [0, 1]
        assert (
            samples[1]["snapshot"]["counters"]["workload.batches"]
            == samples[0]["snapshot"]["counters"]["workload.batches"] + 1
        )

    def test_background_thread_and_final_sample(self, tmp_path):
        registry = make_registry()
        path = tmp_path / "bg.jsonl"
        with JsonlSampler(registry, path, interval=0.01) as sampler:
            import time

            time.sleep(0.08)
        assert sampler.samples_written >= 2
        assert len(read_samples(path)) == sampler.samples_written

    def test_invalid_interval_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JsonlSampler(make_registry(), tmp_path / "x.jsonl", interval=0)


class TestTelemetryServer:
    def test_scrape_endpoints(self):
        registry = make_registry()
        server = TelemetryServer(
            registry,
            port=0,
            health_check=lambda: {"level": "ok", "exit_code": 0},
            max_requests=3,
        )
        with server:
            base = server.url
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as rsp:
                assert rsp.headers["Content-Type"].startswith("text/plain")
                body = rsp.read().decode("utf-8")
            assert validate_exposition(body) > 0

            with urllib.request.urlopen(f"{base}/snapshot", timeout=5) as rsp:
                snapshot = json.load(rsp)
            assert snapshot["counters"]["workload.batches"] == 3

            with urllib.request.urlopen(f"{base}/health", timeout=5) as rsp:
                health = json.load(rsp)
            assert health["level"] == "ok"
        assert server.requests_served == 3

    def test_unknown_path_404_and_no_health_route(self):
        server = TelemetryServer(make_registry(), port=0)
        with server:
            for path in ("/nope", "/health"):
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(
                        f"{server.url}{path}", timeout=5
                    )
                assert err.value.code == 404
        assert server.requests_served == 0

    def test_max_requests_self_shutdown(self):
        server = TelemetryServer(make_registry(), port=0, max_requests=1)
        server.start()
        urllib.request.urlopen(f"{server.url}/metrics", timeout=5).read()
        served = server.serve_until_done()
        assert served == 1
