"""PhaseProfiler: spans, nesting, the module singleton, scoped enable."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.profiling import (
    PhaseProfiler,
    enabled_profiler,
    get_profiler,
    profile,
    set_profiler,
)


class TestPhaseProfiler:
    def test_disabled_by_default_and_records_nothing(self):
        profiler = PhaseProfiler()
        assert not profiler.enabled
        with profiler.profile("x"):
            pass
        assert profiler.as_dict() == {}

    def test_disabled_span_is_shared_noop(self):
        profiler = PhaseProfiler()
        assert profiler.profile("a") is profiler.profile("b")

    def test_enabled_accumulates_time_and_calls(self):
        profiler = PhaseProfiler(enabled=True)
        for _ in range(3):
            with profiler.profile("phase"):
                pass
        report = profiler.as_dict()
        assert report["phase"]["calls"] == 3
        assert report["phase"]["seconds"] >= 0.0
        assert profiler.calls("phase") == 3

    def test_phases_nest_with_inclusive_times(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.profile("outer"):
            with profiler.profile("inner"):
                pass
        assert profiler.seconds("outer") >= profiler.seconds("inner")
        assert profiler.phases == ["inner", "outer"]

    def test_reset(self):
        profiler = PhaseProfiler(enabled=True)
        with profiler.profile("p"):
            pass
        profiler.reset()
        assert profiler.as_dict() == {}


class TestSingleton:
    def test_module_profile_routes_to_singleton(self):
        previous = set_profiler(PhaseProfiler(enabled=True))
        try:
            with profile("stage"):
                pass
            assert get_profiler().calls("stage") == 1
        finally:
            set_profiler(previous)

    def test_set_profiler_rejects_none(self):
        with pytest.raises(ConfigurationError):
            set_profiler(None)

    def test_enabled_profiler_scopes_and_restores(self):
        before = get_profiler()
        with enabled_profiler() as profiler:
            assert get_profiler() is profiler
            assert profiler.enabled
            with profile("scoped"):
                pass
        assert get_profiler() is before
        assert profiler.calls("scoped") == 1


class TestPipelineIntegration:
    def test_batch_and_bulk_phases_show_up(self):
        from repro.core.config import SliceConfig
        from repro.core.index import IndexGenerator
        from repro.core.record import RecordFormat
        from repro.core.slice import CARAMSlice
        from repro.hashing.bit_select import BitSelectHash

        record_format = RecordFormat(key_bits=32, data_bits=16)
        config = SliceConfig(
            index_bits=5,
            row_bits=8 + 4 * record_format.slot_bits,
            record_format=record_format,
            aux_bits=8,
        )
        slice_ = CARAMSlice(
            config,
            IndexGenerator(BitSelectHash(32, tuple(range(12, 17))), config.rows),
        )
        with enabled_profiler() as profiler:
            slice_.bulk_load([(i * 4097, i) for i in range(64)])
            slice_.search_batch([0, 4097, 8194, 99999])
        phases = profiler.as_dict()
        for phase in (
            "bulk.plan",
            "bulk.encode",
            "bulk.install",
            "batch.index",
            "batch.mirror_sync",
            "batch.home_match",
        ):
            assert phase in phases, phases
