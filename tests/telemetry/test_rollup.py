"""Rollup tree: commutative merge, derived ratios, shard children."""

import itertools
import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.histogram import LatencyHistogram
from repro.telemetry.rollup import (
    RollupNode,
    build_rollup,
    flatten_rollup,
    merge_blocks,
    rollup_from_dict,
)


def search_block(lookups, hits, accesses, histogram):
    return {
        "lookups": lookups,
        "hits": hits,
        "total_bucket_accesses": accesses,
        "hit_rate": hits / lookups,
        "amal": accesses / lookups,
        "access_histogram": histogram,
    }


class TestMergeBlocks:
    def test_integers_sum_exactly(self):
        merged = merge_blocks([{"reads": 3}, {"reads": 4}, {"reads": 5}])
        assert merged == {"reads": 12}
        assert isinstance(merged["reads"], int)

    def test_derived_ratios_recomputed_not_summed(self):
        a = search_block(100, 90, 110, {"1": 90, "2": 10})
        b = search_block(300, 30, 600, {"1": 100, "2": 200})
        merged = merge_blocks([a, b])
        assert merged["lookups"] == 400
        assert merged["hits"] == 120
        # 0.9 + 0.1 = 1.0 would be the (wrong) summed value.
        assert merged["hit_rate"] == pytest.approx(120 / 400)
        assert merged["amal"] == pytest.approx(710 / 400)
        assert merged["access_histogram"] == {"1": 190, "2": 210}

    def test_ratio_dropped_when_base_missing(self):
        merged = merge_blocks([{"hit_rate": 0.5}, {"hit_rate": 0.7}])
        assert "hit_rate" not in merged

    def test_zero_denominator_ratio_is_zero(self):
        merged = merge_blocks(
            [
                {"lookups": 0, "hits": 0, "hit_rate": 0.0},
                {"lookups": 0, "hits": 0, "hit_rate": 0.0},
            ]
        )
        assert merged["hit_rate"] == 0.0

    def test_sketches_merge_exactly(self):
        a = LatencyHistogram()
        a.observe_many([0.001, 0.002])
        b = LatencyHistogram()
        b.observe(0.004)
        merged = merge_blocks(
            [{"latency": a.as_dict()}, {"latency": b.as_dict()}]
        )
        assert merged["latency"]["count"] == 3

    def test_strings_kept_only_when_unanimous(self):
        merged = merge_blocks(
            [
                {"arrangement": "wide", "mode": "cam"},
                {"arrangement": "wide", "mode": "ram"},
            ]
        )
        assert merged["arrangement"] == "wide"
        assert "mode" not in merged

    def test_merge_is_commutative_over_permutations(self):
        blocks = [
            search_block(10, 5, 12, {"1": 9, "2": 1}),
            search_block(30, 12, 45, {"1": 20, "3": 10}),
            {"lookups": 7, "hits": 7, "reads": 2},
        ]
        reference = merge_blocks(blocks)
        for permutation in itertools.permutations(blocks):
            assert merge_blocks(list(permutation)) == reference

    def test_empty_and_singleton(self):
        assert merge_blocks([]) == {}
        assert merge_blocks([{"a": 1}]) == {"a": 1}


class TestRollupTree:
    def make_tree(self, order):
        root = RollupNode("subsystem")
        mounts = {
            "ip.slice0.search": search_block(100, 80, 120, {"1": 80, "2": 20}),
            "ip.slice1.search": search_block(100, 60, 150, {"1": 50, "2": 50}),
            "routes.slice0.search": search_block(50, 50, 50, {"1": 50}),
        }
        for key in order:
            root.mount(key, mounts[key])
        return root

    def test_mount_order_never_changes_aggregate(self):
        keys = [
            "ip.slice0.search",
            "ip.slice1.search",
            "routes.slice0.search",
        ]
        reference = self.make_tree(keys).aggregate()
        for permutation in itertools.permutations(keys):
            assert self.make_tree(permutation).aggregate() == reference

    def test_interior_node_aggregates_subtree_only(self):
        tree = self.make_tree(
            ["ip.slice0.search", "ip.slice1.search", "routes.slice0.search"]
        )
        ip = tree.children["ip"].aggregate()["search"]
        assert ip["lookups"] == 200
        assert ip["hit_rate"] == pytest.approx(140 / 200)
        total = tree.aggregate()["search"]
        assert total["lookups"] == 250
        assert total["amal"] == pytest.approx(320 / 250)

    def test_empty_mount_path_rejected(self):
        with pytest.raises(ConfigurationError):
            RollupNode().mount("", {"a": 1})

    def test_round_trip_through_json(self):
        tree = self.make_tree(["ip.slice0.search", "ip.slice1.search"])
        data = json.loads(json.dumps(tree.as_dict()))
        back = rollup_from_dict(data, "subsystem")
        assert back.aggregate() == tree.aggregate()
        assert back.flatten() == tree.flatten()

    def test_flatten_rollup_exposes_aggregates(self):
        tree = self.make_tree(["ip.slice0.search", "ip.slice1.search"])
        flat = flatten_rollup(tree)
        assert flat["ip.slice0.search.lookups"] == 100
        assert flat["aggregate.search.lookups"] == 200
        assert flat["aggregate.search.hit_rate"] == pytest.approx(0.7)


class TestSnapshotIntegration:
    def test_build_rollup_from_workload_snapshot(self):
        from repro.telemetry.workload import run_synthetic_workload

        report = run_synthetic_workload(queries=2000, track_latency=True)
        tree = build_rollup(report["metrics"])
        aggregate = tree.aggregate()
        slice_search = tree.children["slice"].aggregate()["search"]
        assert slice_search["lookups"] > 0
        assert "latency" in slice_search
        assert aggregate["search"]["lookups"] == slice_search["lookups"]
        # The tracer accounting block participates in the same tree
        # (single-segment mount path -> a root-level block).
        assert "dropped_events" in tree.blocks["tracer"]

    def test_parallel_shards_roll_up_to_parent_totals(self):
        from repro.telemetry.metrics import MetricsRegistry
        from repro.telemetry.workload import (
            build_workload_slice,
            make_keys,
            make_queries,
        )

        slice_ = build_workload_slice(8, 16)
        slice_.engine = "parallel-word:2"
        registry = MetricsRegistry()
        slice_.register_telemetry(registry)
        stored = make_keys(slice_, 0.7, 5)
        slice_.bulk_load([(key, key & 0xFFFF) for key in stored])
        try:
            slice_.search_batch(make_queries(stored, 8192, 0.5, 6))
            snapshot = registry.snapshot()
            tree = build_rollup(snapshot)
            shard_blocks = [
                child.blocks["search"]
                for name, child in tree.children["slice"].children.items()
                if name.startswith("shard")
            ]
            assert len(shard_blocks) == 2
            merged = merge_blocks(shard_blocks)
            parent = snapshot["stats"]["slice.search"]
            # Shard totals merge back to exactly the parent's counters
            # (scalar fallbacks never leave the parent, and this stream
            # has none).
            assert merged["lookups"] == parent["lookups"]
            assert merged["hits"] == parent["hits"]
            assert (
                merged["total_bucket_accesses"]
                == parent["total_bucket_accesses"]
            )
        finally:
            slice_._close_batch_engine()
