"""Integration tests for the extension experiments (ipv6, misses,
robustness)."""

import pytest

from repro.apps.iplookup.ipv6 import (
    FULL_V6_PREFIX_COUNT,
    Ipv6Config,
    generate_ipv6_table,
)
from repro.experiments import ipv6_scaling, misses, robustness


class TestIpv6Scaling:
    @pytest.fixture(scope="class")
    def rows(self):
        table = generate_ipv6_table(
            Ipv6Config(total_prefixes=FULL_V6_PREFIX_COUNT // 4, seed=7)
        )
        return ipv6_scaling.run(table=table)

    def test_two_rows(self, rows):
        assert len(rows) == 2
        assert "IPv4" in rows[0]["table"]
        assert "IPv6" in rows[1]["table"]

    def test_power_advantage_widens(self, rows):
        assert rows[1]["power_saving_pct"] >= rows[0]["power_saving_pct"] - 2

    def test_area_saving_holds(self, rows):
        assert 35 < rows[1]["area_saving_pct"] < 55

    def test_offload_reported(self, rows):
        assert rows[1]["tcam_offloaded"] >= 0


class TestMisses:
    @pytest.fixture(scope="class")
    def rows(self):
        return misses.run(seed=7)

    def test_all_designs(self, rows):
        assert [row["design"] for row in rows] == list("ABCDEF")

    def test_miss_cost_at_least_one(self, rows):
        for row in rows:
            assert row["miss_AMAL"] >= 1.0
            assert row["with_victim_tcam"] == 1.0

    def test_overflowing_designs_pay_on_misses(self, rows):
        by_design = {row["design"]: row for row in rows}
        # A has substantial overflow: misses must scan beyond home.
        assert by_design["A"]["miss_AMAL"] > 1.02
        # E has almost none: misses are nearly one access.
        assert by_design["E"]["miss_AMAL"] < by_design["A"]["miss_AMAL"]


class TestRobustness:
    def test_orderings_stable_across_seeds(self):
        # Scaled-down tables keep the test fast while spanning seeds.
        rows = robustness.run(seeds=(1, 2, 3), total_prefixes=60_000)
        assert len(rows) == 6
        assert robustness.orderings_stable(rows)

    def test_spread_is_reported(self):
        rows = robustness.run(seeds=(5, 6), total_prefixes=40_000)
        for row in rows:
            assert row["seeds"] == 2
            assert row["AMALu_stdev"] >= 0.0
