"""Integration: software search baselines vs CA-RAM access counts.

Quantifies the paper's motivating claims: software IP lookup needs several
dependent memory accesses ("at least 4 to 6"), software hashing pointer-
chases, and CA-RAM needs about one bucket access.
"""

import pytest

from repro.apps.iplookup.caram import build_ip_caram
from repro.apps.iplookup.designs import IpDesign
from repro.apps.iplookup.prefix import Prefix
from repro.apps.iplookup.trie import BinaryTrie
from repro.core.config import Arrangement
from repro.hashing.base import ModuloHash
from repro.hashing.table import ChainedHashTable
from repro.memory.cache import CacheSimulator
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def prefix_pairs():
    rng = make_rng(55)
    prefixes = {}
    while len(prefixes) < 300:
        length = int(rng.choice([8, 16, 24], p=[0.05, 0.25, 0.7]))
        bits = int(rng.integers(0, 1 << length))
        prefix = Prefix.from_bits(bits, length)
        prefixes[(prefix.value, prefix.length)] = prefix
    return [(p, i % 100) for i, p in enumerate(prefixes.values())]


class TestTrieCosts:
    def test_trie_needs_many_accesses(self, prefix_pairs):
        trie = BinaryTrie()
        trie.insert_all(prefix_pairs)
        rng = make_rng(1)
        total = 0
        hits = 0
        for prefix, _ in prefix_pairs[:100]:
            address = prefix.value | int(
                rng.integers(0, 1 << (32 - prefix.length))
            ) if prefix.length < 32 else prefix.value
            result = trie.lookup(address)
            total += result.nodes_visited
            hits += 1
        average = total / hits
        # Way beyond the paper's "4 to 6 memory accesses" for tuned
        # software — an uncompressed trie walks one node per bit.
        assert average > 6

    def test_caram_single_access(self, prefix_pairs):
        design = IpDesign("S", 8, 32, 2, Arrangement.HORIZONTAL)
        group = build_ip_caram(prefix_pairs, design)
        group.stats.reset()
        for prefix, _ in prefix_pairs[:100]:
            group.search(prefix.value)
        assert group.stats.amal < 1.5


class TestCacheReplay:
    def test_pointer_chasing_misses_in_cache(self):
        """Chained-hash lookups over a large table miss; CA-RAM's single
        row access has nothing to pollute (Section 1's cache-pollution
        argument)."""
        table = ChainedHashTable(ModuloHash(1 << 12))
        rng = make_rng(2)
        keys = rng.permutation(1 << 20)[:30_000]
        for key in keys:
            table.insert(int(key), int(key))

        cache = CacheSimulator(size_bytes=32 * 1024)
        probe_keys = keys[:: max(1, len(keys) // 2000)]
        for key in probe_keys:
            outcome = table.lookup(int(key))
            for address in outcome.addresses:
                cache.access(address)
        # The working set dwarfs the cache: most node touches miss.
        assert cache.stats.miss_rate > 0.5

    def test_average_lookup_latency_gap(self):
        """Replay software traces through the cache and compare against
        one DRAM bucket access for CA-RAM."""
        table = ChainedHashTable(ModuloHash(1 << 10))
        rng = make_rng(3)
        keys = rng.permutation(1 << 18)[:10_000]
        for key in keys:
            table.insert(int(key), 0)
        cache = CacheSimulator(size_bytes=16 * 1024)
        accesses = 0
        lookups = 0
        for key in keys[::10]:
            outcome = table.lookup(int(key))
            for address in outcome.addresses:
                cache.access(address)
            accesses += outcome.memory_accesses
            lookups += 1
        hit_cycles, miss_cycles = 2, 60
        software_latency = (
            accesses / lookups
        ) * cache.stats.average_latency_cycles(hit_cycles, miss_cycles)
        ca_ram_latency = 6  # one DRAM bucket access
        assert software_latency > 2 * ca_ram_latency
