"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "cognitive_memory.py",
    "subsystem_and_bandwidth.py",
]

HEAVY_EXAMPLES = [
    "ip_router_lookup.py",
    "speech_trigram.py",
]


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example(name):
    output = run_example(name)
    assert output.strip()


def test_quickstart_contents():
    output = run_example("quickstart.py")
    assert "slice geometry" in output
    assert "RAM-mode scratchpad write/read round-trip OK" in output


@pytest.mark.parametrize("name", HEAVY_EXAMPLES)
def test_heavy_example(name):
    output = run_example(name)
    assert output.strip()


def test_ip_example_reports_table2():
    output = run_example("ip_router_lookup.py")
    assert "CA-RAM == trie == TCAM" in output
    assert "best design by AMALu" in output


def test_trigram_example_reports_figure7():
    output = run_example("speech_trigram.py")
    assert "bucket capacity" in output
    assert "AMAL" in output
