"""Run the doctest examples embedded in the public docstrings."""

import doctest

import pytest

import repro.apps.iplookup.prefix
import repro.core.key
import repro.experiments.reporting
import repro.hashing.bit_select
import repro.hashing.djb
import repro.utils.bits

MODULES = [
    repro.utils.bits,
    repro.core.key,
    repro.hashing.bit_select,
    repro.hashing.djb,
    repro.apps.iplookup.prefix,
    repro.experiments.reporting,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures"
    assert result.attempted > 0, "expected at least one doctest example"
