"""Integration: every experiment harness runs and reproduces the paper's
qualitative claims."""

import pytest

from repro.experiments import fig6, fig7, fig8, paper_values, s34_bandwidth
from repro.experiments import table1, table3
from repro.experiments.reporting import format_table


class TestTable1:
    def test_reference_rows_match_paper(self):
        rows = table1.run()
        by_step = {row["step"]: row for row in rows}
        assert by_step["Expand search key"]["cells"] == 3804
        assert by_step["Total"]["cells"] == 15992
        assert by_step["Total"]["delay_ns"] == "4.85"

    def test_power(self):
        assert table1.run_power()["power_mw"] == pytest.approx(60.8)

    def test_scaled_run_has_no_paper_columns(self):
        rows = table1.run(row_bits=3200)
        assert "paper_cells" not in rows[0]


class TestFig6:
    def test_area_ratios(self):
        ratios = fig6.headline_ratios()
        assert ratios["area_vs_16t"] == pytest.approx(12.0, abs=0.2)
        assert ratios["area_vs_6t"] == pytest.approx(4.8, abs=0.1)

    def test_power_ratios(self):
        ratios = fig6.headline_ratios()
        assert ratios["power_vs_16t"] == pytest.approx(26.0, abs=1.0)
        assert ratios["power_vs_6t"] == pytest.approx(7.0, abs=0.5)


class TestTable3AndFig7:
    @pytest.fixture(scope="class")
    def rows(self):
        # 1/32 scale keeps this fast while preserving load factors.
        return table3.run(scale_shift=5, seed=11)

    def test_load_factors(self, rows):
        by_design = {row["design"]: row for row in rows}
        assert by_design["A"]["load_factor"] == pytest.approx(0.86, abs=0.01)
        assert by_design["B"]["load_factor"] == pytest.approx(0.68, abs=0.01)

    def test_design_a_only_meaningful_overflow(self, rows):
        by_design = {row["design"]: row for row in rows}
        assert by_design["A"]["overflowing_buckets_pct"] > 1.0
        for name in "BCD":
            assert by_design[name]["overflowing_buckets_pct"] < 1.0

    def test_amal_band(self, rows):
        for row in rows:
            assert 1.0 <= row["AMAL"] < 1.05

    def test_fig7_centered_near_mean_load(self):
        result = fig7.run(scale_shift=5, seed=11)
        # Mean bucket load is 5.39M/65536 ~ 82; the paper says "centered
        # around 81".
        assert abs(result["mode"] - paper_values.FIG7_CENTER) <= 6
        assert result["non_overflowing_fraction"] > 0.9


class TestFig8:
    def test_trigram_area_ratio(self):
        result = fig8.run_trigram()
        assert result["area_ratio"] == pytest.approx(
            paper_values.FIG8_TRIGRAM_AREA_RATIO, abs=0.3
        )

    def test_ip_savings_band(self):
        # Full generation is a few seconds; use a scaled table with the
        # same per-design alpha by scaling capacity accounting instead.
        result = fig8.run_ip()
        assert 0.35 < result["area_reduction"] < 0.55
        assert 0.55 < result["power_reduction"] < 0.80
        # "competitive search bandwidth as TCAM"
        assert (
            result["ca_ram_bandwidth_lookups_s"]
            > result["tcam_bandwidth_lookups_s"]
        )

    def test_conclusion_savings_range(self):
        # "Experimental results showing the area and power savings of
        # 50-80% corroborate the promise of the CA-RAM approach."
        result = fig8.run_ip()
        low, high = paper_values.CONCLUSION_SAVINGS_RANGE
        assert low - 0.15 < result["area_reduction"] < high
        assert low < result["power_reduction"] < high + 0.1


class TestSection34:
    def test_bandwidth_matches_closed_form(self):
        rows = s34_bandwidth.run_bandwidth(slice_counts=(1, 2, 4), lookups=3000)
        for row in rows:
            assert row["simulated_Mlookups_s"] == pytest.approx(
                row["closed_form_Mlookups_s"], rel=0.08
            )

    def test_latency_ca_ram_wins_with_data(self):
        rows = s34_bandwidth.run_latency()
        assert all(row["ca_ram_wins_with_data"] for row in rows)


class TestReporting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10}])
        assert "a" in text and "b" in text
        assert "10" in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"
