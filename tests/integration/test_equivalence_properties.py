"""Property-based equivalence between the CAM baselines and CA-RAM.

The design goal of Section 3: "achieve full content addressability on a
large database without the cost of exhaustively implementing hardware
match logic for each memory element".  These properties check the *full
content addressability* half: on random key sets, CA-RAM answers exactly
like the exhaustive CAM/TCAM, and a one-slice group behaves exactly like a
bare slice.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cam.cam import BinaryCAM
from repro.cam.tcam import TCAM
from repro.core.config import Arrangement, SliceConfig
from repro.core.index import make_index_generator
from repro.core.key import TernaryKey
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.core.subsystem import SliceGroup
from repro.hashing.base import ModuloHash
from repro.hashing.bit_select import BitSelectHash

KEY_BITS = 8
ROWS = 8


def build_slice(ternary=False):
    record_format = RecordFormat(key_bits=KEY_BITS, data_bits=8, ternary=ternary)
    config = SliceConfig(
        index_bits=3,
        row_bits=8 + 40 * record_format.slot_bits,  # ample slots: no spills
        record_format=record_format,
    )
    generator = make_index_generator(
        BitSelectHash(KEY_BITS, range(KEY_BITS - 3, KEY_BITS))
    )
    return CARAMSlice(config, generator)


unique_keys = st.lists(
    st.integers(min_value=0, max_value=255), min_size=0, max_size=24,
    unique=True,
)


class TestBinaryEquivalence:
    @given(keys=unique_keys, probes=st.lists(
        st.integers(min_value=0, max_value=255), max_size=24))
    @settings(max_examples=150, deadline=None)
    def test_slice_matches_binary_cam(self, keys, probes):
        cam = BinaryCAM(entries=64, key_bits=KEY_BITS)
        caram = build_slice()
        for i, key in enumerate(keys):
            cam.insert(key, data=i)
            caram.insert(key, data=i)
        for probe in probes + keys:
            cam_result = cam.search(probe)
            caram_result = caram.search(probe)
            assert cam_result.hit == caram_result.hit, probe
            if cam_result.hit:
                assert cam_result.data == caram_result.data


@st.composite
def pattern_set(draw):
    """Random ternary patterns with don't-care bits outside the hash
    window (so both structures store one copy per pattern)."""
    count = draw(st.integers(min_value=0, max_value=12))
    patterns = []
    seen = set()
    for _ in range(count):
        value = draw(st.integers(min_value=0, max_value=255))
        # Mask only the low 5 bits region... but hash uses low 3 bits; to
        # keep single-copy storage, mask only bits 0..4 (MSB side).
        mask = draw(st.integers(min_value=0, max_value=31)) << 3
        key = TernaryKey(value=value, mask=mask, width=KEY_BITS)
        if (key.value, key.mask) not in seen:
            seen.add((key.value, key.mask))
            patterns.append(key)
    return patterns


class TestTernaryEquivalence:
    @given(patterns=pattern_set(), probes=st.lists(
        st.integers(min_value=0, max_value=255), max_size=24))
    @settings(max_examples=150, deadline=None)
    def test_slice_matches_tcam_membership(self, patterns, probes):
        """Hit/miss agreement.  (Priority may differ: the TCAM is ordered
        by insertion, the CA-RAM bucket by slot; membership is the
        invariant.)"""
        tcam = TCAM(entries=32, key_bits=KEY_BITS)
        caram = build_slice(ternary=True)
        for i, pattern in enumerate(patterns):
            tcam.insert(pattern, data=i)
            caram.insert(pattern, data=i)
        for probe in probes:
            assert tcam.search(probe).hit == caram.search(probe).hit, (
                probe, [str(p) for p in patterns],
            )


class TestGroupOfOneEquivalence:
    @given(keys=unique_keys, probes=st.lists(
        st.integers(min_value=0, max_value=255), max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_single_slice_group_matches_slice(self, keys, probes):
        record_format = RecordFormat(key_bits=KEY_BITS, data_bits=8)
        config = SliceConfig(
            index_bits=3,
            row_bits=8 + 8 * record_format.slot_bits,
            record_format=record_format,
            slots_override=8,
        )
        sl = CARAMSlice(config, make_index_generator(ModuloHash(ROWS)))
        group = SliceGroup(
            config, 1, Arrangement.VERTICAL, ModuloHash(ROWS), name="g"
        )
        if len(keys) > config.capacity_records:
            keys = keys[: config.capacity_records]
        for i, key in enumerate(keys):
            sl.insert(key, data=i % 251)
            group.insert(key, data=i % 251)
        for probe in probes + keys:
            a = sl.search(probe)
            b = group.search(probe)
            assert a.hit == b.hit
            assert a.bucket_accesses == b.bucket_accesses
            if a.hit:
                assert a.data == b.data
