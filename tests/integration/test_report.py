"""Integration: the full EXPERIMENTS.md report generator."""

import io

import pytest

from repro.experiments.report import _markdown_table, build_report


class TestMarkdownTable:
    def test_basic(self):
        text = _markdown_table([{"a": 1, "b": 2.5}, {"a": 3}])
        lines = text.strip().splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| 1 | 2.5 |"
        assert lines[3] == "| 3 |  |"

    def test_empty(self):
        assert _markdown_table([]) == "(no rows)\n"

    def test_float_formatting(self):
        text = _markdown_table([{"x": 1.0}, {"x": 1.234567}])
        assert "| 1 |" in text
        assert "| 1.235 |" in text


@pytest.mark.slow
class TestFullReport:
    def test_build_report_covers_every_artifact(self):
        """The generated report must carry a section per table/figure and
        the headline verdicts."""
        out = io.StringIO()
        text = build_report(out=out)
        assert out.getvalue() == text
        for heading in (
            "## Table 1", "## Table 2", "## Table 3",
            "## Figure 6", "## Figure 7", "## Figure 8",
            "## Section 3.4", "## Section 4.3",
            "### IPv6 scaling",
            "### Unsuccessful-search cost",
        ):
            assert heading in text, heading
        # Exact reproductions present with their paper anchors.
        assert "60.8 mW" in text
        assert "Verdict: exact" in text
