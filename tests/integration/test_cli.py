"""Integration tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, cmd_list, cmd_run, main


class TestParser:
    def test_list(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_names(self):
        args = build_parser().parse_args(["run", "table1", "fig6"])
        assert args.names == ["table1", "fig6"]

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_output(self, capsys):
        assert cmd_list() == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_fast_experiments(self, capsys):
        assert main(["run", "table1", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 6" in out

    def test_run_dedupes(self, capsys):
        assert main(["run", "table1", "table1"]) == 0
        out = capsys.readouterr().out
        assert out.count("########## table1 ##########") == 1

    def test_unknown_experiment(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_registered_experiment_has_callable(self):
        for name, (func, description) in EXPERIMENTS.items():
            assert callable(func), name
            assert description


class TestServeBench:
    SMALL = [
        "serve-bench", "--shards", "2", "--records", "400",
        "--requests", "800", "--users", "50",
    ]

    def test_small_run_reports_and_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        assert main(self.SMALL + ["--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "closed_loop:" in out
        assert "wrong: 0" in out
        import json

        report = json.loads(out_path.read_text())
        closed = report["closed_loop"]
        assert closed["wrong"] == 0
        assert (
            closed["completed"] + closed["shed"] == closed["requests"]
        )

    def test_shed_gate_maps_to_overload_exit_code(self, capsys):
        argv = self.SMALL + [
            "--max-pending", "1", "--max-shed-fraction", "0.0001",
        ]
        assert main(argv) == 12  # ServiceOverloadError.exit_code
        assert "shed fraction" in capsys.readouterr().err
