"""Integration: the behavioral slice and the vectorized analytics agree.

Tables 2 and 3 are computed with :mod:`repro.hashing.analysis`; the
behavioral :class:`~repro.core.slice.CARAMSlice` implements the same
machine bit-by-bit.  These tests insert the same records through both paths
and compare AMAL, spill counts, and occupancy.
"""

import numpy as np
import pytest

from repro.core.config import SliceConfig
from repro.core.index import make_index_generator
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.hashing.analysis import occupancy_report, simulate_linear_probing
from repro.hashing.base import ModuloHash
from repro.utils.rng import make_rng

INDEX_BITS = 5
ROWS = 1 << INDEX_BITS
KEY_BITS = 16


def build_slice(slots):
    record_format = RecordFormat(key_bits=KEY_BITS, data_bits=8)
    row_bits = 8 + slots * record_format.slot_bits
    config = SliceConfig(
        index_bits=INDEX_BITS,
        row_bits=row_bits,
        record_format=record_format,
        slots_override=slots,
    )
    return CARAMSlice(config, make_index_generator(ModuloHash(ROWS)))


@pytest.mark.parametrize("slots,count,seed", [
    (4, 90, 0),
    (4, 120, 1),
    (2, 60, 2),
    (8, 250, 3),
])
def test_behavioral_amal_matches_analysis(slots, count, seed):
    rng = make_rng(seed)
    # Distinct keys so searches are unambiguous.
    keys = rng.permutation(1 << KEY_BITS)[:count]
    homes = keys % ROWS

    sl = build_slice(slots)
    for key in keys:
        sl.insert(int(key), data=int(key) % 251)

    probe = simulate_linear_probing(homes, ROWS, slots)

    # Final occupancy agrees.
    behavioral_occupancy = np.zeros(ROWS, dtype=np.int64)
    for row, _, _ in sl.records():
        behavioral_occupancy[row] += 1
    assert (behavioral_occupancy == probe.occupancy).all()

    # Per-key search cost agrees with 1 + displacement.
    for i, key in enumerate(keys):
        result = sl.search(int(key))
        assert result.hit
        assert result.data == int(key) % 251
        assert result.bucket_accesses == 1 + probe.displacements[i], (
            f"key {key} home {homes[i]}"
        )

    # Aggregate AMAL agrees with the analytic report.
    report = occupancy_report(homes, ROWS, slots)
    assert sl.stats.amal == pytest.approx(report.amal_uniform)


def test_spilled_counts_agree():
    rng = make_rng(9)
    keys = rng.permutation(1 << KEY_BITS)[:90]  # capacity is 32 x 3 = 96
    homes = keys % ROWS
    sl = build_slice(3)
    for key in keys:
        sl.insert(int(key))
    probe = simulate_linear_probing(homes, ROWS, 3)
    spilled_behavioral = sum(
        1
        for i, key in enumerate(keys)
        if sl.search(int(key)).bucket_accesses > 1
    )
    assert spilled_behavioral == probe.spilled_count
