"""Unit tests for the software hash-table baselines."""

import pytest

from repro.errors import CapacityError
from repro.hashing.base import ModuloHash
from repro.hashing.table import (
    HEAP_BASE,
    ChainedHashTable,
    OpenAddressingTable,
)


class TestChainedHashTable:
    def test_insert_lookup(self):
        table = ChainedHashTable(ModuloHash(8))
        table.insert(10, "a")
        table.insert(18, "b")  # same bucket
        assert table.lookup(10).value == "a"
        assert table.lookup(18).value == "b"
        assert len(table) == 2

    def test_update_in_place(self):
        table = ChainedHashTable(ModuloHash(8))
        table.insert(1, "a")
        table.insert(1, "b")
        assert table.lookup(1).value == "b"
        assert len(table) == 1

    def test_miss(self):
        table = ChainedHashTable(ModuloHash(8))
        outcome = table.lookup(5)
        assert not outcome.found
        assert outcome.value is None

    def test_delete(self):
        table = ChainedHashTable(ModuloHash(8))
        table.insert(1, "a")
        assert table.delete(1) is True
        assert table.delete(1) is False
        assert not table.lookup(1).found

    def test_delete_middle_of_chain(self):
        table = ChainedHashTable(ModuloHash(4))
        for k in (0, 4, 8):
            table.insert(k, k)
        assert table.delete(4) is True
        assert table.lookup(0).found and table.lookup(8).found

    def test_chain_traversal_costs_accesses(self):
        table = ChainedHashTable(ModuloHash(1))  # everything chains
        for k in range(5):
            table.insert(k, k)
        # Chains are LIFO: key 0 is deepest -> 1 slot + 5 nodes.
        assert table.lookup(0).memory_accesses == 6
        assert table.lookup(4).memory_accesses == 2

    def test_addresses_distinguish_slots_and_nodes(self):
        table = ChainedHashTable(ModuloHash(4))
        table.insert(1, "x")
        outcome = table.lookup(1)
        assert outcome.addresses[0] < HEAP_BASE  # bucket slot
        assert outcome.addresses[1] >= HEAP_BASE  # node

    def test_chain_lengths(self):
        table = ChainedHashTable(ModuloHash(2))
        for k in (0, 2, 4, 1):
            table.insert(k, k)
        assert sorted(table.chain_lengths()) == [1, 3]


class TestOpenAddressingTable:
    def test_insert_lookup(self):
        table = OpenAddressingTable(ModuloHash(8))
        table.insert(3, "x")
        assert table.lookup(3).value == "x"

    def test_linear_probe_on_collision(self):
        table = OpenAddressingTable(ModuloHash(8))
        table.insert(0, "a")
        probes = table.insert(8, "b")  # collides at slot 0
        assert probes == 2
        assert table.lookup(8).value == "b"
        assert table.lookup(8).memory_accesses == 2

    def test_update_in_place(self):
        table = OpenAddressingTable(ModuloHash(8))
        table.insert(1, "a")
        table.insert(1, "b")
        assert table.lookup(1).value == "b"
        assert len(table) == 1

    def test_wraparound(self):
        table = OpenAddressingTable(ModuloHash(4))
        table.insert(3, "a")
        table.insert(7, "b")  # wraps to slot 0
        assert table.lookup(7).value == "b"

    def test_full_table_raises(self):
        table = OpenAddressingTable(ModuloHash(2))
        table.insert(0, "a")
        table.insert(1, "b")
        with pytest.raises(CapacityError):
            table.insert(2, "c")

    def test_tombstone_preserves_probe_chain(self):
        table = OpenAddressingTable(ModuloHash(8))
        table.insert(0, "a")
        table.insert(8, "b")   # probes past slot 0
        assert table.delete(0) is True
        # Key 8 must still be reachable through the tombstone.
        assert table.lookup(8).value == "b"

    def test_insert_reuses_tombstone(self):
        table = OpenAddressingTable(ModuloHash(4))
        table.insert(0, "a")
        table.insert(4, "b")
        table.delete(0)
        table.insert(8, "c")  # same bucket; should take the tombstone slot
        assert table.lookup(8).value == "c"
        assert table.lookup(8).memory_accesses == 1

    def test_delete_missing(self):
        table = OpenAddressingTable(ModuloHash(4))
        assert table.delete(9) is False

    def test_miss_stops_at_empty(self):
        table = OpenAddressingTable(ModuloHash(8))
        table.insert(0, "a")
        outcome = table.lookup(8)
        assert not outcome.found
        assert outcome.memory_accesses == 2  # slot 0 occupied, slot 1 empty
