"""Property-based tests: the sweep-based spill model against a brute-force
sequential-insertion reference."""

from typing import List, Optional, Sequence

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.analysis import simulate_linear_probing


def reference_linear_probing(
    home: Sequence[int],
    bucket_count: int,
    slots: int,
    arrival_order: Optional[Sequence[int]] = None,
) -> List[int]:
    """Literal sequential insertion: each record walks forward from its
    home bucket to the first bucket with a free slot."""
    if arrival_order is None:
        order = list(range(len(home)))
    else:
        order = sorted(range(len(home)), key=lambda i: arrival_order[i])
    occupancy = [0] * bucket_count
    displacements = [0] * len(home)
    for record in order:
        start = home[record]
        for distance in range(bucket_count):
            bucket = (start + distance) % bucket_count
            if occupancy[bucket] < slots:
                occupancy[bucket] += 1
                displacements[record] = distance
                break
        else:  # pragma: no cover - capacity guaranteed by strategy
            raise AssertionError("table full")
    return displacements


@st.composite
def probing_case(draw):
    bucket_count = draw(st.integers(min_value=1, max_value=12))
    slots = draw(st.integers(min_value=1, max_value=4))
    capacity = bucket_count * slots
    count = draw(st.integers(min_value=0, max_value=capacity))
    home = draw(
        st.lists(
            st.integers(min_value=0, max_value=bucket_count - 1),
            min_size=count, max_size=count,
        )
    )
    return bucket_count, slots, home


class TestAgainstReference:
    @given(probing_case())
    @settings(max_examples=300, deadline=None)
    def test_input_order_matches_reference(self, case):
        bucket_count, slots, home = case
        result = simulate_linear_probing(home, bucket_count, slots)
        expected = reference_linear_probing(home, bucket_count, slots)
        assert result.displacements.tolist() == expected

    @given(probing_case(), st.randoms(use_true_random=False))
    @settings(max_examples=200, deadline=None)
    def test_shuffled_arrival_matches_reference(self, case, rnd):
        bucket_count, slots, home = case
        arrival = list(range(len(home)))
        rnd.shuffle(arrival)
        result = simulate_linear_probing(
            home, bucket_count, slots, arrival_order=arrival
        )
        expected = reference_linear_probing(
            home, bucket_count, slots, arrival_order=arrival
        )
        assert result.displacements.tolist() == expected


class TestInvariants:
    @given(probing_case())
    @settings(max_examples=200, deadline=None)
    def test_occupancy_conserves_records(self, case):
        bucket_count, slots, home = case
        result = simulate_linear_probing(home, bucket_count, slots)
        assert result.occupancy.sum() == len(home)
        assert (result.occupancy <= slots).all()

    @given(probing_case())
    @settings(max_examples=200, deadline=None)
    def test_displacements_bounded(self, case):
        bucket_count, slots, home = case
        result = simulate_linear_probing(home, bucket_count, slots)
        assert (result.displacements >= 0).all()
        assert (result.displacements < bucket_count).all()

    @given(probing_case())
    @settings(max_examples=200, deadline=None)
    def test_reach_covers_every_record(self, case):
        bucket_count, slots, home = case
        result = simulate_linear_probing(home, bucket_count, slots)
        for record, bucket in enumerate(home):
            assert result.displacements[record] <= result.reach[bucket]

    @given(probing_case())
    @settings(max_examples=200, deadline=None)
    def test_home_records_fill_before_spilling(self, case):
        """No record spills out of a bucket that ends up with free slots."""
        bucket_count, slots, home = case
        result = simulate_linear_probing(home, bucket_count, slots)
        for record, bucket in enumerate(home):
            if result.displacements[record] > 0:
                assert result.occupancy[bucket] == slots
