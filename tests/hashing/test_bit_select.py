"""Unit tests for bit-selection hashing and the greedy hash-bit search."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing.bit_select import (
    BitSelectHash,
    greedy_bit_selection,
    last_bits_of_first,
)


class TestBitSelectHash:
    def test_single_bit(self):
        h = BitSelectHash(8, [0])
        assert h(0b1000_0000) == 1
        assert h(0b0111_1111) == 0

    def test_concatenation_order(self):
        h = BitSelectHash(8, [0, 7])
        assert h(0b1000_0001) == 0b11
        assert h(0b1000_0000) == 0b10

    def test_bucket_count(self):
        assert BitSelectHash(32, range(11)).bucket_count == 2048

    def test_index_bits(self):
        assert BitSelectHash(32, range(11)).index_bits == 11

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            BitSelectHash(8, [1, 1])

    def test_out_of_range_position_rejected(self):
        with pytest.raises(ConfigurationError):
            BitSelectHash(8, [8])

    def test_empty_positions_rejected(self):
        with pytest.raises(ConfigurationError):
            BitSelectHash(8, [])

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.lists(
            st.integers(min_value=0, max_value=31),
            min_size=1, max_size=12, unique=True,
        ),
    )
    def test_vectorized_matches_scalar(self, key, positions):
        h = BitSelectHash(32, positions)
        assert h.index_many([key])[0] == h(key)

    def test_vectorized_batch(self):
        h = BitSelectHash(16, [4, 5, 6, 7])
        keys = np.arange(0, 1 << 16, 97, dtype=np.uint64)
        vectorized = h.index_many(keys)
        scalar = [h(int(k)) for k in keys]
        assert vectorized.tolist() == scalar


class TestLastBitsOfFirst:
    def test_paper_ip_hash(self):
        # "choosing the last R bits in the first 16 bits" with R = 11.
        h = last_bits_of_first(32, 16, 11)
        assert h.positions == tuple(range(5, 16))
        assert h.bucket_count == 2048

    def test_window_violation_rejected(self):
        with pytest.raises(ConfigurationError):
            last_bits_of_first(32, 16, 17)


class TestGreedyBitSelection:
    def test_finds_discriminating_bits(self):
        # Keys differ only in bits 4..7: greedy must pick from there.
        keys = [(i << 0) | (pattern << 24) for i, pattern in
                enumerate([0b1010] * 16)]
        keys = [(0b1010 << 28) | (i << 24) for i in range(16)]
        h = greedy_bit_selection(keys, key_width=32, select_count=4)
        assert set(h.positions) == {4, 5, 6, 7}

    def test_even_distribution_objective(self):
        # 8 keys hitting all values of bits 0..2; bit 3 constant.
        keys = [i << 28 for i in range(8)]
        h = greedy_bit_selection(keys, key_width=32, select_count=3)
        counts = np.bincount(h.index_many(keys), minlength=8)
        assert counts.max() == 1

    def test_candidate_restriction(self):
        keys = [i for i in range(256)]
        h = greedy_bit_selection(
            keys, key_width=32, select_count=2,
            candidate_positions=range(16, 32),
        )
        assert all(16 <= p < 32 for p in h.positions)

    def test_slots_objective(self):
        keys = list(range(64))
        h = greedy_bit_selection(
            keys, key_width=32, select_count=3, slots_per_bucket=8
        )
        counts = np.bincount(h.index_many(keys), minlength=8)
        assert (counts <= 8).all()

    def test_too_few_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            greedy_bit_selection([1], 8, 3, candidate_positions=[0, 1])

    def test_empty_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            greedy_bit_selection([], 8, 2)

    def test_positions_sorted_msb_first(self):
        keys = list(range(1024))
        h = greedy_bit_selection(keys, key_width=32, select_count=4)
        assert list(h.positions) == sorted(h.positions)
