"""Unit tests for the alternative hash families."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.base import ModuloHash
from repro.hashing.universal import (
    FNV1aHash,
    MultiplicativeHash,
    TabulationHash,
    fnv1a_64,
)


class TestModuloHash:
    def test_basic(self):
        h = ModuloHash(16)
        assert h(35) == 3

    def test_vectorized(self):
        h = ModuloHash(7)
        keys = np.arange(100, dtype=np.uint64)
        assert h.index_many(keys).tolist() == [h(int(k)) for k in keys]

    def test_rebucketed(self):
        assert ModuloHash(4).rebucketed(8).bucket_count == 8


class TestFnv:
    def test_known_offset(self):
        # FNV-1a of a single zero byte from the offset basis.
        assert fnv1a_64(b"\x00") == (0xCBF29CE484222325 * 0x100000001B3) % 2**64

    def test_int_and_bytes_keys(self):
        assert fnv1a_64(0x41) == fnv1a_64(b"\x41")

    def test_string_keys(self):
        assert fnv1a_64("abc") == fnv1a_64(b"abc")

    def test_in_range(self):
        h = FNV1aHash(100)
        assert all(0 <= h(k) < 100 for k in range(1000))

    def test_spread(self):
        h = FNV1aHash(64)
        counts = np.bincount([h(k) for k in range(10_000)], minlength=64)
        assert counts.max() < 3 * counts.mean()


class TestMultiplicativeHash:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            MultiplicativeHash(100)

    def test_even_multiplier_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiplicativeHash(64, multiplier=2)

    def test_in_range(self):
        h = MultiplicativeHash(256)
        assert all(0 <= h(k) < 256 for k in range(5000))

    def test_vectorized_matches_scalar(self):
        h = MultiplicativeHash(1024)
        keys = np.arange(0, 100_000, 997, dtype=np.uint64)
        assert h.index_many(keys).tolist() == [h(int(k)) for k in keys]

    def test_sequential_keys_spread(self):
        # The whole point of the golden-ratio multiplier: sequential keys
        # should not cluster.
        h = MultiplicativeHash(64)
        counts = np.bincount([h(k) for k in range(6400)], minlength=64)
        assert counts.max() <= 2 * counts.mean()


class TestTabulationHash:
    def test_deterministic_per_seed(self):
        a = TabulationHash(128, seed=5)
        b = TabulationHash(128, seed=5)
        assert all(a(k) == b(k) for k in (b"x", b"hello", 12345))

    def test_seed_changes_function(self):
        a = TabulationHash(128, seed=1)
        b = TabulationHash(128, seed=2)
        assert any(a(k) != b(k) for k in range(100))

    def test_length_sensitivity(self):
        # Keys that share a prefix but differ in length must (almost
        # surely) hash differently because length is mixed in.
        h = TabulationHash(1 << 30, seed=3)
        assert h(b"ab") == h(b"ab")
        assert h(b"a") != h(b"aa")

    def test_key_too_long_rejected(self):
        h = TabulationHash(64, max_key_bytes=4)
        with pytest.raises(ConfigurationError):
            h(b"abcde")

    def test_spread(self):
        h = TabulationHash(64, seed=7)
        counts = np.bincount([h(k) for k in range(10_000)], minlength=64)
        assert counts.max() < 3 * counts.mean()
