"""Unit tests for the DJB string hash and its vectorized kernel."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing.djb import (
    DJB_SEED,
    DJBHash,
    djb2_bytes,
    djb2_matrix,
    pack_strings,
)


class TestScalarDjb:
    def test_empty_string_is_seed(self):
        assert djb2_bytes(b"") == DJB_SEED

    def test_recurrence(self):
        # hash(i) = (hash(i-1) << 5) + hash(i-1) + str[i], mod 2^32.
        expected = ((DJB_SEED << 5) + DJB_SEED + ord("a")) & 0xFFFFFFFF
        assert djb2_bytes(b"a") == expected

    def test_known_value(self):
        # djb2("hello") is a widely quoted constant.
        assert djb2_bytes(b"hello") == 261238937

    def test_str_and_bytes_agree(self):
        assert djb2_bytes("of the road") == djb2_bytes(b"of the road")

    def test_distinct_strings_differ(self):
        assert djb2_bytes(b"abc") != djb2_bytes(b"acb")


class TestPackStrings:
    def test_layout(self):
        packed = pack_strings([b"ab", b"c"], max_length=4)
        assert packed.shape == (2, 5)
        assert packed[0, :2].tobytes() == b"ab"
        assert packed[0, 4] == 2
        assert packed[1, 4] == 1
        assert packed[0, 2] == 0  # zero padding

    def test_too_long_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_strings([b"abcde"], max_length=4)


class TestVectorizedDjb:
    @given(st.lists(
        st.binary(min_size=0, max_size=16).filter(lambda b: b"\x00" not in b),
        min_size=1, max_size=20,
    ))
    def test_matrix_matches_scalar(self, strings):
        packed = pack_strings(strings, max_length=16)
        hashes = djb2_matrix(packed)
        expected = [djb2_bytes(s) for s in strings]
        assert hashes.tolist() == expected

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            djb2_matrix(np.zeros(4, dtype=np.uint8))


class TestDJBHash:
    def test_power_of_two_uses_mask(self):
        h = DJBHash(1 << 14)
        key = b"hello world xx"
        assert h(key) == djb2_bytes(key) & ((1 << 14) - 1)

    def test_non_power_of_two_uses_modulo(self):
        h = DJBHash(1000)
        key = b"hello"
        assert h(key) == djb2_bytes(key) % 1000

    def test_index_many_matches_scalar(self):
        h = DJBHash(4096)
        keys = [b"alpha beta", b"gamma", b"delta epsilon"]
        assert h.index_many(keys).tolist() == [h(k) for k in keys]

    def test_rebucketed(self):
        h = DJBHash(1024).rebucketed(2048)
        assert h.bucket_count == 2048

    def test_spread_is_reasonable(self):
        # DJB over text-like strings should land near-uniform: no bucket
        # more than ~4x the mean for 10k strings over 256 buckets.
        h = DJBHash(256)
        keys = [f"word{i} test{i % 97}".encode() for i in range(10_000)]
        counts = np.bincount(h.index_many(keys), minlength=256)
        assert counts.max() < 4 * counts.mean()
