"""Unit tests for the occupancy analytics and linear-probing spill model."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hashing.analysis import (
    amal,
    bucket_occupancy,
    occupancy_report,
    simulate_linear_probing,
    unsuccessful_amal,
)


class TestBucketOccupancy:
    def test_counts(self):
        counts = bucket_occupancy([0, 0, 2], 4)
        assert counts.tolist() == [2, 0, 1, 0]

    def test_empty(self):
        assert bucket_occupancy([], 3).tolist() == [0, 0, 0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            bucket_occupancy([5], 4)


class TestSimulateLinearProbing:
    def test_no_overflow_all_home(self):
        result = simulate_linear_probing([0, 1, 2, 3], 4, 1)
        assert result.displacements.tolist() == [0, 0, 0, 0]
        assert result.spilled_count == 0

    def test_simple_spill(self):
        result = simulate_linear_probing([0, 0, 0], 4, 2)
        assert sorted(result.displacements.tolist()) == [0, 0, 1]
        assert result.spilled_count == 1
        assert result.overflowing_bucket_count == 1

    def test_fcfs_order(self):
        # Records arrive in input order; the last one to bucket 0 spills.
        result = simulate_linear_probing([0, 0, 0], 4, 2)
        assert result.displacements.tolist() == [0, 0, 1]

    def test_arrival_order_controls_who_spills(self):
        arrival = [2, 0, 1]  # record 0 arrives last
        result = simulate_linear_probing([0, 0, 0], 4, 2, arrival_order=arrival)
        assert result.displacements.tolist() == [1, 0, 0]

    def test_cascade(self):
        # Bucket 0 overflows into bucket 1, which pushes bucket 1's own
        # record further only if bucket 1 is full at its arrival.
        home = [0, 0, 0, 1, 1]
        result = simulate_linear_probing(home, 4, 2)
        # Record 2 spills to bucket 1 (arrival 2, before home records 3, 4?
        # No: arrivals are input order 0..4; bucket sweep places earliest
        # arrivals first: bucket 1 holds record 2 (t=2)? records 3 (t=3)
        # and 4 (t=4) compete; earliest two of {2,3,4} = {2,3}; record 4
        # spills to bucket 2.
        assert result.displacements[2] == 1
        assert result.displacements[4] == 1
        assert result.occupancy.tolist() == [2, 2, 1, 0]

    def test_wraparound(self):
        result = simulate_linear_probing([3, 3, 3], 4, 1)
        assert result.displacements[0] == 0
        assert sorted(result.displacements.tolist()) == [0, 1, 2]
        # Spills wrapped into buckets 0 and 1.
        assert result.occupancy.tolist() == [1, 1, 0, 1]

    def test_exact_capacity_fits(self):
        result = simulate_linear_probing([0] * 8, 4, 2)
        assert result.occupancy.sum() == 8
        assert (result.displacements >= 0).all()

    def test_over_capacity_rejected(self):
        with pytest.raises(CapacityError):
            simulate_linear_probing([0] * 9, 4, 2)

    def test_reach_tracks_max_displacement(self):
        result = simulate_linear_probing([0, 0, 0, 0, 0], 8, 2)
        assert result.reach[0] == 2
        assert result.reach[1:].tolist() == [0] * 7

    def test_load_factor(self):
        result = simulate_linear_probing([0, 1], 4, 2)
        assert result.load_factor == pytest.approx(0.25)

    def test_bad_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_linear_probing([0], 4, 0)

    def test_mismatched_arrival_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_linear_probing([0, 1], 4, 1, arrival_order=[0])


class TestAmal:
    def test_no_spills_is_one(self):
        assert amal([0, 0, 0]) == pytest.approx(1.0)

    def test_uniform_mean(self):
        assert amal([0, 1, 2]) == pytest.approx(2.0)

    def test_weighted(self):
        # Hot record at home, cold record displaced by 2.
        assert amal([0, 2], weights=[3.0, 1.0]) == pytest.approx(1.5)

    def test_empty(self):
        assert amal([]) == 0.0

    def test_weight_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            amal([0, 1], weights=[1.0])

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            amal([0], weights=[0.0])


class TestOccupancyReport:
    def test_report_fields(self):
        home = [0, 0, 0, 1]
        report = occupancy_report(home, 4, 2)
        assert report.record_count == 4
        assert report.load_factor == pytest.approx(0.5)
        assert report.overflowing_bucket_fraction == pytest.approx(0.25)
        assert report.spilled_fraction == pytest.approx(0.25)
        assert report.amal_uniform == pytest.approx(1.25)
        assert report.amal_weighted is None

    def test_histogram_is_pre_spill(self):
        report = occupancy_report([0, 0, 0], 4, 2)
        # 3 empty buckets, 1 bucket with 3 home records.
        assert report.histogram.tolist() == [3, 0, 0, 1]
        assert report.histogram_pairs() == [(0, 3), (3, 1)]

    def test_weighted_run(self):
        home = [0, 0, 0]
        weights = [1.0, 1.0, 10.0]
        report = occupancy_report(home, 4, 2, weights=weights)
        # Hot record inserted first -> it stays home; a cold one spills.
        assert report.amal_weighted < report.amal_uniform

    def test_weighted_arrival_override(self):
        home = [0, 0]
        weights = [10.0, 1.0]
        # Force the hot record to arrive last.
        report = occupancy_report(
            home, 4, 1, weights=weights, weighted_arrival=[1, 0]
        )
        assert report.amal_weighted == pytest.approx(
            (10 * 2 + 1 * 1) / 11.0
        )

    def test_unsuccessful_amal(self):
        report = occupancy_report([0, 0, 0], 4, 2)
        assert report.unsuccessful_amal == pytest.approx(1.25)
        assert unsuccessful_amal(report.probe) == pytest.approx(1.25)


class TestInsertionOrderInvariance:
    def test_total_displacement_order_invariant(self):
        """The sum of displacements is a property of the home profile, not
        the insertion order (water-flow argument)."""
        rng = np.random.default_rng(0)
        home = rng.integers(0, 16, size=200)
        base = simulate_linear_probing(home, 16, 16)
        for seed in range(5):
            order = np.random.default_rng(seed).permutation(200)
            shuffled = simulate_linear_probing(
                home, 16, 16, arrival_order=order
            )
            assert shuffled.displacements.sum() == base.displacements.sum()
            assert (shuffled.occupancy == base.occupancy).all()
