"""Tests for the load generator: verified traffic, closed accounting."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.serving.cluster import CaramCluster
from repro.serving.loadgen import (
    MISS,
    make_request_stream,
    run_closed_loop,
    run_open_loop,
)
from repro.serving.service import ShardedService
from repro.utils.rng import make_rng

KEY_BITS = 16


def make_records(count=200, seed=5):
    rng = make_rng(seed)
    keys = rng.choice(1 << KEY_BITS, size=count, replace=False)
    return [(int(key), int(key) & 0xFF) for key in keys]


def build_service(**kwargs):
    records = make_records()
    cluster = CaramCluster.build(
        shard_count=2, index_bits=6, slots=8, key_bits=KEY_BITS
    )
    cluster.load(records)
    kwargs.setdefault("offload", False)
    return ShardedService(cluster, **kwargs), records


def build_stream(records, requests=300, **kwargs):
    stored = [key for key, _ in records]
    kwargs.setdefault("key_bits", KEY_BITS)
    kwargs.setdefault("seed", 9)
    return make_request_stream(
        stored, dict(records), requests=requests, **kwargs
    )


class TestRequestStream:
    def test_expected_answers_precomputed(self):
        records = make_records()
        stored = set(key for key, _ in records)
        values = dict(records)
        stream = build_stream(records, requests=500, miss_fraction=0.2)
        assert len(stream) == 500
        misses = 0
        for key, expected in zip(stream.keys, stream.expected):
            if expected == MISS:
                assert key not in stored
                misses += 1
            else:
                assert values[key] == expected
        assert 0 < misses < 250  # ~20% drew the miss branch

    def test_zero_skew_is_valid(self):
        records = make_records()
        stream = build_stream(records, zipf_exponent=0.0)
        assert len(stream) == 300

    def test_bad_miss_fraction(self):
        records = make_records()
        with pytest.raises(ConfigurationError):
            build_stream(records, miss_fraction=1.5)


class TestClosedLoop:
    def test_accounting_closes_with_zero_wrong(self):
        service, records = build_service(
            max_batch_size=32, max_delay=0.001
        )
        stream = build_stream(records, requests=400)

        async def run():
            async with service:
                return await run_closed_loop(service, stream, users=40)

        report = asyncio.run(run())
        assert report.mode == "closed_loop"
        assert report.wrong == 0
        assert report.shed == 0
        assert report.completed == report.requests == 400
        assert report.sustained_qps > 0
        assert report.coalescing_factor >= 1.0
        assert report.latency["count"] == 400
        as_dict = report.as_dict()
        assert as_dict["shed_fraction"] == 0.0

    def test_users_must_be_positive(self):
        service, records = build_service()
        stream = build_stream(records)
        with pytest.raises(ConfigurationError):
            asyncio.run(run_closed_loop(service, stream, users=0))
        service.cluster.close()


class TestOpenLoop:
    def test_overload_sheds_but_accounts_everything(self):
        """Offered far past capacity with a tiny admission bound: load
        shedding engages, yet every request is answered or typed-failed
        and no answer is wrong."""
        service, records = build_service(
            max_batch_size=16, max_delay=0.005, max_pending=4
        )
        stream = build_stream(records, requests=400)

        async def run():
            async with service:
                return await run_open_loop(
                    service, stream, offered_qps=1_000_000.0
                )

        report = asyncio.run(run())
        assert report.mode == "open_loop"
        assert report.offered_qps == 1_000_000.0
        assert report.shed > 0
        assert report.wrong == 0
        assert report.completed + report.shed == report.requests
        assert 0 < report.shed_fraction < 1

    def test_offered_qps_must_be_positive(self):
        service, records = build_service()
        stream = build_stream(records)
        with pytest.raises(ConfigurationError):
            asyncio.run(run_open_loop(service, stream, offered_qps=0))
        service.cluster.close()
