"""Tests for the coalescing async front end.

The load-bearing property: any interleaving of concurrent single-key
lookups returns results bit-identical to one direct ``search_batch`` over
the same keys, with identical summed per-key search stats — batching is
an invisible optimization, never a semantic change.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ServiceOverloadError
from repro.serving.cluster import CaramCluster
from repro.serving.service import ShardedService
from repro.utils.rng import make_rng

KEY_BITS = 16


def make_records(count=120, seed=11):
    rng = make_rng(seed)
    keys = rng.choice(1 << KEY_BITS, size=count, replace=False)
    return [(int(key), int(key) & 0xFF) for key in keys]


def build_cluster(shard_count=2, records=None):
    cluster = CaramCluster.build(
        shard_count=shard_count, index_bits=5, slots=8, key_bits=KEY_BITS
    )
    cluster.load(make_records() if records is None else records)
    return cluster


def make_service(shard_count=2, records=None, **kwargs):
    kwargs.setdefault("offload", False)
    return ShardedService(build_cluster(shard_count, records), **kwargs)


class TestValidation:
    def test_bad_knobs_rejected(self):
        cluster = build_cluster()
        with pytest.raises(ConfigurationError):
            ShardedService(cluster, max_batch_size=0)
        with pytest.raises(ConfigurationError):
            ShardedService(cluster, max_delay=-1.0)
        with pytest.raises(ConfigurationError):
            ShardedService(cluster, max_pending=0)
        cluster.close()

    def test_cross_loop_reuse_rejected(self):
        service = make_service()
        records = make_records()

        async def one_lookup():
            return await service.lookup(records[0][0])

        asyncio.run(one_lookup())
        with pytest.raises(ConfigurationError):
            asyncio.run(one_lookup())
        asyncio.run(asyncio.sleep(0))  # silence unfinished-task warnings


class TestCoalescing:
    def test_flush_on_size(self):
        """With an effectively infinite window, the batch flushes the
        moment it fills — max_batch_size concurrent requests, one batch."""
        records = make_records()
        service = make_service(
            shard_count=1,
            records=records,
            max_batch_size=4,
            max_delay=60.0,
        )

        async def run():
            async with service:
                keys = [key for key, _ in records[:4]]
                results = await asyncio.gather(
                    *(service.lookup(key) for key in keys)
                )
                assert [r.data for r in results] == [
                    data for _, data in records[:4]
                ]

        asyncio.run(run())
        assert service.stats.batches == 1
        assert service.stats.max_batch_observed == 4
        assert service.stats.coalescing_factor == 4.0

    def test_flush_on_deadline(self):
        """A partial batch flushes once the oldest request's window
        expires, without waiting to fill."""
        records = make_records()
        service = make_service(
            shard_count=1,
            records=records,
            max_batch_size=100,
            max_delay=0.02,
        )

        async def run():
            async with service:
                keys = [key for key, _ in records[:3]]
                results = await asyncio.gather(
                    *(service.lookup(key) for key in keys)
                )
                assert all(r.hit for r in results)

        asyncio.run(run())
        assert service.stats.batches == 1
        assert service.stats.coalesced_keys == 3

    def test_oversize_burst_splits_into_batches(self):
        records = make_records()
        service = make_service(
            shard_count=1,
            records=records,
            max_batch_size=8,
            max_delay=0.005,
        )

        async def run():
            async with service:
                keys = [key for key, _ in records[:20]]
                await asyncio.gather(
                    *(service.lookup(key) for key in keys)
                )

        asyncio.run(run())
        assert service.stats.batches >= 3  # ceil(20 / 8)
        assert service.stats.max_batch_observed <= 8
        assert service.stats.coalesced_keys == 20


class TestAdmissionControl:
    def test_shed_on_overload(self):
        """Requests beyond max_pending shed with a typed error naming the
        shard; admitted ones still get correct answers."""
        records = make_records()
        service = make_service(
            shard_count=1,
            records=records,
            max_batch_size=100,
            max_delay=0.02,
            max_pending=2,
        )

        async def run():
            async with service:
                keys = [key for key, _ in records[:5]]
                return await asyncio.gather(
                    *(service.lookup(key) for key in keys),
                    return_exceptions=True,
                )

        outcomes = asyncio.run(run())
        shed = [
            o for o in outcomes if isinstance(o, ServiceOverloadError)
        ]
        answered = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(shed) == 3 and len(answered) == 2
        assert all(error.shard_id == 0 for error in shed)
        assert all(r.hit for r in answered)
        assert service.stats.shed == 3
        assert service.stats.completed == 2
        assert service.stats.requests == 5

    def test_draining_service_rejects(self):
        records = make_records()
        service = make_service(records=records)

        async def run():
            async with service:
                await service.lookup(records[0][0])
                await service.drain()
                with pytest.raises(ServiceOverloadError):
                    await service.lookup(records[0][0])

        asyncio.run(run())
        assert service.stats.drains >= 1

    def test_drain_answers_everything_admitted(self):
        records = make_records()
        service = make_service(
            shard_count=1,
            records=records,
            max_batch_size=100,
            max_delay=60.0,  # only the drain can flush these
        )

        async def run():
            async with service:
                keys = [key for key, _ in records[:6]]
                tasks = [
                    asyncio.ensure_future(service.lookup(key))
                    for key in keys
                ]
                await asyncio.sleep(0)  # let them enqueue
                await service.drain()
                results = await asyncio.gather(*tasks)
                assert [r.data for r in results] == [
                    data for _, data in records[:6]
                ]

        asyncio.run(run())


class TestLifecycle:
    def test_aclose_closes_cluster(self):
        records = make_records()
        service = make_service(records=records)
        closed = []
        original_close = service.cluster.close
        service.cluster.close = lambda: (closed.append(True), original_close())

        async def run():
            await service.lookup(records[0][0])
            await service.aclose()
            await service.aclose()  # idempotent

        asyncio.run(run())
        assert closed == [True]
        assert all(
            shard.group._batch_engine is None
            for shard in service.cluster.shards
        )


class TestAcloseHardening:
    """aclose is idempotent, concurrent-safe, and never strands futures."""

    def test_concurrent_aclose_runs_teardown_once(self):
        records = make_records()
        service = make_service(records=records)
        closed = []
        original_close = service.cluster.close
        service.cluster.close = lambda: (
            closed.append(True),
            original_close(),
        )

        async def run():
            await service.lookup(records[0][0])
            await asyncio.gather(*(service.aclose() for _ in range(5)))
            await service.aclose()  # and again after completion

        asyncio.run(run())
        assert closed == [True]

    def test_aclose_concurrent_with_inflight_lookups_resolves_all(self):
        """Lookups admitted before/while aclose runs either get their
        answer or a typed error — never a hang."""
        records = make_records()
        service = make_service(
            shard_count=1,
            records=records,
            max_batch_size=100,
            max_delay=60.0,  # only drain/close can flush
        )

        async def run():
            tasks = [
                asyncio.ensure_future(service.lookup(key))
                for key, _ in records[:8]
            ]
            await asyncio.sleep(0)  # let them enqueue
            closers = [
                asyncio.ensure_future(service.aclose()) for _ in range(3)
            ]
            outcomes = await asyncio.wait_for(
                asyncio.gather(*tasks, return_exceptions=True), 10.0
            )
            await asyncio.gather(*closers)
            return outcomes

        outcomes = asyncio.run(run())
        assert len(outcomes) == 8
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                assert isinstance(outcome, ServiceOverloadError)
            else:
                assert outcome.hit

    def test_dead_lane_rejects_typed_and_fails_pending(self):
        """A lane whose worker died fails its queue with a typed error
        and rejects new arrivals instead of queueing them forever."""
        records = make_records()
        service = make_service(
            shard_count=1,
            records=records,
            max_batch_size=100,
            max_delay=60.0,
        )

        async def run():
            task = asyncio.ensure_future(service.lookup(records[0][0]))
            await asyncio.sleep(0.01)  # let the lane worker start waiting
            lane = service._lanes[0]
            lane.task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await lane.task
            # The queued request resolved to a typed error...
            with pytest.raises(ServiceOverloadError):
                await asyncio.wait_for(task, 5.0)
            # ...and new arrivals are rejected loudly.
            with pytest.raises(ServiceOverloadError):
                await service.lookup(records[1][0])

        asyncio.run(run())
        asyncio.run(service.aclose())


class TestParityProperty:
    """Hypothesis: concurrent coalesced lookups == one direct batch."""

    RECORDS = make_records(count=150, seed=23)
    STORED = [key for key, _ in RECORDS]

    @settings(deadline=None, max_examples=20)
    @given(
        picks=st.lists(
            st.tuples(st.integers(0, 149), st.booleans()),
            min_size=1,
            max_size=40,
        ),
        max_batch_size=st.integers(1, 16),
        max_delay_ms=st.sampled_from([0.0, 0.5]),
    )
    def test_any_interleaving_matches_direct_batch(
        self, picks, max_batch_size, max_delay_ms
    ):
        # Mix of stored keys and near-misses (key+1 is usually absent).
        keys = [
            self.STORED[i] if hit else (self.STORED[i] + 1) & 0xFFFF
            for i, hit in picks
        ]
        service = make_service(
            records=self.RECORDS,
            max_batch_size=max_batch_size,
            max_delay=max_delay_ms / 1000.0,
        )
        reference = build_cluster(records=self.RECORDS)

        async def run():
            async with service:
                return await asyncio.gather(
                    *(service.lookup(key) for key in keys)
                )

        coalesced = asyncio.run(run())
        direct = reference.search_batch(keys)
        assert coalesced == direct
        # Per-key stats sum identically regardless of batch boundaries.
        assert service.cluster.total_stats() == reference.total_stats()
        reference.close()
