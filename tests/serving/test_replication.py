"""Replicated shards, chaos injection, and the fault-tolerant path.

The load-bearing property: under any schedule of replica-level faults
(crash, hang, transient errors, bit corruption), every admitted request
either returns the **bit-identical correct answer** or a **typed**
``CaRamError`` — no silent wrong answers, no lost futures.
"""

import asyncio
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CaRamError,
    ConfigurationError,
    ReliabilityError,
    ServiceOverloadError,
    ShardUnavailableError,
)
from repro.serving.cluster import CaramCluster
from repro.serving.replication import (
    ACTIVE,
    EVICTED,
    PROBATION,
    ChaosSpec,
    FailoverPolicy,
    FaultTolerantService,
    Replica,
    ReplicaSet,
    ReplicatedCluster,
)
from repro.telemetry.health import HealthFinding, HealthReport
from repro.telemetry.metrics import MetricsRegistry
from repro.utils.rng import make_rng

KEY_BITS = 16


def make_records(count=120, seed=11):
    rng = make_rng(seed)
    keys = rng.choice(1 << KEY_BITS, size=count, replace=False)
    return [(int(key), int(key) & 0xFF) for key in keys]


def build_replicated(
    shard_count=2, replication=2, records=None, policy=None, clock=None
):
    kwargs = dict(
        index_bits=5, slots=8, key_bits=KEY_BITS, policy=policy
    )
    if clock is not None:
        kwargs["clock"] = clock
    cluster = ReplicatedCluster.build(shard_count, replication, **kwargs)
    cluster.load(make_records() if records is None else records)
    return cluster


def build_reference(shard_count=2, records=None):
    cluster = CaramCluster.build(
        shard_count=shard_count, index_bits=5, slots=8, key_bits=KEY_BITS
    )
    cluster.load(make_records() if records is None else records)
    return cluster


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_report(level):
    return HealthReport(
        findings=[
            HealthFinding(
                rule="test", level=level, message="synthetic", value=0.0
            )
        ]
    )


class TestValidation:
    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec(mode="meteor")
        with pytest.raises(ConfigurationError):
            ChaosSpec(mode="hang", hang_seconds=-1)
        with pytest.raises(ConfigurationError):
            ChaosSpec(mode="error", error_rate=1.5)
        with pytest.raises(ConfigurationError):
            FailoverPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            FailoverPolicy(deadline=-0.1)
        with pytest.raises(ConfigurationError):
            FailoverPolicy(balancer="random")
        with pytest.raises(ConfigurationError):
            ReplicatedCluster.build(2, replication=0)

    def test_ft_service_requires_replicated_cluster(self):
        reference = build_reference()
        with pytest.raises(ConfigurationError):
            FaultTolerantService(reference)
        reference.close()


class TestReplicatedCluster:
    def test_replicas_are_bit_identical(self):
        records = make_records()
        cluster = build_replicated(records=records)
        for rset in cluster.replica_sets:
            counts = {
                replica.shard.group.record_count
                for replica in rset.replicas
            }
            assert len(counts) == 1
        assert cluster.record_count == len(records)
        cluster.close()

    def test_direct_batch_matches_unreplicated_reference(self):
        records = make_records()
        cluster = build_replicated(records=records)
        reference = build_reference(records=records)
        keys = [key for key, _ in records]
        keys += [(key + 1) & 0xFFFF for key, _ in records[:30]]
        assert cluster.search_batch(keys) == reference.search_batch(keys)
        assert cluster.search(keys[0]) == reference.search(keys[0])
        cluster.close()
        reference.close()

    def test_round_robin_spreads_reads(self):
        cluster = build_replicated(shard_count=1, replication=3)
        rset = cluster.replica_sets[0]
        for _ in range(12):
            rset.call([make_records()[0][0]])
        calls = [replica.calls for replica in rset.replicas]
        assert all(count >= 3 for count in calls)
        cluster.close()

    def test_least_inflight_picks_idle_replica(self):
        cluster = build_replicated(
            shard_count=1,
            replication=3,
            policy=FailoverPolicy(balancer="least-inflight"),
        )
        rset = cluster.replica_sets[0]
        rset.replicas[0].inflight = 5
        rset.replicas[1].inflight = 2
        assert rset.pick().replica_id == 2
        rset.replicas[2].inflight = 9
        assert rset.pick().replica_id == 1
        cluster.close()

    def test_telemetry_mounts(self):
        cluster = build_replicated()
        registry = MetricsRegistry()
        cluster.register_telemetry(registry, prefix="serving")
        cluster.search_batch([make_records()[0][0]])
        snapshot = registry.snapshot()["stats"]
        assert "serving.shard0.replica0.search" in snapshot
        assert "serving.shard1.replica1.search" in snapshot
        topology = snapshot["serving.cluster.topology"]
        assert topology["replication"] == 2
        membership = snapshot["serving.replica.membership"]
        assert membership["shard0"]["replicas"]["replica0"]["state"] == ACTIVE
        assert snapshot["serving.cluster.search"]["lookups"] > 0
        cluster.close()


class TestChaosModes:
    def test_crash_fails_over_and_evicts(self):
        records = make_records()
        cluster = build_replicated(
            shard_count=1,
            records=records,
            policy=FailoverPolicy(evict_after=2, probation_after=60.0),
        )
        reference = build_reference(shard_count=1, records=records)
        cluster.kill_replica(0, 0)
        keys = [key for key, _ in records]
        assert cluster.search_batch(keys) == reference.search_batch(keys)
        rset = cluster.replica_sets[0]
        # One batch = one call per shard; round-robin lands on the dead
        # replica every other call, so a few batches reach evict_after.
        for _ in range(4):
            cluster.search_batch(keys[:4])
        assert rset.replicas[0].state == EVICTED
        assert rset.stats.evictions == 1
        assert rset.stats.retries >= 2
        cluster.close()
        reference.close()

    def test_error_window_is_transient_and_deterministic(self):
        records = make_records()
        cluster = build_replicated(shard_count=1, records=records)
        cluster.inject_chaos(
            0, 0, ChaosSpec(mode="error", at_call=1, duration_calls=2)
        )
        replica = cluster.replica(0, 0)
        key = records[0][0]
        assert replica.call([key])[0].hit  # call 0: before the window
        for _ in range(2):  # calls 1-2: inside the window
            with pytest.raises(ReliabilityError):
                replica.call([key])
        assert replica.call([key])[0].hit  # call 3: window closed
        assert replica.chaos.injected == 2
        cluster.close()

    def test_corrupt_mode_rides_the_reliability_layer(self):
        """Corruption chaos goes through FaultInjector + ECC, so answers
        stay correct while faults demonstrably fire."""
        records = make_records()
        cluster = build_replicated(shard_count=1, records=records)
        reference = build_reference(shard_count=1, records=records)
        cluster.inject_chaos(
            0, 0, ChaosSpec(mode="corrupt", bit_flip_rate=2e-4, seed=7)
        )
        keys = [key for key, _ in records]
        expected = reference.search_batch(keys)
        for _ in range(6):
            assert cluster.search_batch(keys) == expected
        group = cluster.replica(0, 0).shard.group
        manager = group._reliability
        assert sum(
            guard.stats.faults_injected for guard in manager.guards
        ) > 0
        cluster.close()
        reference.close()

    def test_whole_set_down_raises_typed_error(self):
        cluster = build_replicated(
            shard_count=1,
            policy=FailoverPolicy(evict_after=1, probation_after=60.0),
        )
        cluster.kill_replica(0, 0)
        cluster.kill_replica(0, 1)
        key = make_records()[0][0]
        with pytest.raises(ShardUnavailableError) as excinfo:
            cluster.search_batch([key])
        assert excinfo.value.shard_id == 0
        assert excinfo.value.exit_code == 13
        cluster.close()


class TestCircuitBreaker:
    def test_evict_probation_readmit_cycle(self):
        clock = FakeClock()
        policy = FailoverPolicy(
            evict_after=2,
            probation_after=5.0,
            readmit_after=2,
            probe_interval=1,
        )
        cluster = build_replicated(
            shard_count=1, policy=policy, clock=clock
        )
        rset = cluster.replica_sets[0]
        victim = rset.replicas[0]
        rset.record_failure(victim, "error")
        assert victim.state == ACTIVE
        rset.record_failure(victim, "error")
        assert victim.state == EVICTED

        # While evicted, picks never land on the victim.
        for _ in range(6):
            assert rset.pick() is not victim
        # Cooldown elapses -> probation; probes trickle back.
        clock.advance(5.0)
        picked = {rset.pick().replica_id for _ in range(6)}
        assert victim.state == PROBATION
        assert victim.replica_id in picked
        # Enough probe successes -> re-admitted.
        rset.record_success(victim)
        rset.record_success(victim)
        assert victim.state == ACTIVE
        assert rset.stats.readmissions == 1

        # A probation failure re-evicts immediately.
        rset.record_failure(victim, "error")
        rset.record_failure(victim, "error")
        clock.advance(5.0)
        rset.pick()
        assert victim.state == PROBATION
        rset.record_failure(victim, "error")
        assert victim.state == EVICTED
        cluster.close()

    def test_health_verdicts_drive_membership(self):
        cluster = build_replicated(shard_count=1)
        rset = cluster.replica_sets[0]
        cluster.apply_health_report(0, 0, make_report("warn"))
        assert rset.replicas[0].state == ACTIVE
        assert rset.replicas[0].health_warnings == 1
        cluster.apply_health_report(0, 0, make_report("critical"))
        assert rset.replicas[0].state == EVICTED
        cluster.apply_health_report(0, 1, make_report("ok"))
        assert rset.replicas[1].state == ACTIVE
        cluster.close()

    def test_trace_events_emitted(self):
        from repro.telemetry.trace import Tracer

        cluster = build_replicated(
            shard_count=1,
            policy=FailoverPolicy(evict_after=1, probation_after=0.0),
        )
        tracer = Tracer()
        cluster.set_tracer(tracer)
        rset = cluster.replica_sets[0]
        rset.record_failure(rset.replicas[0], "error")
        rset.pick()
        rset.record_success(rset.replicas[0])
        rset.record_success(rset.replicas[0])
        kinds = [event.kind for event in tracer.events()]
        assert "replica.evicted" in kinds
        assert "replica.probation" in kinds
        assert "replica.readmitted" in kinds
        cluster.close()


class TestFaultTolerantService:
    RECORDS = make_records(count=150, seed=23)

    def run_service(self, cluster, keys, **service_kwargs):
        service = FaultTolerantService(cluster, **service_kwargs)

        async def run():
            async with service:
                return await asyncio.gather(
                    *(service.lookup(key) for key in keys),
                    return_exceptions=True,
                )

        return asyncio.run(run()), service

    def test_replica_crash_is_invisible_to_callers(self):
        cluster = build_replicated(
            records=self.RECORDS,
            policy=FailoverPolicy(
                deadline=2.0, attempt_timeout=0.2, evict_after=2
            ),
        )
        reference = build_reference(records=self.RECORDS)
        cluster.kill_replica(0, 1)
        cluster.kill_replica(1, 1)
        keys = [key for key, _ in self.RECORDS]
        outcomes, service = self.run_service(
            cluster, keys, max_batch_size=8, max_delay=0.0
        )
        assert outcomes == reference.search_batch(keys)
        assert service.stats.completed == len(keys)
        evictions = sum(
            rset.stats.evictions for rset in cluster.replica_sets
        )
        assert evictions >= 1
        reference.close()

    def test_hang_bounded_by_attempt_timeout(self):
        cluster = build_replicated(
            shard_count=1,
            records=self.RECORDS,
            policy=FailoverPolicy(
                deadline=2.0, attempt_timeout=0.03, evict_after=2
            ),
        )
        reference = build_reference(shard_count=1, records=self.RECORDS)
        cluster.inject_chaos(
            0, 0, ChaosSpec(mode="hang", hang_seconds=0.2)
        )
        keys = [key for key, _ in self.RECORDS[:40]]
        outcomes, _ = self.run_service(
            cluster, keys, max_batch_size=16, max_delay=0.0
        )
        assert outcomes == reference.search_batch(keys)
        rset = cluster.replica_sets[0]
        assert rset.stats.timeouts >= 1
        assert rset.replicas[0].state == EVICTED
        reference.close()

    def test_hedged_read_wins_over_slow_replica(self):
        cluster = build_replicated(
            shard_count=1,
            records=self.RECORDS,
            policy=FailoverPolicy(
                deadline=5.0,
                hedge_delay=0.01,
                evict_after=100,  # keep the slow replica in rotation
            ),
        )
        reference = build_reference(shard_count=1, records=self.RECORDS)
        # Round-robin picks replica 1 first: hang that one so the
        # primary call stalls and the hedge (on replica 0) wins.
        cluster.inject_chaos(
            0, 1, ChaosSpec(mode="hang", hang_seconds=0.15)
        )
        keys = [key for key, _ in self.RECORDS[:30]]
        outcomes, _ = self.run_service(
            cluster, keys, max_batch_size=30, max_delay=0.05
        )
        assert outcomes == reference.search_batch(keys)
        rset = cluster.replica_sets[0]
        assert rset.stats.hedges >= 1
        assert rset.stats.hedge_wins >= 1
        reference.close()

    def test_whole_set_down_fails_typed_and_sheds_nothing_silently(self):
        cluster = build_replicated(
            shard_count=1,
            records=self.RECORDS,
            policy=FailoverPolicy(
                deadline=0.5,
                attempt_timeout=0.1,
                evict_after=1,
                probation_after=60.0,
            ),
        )
        cluster.kill_replica(0, 0)
        cluster.kill_replica(0, 1)
        keys = [key for key, _ in self.RECORDS[:25]]
        outcomes, service = self.run_service(
            cluster, keys, max_batch_size=8, max_delay=0.0
        )
        assert all(
            isinstance(outcome, ShardUnavailableError)
            for outcome in outcomes
        )
        assert cluster.replica_sets[0].stats.exhausted >= 1
        # Every admitted request resolved: nothing hangs, nothing lost.
        assert service.stats.requests == len(keys)


class TestFaultScheduleProperty:
    """Hypothesis: random fault schedules never produce a silent wrong
    answer or a lost future (satellite of ISSUE 10)."""

    RECORDS = make_records(count=100, seed=31)
    STORED = [key for key, _ in RECORDS]
    REFERENCE = build_reference(shard_count=2, records=RECORDS)
    EXPECTED = {
        key: (result.hit, result.data)
        for key, result in zip(
            STORED + [(k + 1) & 0xFFFF for k in STORED],
            REFERENCE.search_batch(
                STORED + [(k + 1) & 0xFFFF for k in STORED]
            ),
        )
    }

    chaos_strategy = st.one_of(
        st.none(),
        st.builds(
            ChaosSpec,
            mode=st.sampled_from(["crash", "hang", "error"]),
            at_call=st.integers(0, 6),
            duration_calls=st.one_of(st.none(), st.integers(1, 4)),
            hang_seconds=st.just(0.03),
            error_rate=st.sampled_from([0.5, 1.0]),
            seed=st.integers(0, 99),
        ),
        st.builds(
            ChaosSpec,
            mode=st.just("corrupt"),
            bit_flip_rate=st.just(2e-4),
            seed=st.integers(0, 99),
        ),
    )

    @settings(deadline=None, max_examples=10)
    @given(
        schedules=st.lists(chaos_strategy, min_size=4, max_size=4),
        picks=st.lists(
            st.tuples(st.integers(0, 99), st.booleans()),
            min_size=1,
            max_size=40,
        ),
        data_seed=st.integers(0, 9),
    )
    def test_no_silent_wrong_answers_no_lost_futures(
        self, schedules, picks, data_seed
    ):
        keys = [
            self.STORED[i] if hit else (self.STORED[i] + 1) & 0xFFFF
            for i, hit in picks
        ]
        cluster = build_replicated(
            shard_count=2,
            records=self.RECORDS,
            policy=FailoverPolicy(
                deadline=1.0,
                attempt_timeout=0.02,
                evict_after=2,
                probation_after=0.05,
                seed=data_seed,
            ),
        )
        for (shard_id, replica_id), spec in zip(
            itertools.product(range(2), range(2)), schedules
        ):
            if spec is not None:
                cluster.inject_chaos(shard_id, replica_id, spec)
        service = FaultTolerantService(
            cluster, max_batch_size=8, max_delay=0.0
        )

        async def run():
            async with service:
                return await asyncio.gather(
                    *(service.lookup(key) for key in keys),
                    return_exceptions=True,
                )

        # An overall timeout proves no future is lost/hung.
        outcomes = asyncio.run(asyncio.wait_for(run(), 30.0))
        assert len(outcomes) == len(keys)
        for key, outcome in zip(keys, outcomes):
            if isinstance(outcome, Exception):
                assert isinstance(outcome, CaRamError)
                continue
            hit, data = self.EXPECTED[key]
            assert outcome.hit == hit and outcome.data == data
