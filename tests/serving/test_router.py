"""Unit and property tests for the serving-tier shard routers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.key import TernaryKey
from repro.errors import ConfigurationError, KeyFormatError
from repro.serving.router import (
    ConsistentHashRouter,
    PrefixRangeRouter,
    key_digest,
    splitmix64,
)


class TestKeyDigest:
    def test_scalar_matches_vectorized(self):
        keys = [0, 1, 7, 123456, (1 << 32) - 1, (1 << 63) + 5]
        vectorized = splitmix64(np.array(keys, dtype=np.uint64))
        for key, expected in zip(keys, vectorized.tolist()):
            assert key_digest(key) == expected

    def test_bytes_and_str_agree(self):
        assert key_digest("abc") == key_digest(b"abc")
        assert key_digest("abc") != key_digest("abd")

    def test_exact_ternary_routes_like_int(self):
        key = TernaryKey(value=0x1234, mask=0, width=16)
        assert key_digest(key) == key_digest(0x1234)

    def test_masked_ternary_rejected(self):
        key = TernaryKey(value=0x1200, mask=0x00FF, width=16)
        with pytest.raises(KeyFormatError):
            key_digest(key)


class TestConsistentHashRouter:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRouter(0)
        with pytest.raises(ConfigurationError):
            ConsistentHashRouter(2, replicas=0)

    def test_deterministic_across_instances(self):
        a = ConsistentHashRouter(5)
        b = ConsistentHashRouter(5)
        for key in range(500):
            assert a.shard_for_query(key) == b.shard_for_query(key)

    def test_stored_is_query_shard(self):
        router = ConsistentHashRouter(4)
        for key in range(200):
            assert router.shards_for_stored(key) == (
                router.shard_for_query(key),
            )

    def test_partition_matches_scalar_path(self):
        router = ConsistentHashRouter(4)
        keys = list(range(1000))
        partition = router.partition_queries(keys)
        assert sorted(
            int(i) for positions in partition for i in positions
        ) == list(range(len(keys)))
        for shard, positions in enumerate(partition):
            for position in positions.tolist():
                assert router.shard_for_query(keys[position]) == shard

    def test_partition_string_keys(self):
        router = ConsistentHashRouter(3)
        keys = [f"key-{i}" for i in range(100)]
        partition = router.partition_queries(keys)
        for shard, positions in enumerate(partition):
            for position in positions.tolist():
                assert router.shard_for_query(keys[position]) == shard

    def test_balance_within_factor(self):
        router = ConsistentHashRouter(4)
        counts = [len(p) for p in router.partition_queries(range(20_000))]
        mean = sum(counts) / len(counts)
        for count in counts:
            assert 0.5 * mean < count < 1.6 * mean, counts

    def test_resharding_moves_a_fraction(self):
        """Going 4 -> 5 shards must move roughly 1/5 of keys, not all."""
        before = ConsistentHashRouter(4)
        after = ConsistentHashRouter(5)
        keys = range(10_000)
        moved = sum(
            before.shard_for_query(k) != after.shard_for_query(k)
            for k in keys
        )
        assert moved / 10_000 < 0.45  # naive modulo would move ~0.8


class TestPrefixRangeRouter:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PrefixRangeRouter(4, key_bits=0)
        with pytest.raises(ConfigurationError):
            PrefixRangeRouter(8, key_bits=2)

    def test_query_address_out_of_range(self):
        router = PrefixRangeRouter(4, key_bits=8)
        with pytest.raises(KeyFormatError):
            router.shard_for_query(256)

    def test_masked_query_rejected(self):
        router = PrefixRangeRouter(4, key_bits=8)
        with pytest.raises(KeyFormatError):
            router.shard_for_query(TernaryKey(value=0, mask=0xF, width=8))

    def test_short_prefix_spans_every_shard(self):
        router = PrefixRangeRouter(4, key_bits=8)
        default_route = TernaryKey(value=0, mask=0xFF, width=8)
        assert router.shards_for_stored(default_route) == (0, 1, 2, 3)

    def test_partition_matches_scalar_path(self):
        router = PrefixRangeRouter(4, key_bits=16)
        keys = list(range(0, 1 << 16, 97))
        partition = router.partition_queries(keys)
        for shard, positions in enumerate(partition):
            for position in positions.tolist():
                assert router.shard_for_query(keys[position]) == shard

    @settings(deadline=None, max_examples=200)
    @given(
        shard_count=st.integers(1, 16),
        prefix_len=st.integers(0, 16),
        data=st.data(),
    )
    def test_matching_address_lands_on_a_stored_shard(
        self, shard_count, prefix_len, data
    ):
        """The shard a query routes to holds every prefix matching it."""
        key_bits = 16
        router = PrefixRangeRouter(shard_count, key_bits=key_bits)
        value = data.draw(st.integers(0, (1 << prefix_len) - 1) if prefix_len else st.just(0))
        mask = (1 << (key_bits - prefix_len)) - 1
        prefix = TernaryKey(
            value=value << (key_bits - prefix_len), mask=mask, width=key_bits
        )
        stored_on = router.shards_for_stored(prefix)
        low_bits = data.draw(st.integers(0, mask))
        address = prefix.value | low_bits
        assert router.shard_for_query(address) in stored_on
