"""Tests for shard assembly: loading, parity, telemetry, lifecycle."""

import pytest

from repro.core.key import TernaryKey
from repro.errors import ConfigurationError
from repro.serving.cluster import CaramCluster, CaramShard
from repro.serving.router import ConsistentHashRouter, PrefixRangeRouter
from repro.telemetry.metrics import MetricsRegistry
from repro.utils.rng import make_rng


def make_records(count=400, seed=3, key_bits=22):
    rng = make_rng(seed)
    keys = rng.choice(1 << key_bits, size=count, replace=False)
    return [(int(key), int(key) & 0xFFFF) for key in keys]


def build_loaded(shard_count=3, records=None):
    cluster = CaramCluster.build(
        shard_count=shard_count, index_bits=6, slots=8
    )
    records = make_records() if records is None else records
    cluster.load(records)
    return cluster, records


class TestConstruction:
    def test_needs_shards(self):
        with pytest.raises(ConfigurationError):
            CaramCluster([], ConsistentHashRouter(1))

    def test_router_shard_count_must_match(self):
        cluster, _ = build_loaded(shard_count=2)
        with pytest.raises(ConfigurationError):
            CaramCluster(cluster.shards, ConsistentHashRouter(3))
        cluster.close()

    def test_build_shapes(self):
        cluster, _ = build_loaded(shard_count=3)
        with cluster:
            assert len(cluster) == 3
            assert all(
                isinstance(shard, CaramShard) for shard in cluster.shards
            )


class TestLookup:
    def test_every_stored_key_found(self):
        cluster, records = build_loaded()
        with cluster:
            assert cluster.record_count == len(records)
            for key, data in records[:100]:
                result = cluster.search(key)
                assert result.hit and result.data == data
                assert cluster.lookup(key) == data

    def test_batch_matches_scalar(self):
        cluster, records = build_loaded()
        with cluster:
            keys = [key for key, _ in records[:150]] + [1, 2, 3]
            batch = cluster.search_batch(keys)
            scalar = [cluster.search(key) for key in keys]
            assert batch == scalar

    def test_total_stats_sums_shards(self):
        cluster, records = build_loaded()
        with cluster:
            cluster.search_batch([key for key, _ in records[:50]])
            total = cluster.total_stats()
            assert total.lookups == sum(
                shard.stats.lookups for shard in cluster.shards
            )
            assert total.lookups >= 50


class TestPrefixCluster:
    def test_lpm_prefix_reachable_from_any_covered_address(self):
        key_bits = 8
        router = PrefixRangeRouter(4, key_bits=key_bits)
        cluster = CaramCluster.build(
            shard_count=4,
            index_bits=4,
            slots=8,
            router=router,
            key_bits=key_bits,
            data_bits=8,
            ternary=True,
        )
        with cluster:
            # A /1 prefix spans half the address space => two shards.
            prefix = TernaryKey(value=0x00, mask=0x7F, width=key_bits)
            assert len(router.shards_for_stored(prefix)) == 2
            cluster.load([(prefix, 42)])
            # One copy per covered range (each may expand further across
            # the hash buckets its don't-care bits can index).
            for shard_id in router.shards_for_stored(prefix):
                assert cluster.shards[shard_id].group.record_count > 0
            for address in (0x00, 0x3F, 0x7F):
                result = cluster.search(address)
                assert result.hit and result.data == 42
            assert not cluster.search(0x80).hit


class TestTelemetry:
    def test_shard_and_cluster_mounts(self):
        cluster, records = build_loaded(shard_count=2)
        with cluster:
            keys = [key for key, _ in records[:80]]
            cluster.search_batch(keys)
            registry = MetricsRegistry()
            cluster.register_telemetry(registry)
            stats = registry.snapshot()["stats"]
            assert stats["serving.shard0.search"]["lookups"] > 0
            merged = stats["serving.cluster.search"]
            assert merged["lookups"] == sum(
                shard.stats.lookups for shard in cluster.shards
            )
            occupancy = stats["serving.cluster.occupancy"]
            assert occupancy["record_count"] == len(records)
            topology = stats["serving.cluster.topology"]
            assert topology["shard_count"] == 2
            assert topology["router"] == "ConsistentHashRouter"

    def test_cluster_ratios_recomputed_not_summed(self):
        cluster, records = build_loaded(shard_count=2)
        with cluster:
            cluster.search_batch([key for key, _ in records])
            registry = MetricsRegistry()
            cluster.register_telemetry(registry)
            merged = registry.snapshot()["stats"]["serving.cluster.search"]
            # All stored keys hit: the merged hit rate must be the ratio
            # of summed hits to summed lookups, not a sum of two 1.0s.
            assert merged["hit_rate"] == pytest.approx(1.0)


class TestLifecycle:
    def test_close_releases_every_group_engine(self):
        cluster, records = build_loaded(shard_count=2)
        cluster.search_batch([key for key, _ in records[:20]])
        groups = [shard.group for shard in cluster.shards]
        assert any(group._batch_engine is not None for group in groups)
        cluster.close()
        assert all(group._batch_engine is None for group in groups)

    def test_close_idempotent_and_reusable(self):
        cluster, records = build_loaded(shard_count=2)
        cluster.close()
        cluster.close()
        # A closed cluster lazily rebuilds engines on the next lookup.
        key, data = records[0]
        assert cluster.search(key).data == data
        cluster.close()
