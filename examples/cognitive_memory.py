"""Cognitive-model declarative memory on CA-RAM (the paper's outlook).

Run with::

    python examples/cognitive_memory.py

The conclusions single out cognitive architectures: "a large-scale system
implementing a cognitive model such as ACT-R will benefit from employing
CA-RAM, as it requires much search and data evaluation capabilities."

This example sketches that use: declarative-memory *chunks* are encoded as
fixed-width keys of packed slots (ISA relation, agent, object), stored in a
ternary CA-RAM.  Retrieval requests specify some slots and leave others
unconstrained — exactly a masked CA-RAM search — and the result arrives in
one memory access instead of a software scan over the chunk store.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api import CaRamLibrary
from repro.core import RecordFormat, TernaryKey
from repro.core.config import Arrangement
from repro.hashing.bit_select import BitSelectHash

# ----------------------------------------------------------------------
# Chunk encoding: three 8-bit symbol slots packed into a 24-bit key.
# ----------------------------------------------------------------------

SLOT_BITS = 8
SLOTS = ("relation", "agent", "object")
KEY_BITS = SLOT_BITS * len(SLOTS)


class SymbolTable:
    """Interns symbols ("dog", "chases", ...) as 8-bit codes."""

    def __init__(self) -> None:
        self._codes: Dict[str, int] = {}
        self._names: List[str] = []

    def code(self, symbol: str) -> int:
        if symbol not in self._codes:
            if len(self._names) >= (1 << SLOT_BITS) - 1:
                raise ValueError("symbol table full")
            self._codes[symbol] = len(self._names) + 1  # 0 = unused
            self._names.append(symbol)
        return self._codes[symbol]

    def name(self, code: int) -> str:
        return self._names[code - 1]


@dataclass(frozen=True)
class Chunk:
    """One declarative fact: (relation, agent, object) plus activation."""

    relation: str
    agent: str
    object: str
    activation: int  # quantized base-level activation (the record data)


def encode_chunk(symbols: SymbolTable, chunk: Chunk) -> int:
    """Pack a chunk's slots into the 24-bit key."""
    key = 0
    for slot in SLOTS:
        key = (key << SLOT_BITS) | symbols.code(getattr(chunk, slot))
    return key


def encode_request(
    symbols: SymbolTable, **constraints: str
) -> TernaryKey:
    """A retrieval request: constrained slots are concrete, the rest X.

    >>> # retrieve(relation="chases", agent="dog") leaves `object` free.
    """
    value = 0
    mask = 0
    for slot in SLOTS:
        value <<= SLOT_BITS
        mask <<= SLOT_BITS
        if slot in constraints:
            value |= symbols.code(constraints[slot])
        else:
            mask |= (1 << SLOT_BITS) - 1
    return TernaryKey(value=value, mask=mask, width=KEY_BITS)


def main() -> None:
    symbols = SymbolTable()
    facts = [
        Chunk("chases", "dog", "cat", activation=90),
        Chunk("chases", "dog", "squirrel", activation=70),
        Chunk("chases", "cat", "mouse", activation=80),
        Chunk("fears", "mouse", "cat", activation=60),
        Chunk("fears", "cat", "dog", activation=50),
        Chunk("likes", "dog", "bone", activation=95),
    ]

    # A ternary database; hash over the relation slot (always constrained
    # in our requests, so no multi-bucket probes).
    lib = CaRamLibrary(slice_count=4, index_bits=4, row_bits=1024)
    memory = lib.allocate_database(
        "declarative",
        RecordFormat(key_bits=KEY_BITS, data_bits=8, ternary=True),
        slice_count=2,
        arrangement=Arrangement.VERTICAL,
        hash_function=BitSelectHash(KEY_BITS, range(3, 8)),  # relation bits
        # Higher-activation chunks take earlier slots: the priority
        # encoder then implements ACT-R's "most active chunk wins".
        slot_priority=lambda record: float(record.data),
    )

    for chunk in facts:
        memory.insert(encode_chunk(symbols, chunk), data=chunk.activation)
    print(f"stored {memory.record_count} chunks "
          f"(load factor {memory.load_factor:.2f})\n")

    def retrieve(**constraints: str) -> Optional[Tuple[Chunk, int]]:
        request = encode_request(symbols, **constraints)
        result = memory.search(request)
        if not result.hit:
            return None
        key = result.record.key.value
        parts = []
        for shift in range(len(SLOTS) - 1, -1, -1):
            parts.append(
                symbols.name((key >> (shift * SLOT_BITS)) & 0xFF)
            )
        chunk = Chunk(*parts, activation=result.record.data)
        return chunk, result.bucket_accesses

    queries = [
        {"relation": "chases", "agent": "dog"},
        {"relation": "chases"},
        {"relation": "fears", "object": "cat"},
        {"relation": "likes", "agent": "cat"},
    ]
    for constraints in queries:
        spec = ", ".join(f"{k}={v}" for k, v in constraints.items())
        outcome = retrieve(**constraints)
        if outcome is None:
            print(f"retrieve({spec}) -> retrieval failure")
            continue
        chunk, accesses = outcome
        print(f"retrieve({spec})")
        print(f"  -> ({chunk.relation} {chunk.agent} {chunk.object}) "
              f"activation={chunk.activation}, {accesses} memory access")

    # ------------------------------------------------------------------
    # Massive data evaluation and modification (§1 / §3.2): ACT-R's
    # base-level decay applied to every chunk in one sweep.
    # ------------------------------------------------------------------
    full_mask = (1 << KEY_BITS) - 1
    decayed = memory.update_where(
        0, full_mask, lambda record: max(0, record.data - 10)
    )
    print(f"\napplied activation decay to {decayed} chunks in one sweep")
    strongest = max(
        (record for _, record in memory.scan()), key=lambda r: r.data
    )
    after = retrieve(relation="chases", agent="dog")
    assert after is not None
    print(f"strongest chunk after decay has activation {strongest.data}; "
          f"retrieval still works (activation {after[0].activation})")

    print("\nPartial matching over any slot combination, one bucket access "
          "per retrieval,\nhighest-activation chunk selected by the "
          "priority encoder, decay as a bulk\nupdate — the capabilities "
          "the paper projects for cognitive workloads.")


if __name__ == "__main__":
    main()
