"""IP router lookup: the Section 4.1 application study, end to end.

Run with::

    python examples/ip_router_lookup.py

Builds a scaled synthetic BGP table, loads it into a behavioral ternary
CA-RAM (longest-prefix-match semantics), cross-checks every answer against
a binary trie and a TCAM, then runs the full Table 2 analysis at paper
scale and shows the victim-TCAM option.
"""

import numpy as np

from repro.apps.iplookup import (
    IP_DESIGNS,
    IpDesign,
    Prefix,
    build_ip_caram,
    build_lpm_tcam,
    evaluate_ip_design,
    generate_bgp_table,
    SyntheticBgpConfig,
)
from repro.apps.iplookup.baseline_tcam import lpm_lookup
from repro.apps.iplookup.caram import lpm_search_batch
from repro.apps.iplookup.trie import BinaryTrie
from repro.core.config import Arrangement
from repro.experiments.reporting import print_table
from repro.utils.rng import make_rng


def behavioral_demo() -> None:
    """A small routing table through CA-RAM, trie, and TCAM."""
    print("=== behavioral LPM demo (1,000 prefixes) ===")
    table = generate_bgp_table(
        SyntheticBgpConfig(total_prefixes=1_000, seed=5)
    )
    pairs = [
        (prefix, int(hop))
        for prefix, hop in zip(table.prefixes(), table.next_hops)
    ]

    # A scaled-down design A: 2^8 buckets, 2 slices horizontal.
    design = IpDesign("demo", 8, 32, 2, Arrangement.HORIZONTAL)
    caram = build_ip_caram(pairs, design)
    trie = BinaryTrie()
    trie.insert_all(pairs)
    tcam = build_lpm_tcam(pairs)

    print(f"loaded {caram.record_count} records "
          f"({caram.record_count - len(pairs)} duplicates from don't-care "
          f"hash bits), load factor {caram.load_factor:.2f}")

    rng = make_rng(6)
    addresses = [int(a) for a in rng.integers(0, 1 << 32, size=2_000)]
    # The whole probe stream goes through the vectorized batch engine; the
    # per-address baselines then cross-check every answer.
    caram_hops = lpm_search_batch(caram, addresses)
    agree = 0
    for address, got_caram in zip(addresses, caram_hops):
        expected = trie.lookup(address)
        got_tcam = lpm_lookup(tcam, address)
        reference = expected.data if expected.hit else None
        assert got_caram == reference, hex(address)
        assert got_tcam == reference, hex(address)
        agree += 1
    print(f"CA-RAM == trie == TCAM on {agree} random addresses")
    print(f"CA-RAM AMAL over the probe stream: {caram.stats.amal:.3f}")
    print(f"TCAM rows activated per search: {tcam.capacity} "
          "(the power cost CA-RAM avoids)\n")


def table2_analysis() -> None:
    """The full Table 2 design-space sweep at paper scale."""
    print("=== Table 2 analysis (186,760 synthetic prefixes) ===")
    table = generate_bgp_table(SyntheticBgpConfig(seed=7))
    rows = []
    for name in sorted(IP_DESIGNS):
        result = evaluate_ip_design(IP_DESIGNS[name], table, seed=7)
        rows.append(result.row())
    print_table("CA-RAM designs for IP address lookup", rows)

    best = min(rows, key=lambda row: row["AMALu"])
    print(f"\nbest design by AMALu: {best['design']} "
          f"(alpha={best['load_factor']}, AMALu={best['AMALu']})")


def victim_tcam_demo() -> None:
    """Section 4.3: a small parallel TCAM absorbs all spills (AMAL = 1)."""
    print("\n=== victim TCAM (Section 4.3) ===")
    table = generate_bgp_table(SyntheticBgpConfig(seed=7))
    for name in ("C", "E"):
        result = evaluate_ip_design(IP_DESIGNS[name], table, seed=7)
        print(f"design {name}: {result.spilled_record_count} spilled "
              f"entries -> a {result.spilled_record_count}-entry victim "
              f"TCAM makes AMAL exactly 1 "
              f"(vs {result.amal_uniform:.3f} without)")


if __name__ == "__main__":
    behavioral_demo()
    table2_analysis()
    victim_tcam_demo()
