"""Multi-slice subsystem: ports, queues, and search bandwidth (Section 3.2
and 3.4).

Run with::

    python examples/subsystem_and_bandwidth.py

Builds a CA-RAM memory subsystem hosting two independent databases behind
virtual ports, drives it through the input controller's request/result
queues, and validates the paper's bandwidth equation
``B = N_slice / n_mem * f_clk`` with the cycle-accounting simulator.
"""

import numpy as np

from repro.core import (
    Arrangement,
    CARAMSubsystem,
    RecordFormat,
    SliceConfig,
    SliceGroup,
)
from repro.core.controller import InputController, ThroughputSimulator
from repro.cost.bandwidth import ca_ram_search_bandwidth
from repro.experiments.reporting import print_table
from repro.hashing.base import ModuloHash
from repro.memory.timing import DRAM_TIMING
from repro.utils.rng import make_rng


def build_subsystem() -> CARAMSubsystem:
    """Two databases: a flow table and a MAC table, separate slice groups."""
    sub = CARAMSubsystem()
    flow_config = SliceConfig(
        index_bits=8, row_bits=512,
        record_format=RecordFormat(key_bits=32, data_bits=16),
        timing=DRAM_TIMING,
    )
    sub.add_group(SliceGroup(
        flow_config, 4, Arrangement.VERTICAL,
        ModuloHash(flow_config.rows * 4), name="flows",
    ))
    mac_config = SliceConfig(
        index_bits=8, row_bits=512,
        record_format=RecordFormat(key_bits=48, data_bits=8),
        timing=DRAM_TIMING,
    )
    sub.add_group(SliceGroup(
        mac_config, 2, Arrangement.HORIZONTAL,
        ModuloHash(mac_config.rows), name="macs",
    ))
    # "each port address can be tied to a 'virtual port' mapped to a
    # specific database"
    sub.map_port("flow-port", "flows")
    sub.map_port("mac-port", "macs")
    return sub


def queue_demo(sub: CARAMSubsystem) -> None:
    print("=== request/result queues through virtual ports ===")
    rng = make_rng(3)
    flow_keys = rng.integers(0, 1 << 32, size=500, dtype=np.uint64)
    for key in flow_keys:
        sub.insert("flows", int(key), data=int(key) % 1000)
    mac_keys = rng.integers(0, 1 << 48, size=300, dtype=np.uint64)
    for key in mac_keys:
        sub.insert("macs", int(key), data=int(key) % 100)

    controller = InputController(sub, queue_depth=64)
    tags = {}
    for key in flow_keys[:32]:
        tags[controller.submit("flow-port", int(key))] = int(key) % 1000
    for key in mac_keys[:16]:
        tags[controller.submit("mac-port", int(key))] = int(key) % 100
    handled = controller.drain()
    print(f"drained {handled} queued requests")
    while (response := controller.fetch_result()) is not None:
        assert response.result.data == tags[response.tag]
    print("every queued lookup returned the right record\n")


def bandwidth_demo() -> None:
    print("=== Section 3.4: B = N_slice / n_mem * f_clk ===")
    rng = make_rng(4)
    rows = []
    for slices in (1, 2, 4, 8):
        config = SliceConfig(
            index_bits=8, row_bits=512,
            record_format=RecordFormat(key_bits=32, data_bits=16),
            timing=DRAM_TIMING,
        )
        group = SliceGroup(
            config, slices, Arrangement.VERTICAL,
            ModuloHash(config.rows * slices), name=f"bw{slices}",
        )
        lookups = [
            (int(bucket), 1)
            for bucket in rng.integers(0, group.bucket_count, size=20_000)
        ]
        report = ThroughputSimulator(group).simulate(lookups)
        closed_form = min(
            ca_ram_search_bandwidth(slices, DRAM_TIMING),
            DRAM_TIMING.clock_hz,
        )
        rows.append({
            "slices": slices,
            "simulated_Mlookups/s": round(report.lookups_per_second / 1e6, 1),
            "closed_form_Mlookups/s": round(closed_form / 1e6, 1),
            "slice_utilization_pct": round(100 * report.utilization, 1),
        })
    print_table("throughput vs the closed form (200 MHz DRAM, n_mem = 6)",
                rows)
    print("\nindependent lookups overlap across vertical slices until the\n"
          "one-request-per-cycle dispatch port saturates — exactly the\n"
          "paper's bandwidth argument.")


if __name__ == "__main__":
    sub = build_subsystem()
    queue_demo(sub)
    bandwidth_demo()
