"""Quickstart: build a CA-RAM slice, search it, and poke at every mode.

Run with::

    python examples/quickstart.py

Walks through the core API surface:

1. define a record format and slice geometry (Section 3.1 parameters);
2. bulk-load records and look them up (single bucket access + parallel
   match), including a vectorized batch lookup;
3. ternary keys: stored don't-care bits and masked searches;
4. overflow behavior: the auxiliary reach field and extended searches;
5. RAM mode: the same array as plain addressable memory.
"""

from repro.core import CARAMSlice, RecordFormat, SliceConfig, TernaryKey
from repro.core.index import make_index_generator
from repro.hashing import BitSelectHash


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Geometry: 2^6 rows of 256 bits, 16-bit keys + 8-bit data.
    # ------------------------------------------------------------------
    record_format = RecordFormat(key_bits=16, data_bits=8)
    config = SliceConfig(index_bits=6, row_bits=256, record_format=record_format)
    print(f"slice geometry: {config.describe()}")
    print(f"slots per bucket (S): {config.slots_per_bucket}, "
          f"capacity: {config.capacity_records} records")

    # The index generator is the hash function in hardware — here, plain
    # bit selection of the key's last 6 bits.
    index_gen = make_index_generator(BitSelectHash(16, range(10, 16)))
    caram = CARAMSlice(config, index_gen)

    # ------------------------------------------------------------------
    # 2. CAM mode: bulk-load and search.
    # ------------------------------------------------------------------
    # bulk_load builds the whole database in one vectorized pass — the
    # same memory image, bit for bit, as inserting record by record (use
    # insert() for incremental updates afterwards).
    inventory = {0xBEEF: 42, 0xCAFE: 7, 0xF00D: 99}
    caram.bulk_load(inventory.items())

    for key, data in inventory.items():
        result = caram.search(key)
        print(f"search {key:#06x}: hit={result.hit} data={result.data} "
              f"(bucket accesses: {result.bucket_accesses})")
        assert result.data == data

    missing = caram.search(0x1234)
    print(f"search 0x1234: hit={missing.hit}")

    # Whole query streams go through search_batch, which resolves them
    # against a decoded NumPy mirror with identical results and stats.
    batch = caram.search_batch(list(inventory) + [0x1234])
    print(f"batch lookup hits: {[r.hit for r in batch]}")

    # ------------------------------------------------------------------
    # 3. Ternary searching (don't-care bits on either side).
    # ------------------------------------------------------------------
    ternary_config = config.with_ternary(True)
    ternary = CARAMSlice(ternary_config, index_gen)
    # Store a pattern matching any key starting 0xAB.
    pattern = TernaryKey.from_prefix(0xAB, 8, 16)
    ternary.insert(pattern, data=1)
    print(f"\nstored ternary pattern: {pattern}")
    for probe in (0xAB00, 0xABFF, 0xAC00):
        print(f"  probe {probe:#06x}: hit={ternary.search(probe).hit}")

    # Masked search: ignore the low byte of the search key.
    exact = CARAMSlice(ternary_config, index_gen)
    exact.insert(TernaryKey.exact(0x5511, 16), data=3)
    masked = exact.search(0x55FF, search_mask=0x00FF)
    print(f"masked search 0x55FF/ff00: hit={masked.hit}")

    # ------------------------------------------------------------------
    # 4. Overflow: collide more records than one bucket holds.
    # ------------------------------------------------------------------
    slots = config.slots_per_bucket
    colliding = [i << 6 for i in range(slots + 2)]  # same home bucket
    for key in colliding:
        caram.insert(key, data=key % 251)
    costs = sorted(caram.search(key).bucket_accesses for key in colliding)
    print(f"\n{len(colliding)} records in one bucket of {slots} slots -> "
          f"bucket-access costs {costs}")
    print(f"slice AMAL so far: {caram.stats.amal:.3f}")

    # ------------------------------------------------------------------
    # 5. RAM mode: the same array, address in / data out.
    # ------------------------------------------------------------------
    raw = caram.ram_read(0)
    print(f"\nRAM-mode read of row 0: {raw:#x}")
    scratch = CARAMSlice(config, index_gen)
    scratch.ram_write(5, 0xDEAD_BEEF)
    assert scratch.ram_read(5) == 0xDEAD_BEEF
    print("RAM-mode scratchpad write/read round-trip OK")


if __name__ == "__main__":
    main()
