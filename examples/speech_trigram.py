"""Trigram lookup for speech recognition: the Section 4.2 application.

Run with::

    python examples/speech_trigram.py

Generates a synthetic language-model trigram database, maps it onto the
Table 3 CA-RAM designs with the DJB hash, prints the design comparison and
an ASCII rendering of the Figure 7 bucket-occupancy distribution, and
drives a behavioral CA-RAM with real string lookups.
"""

import numpy as np

from repro.apps.trigram import (
    TRIGRAM_DESIGNS,
    TrigramConfig,
    TrigramDesign,
    build_trigram_caram,
    evaluate_trigram_design,
    generate_trigram_database,
)
from repro.apps.trigram.caram import trigram_lookup, trigram_lookup_batch
from repro.apps.trigram.generator import FULL_TRIGRAM_COUNT
from repro.core.config import Arrangement
from repro.experiments.reporting import print_table

SCALE_SHIFT = 4  # 1/16 of the paper's 5.39M entries


def table3_analysis(database) -> None:
    print(f"=== Table 3 analysis ({len(database):,} entries, "
          f"1/{1 << SCALE_SHIFT} scale) ===")
    rows = []
    results = {}
    for name in sorted(TRIGRAM_DESIGNS):
        design = TRIGRAM_DESIGNS[name].scaled(SCALE_SHIFT)
        results[name] = evaluate_trigram_design(design, database)
        rows.append(results[name].row())
    print_table("CA-RAM designs for trigram lookup", rows)
    return results


def figure7_ascii(results) -> None:
    """Render the design-A occupancy histogram as ASCII bars."""
    print("\n=== Figure 7: records per bucket (design A) ===")
    histogram = results["A"].report.histogram
    slots = results["A"].design.slots_per_bucket
    bin_width = 8
    peak = max(
        histogram[start : start + bin_width].sum()
        for start in range(0, histogram.size, bin_width)
    )
    for start in range(0, histogram.size, bin_width):
        count = int(histogram[start : start + bin_width].sum())
        if not count:
            continue
        bar = "#" * max(1, round(40 * count / peak))
        marker = " <- bucket capacity" if start <= slots < start + bin_width else ""
        print(f"{start:4d}-{start + bin_width - 1:<4d} {count:7,d} {bar}{marker}")
    spilled = results["A"].spilled_records_pct
    print(f"\nbucket size {slots} puts the distribution's mass below "
          f"capacity: only {spilled:.2f}% of records spill "
          "(paper: 0.34%)")


def behavioral_demo() -> None:
    """Actual string lookups through a small behavioral CA-RAM."""
    print("\n=== behavioral lookups (5,000 trigrams) ===")
    database = generate_trigram_database(
        TrigramConfig(total_entries=5_000, seed=43)
    )
    entries = [
        (database.string_at(row), int(database.probabilities[row]))
        for row in range(len(database))
    ]
    design = TrigramDesign("demo", 2, Arrangement.VERTICAL, index_bits=6)
    caram = build_trigram_caram(entries, design)
    print(f"loaded {caram.record_count} records, "
          f"load factor {caram.load_factor:.2f}")

    # One batch call resolves the 128-bit string keys through the mirror's
    # wide-key path.
    found_all = trigram_lookup_batch(caram, [text for text, _ in entries[:5]])
    for (text, probability), found in zip(entries[:5], found_all):
        print(f"  {text.decode():20s} -> {found} (expected {probability})")
        assert found == probability
    assert trigram_lookup(caram, b"zz qq jj xx yy") is None
    print(f"AMAL: {caram.stats.amal:.3f} — one memory access per lookup, "
          "versus the pointer-chasing software hash in Sphinx")


if __name__ == "__main__":
    database = generate_trigram_database(
        TrigramConfig(total_entries=FULL_TRIGRAM_COUNT >> SCALE_SHIFT, seed=11)
    )
    results = table3_analysis(database)
    figure7_ascii(results)
    behavioral_demo()
