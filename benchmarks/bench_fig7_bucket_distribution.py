"""Figure 7 — records-per-bucket distribution of trigram design A.

The paper's figure shows a near-binomial distribution "centered around 81"
with the 96-record bucket size putting "a majority of buckets in the
non-overflowing region".
"""

import numpy as np
import pytest

from repro.apps.trigram.designs import TRIGRAM_DESIGNS
from repro.apps.trigram.evaluate import evaluate_trigram_design
from repro.experiments import paper_values
from repro.experiments.table3 import DEFAULT_SCALE_SHIFT


@pytest.fixture(scope="module")
def design():
    return TRIGRAM_DESIGNS["A"].scaled(DEFAULT_SCALE_SHIFT)


def test_fig7_distribution(benchmark, trigram_db, design):
    result = benchmark.pedantic(
        evaluate_trigram_design, args=(design, trigram_db),
        rounds=1, iterations=1,
    )
    histogram = result.report.histogram
    occupancies = np.arange(histogram.size)
    total = histogram.sum()
    mean = (occupancies * histogram).sum() / total
    mode = int(histogram.argmax())

    # "centered around 81" (the mean load is 5.39M / 65536 ~ 82).
    assert abs(mean - paper_values.FIG7_CENTER) < 4
    assert abs(mode - paper_values.FIG7_CENTER) < 6

    # "a majority of buckets in the non-overflowing region"
    non_overflowing = histogram[: design.slots_per_bucket + 1].sum() / total
    assert non_overflowing > 0.9

    # Near-binomial shape: standard deviation close to sqrt(mean)
    # (within 2x — DJB is a practical hash, not an ideal one).
    variance = ((occupancies - mean) ** 2 * histogram).sum() / total
    assert variance < 4 * mean


def test_fig7_spill_follows_distribution(trigram_db, design):
    """Choosing S=96 leaves ~0.3% of records spilled (paper: 0.34%)."""
    result = evaluate_trigram_design(design, trigram_db)
    assert 0.05 < result.spilled_records_pct < 1.5


def test_print_fig7(trigram_db):
    from repro.experiments import fig7

    result = fig7.run(database=trigram_db)
    from repro.experiments.reporting import format_table

    print("\n" + format_table(result["rows"]))
    print(f"mode={result['mode']} mean={result['mean']:.1f} "
          f"non_overflowing={100 * result['non_overflowing_fraction']:.2f}%")
    assert result["rows"]
