"""Ablation — hash-function effectiveness (Section 4.3).

"It is very clear that the cost and performance of CA-RAM is contingent
upon the effectiveness of the hash function."

Compares the paper's bit-selection hash against stronger mixing functions
(multiplicative, greedy-selected bits) on the IP table, and DJB against
alternatives on the trigram strings.
"""

import numpy as np
import pytest

from repro.apps.iplookup.mapping import map_prefixes_to_buckets
from repro.experiments.reporting import format_table
from repro.experiments.table3 import DEFAULT_SCALE_SHIFT
from repro.hashing.analysis import occupancy_report
from repro.hashing.bit_select import greedy_bit_selection
from repro.hashing.djb import DJBHash
from repro.hashing.universal import MultiplicativeHash
from repro.utils.rng import make_rng

R = 11
BUCKETS = 1 << R
SLOTS = 192  # design A geometry


@pytest.fixture(scope="module")
def ip_addresses(bgp_table):
    """Zero-filled 32-bit network addresses (what the index register sees)."""
    return bgp_table.values


def report_for(home, slots=SLOTS, buckets=BUCKETS):
    rep = occupancy_report(home, buckets, slots)
    return {
        "AMAL": round(rep.amal_uniform, 4),
        "spilled_pct": round(100 * rep.spilled_fraction, 2),
        "overflowing_pct": round(100 * rep.overflowing_bucket_fraction, 2),
    }


def test_ip_hash_comparison(benchmark, bgp_table, ip_addresses):
    def run():
        rows = []
        # 1. The paper's hash: last R bits of the first 16.
        paper_home = map_prefixes_to_buckets(bgp_table, R).home
        rows.append({"hash": "bit-select [16-R,16)", **report_for(paper_home)})
        # 2. A naive bit selection: the FIRST R bits (badly clustered).
        naive_home = (ip_addresses >> np.uint64(32 - R)).astype(np.int64)
        rows.append({"hash": "bit-select [0,R)", **report_for(naive_home)})
        # 3. Strong mixing over the full address.
        mult = MultiplicativeHash(BUCKETS)
        rows.append(
            {"hash": "multiplicative", **report_for(mult.index_many(ip_addresses))}
        )
        # 4. Greedy (Zane et al.) selection over the first 16 bits.
        sample = make_rng(1).choice(ip_addresses, size=30_000, replace=False)
        greedy = greedy_bit_selection(
            sample, 32, R, candidate_positions=range(16),
            slots_per_bucket=SLOTS,
        )
        rows.append(
            {"hash": "greedy bit-select", **report_for(greedy.index_many(ip_addresses))}
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_hash = {row["hash"]: row for row in rows}
    # The naive prefix bits cluster catastrophically vs the paper's choice.
    assert by_hash["bit-select [0,R)"]["AMAL"] > by_hash["bit-select [16-R,16)"]["AMAL"]
    # The greedy search is at least as good as the paper's fixed window.
    assert (
        by_hash["greedy bit-select"]["spilled_pct"]
        <= by_hash["bit-select [16-R,16)"]["spilled_pct"] + 0.5
    )
    print("\n" + format_table(rows))


def test_trigram_hash_comparison(benchmark, trigram_db):
    """DJB vs FNV-1a vs tabulation at the paper's alpha = 0.86.

    A 1024-bucket subsample keeps the scalar hash families affordable.
    """
    from repro.hashing.universal import FNV1aHash, TabulationHash

    buckets = 1024
    slots = 96
    count = int(buckets * slots * 0.86)
    subset = trigram_db.subset(np.arange(count))
    strings = [subset.string_at(row) for row in range(count)]

    def run():
        rows = []
        djb_home = DJBHash(buckets).index_many(strings)
        rows.append(
            {"hash": "DJB", **report_for(djb_home, slots=slots, buckets=buckets)}
        )
        fnv = FNV1aHash(buckets)
        rows.append(
            {"hash": "FNV-1a",
             **report_for(fnv.index_many(strings), slots=slots, buckets=buckets)}
        )
        tab = TabulationHash(buckets, seed=3)
        rows.append(
            {"hash": "tabulation",
             **report_for(tab.index_many(strings), slots=slots, buckets=buckets)}
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # All practical string hashes keep the trigram application near
    # AMAL = 1 — the paper's point is that DJB is already effectively
    # ideal for this workload.
    for row in rows:
        assert row["AMAL"] < 1.05, row
    print("\n" + format_table(rows))


def test_djb_close_to_ideal(trigram_db):
    """DJB's bucket variance is within 2x of a perfectly uniform hash."""
    buckets = 4 * (1 << (14 - DEFAULT_SCALE_SHIFT))
    home = trigram_db.bucket_indices(buckets)
    counts = np.bincount(home, minlength=buckets)
    mean = counts.mean()
    # Poisson variance would equal the mean.
    assert counts.var() < 2 * mean
