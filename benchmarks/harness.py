"""Shared benchmark harness: telemetry-routed ``BENCH_*.json`` output.

Every benchmark script builds a plain payload dict exactly as before — the
top-level keys are load-bearing (CI gates read them) — and hands it to
:func:`finalize`, which attaches whatever telemetry instruments the run
used under a single ``"telemetry"`` key and writes the file.  Keeping the
telemetry nested means existing consumers (``ci.yml`` gates,
``compare_telemetry`` baselines) keep working while every bench report
gains the registry snapshot, per-phase wall times, and trace summary.
"""

import json
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent


def result_path(name: str) -> Path:
    """Repository-root path of a ``BENCH_<name>.json`` report."""
    return REPO_ROOT / f"BENCH_{name}.json"


def collect_telemetry(
    registry=None, profiler=None, tracer=None
) -> Dict[str, object]:
    """Fold the attached instruments into one JSON-serializable block."""
    telemetry: Dict[str, object] = {}
    if registry is not None:
        telemetry["metrics"] = registry.snapshot()
    if profiler is not None:
        phases = profiler.as_dict()
        if phases:
            telemetry["phases"] = phases
    if tracer is not None:
        telemetry["trace"] = tracer.summary()
    return telemetry


def finalize(
    path: Path,
    payload: Dict[str, object],
    registry=None,
    profiler=None,
    tracer=None,
    telemetry: Optional[Dict[str, object]] = None,
    metadata: Optional[Dict[str, object]] = None,
    topology: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write a bench report, with telemetry nested under ``"telemetry"``.

    The payload's own keys are written untouched (CI gates index into
    them); pass the run's instruments — or a pre-built ``telemetry``
    block — to attach the observability data.

    ``metadata`` records the run *configuration* (engine spec, worker
    count, result representation) under a single ``"metadata"`` key.  The
    telemetry differ ignores it as measurement but refuses to compare two
    reports whose metadata disagrees — a 4-worker run diffed against a
    single-core baseline is a config change, not a regression.

    ``topology`` nests the shard/worker layout (shard count, router
    class, worker processes...) under ``metadata["topology"]``.  It is
    plain metadata as far as the differ is concerned — two reports with
    different topologies refuse to diff — but giving it its own key keeps
    sharded-serving reports self-describing and greppable.

    Every report carries at least ``metadata.benchmark`` (derived from the
    file name), so all ``BENCH_*.json`` are self-identifying and the
    differ can refuse cross-benchmark comparisons.  Only deterministic
    configuration belongs here — a timestamp would make every rerun
    incomparable with its own baseline.
    """
    out = dict(payload)
    full_metadata: Dict[str, object] = {
        "benchmark": path.stem.removeprefix("BENCH_"),
    }
    if metadata:
        full_metadata.update(metadata)
    if topology:
        full_metadata["topology"] = dict(topology)
    out["metadata"] = full_metadata
    block = dict(telemetry) if telemetry else {}
    block.update(collect_telemetry(registry, profiler, tracer))
    if block:
        out["telemetry"] = block
    path.write_text(json.dumps(out, indent=2) + "\n")
    return out
