"""Cost of the telemetry instrumentation on the batch-lookup hot path.

The telemetry hooks are designed to be free when off: a detached tracer is
one ``is None`` attribute check per ``record_*`` call, and a disabled
profiler hands back a shared no-op context manager.  This benchmark pins
that down with numbers: it measures warm batch-lookup throughput on the
same slice/query stream as ``bench_batch_lookup.py`` in three modes —

* ``disabled`` — no tracer attached (the default everyone runs);
* ``null_sink`` — tracer attached, events built and dropped;
* ``ring`` — tracer attached, events retained in the in-memory ring;
* ``sampler`` — no tracer, but a background :class:`JsonlSampler` writing
  registry snapshots (latency sketch included) every 50 ms — the
  serving-mode "scrape while running" configuration;

and writes keys/sec plus the relative overheads to
``BENCH_telemetry_overhead.json``.  The pytest gates assert (a) the
disabled mode stays within 5% of the committed ``BENCH_batch_lookup.json``
warm baseline (skipped when no baseline is committed), i.e. that merely
*having* the instrumentation costs nothing, and (b) the enabled sampler
mode stays within ``SAMPLER_GATE_THRESHOLD`` of the disabled mode — the
price of live observability is bounded, not just measured.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py

or through pytest (asserts the <5% disabled-mode overhead)::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_overhead.py
"""

import json
import tempfile
import time
from pathlib import Path

import pytest

from bench_batch_lookup import build_slice, make_queries, populate
from harness import finalize, result_path
from repro.telemetry.export import JsonlSampler
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import InMemorySink, NullSink, Tracer

RESULT_PATH = result_path("telemetry_overhead")
BASELINE_PATH = result_path("batch_lookup")

REPEATS = 3          # best-of to squeeze out scheduler noise
GATE_THRESHOLD = 0.05
SAMPLER_INTERVAL = 0.05
#: The sampler thread snapshots the registry off the hot path, so its cost
#: is mostly GIL contention during serialization — bounded loosely.
SAMPLER_GATE_THRESHOLD = 0.25


def _measure_warm(slice_, queries) -> float:
    """Best-of-``REPEATS`` warm batch throughput in keys/sec."""
    slice_.search_batch(queries[:1])  # warm the mirror + engine
    best = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        slice_.search_batch(queries)
        seconds = time.perf_counter() - start
        best = max(best, len(queries) / seconds)
    return best


def run_benchmark() -> dict:
    slice_ = build_slice()
    stored = populate(slice_)
    queries = make_queries(stored)

    slice_.tracer = None
    disabled = _measure_warm(slice_, queries)

    null_tracer = Tracer(sink=NullSink())
    slice_.tracer = null_tracer
    null_sink = _measure_warm(slice_, queries)

    ring_tracer = Tracer(sink=InMemorySink())
    slice_.tracer = ring_tracer
    ring = _measure_warm(slice_, queries)
    trace_summary = ring_tracer.summary()

    slice_.tracer = None

    # Serving mode: latency sketch on, background sampler scraping the
    # registry while the lookups run.
    registry = MetricsRegistry()
    slice_.register_telemetry(registry)
    slice_.enable_latency_tracking()
    with tempfile.TemporaryDirectory() as tmp:
        sampler = JsonlSampler(
            registry, Path(tmp) / "samples.jsonl", interval=SAMPLER_INTERVAL
        )
        with sampler:
            sampler_mode = _measure_warm(slice_, queries)
        sampler_samples = sampler.samples_written
    slice_.disable_latency_tracking()

    result = {
        "keys": len(queries),
        "disabled_keys_per_sec": round(disabled),
        "null_sink_keys_per_sec": round(null_sink),
        "ring_keys_per_sec": round(ring),
        "sampler_keys_per_sec": round(sampler_mode),
        "null_sink_overhead": round(disabled / null_sink - 1, 4),
        "ring_overhead": round(disabled / ring - 1, 4),
        "sampler_overhead": round(disabled / sampler_mode - 1, 4),
        "sampler_interval_s": SAMPLER_INTERVAL,
        "sampler_samples": sampler_samples,
    }
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        # The batch-lookup report nests warm throughput per engine since
        # the multi-engine rework; older flat baselines keep working.
        warm_baseline = baseline.get("batch_warm_keys_per_sec")
        if warm_baseline is None:
            warm_baseline = (
                baseline.get("engines", {})
                .get("word", {})
                .get("mixed", {})
                .get("batch_warm_keys_per_sec")
            )
        if warm_baseline is not None:
            result["baseline_warm_keys_per_sec"] = warm_baseline
            result["disabled_overhead_vs_baseline"] = round(
                warm_baseline / disabled - 1, 4
            )
    return finalize(RESULT_PATH, result, telemetry={"trace": trace_summary})


def test_disabled_tracing_overhead():
    result = run_benchmark()
    assert result["sampler_overhead"] <= SAMPLER_GATE_THRESHOLD, result
    if "disabled_overhead_vs_baseline" not in result:
        pytest.skip("no committed BENCH_batch_lookup.json baseline")
    assert result["disabled_overhead_vs_baseline"] <= GATE_THRESHOLD, result


if __name__ == "__main__":
    stats = run_benchmark()
    print(json.dumps(stats, indent=2))
    print(f"\nwrote {RESULT_PATH}")
