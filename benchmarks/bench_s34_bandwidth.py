"""Section 3.4 — search bandwidth and latency.

Validates ``B_CA-RAM = N_slice / n_mem * f_clk`` against the cycle-level
throughput simulator and regenerates the latency comparison (CAM's exposed
data access vs CA-RAM's fused lookup+data).
"""

import pytest

from repro.experiments import s34_bandwidth
from repro.experiments.reporting import format_table


def test_bandwidth_sweep(benchmark):
    rows = benchmark.pedantic(
        s34_bandwidth.run_bandwidth,
        kwargs={"slice_counts": (1, 2, 4, 8), "lookups": 10_000},
        rounds=1, iterations=1,
    )
    for row in rows:
        assert row["simulated_Mlookups_s"] == pytest.approx(
            row["closed_form_Mlookups_s"], rel=0.08
        )
    # Throughput scales with slices until the dispatch port saturates.
    assert rows[1]["simulated_Mlookups_s"] > 1.8 * rows[0]["simulated_Mlookups_s"]


def test_latency_comparison(benchmark):
    rows = benchmark(s34_bandwidth.run_latency)
    # "T_CA-RAM will be comparable to or even shorter than T_CAM" once the
    # data access is charged to the CAM.
    assert all(row["ca_ram_wins_with_data"] for row in rows)
    # Multi-cycle power-saving CAMs lose by more.
    dram_rows = [r for r in rows if r["ca_ram_array"] == "DRAM"]
    assert dram_rows[-1]["cam_plus_data_ns"] > dram_rows[0]["cam_plus_data_ns"]


def test_print_s34():
    print("\n" + format_table(s34_bandwidth.run_bandwidth(lookups=5000)))
    print("\n" + format_table(s34_bandwidth.run_latency()))
