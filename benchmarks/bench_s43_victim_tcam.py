"""Section 4.3 — overflow area / victim TCAM for IP lookup.

Regenerates the spilled-entry counts per design ("Designs C and E require
1,829 and 1,163 entries ... designs A and F have over 6,000 and 21,000")
and demonstrates AMAL = 1 with a parallel victim TCAM on the behavioral
subsystem.
"""

import pytest

from repro.apps.iplookup.designs import IP_DESIGNS
from repro.apps.iplookup.evaluate import evaluate_ip_design
from repro.cam.tcam import TCAM
from repro.core.config import Arrangement, SliceConfig
from repro.core.record import RecordFormat
from repro.core.subsystem import CARAMSubsystem, SliceGroup
from repro.experiments.reporting import format_table
from repro.hashing.base import ModuloHash


@pytest.fixture(scope="module")
def spill_counts(bgp_table):
    return {
        name: evaluate_ip_design(IP_DESIGNS[name], bgp_table, seed=7)
        for name in "ACEF"
    }


def test_s43_overflow_sizing(benchmark, bgp_table):
    result = benchmark.pedantic(
        evaluate_ip_design, args=(IP_DESIGNS["C"], bgp_table),
        kwargs={"seed": 7}, rounds=1, iterations=1,
    )
    # Design C needs a small overflow area (paper: 1,829 entries ~ 1% of
    # the table); the synthetic table lands in the same few-thousand band.
    assert result.spilled_record_count < 0.05 * len(bgp_table)


def test_s43_design_ordering(spill_counts):
    """C and E need far smaller overflow areas than A and F."""
    spills = {k: v.spilled_record_count for k, v in spill_counts.items()}
    assert spills["C"] < spills["A"]
    assert spills["E"] < spills["A"]
    assert spills["F"] > 2 * spills["A"]


def test_s43_victim_tcam_amal_one(benchmark):
    """Behavioral demonstration: parallel victim TCAM pins AMAL at 1."""
    config = SliceConfig(
        index_bits=6, row_bits=256,
        record_format=RecordFormat(key_bits=16, data_bits=8),
    )
    sub = CARAMSubsystem()
    group = SliceGroup(
        config, 1, Arrangement.VERTICAL, ModuloHash(64), name="db"
    )
    sub.add_group(group)
    sub.attach_overflow("db", TCAM(512, 16))

    # Overload a few buckets so spills are guaranteed.
    keys = [b + 64 * i for b in range(8) for i in range(group.slots_per_bucket + 4)]
    for key in keys:
        sub.insert("db", key, data=key % 251)

    def search_all():
        return [sub.search("db", key) for key in keys]

    results = benchmark.pedantic(search_all, rounds=1, iterations=1)
    assert all(r.hit for r in results)
    assert all(r.bucket_accesses == 1 for r in results)
    assert sub.overflow_store("db").entry_count > 0


def test_print_s43(bgp_table):
    from repro.experiments import s43_victim

    print("\n" + format_table(s43_victim.run(table=bgp_table)))
