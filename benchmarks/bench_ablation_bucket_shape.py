"""Ablation — bucket shape at fixed capacity (Section 2.1).

"It is further noted that when (M x S) is fixed, one can potentially
reduce the number of collisions by increasing S (and decreasing M)."

Sweeps (M, S) pairs of equal capacity over the IP workload — the same
effect that makes horizontal design D beat vertical design F in Table 2.
"""

import pytest

from repro.apps.iplookup.mapping import map_prefixes_to_buckets
from repro.experiments.reporting import format_table
from repro.hashing.analysis import occupancy_report

#: Equal capacity 2^19 records, traded between rows and slots.
SHAPES = [
    (14, 32),   # many narrow buckets
    (13, 64),
    (12, 128),  # design-D shape
    (11, 256),  # design-C shape
    (10, 512),
]


@pytest.fixture(scope="module")
def mappings(bgp_table):
    return {
        r: map_prefixes_to_buckets(bgp_table, r) for r, _ in SHAPES
    }


def test_bucket_shape_sweep(benchmark, mappings):
    def run():
        rows = []
        for r, slots in SHAPES:
            report = occupancy_report(mappings[r].home, 1 << r, slots)
            rows.append(
                {
                    "R": r,
                    "slots": slots,
                    "alpha": round(report.load_factor, 3),
                    "AMAL": round(report.amal_uniform, 4),
                    "spilled_pct": round(100 * report.spilled_fraction, 2),
                    "overflowing_pct": round(
                        100 * report.overflowing_bucket_fraction, 2
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(rows))

    # Wider buckets (same capacity) monotonically reduce spilling.
    spills = [row["spilled_pct"] for row in rows]
    assert all(a >= b for a, b in zip(spills, spills[1:])), spills
    amals = [row["AMAL"] for row in rows]
    assert amals[0] > amals[-1]

    # Load factors are equal by construction (same capacity), so the
    # improvement is purely the S effect.
    alphas = {row["alpha"] for row in rows}
    assert max(alphas) - min(alphas) < 0.02
