"""Figure 8 — application-level area and power comparison.

IP lookup: CA-RAM design D (8 vertical banks, 200 MHz DRAM) vs the Noda 6T
dynamic TCAM at 143 MHz.  Paper: ~45% area and ~70% power saving.

Trigram: CA-RAM design A vs the scaled Yamagata CAM.  Paper: ~5.9x area
reduction (no power comparison, as in the paper).
"""

import pytest

from repro.experiments import fig8, paper_values
from repro.experiments.reporting import format_table


@pytest.fixture(scope="module")
def ip_result(bgp_table):
    return fig8.run_ip(table=bgp_table)


def test_fig8_ip(benchmark, bgp_table):
    result = benchmark.pedantic(
        fig8.run_ip, kwargs={"table": bgp_table}, rounds=1, iterations=1
    )
    # Paper: 45% area saving; the model lands within a few points.
    assert result["area_reduction"] == pytest.approx(
        paper_values.FIG8_IP_AREA_REDUCTION, abs=0.07
    )
    # Paper: 70% power saving.
    assert result["power_reduction"] == pytest.approx(
        paper_values.FIG8_IP_POWER_REDUCTION, abs=0.08
    )


def test_fig8_ip_bandwidth_competitive(ip_result):
    """The 8-bank, 200 MHz CA-RAM out-runs the 143 MHz TCAM."""
    assert (
        ip_result["ca_ram_bandwidth_lookups_s"]
        > ip_result["tcam_bandwidth_lookups_s"]
    )


def test_fig8_trigram(benchmark):
    result = benchmark(fig8.run_trigram)
    assert result["area_ratio"] == pytest.approx(
        paper_values.FIG8_TRIGRAM_AREA_RATIO, abs=0.3
    )


def test_fig8_conclusion_band(ip_result):
    """Conclusions: "area and power savings of 50-80%"."""
    low, high = paper_values.CONCLUSION_SAVINGS_RANGE
    assert low < ip_result["power_reduction"] < high + 0.05
    trigram = fig8.run_trigram()
    trigram_saving = 1 - 1 / trigram["area_ratio"]
    assert low < trigram_saving < high + 0.05


def test_print_fig8(bgp_table):
    print("\n" + format_table(fig8.run()))
