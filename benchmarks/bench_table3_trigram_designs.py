"""Table 3 — the four CA-RAM designs for trigram lookup.

Runs at 1/8 scale (673k entries, R reduced by 3), which preserves every
design's load factor; the Table 3 statistics are load-factor properties, so
they carry over (verified against the paper bands below).
"""

import pytest

from repro.apps.trigram.designs import TRIGRAM_DESIGNS
from repro.apps.trigram.evaluate import evaluate_trigram_design
from repro.experiments import paper_values
from repro.experiments.reporting import format_table
from repro.experiments.table3 import DEFAULT_SCALE_SHIFT as TRIGRAM_SCALE_SHIFT


@pytest.fixture(scope="module")
def homes(trigram_db):
    out = {}
    for design in TRIGRAM_DESIGNS.values():
        scaled = design.scaled(TRIGRAM_SCALE_SHIFT)
        if scaled.bucket_count not in out:
            out[scaled.bucket_count] = trigram_db.bucket_indices(
                scaled.bucket_count
            )
    return out


@pytest.fixture(scope="module")
def results(trigram_db, homes):
    out = {}
    for name, design in TRIGRAM_DESIGNS.items():
        scaled = design.scaled(TRIGRAM_SCALE_SHIFT)
        out[name] = evaluate_trigram_design(
            scaled, trigram_db, home=homes[scaled.bucket_count]
        )
    return out


@pytest.mark.parametrize("name", list("ABCD"))
def test_table3_design(benchmark, trigram_db, homes, name):
    """Regenerate one Table 3 row."""
    scaled = TRIGRAM_DESIGNS[name].scaled(TRIGRAM_SCALE_SHIFT)
    result = benchmark.pedantic(
        evaluate_trigram_design,
        args=(scaled, trigram_db),
        kwargs={"home": homes[scaled.bucket_count]},
        rounds=1, iterations=1,
    )
    paper_alpha = paper_values.TABLE3[name][0]
    assert result.load_factor == pytest.approx(paper_alpha, abs=0.01)
    assert result.amal >= 1.0


def test_table3_bands(results):
    """Measured values sit in the paper's Table 3 bands."""
    a = results["A"]
    # Paper: 5.99% overflowing, 0.34% spilled, AMAL 1.003.
    assert 2.0 < a.overflowing_buckets_pct < 12.0
    assert 0.05 < a.spilled_records_pct < 1.5
    assert 1.0 < a.amal < 1.02
    for name in "BCD":
        assert results[name].spilled_records_pct < 0.1
        assert results[name].amal == pytest.approx(1.0, abs=0.005)


def test_table3_arrangement_tradeoff(results):
    """A vs C / B vs D: horizontal absorbs overflow at the same alpha."""
    assert (
        results["C"].overflowing_buckets_pct
        < results["A"].overflowing_buckets_pct
    )
    assert (
        results["D"].overflowing_buckets_pct
        <= results["B"].overflowing_buckets_pct + 0.05
    )


def test_trigram_beats_ip_at_higher_alpha(results):
    """"the trigram lookup application achieves lower AMAL at much higher
    alpha, due to the hash function it uses" (Section 4.3)."""
    # Design A: alpha 0.86 yet AMAL ~1.003 — compare with IP design A
    # (alpha 0.47, AMAL well above 1.05 on the same seeded tables).
    assert results["A"].load_factor > 0.8
    assert results["A"].amal < 1.02


def test_print_table3(results):
    rows = []
    for name in sorted(results):
        row = results[name].row()
        paper = paper_values.TABLE3[name]
        row["paper_ovf"] = paper[1]
        row["paper_spill"] = paper[2]
        row["paper_AMAL"] = paper[3]
        rows.append(row)
    print("\n" + format_table(rows))
    assert len(rows) == 4
