"""Ablation — IPv6 scaling (the paper's §4.1 capacity concern).

"The size of a routing table will even quadruple as we adopt IPv6.
Despite the current large TCAM development efforts, the sheer amount of
required associative storage capacity remains a serious challenge."

Regenerates the Figure 8-style comparison at IPv6 scale: 4x the entries
at 128-bit (256 stored-bit) keys, CA-RAM design D6 (Table 2's design D
re-sized to the same 0.36 load factor) vs the 6T dynamic TCAM.
"""

import pytest

from repro.apps.iplookup.ipv6 import (
    FULL_V6_PREFIX_COUNT,
    IPV6_DESIGN_D6,
    Ipv6Config,
    Ipv6Design,
    compare_ipv6,
    generate_ipv6_table,
)
from repro.core.config import Arrangement
from repro.experiments import fig8
from repro.experiments.reporting import format_table

#: Quarter scale keeps the bench fast; the design shrinks alongside so
#: the load factor (and hence AMAL) is preserved.
SCALE_DIVISOR = 4
SCALED_DESIGN = Ipv6Design("D6/4", 12, 64, 2, Arrangement.HORIZONTAL)


@pytest.fixture(scope="module")
def v6_table():
    return generate_ipv6_table(
        Ipv6Config(total_prefixes=FULL_V6_PREFIX_COUNT // SCALE_DIVISOR, seed=7)
    )


def test_ipv6_comparison(benchmark, v6_table):
    result = benchmark.pedantic(
        compare_ipv6, args=(v6_table,), kwargs={"design": SCALED_DESIGN},
        rounds=1, iterations=1,
    )
    # Occupancy stays healthy at the design-D load factor.
    assert result.report.amal_uniform < 1.3
    # Area saving tracks the IPv4 figure (same alpha, same cells).
    assert 0.35 < result.area_saving < 0.50
    # Power saving exceeds the IPv4 figure: the TCAM now burns 128
    # symbols per entry on 4x the entries, CA-RAM still reads one bucket.
    assert result.power_saving > 0.6


def test_ipv6_advantage_grows_vs_ipv4(v6_table, bgp_table):
    """CA-RAM's relative power advantage widens from IPv4 to IPv6."""
    v4 = fig8.run_ip(table=bgp_table)
    v6 = compare_ipv6(v6_table, design=SCALED_DESIGN)
    assert v6.power_saving >= v4["power_reduction"] - 0.02
    rows = [
        {
            "table": "IPv4 (186,760 prefixes)",
            "area_saving_pct": round(100 * v4["area_reduction"], 1),
            "power_saving_pct": round(100 * v4["power_reduction"], 1),
        },
        {
            "table": f"IPv6 ({len(v6_table):,} prefixes, 128-bit keys)",
            "area_saving_pct": round(100 * v6.area_saving, 1),
            "power_saving_pct": round(100 * v6.power_saving, 1),
        },
    ]
    print("\n" + format_table(rows))


def test_ipv6_tcam_offload_is_small(v6_table):
    """The short-prefix TCAM offload stays a fraction of a percent."""
    result = compare_ipv6(v6_table, design=SCALED_DESIGN)
    assert result.tcam_offloaded < 0.01 * len(v6_table)
