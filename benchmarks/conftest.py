"""Shared fixtures for the benchmark harness.

Workload generation is hoisted into session-scoped fixtures so that the
benchmarked functions measure the *evaluation* cost, and so the synthetic
databases are built once per session.

Scales are chosen so the full benchmark suite finishes in a few minutes:
the IP table runs at the paper's full 186,760 prefixes (cheap), the trigram
database at 1/8 scale (673k entries) with R reduced by 3 bits, which
preserves every design's load factor and hence the Table 3 statistics.
"""

import pytest

from repro.apps.iplookup.table_gen import SyntheticBgpConfig, generate_bgp_table
from repro.apps.trigram.generator import (
    FULL_TRIGRAM_COUNT,
    TrigramConfig,
    generate_trigram_database,
)
from repro.experiments.table3 import DEFAULT_SCALE_SHIFT as TRIGRAM_SCALE_SHIFT

IP_SEED = 7
TRIGRAM_SEED = 11


@pytest.fixture(scope="session")
def bgp_table():
    """The full-scale synthetic BGP table (186,760 prefixes)."""
    return generate_bgp_table(SyntheticBgpConfig(seed=IP_SEED))


@pytest.fixture(scope="session")
def trigram_db():
    """The 1/8-scale synthetic trigram database (673k entries)."""
    return generate_trigram_database(
        TrigramConfig(
            total_entries=FULL_TRIGRAM_COUNT >> TRIGRAM_SCALE_SHIFT,
            seed=TRIGRAM_SEED,
        )
    )
