"""Table 2 — the six CA-RAM designs for IP address lookup.

Regenerates every Table 2 column (load factor, % overflowing buckets,
% spilled records, AMALu, AMALs) on the full-scale synthetic BGP table and
checks the paper's qualitative claims:

* more area (lower alpha) gives lower AMAL (A >= B >= C, D >= E);
* at equal alpha, the more evenly-distributing configuration wins
  (C < D, D < F);
* AMALs <= AMALu (frequency-sorted placement helps);
* don't-care duplication costs a few percent "regardless of the design".
"""

import pytest

from repro.apps.iplookup.designs import IP_DESIGNS
from repro.apps.iplookup.evaluate import evaluate_ip_design
from repro.apps.iplookup.mapping import map_prefixes_to_buckets
from repro.experiments import paper_values
from repro.experiments.reporting import format_table

SEED = 7


@pytest.fixture(scope="module")
def mappings(bgp_table):
    out = {}
    for design in IP_DESIGNS.values():
        r = design.effective_index_bits
        if r not in out:
            out[r] = map_prefixes_to_buckets(bgp_table, r)
    return out


@pytest.fixture(scope="module")
def results(bgp_table, mappings):
    return {
        name: evaluate_ip_design(
            design, bgp_table,
            mapping=mappings[design.effective_index_bits], seed=SEED,
        )
        for name, design in IP_DESIGNS.items()
    }


@pytest.mark.parametrize("name", list("ABCDEF"))
def test_table2_design(benchmark, bgp_table, mappings, name):
    """Regenerate one Table 2 row (the paper's reference in the assert)."""
    design = IP_DESIGNS[name]
    result = benchmark.pedantic(
        evaluate_ip_design,
        args=(design, bgp_table),
        kwargs={
            "mapping": mappings[design.effective_index_bits],
            "seed": SEED,
        },
        rounds=1, iterations=1,
    )
    paper_alpha = paper_values.TABLE2[name][0]
    assert result.load_factor == pytest.approx(paper_alpha, abs=0.015)
    assert result.amal_uniform >= 1.0
    assert result.amal_skewed <= result.amal_uniform + 1e-9


def test_table2_orderings(results):
    """The paper's design-space conclusions hold on the synthetic table."""
    amal = {name: res.amal_uniform for name, res in results.items()}
    assert amal["A"] >= amal["B"] >= amal["C"]   # more area helps
    assert amal["D"] >= amal["E"]
    assert amal["C"] < amal["D"]                 # wide beats narrow at same alpha
    assert amal["F"] > amal["D"]                 # vertical loses at same area
    assert amal["F"] == max(amal.values())       # F is the worst design


def test_table2_duplication(results):
    """"a 6.4% increase ... regardless of the design" (few-percent band)."""
    overheads = {res.duplication_overhead_pct for res in results.values()}
    for overhead in overheads:
        assert 4.0 < overhead < 10.0
    # Identical across designs (R > 8 covers the same window).
    assert len({round(o, 6) for o in overheads}) == 1


def test_print_table2(results):
    """Emit the full Table 2 reproduction with paper columns."""
    rows = []
    for name in sorted(results):
        row = results[name].row()
        paper = paper_values.TABLE2[name]
        row["paper_ovf"] = paper[1]
        row["paper_spill"] = paper[2]
        row["paper_AMALu"] = paper[3]
        row["paper_AMALs"] = paper[4]
        rows.append(row)
    print("\n" + format_table(rows))
    assert len(rows) == 6
