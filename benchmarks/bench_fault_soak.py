"""Fault-soak acceptance gates: zero silent corruption, free when off.

Two contracts of the reliability layer are pinned here with numbers:

* **detect-or-correct** — a 10k-lookup soak of the IP and trigram
  workloads at bit-flip rate 1e-4 (plus stuck cells and dead rows) must
  report **zero** silent wrong answers: every fault is either corrected
  by the segmented row ECC or detected and repaired through
  restore/quarantine/victim overlay;
* **zero cost when disabled** — with no reliability layer enabled, warm
  batch-lookup throughput on the ``bench_batch_lookup.py`` slice/query
  stream must stay within 5% of the committed
  ``BENCH_batch_lookup.json`` baseline (the guard hook is one
  ``is None`` check per row access).

Results (per-rate soak reports + the disabled-path throughput) land in
``BENCH_fault_soak.json``.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_fault_soak.py

or through pytest (asserts both gates)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fault_soak.py
"""

import json
import time

import pytest

from bench_batch_lookup import build_slice, make_queries, populate
from harness import finalize, result_path
from repro.reliability.soak import run_soak

RESULT_PATH = result_path("fault_soak")
BASELINE_PATH = result_path("batch_lookup")

REPEATS = 3          # best-of to squeeze out scheduler noise
GATE_THRESHOLD = 0.05
SOAK_QUERIES = 10_000
SOAK_RATE = 1e-4
SOAK_SEED = 7


def _measure_warm(slice_, queries) -> float:
    """Best-of-``REPEATS`` warm batch throughput in keys/sec."""
    slice_.search_batch(queries[:1])  # warm the mirror + engine
    best = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        slice_.search_batch(queries)
        seconds = time.perf_counter() - start
        best = max(best, len(queries) / seconds)
    return best


def run_benchmark() -> dict:
    soaks = {
        name: run_soak(
            name, SOAK_RATE, queries=SOAK_QUERIES, seed=SOAK_SEED
        ).as_dict()
        for name in ("ip", "trigram")
    }

    # Disabled-path throughput: the reliability layer is never enabled on
    # this slice, so the only possible cost is the guard hook's presence.
    slice_ = build_slice()
    stored = populate(slice_)
    queries = make_queries(stored)
    disabled = _measure_warm(slice_, queries)

    result = {
        "soak_rate": SOAK_RATE,
        "soak_queries": SOAK_QUERIES,
        "silent_wrong": sum(s["silent_wrong"] for s in soaks.values()),
        "soaks": soaks,
        "keys": len(queries),
        "disabled_keys_per_sec": round(disabled),
    }
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        warm_baseline = baseline["batch_warm_keys_per_sec"]
        result["baseline_warm_keys_per_sec"] = warm_baseline
        result["disabled_overhead_vs_baseline"] = round(
            warm_baseline / disabled - 1, 4
        )
    return finalize(RESULT_PATH, result)


def test_soak_detect_or_correct():
    for name in ("ip", "trigram"):
        report = run_soak(
            name, SOAK_RATE, queries=SOAK_QUERIES, seed=SOAK_SEED
        )
        assert report.silent_wrong == 0, report.as_dict()
        assert report.queries >= SOAK_QUERIES


def test_disabled_reliability_overhead():
    result = run_benchmark()
    assert result["silent_wrong"] == 0, result
    if "disabled_overhead_vs_baseline" not in result:
        pytest.skip("no committed BENCH_batch_lookup.json baseline")
    assert result["disabled_overhead_vs_baseline"] <= GATE_THRESHOLD, result


if __name__ == "__main__":
    stats = run_benchmark()
    print(json.dumps(stats, indent=2))
    print(f"\nwrote {RESULT_PATH}")
