"""Fault-tolerance benchmark: replicated serving under injected failure.

ISSUE 10's claim is that replication turns shard failure from an outage
into a latency blip: with R bit-identical replicas per shard behind the
failover resolve loop (deadlines, retry-with-backoff onto an untried
replica, hedging, circuit-breaker membership), killing a replica
mid-stream must cost throughput, never correctness.  Three legs:

* **baseline** — R=2 fault-free closed loop through
  :class:`~repro.serving.replication.FaultTolerantService`: the
  throughput reference the degraded legs are gated against;
* **replica_kill** — the same loop, but once half the requests have
  completed, replica 1 of *every* shard is crashed.  Gates: zero wrong
  answers, every admitted request resolved (accounting closes), at
  least one eviction per shard, and sustained throughput >= 50% of the
  fault-free baseline;
* **chaos_soak** — all four chaos modes at once on different replicas
  (crash, hang, transient errors, and ECC-guarded bit corruption via
  the PR-4 reliability stack).  Gate: zero wrong answers — every
  admitted request returns the bit-identical correct answer or a typed
  error, never silent corruption.

Every leg verifies each answer against the precomputed expected value.
Results land in ``BENCH_serving_faults.json`` with the replication
topology under ``metadata.topology``.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_serving_faults.py [--quick]

or through pytest (asserts the fault gates)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_faults.py
"""

import argparse
import asyncio
import json

from harness import finalize, result_path
from repro.serving import (
    ChaosSpec,
    FailoverPolicy,
    FaultTolerantService,
    ReplicatedCluster,
    make_request_stream,
    run_closed_loop,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.utils.rng import make_rng

RESULT_PATH = result_path("serving_faults")

SEED = 20070            # ISPASS 2007
KEY_BITS = 22
MISS_FRACTION = 0.1
ZIPF_EXPONENT = 1.0
REPLICATION = 2

#: Full-scale knobs (standalone runs) and the CI ``--quick`` profile.
SCALE = {
    "full": {
        "shards": 2,
        "index_bits": 8,
        "slots": 16,
        "records": 4000,
        "requests": 12000,
        "users": 300,
    },
    "quick": {
        "shards": 2,
        "index_bits": 7,
        "slots": 16,
        "records": 1500,
        "requests": 5000,
        "users": 150,
    },
}

MAX_BATCH_SIZE = 512
MAX_DELAY = 0.002

#: Failover knobs for the degraded legs: a short per-attempt timeout so
#: a hung replica costs one bounded wait, not the whole deadline, and a
#: fast-tripping breaker so dead replicas leave the rotation quickly.
POLICY = FailoverPolicy(
    deadline=2.0,
    attempt_timeout=0.05,
    max_attempts=3,
    evict_after=2,
    probation_after=0.05,   # recovered replicas rejoin within the run
    seed=SEED,
)

#: Acceptance gates (ISSUE 10).  ``failed`` counts requests resolved
#: with a typed error after every replica of a set was down — permanent
#: kills are fully covered by the surviving replica (near-zero), the
#: all-modes soak tolerates brief whole-set outages while evicted
#: replicas wait out probation.
MIN_KILL_THROUGHPUT_FRACTION = 0.5
MAX_FAILED_FRACTION = {
    "baseline": 0.0,
    "replica_kill": 0.01,
    "chaos_soak": 0.05,
}


def make_records(scale: dict):
    rng = make_rng(SEED)
    keys = rng.choice(1 << KEY_BITS, size=scale["records"], replace=False)
    return [(int(key), int(key) & 0xFFFF) for key in keys]


def build_cluster(scale: dict) -> ReplicatedCluster:
    """A freshly built and loaded replicated cluster (one per leg —
    each service owns and closes its cluster)."""
    cluster = ReplicatedCluster.build(
        shard_count=scale["shards"],
        replication=REPLICATION,
        policy=POLICY,
        index_bits=scale["index_bits"],
        slots=scale["slots"],
    )
    cluster.load(make_records(scale))
    return cluster


def failover_counters(cluster: ReplicatedCluster) -> dict:
    counters = {}
    for stat in (
        "retries", "timeouts", "hedges", "hedge_wins",
        "evictions", "probations", "readmissions", "exhausted",
    ):
        counters[stat] = sum(
            getattr(rset.stats, stat) for rset in cluster.replica_sets
        )
    return counters


def corruption_counters(cluster: ReplicatedCluster) -> dict:
    """Summed reliability-guard counters across every replica that has
    the ECC stack enabled (the ``corrupt`` chaos targets)."""
    injected = corrections = detections = 0
    for rset in cluster.replica_sets:
        for replica in rset.replicas:
            manager = replica.shard.group._reliability
            if manager is None:
                continue
            for guard in manager.guards:
                injected += guard.stats.faults_injected
                corrections += guard.stats.corrections
                detections += guard.stats.detections
    return {
        "faults_injected": injected,
        "corrections": corrections,
        "detections": detections,
    }


async def run_leg(scale: dict, stream, chaos=None, registry=None) -> dict:
    """One closed loop through a fresh fault-tolerant service.

    ``chaos`` is ``None`` (fault-free), a list of ``(shard, replica,
    spec)`` triples injected before traffic starts, or the string
    ``"kill-midstream"`` — crash replica 1 of every shard once half the
    requests have completed.
    """
    cluster = build_cluster(scale)
    service = FaultTolerantService(
        cluster,
        max_batch_size=MAX_BATCH_SIZE,
        max_delay=MAX_DELAY,
    )
    if isinstance(chaos, list):
        for shard_id, replica_id, spec in chaos:
            cluster.inject_chaos(shard_id, replica_id, spec)

    async def kill_midstream():
        target = max(1, len(stream) // 2)
        while service.stats.completed < target:
            await asyncio.sleep(0.002)
        for shard_id in range(scale["shards"]):
            cluster.kill_replica(shard_id, 1)

    async with service:
        killer = None
        if chaos == "kill-midstream":
            killer = asyncio.ensure_future(kill_midstream())
        report = await run_closed_loop(
            service, stream, users=scale["users"]
        )
        if killer is not None:
            killer.cancel()
            try:
                await killer
            except asyncio.CancelledError:
                pass
        leg = report.as_dict()
        leg["failover"] = failover_counters(cluster)
        leg["membership"] = cluster.membership()
        leg["corruption"] = corruption_counters(cluster)
        if registry is not None:
            cluster.register_telemetry(registry)
            leg["telemetry_snapshot"] = registry.snapshot()
    return leg


async def _run_legs(scale: dict, registry: MetricsRegistry) -> dict:
    records = make_records(scale)
    stored = [key for key, _ in records]
    values = dict(records)

    def stream_of(seed_offset: int = 0):
        return make_request_stream(
            stored,
            values,
            requests=scale["requests"],
            zipf_exponent=ZIPF_EXPONENT,
            miss_fraction=MISS_FRACTION,
            seed=SEED + seed_offset,
            key_bits=KEY_BITS,
        )

    baseline = await run_leg(scale, stream_of(0))
    replica_kill = await run_leg(
        scale, stream_of(1), chaos="kill-midstream", registry=registry
    )

    # Chaos soak: all four modes at once, spread so every shard keeps at
    # least one replica that only suffers *recoverable* chaos.  The
    # corruption rate stays where SECDED's miscorrection probability is
    # negligible for this geometry: word-organized bucket rows are
    # ~600-bit codewords, and above ~1e-4 flips/bit/access a triple
    # flip within one access miscorrects (and writeback then persists
    # the poisoned row with consistent check bits) often enough to show
    # up in a 5k-request run.  The zero-wrong gate holds at the tested
    # rate by correction, not by luck — the injected/corrected counters
    # are gated non-zero below.
    soak_specs = [
        (0, 0, ChaosSpec(mode="error", at_call=2, duration_calls=6,
                         error_rate=1.0, seed=SEED)),
        (0, 1, ChaosSpec(mode="corrupt", bit_flip_rate=2e-5, seed=SEED)),
        (1, 0, ChaosSpec(mode="hang", at_call=3, duration_calls=3,
                         hang_seconds=0.08)),
        (1, 1, ChaosSpec(mode="crash", at_call=40)),
    ]
    chaos_soak = await run_leg(scale, stream_of(2), chaos=soak_specs)

    throughput_fraction = (
        replica_kill["sustained_qps"] / baseline["sustained_qps"]
        if baseline["sustained_qps"]
        else 0.0
    )
    return {
        "baseline": baseline,
        "replica_kill": replica_kill,
        "chaos_soak": chaos_soak,
        "kill_throughput_fraction": round(throughput_fraction, 4),
    }


def run_benchmark(profile: str = "full") -> dict:
    scale = SCALE[profile]
    registry = MetricsRegistry()
    legs = asyncio.run(_run_legs(scale, registry))
    snapshot = legs["replica_kill"].pop("telemetry_snapshot", {})
    result = {
        "profile": profile,
        "requests": scale["requests"],
        "users": scale["users"],
        "zipf_exponent": ZIPF_EXPONENT,
        "miss_fraction": MISS_FRACTION,
        **legs,
        "gates": {
            "min_kill_throughput_fraction": MIN_KILL_THROUGHPUT_FRACTION,
            "max_failed_fraction": MAX_FAILED_FRACTION,
        },
    }
    topology = {
        "shard_count": scale["shards"],
        "replication": REPLICATION,
        "router": "ConsistentHashRouter",
        "front_end": "asyncio+thread-executor",
        "balancer": POLICY.balancer,
        "max_batch_size": MAX_BATCH_SIZE,
        "max_delay_s": MAX_DELAY,
        "deadline_s": POLICY.deadline,
        "attempt_timeout_s": POLICY.attempt_timeout,
    }
    return finalize(
        RESULT_PATH,
        result,
        telemetry={"metrics": snapshot} if snapshot else None,
        metadata={"profile": profile},
        topology=topology,
    )


def check_gates(result: dict) -> None:
    """The acceptance gates, shared by pytest and the CI chaos job."""
    for leg in ("baseline", "replica_kill", "chaos_soak"):
        section = result[leg]
        # Zero wrong answers under every fault schedule — the headline.
        assert section["wrong"] == 0, (leg, section)
        # Every admitted request resolved: the accounting closes.
        accounted = (
            section["completed"]
            + section["shed"]
            + section["failed"]
            + section["wrong"]
        )
        assert accounted == section["requests"], (leg, section)
        assert (
            section["failed"]
            <= MAX_FAILED_FRACTION[leg] * section["requests"]
        ), (leg, section)
    # The kill leg must actually kill: an eviction on every shard...
    kill = result["replica_kill"]
    assert kill["failover"]["evictions"] >= (
        result["metadata"]["topology"]["shard_count"]
    ), kill["failover"]
    # ...while sustaining at least half the fault-free throughput.
    assert (
        result["kill_throughput_fraction"]
        >= MIN_KILL_THROUGHPUT_FRACTION
    ), result["kill_throughput_fraction"]
    # The soak must actually corrupt memory (and the ECC stack must have
    # seen it) — otherwise the zero-wrong gate is vacuous.
    soak = result["chaos_soak"]
    assert soak["corruption"]["faults_injected"] > 0, soak["corruption"]
    assert soak["failover"]["retries"] > 0, soak["failover"]
    assert result["metadata"]["topology"]["replication"] >= 2, result


def test_serving_fault_tolerance():
    check_gates(run_benchmark("quick"))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced-scale profile for CI smoke runs",
    )
    parser.add_argument(
        "--check-gates",
        action="store_true",
        help="apply the acceptance gates after the run (CI chaos job)",
    )
    args = parser.parse_args()
    report = run_benchmark("quick" if args.quick else "full")
    print(json.dumps(
        {k: v for k, v in report.items() if k != "telemetry"}, indent=2
    ))
    if args.check_gates:
        check_gates(report)
        print("\nall serving-fault gates passed")
    print(f"\nwrote {RESULT_PATH}")
