"""Ablation — the load-factor/AMAL trade-off (Section 4.3).

"there is a trade-off between area (or alpha) and AMAL; the more area is
spent (i.e., the lower alpha is), the smaller AMAL gets.  The ratio of
changes in these two values (dAMAL/dalpha) however depends on the
application, the hash function, and the value of alpha."

Sweeps slots-per-bucket at fixed bucket count on both applications and
checks monotonicity plus the paper's observation that the trigram
application's curve is far flatter (dAMAL/dalpha ~ 0 at alpha 0.68-0.86).
"""

import numpy as np
import pytest

from repro.apps.iplookup.mapping import map_prefixes_to_buckets
from repro.hashing.analysis import occupancy_report
from repro.experiments.reporting import format_table
from repro.experiments.table3 import DEFAULT_SCALE_SHIFT


def sweep(home, bucket_count, slot_grid):
    rows = []
    for slots in slot_grid:
        report = occupancy_report(home, bucket_count, slots)
        rows.append(
            {
                "slots_per_bucket": slots,
                "alpha": round(report.load_factor, 3),
                "AMAL": round(report.amal_uniform, 4),
                "spilled_pct": round(100 * report.spilled_fraction, 2),
            }
        )
    return rows


@pytest.fixture(scope="module")
def ip_home(bgp_table):
    return map_prefixes_to_buckets(bgp_table, 11).home


@pytest.fixture(scope="module")
def trigram_home(trigram_db):
    buckets = 4 * (1 << (14 - DEFAULT_SCALE_SHIFT))
    return trigram_db.bucket_indices(buckets)


def test_ip_load_factor_sweep(benchmark, ip_home):
    rows = benchmark.pedantic(
        sweep, args=(ip_home, 2048, (128, 160, 192, 224, 256, 320)),
        rounds=1, iterations=1,
    )
    amals = [row["AMAL"] for row in rows]
    # More slots (lower alpha) monotonically lowers AMAL.
    assert all(a >= b for a, b in zip(amals, amals[1:]))
    # And the curve is steep at high alpha.
    assert amals[0] - amals[-1] > 0.05
    print("\n" + format_table(rows))


def test_trigram_load_factor_sweep(benchmark, trigram_home):
    buckets = 4 * (1 << (14 - DEFAULT_SCALE_SHIFT))
    rows = benchmark.pedantic(
        sweep, args=(trigram_home, buckets, (96, 112, 128)),
        rounds=1, iterations=1,
    )
    amals = [row["AMAL"] for row in rows]
    assert all(a >= b for a, b in zip(amals, amals[1:]))
    # "the benefit of spending more area is minimal in the trigram lookup
    # application"
    assert amals[0] - amals[-1] < 0.01
    print("\n" + format_table(rows))


def test_damal_dalpha_depends_on_application(ip_home, trigram_home):
    """The same alpha reduction buys far more AMAL in IP lookup than in
    trigram lookup."""
    ip = sweep(ip_home, 2048, (192, 256))
    buckets = 4 * (1 << (14 - DEFAULT_SCALE_SHIFT))
    trigram = sweep(trigram_home, buckets, (96, 128))
    ip_gain = ip[0]["AMAL"] - ip[1]["AMAL"]
    trigram_gain = trigram[0]["AMAL"] - trigram[1]["AMAL"]
    assert ip_gain > 5 * trigram_gain
