"""Ablation — routing-table update churn (insert/delete dynamics).

CA-RAM point updates vs the TCAM's sorted-order maintenance problem the
paper cites (Shah & Gupta): flap routes on a behavioral CA-RAM, watch
lookup AMAL degrade as reach fields go stale, and recover it with a
RAM-mode rebuild.
"""

import pytest

from repro.apps.iplookup.churn import run_update_churn
from repro.apps.iplookup.designs import IpDesign
from repro.apps.iplookup.prefix import Prefix
from repro.core.config import Arrangement
from repro.experiments.reporting import format_table
from repro.utils.rng import make_rng

DESIGN = IpDesign("churn", 8, 32, 2, Arrangement.HORIZONTAL)


@pytest.fixture(scope="module")
def pairs():
    rng = make_rng(21)
    out = {}
    while len(out) < 600:
        length = int(rng.choice([16, 20, 24], p=[0.15, 0.25, 0.6]))
        bits = int(rng.integers(0, 1 << length))
        prefix = Prefix.from_bits(bits, length)
        out.setdefault((prefix.value, prefix.length), (prefix, 1))
    return list(out.values())


def test_update_churn(benchmark, pairs):
    result = benchmark.pedantic(
        run_update_churn, args=(pairs, DESIGN),
        kwargs={"flaps": 1500, "seed": 21},
        rounds=1, iterations=1,
    )
    rows = [
        {"phase": "fresh build", "AMAL": round(result.amal_fresh, 4)},
        {
            "phase": f"after {result.flaps} flaps",
            "AMAL": round(result.amal_after_churn, 4),
            "mean_reach": round(result.mean_reach_after_churn, 3),
        },
        {
            "phase": "after rebuild",
            "AMAL": round(result.amal_after_rebuild, 4),
            "mean_reach": round(result.mean_reach_after_rebuild, 3),
        },
    ]
    print("\n" + format_table(rows))
    print(f"entries touched per flap: {result.updates_per_flap_entries:.2f}")

    # Rebuild restores the fresh AMAL; churn never loses routes
    # (asserted inside run_update_churn).
    assert result.amal_after_rebuild == pytest.approx(
        result.amal_fresh, abs=0.05
    )
    # Point updates stay cheap.
    assert result.updates_per_flap_entries < 8


def test_tcam_update_cost_baseline(benchmark, pairs):
    """The sorted TCAM's insert cost (Shah & Gupta): boundary moves per
    update, versus CA-RAM's point writes."""
    from repro.cam.tcam_update import SortedTcamManager
    from repro.utils.rng import make_rng

    subset = pairs[:200]

    def run():
        manager = SortedTcamManager(capacity=512, pivot_length=24)
        for prefix, hop in subset:
            manager.insert(prefix, hop)
        rng = make_rng(22)
        for _ in range(100):
            prefix, _ = subset[int(rng.integers(0, len(subset)))]
            manager.delete(prefix)
            manager.insert(prefix, int(rng.integers(0, 100)))
        return manager.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nsorted-TCAM entry moves per insert: "
          f"{stats.moves_per_insert:.2f} "
          "(CA-RAM: 0 — point updates never displace other records)")
    # With a /24 pivot and a 16/20/24 length mix, the /16 inserts must hop
    # the /20 region — nonzero displacement, unlike CA-RAM's zero.
    assert stats.moves_per_insert > 0.05
