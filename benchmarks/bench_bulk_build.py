"""Build time of the vectorized bulk-load pipeline vs sequential insertion.

Sequential construction replays the hardware insert path once per record —
hash, probe walk, unpack and repack a whole big-int row — which dominates
every behavioral experiment at paper scale.  ``bulk_load`` computes the
same final state (bit-identical rows, reach fields, stats) in one
vectorized pass.  This benchmark builds an IP-style database (ternary
32-bit keys, sorted buckets, alpha=0.7) both ways, checks the images are
identical, and measures the speedup; it also measures batch-vs-scalar
lookup throughput at alpha=0.9 under uniform (mostly-miss) traffic, where
the vectorized probe walk must keep the batch path from collapsing into
scalar fallbacks.

Results go to ``BENCH_bulk_build.json`` at the repository root.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_bulk_build.py [--quick]

or through pytest (quick geometry, asserts the >=5x build speedup)::

    PYTHONPATH=src python -m pytest benchmarks/bench_bulk_build.py
"""

import argparse
import json
import time

from harness import finalize, result_path
from repro.core.config import Arrangement, SliceConfig
from repro.core.key import TernaryKey
from repro.core.record import RecordFormat
from repro.core.subsystem import SliceGroup
from repro.hashing.bit_select import BitSelectHash
from repro.telemetry.profiling import enabled_profiler
from repro.utils.bits import mask_of
from repro.utils.rng import make_rng

RESULT_PATH = result_path("bulk_build")

KEY_BITS = 32
DATA_BITS = 16
BUILD_ALPHA = 0.7
LOOKUP_ALPHA = 0.9
SEED = 4321

FULL = {"index_bits": 10, "slots": 32, "queries": 60_000}
QUICK = {"index_bits": 7, "slots": 16, "queries": 10_000}


def prefix_priority(record) -> float:
    """Longest-prefix-first slot ordering, as in the IP study."""
    return float(record.key.width - record.key.dont_care_count)


def make_group(index_bits: int, slots: int, ternary: bool) -> SliceGroup:
    record_format = RecordFormat(
        key_bits=KEY_BITS, data_bits=DATA_BITS, ternary=ternary
    )
    aux_bits = 8
    config = SliceConfig(
        index_bits=index_bits,
        row_bits=aux_bits + slots * record_format.slot_bits,
        record_format=record_format,
        aux_bits=aux_bits,
    )
    return SliceGroup(
        config=config,
        slice_count=1,
        arrangement=Arrangement.VERTICAL,
        hash_function=BitSelectHash(
            KEY_BITS, tuple(range(12, 12 + index_bits))
        ),
        slot_priority=prefix_priority if ternary else None,
        name="bench-bulk",
    )


def make_records(capacity: int, alpha: float):
    """IP-style ternary records: random values, don't-cares below the hash
    bits (single-home), varied prefix lengths for the sorted buckets."""
    rng = make_rng(SEED)
    count = int(capacity * alpha)
    pairs = []
    seen = set()
    while len(pairs) < count:
        value = int(rng.integers(0, 1 << KEY_BITS))
        mask = mask_of(int(rng.integers(0, 9)))  # bits 0..8 < hash bit 12
        if (value | mask) in seen:
            continue
        seen.add(value | mask)
        pairs.append(
            (
                TernaryKey(value=value & ~mask, mask=mask, width=KEY_BITS),
                value & 0xFFFF,
            )
        )
    return pairs


def bench_build(index_bits: int, slots: int) -> dict:
    pairs = make_records((1 << index_bits) * slots, BUILD_ALPHA)

    sequential = make_group(index_bits, slots, ternary=True)
    start = time.perf_counter()
    for key, data in pairs:
        sequential.insert(key, data)
    scalar_seconds = time.perf_counter() - start

    bulk = make_group(index_bits, slots, ternary=True)
    start = time.perf_counter()
    bulk.bulk_load(pairs)
    bulk_seconds = time.perf_counter() - start

    # Bit-identical construction: every row (reach fields included), the
    # record count, and the insert statistics must match.
    assert (
        [a.snapshot() for a in bulk._arrays]
        == [a.snapshot() for a in sequential._arrays]
    ), "bulk/sequential image divergence"
    assert bulk.record_count == sequential.record_count
    assert bulk.stats == sequential.stats

    return {
        "records": len(pairs),
        "load_factor": round(bulk.load_factor, 3),
        "scalar_build_seconds": round(scalar_seconds, 4),
        "bulk_build_seconds": round(bulk_seconds, 4),
        "scalar_records_per_sec": round(len(pairs) / scalar_seconds),
        "bulk_records_per_sec": round(len(pairs) / bulk_seconds),
        "build_speedup": round(scalar_seconds / bulk_seconds, 2),
    }


def bench_high_load_lookup(index_bits: int, slots: int, queries: int) -> dict:
    """Batch vs scalar lookup at alpha=0.9 with uniform (mostly-miss)
    traffic — the regime where home misses with nonzero reach multiply and
    the old scalar probe fallback used to dominate."""
    group = make_group(index_bits, slots, ternary=False)
    rng = make_rng(SEED + 1)
    capacity = group.capacity_records
    stored = []
    seen = set()
    while len(stored) < int(capacity * LOOKUP_ALPHA):
        key = int(rng.integers(0, 1 << KEY_BITS))
        if key in seen:
            continue
        seen.add(key)
        group.insert(key, key & 0xFFFF)
        stored.append(key)

    # Uniform traffic over the whole key space: overwhelmingly misses,
    # which all pay the reach-driven extended search.
    query_keys = [int(k) for k in rng.integers(0, 1 << KEY_BITS, size=queries)]

    group.stats.reset()
    start = time.perf_counter()
    scalar_results = [group.search(key) for key in query_keys]
    scalar_seconds = time.perf_counter() - start
    amal = group.stats.amal

    sections = {}
    for backend in ("word", "bitplane"):
        group.engine = backend
        group.search_batch(query_keys[:1])  # warm the mirror + engine
        engine = group.batch_engine
        fallbacks_before = engine.scalar_fallbacks
        start = time.perf_counter()
        batch_results = group.search_batch(query_keys)
        batch_seconds = time.perf_counter() - start

        assert batch_results == scalar_results, (
            f"{backend} batch/scalar result divergence"
        )
        fallback_fraction = (
            (engine.scalar_fallbacks - fallbacks_before) / queries
        )
        assert fallback_fraction <= 0.01, (
            f"{fallback_fraction:.1%} of keys fell back to scalar search"
        )
        sections[backend] = {
            "keys_per_sec": round(queries / batch_seconds),
            "speedup": round(scalar_seconds / batch_seconds, 2),
            "fallback_fraction": fallback_fraction,
        }

    word = sections["word"]
    return {
        "load_factor": round(group.load_factor, 3),
        "amal": round(amal, 4),
        "keys": queries,
        "scalar_keys_per_sec": round(queries / scalar_seconds),
        # Legacy flat keys (CI gates, baselines) report the word engine;
        # the per-backend sections carry both layouts.
        "batch_keys_per_sec": word["keys_per_sec"],
        "batch_speedup": word["speedup"],
        "scalar_fallback_fraction": max(
            s["fallback_fraction"] for s in sections.values()
        ),
        "probe_walk_keys": group.batch_engine.probe_walk_keys,
        "engines": sections,
    }


def run_benchmark(quick: bool = False) -> dict:
    params = QUICK if quick else FULL
    with enabled_profiler() as profiler:
        result = {
            "mode": "quick" if quick else "full",
            "index_bits": params["index_bits"],
            "slots": params["slots"],
            "build": bench_build(params["index_bits"], params["slots"]),
            "lookup_alpha09": bench_high_load_lookup(
                params["index_bits"], params["slots"], params["queries"]
            ),
        }
    return finalize(RESULT_PATH, result, profiler=profiler)


def test_bulk_build_speedup():
    result = run_benchmark(quick=True)
    assert result["build"]["build_speedup"] >= 5, result
    assert result["lookup_alpha09"]["scalar_fallback_fraction"] <= 0.01


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small geometry for CI smoke runs",
    )
    args = parser.parse_args()
    stats = run_benchmark(quick=args.quick)
    print(json.dumps(stats, indent=2))
    print(f"\nwrote {RESULT_PATH}")
