"""Figure 6 — cell size (a) and search power (b) comparison.

Pure arithmetic over published 130 nm cell data; the ratios should match
the paper closely: CA-RAM cell >12x smaller than 16T SRAM TCAM, 4.8x
smaller than 6T dynamic TCAM; >26x and >7x more power-efficient.
"""

import pytest

from repro.cost.area import cell_size_comparison
from repro.cost.power import power_comparison
from repro.experiments import fig6, paper_values
from repro.experiments.reporting import format_table


def test_fig6a_cell_size(benchmark):
    rows = benchmark(cell_size_comparison)
    areas = {r.scheme: r.area_um2 for r in rows}
    ca_ram = areas["ternary DRAM CA-RAM"]
    assert areas["16T SRAM TCAM"] / ca_ram > paper_values.FIG6_CA_RAM_VS_16T
    assert areas["6T dynamic TCAM"] / ca_ram == pytest.approx(
        paper_values.FIG6_CA_RAM_VS_6T, abs=0.05
    )
    # Published inputs are reproduced exactly.
    for scheme, area in paper_values.FIG6_CELL_AREAS.items():
        assert areas[scheme] == pytest.approx(area)


def test_fig6b_power(benchmark):
    rows = benchmark(power_comparison)
    powers = {r.scheme: r.power_w for r in rows}
    ca_ram = powers["ternary DRAM CA-RAM"]
    assert powers["16T SRAM TCAM"] / ca_ram == pytest.approx(
        paper_values.FIG6_POWER_VS_16T, abs=1.0
    )
    assert powers["6T dynamic TCAM"] / ca_ram == pytest.approx(
        paper_values.FIG6_POWER_VS_6T, abs=0.5
    )
    # Scheme ordering is monotone in cell aggressiveness.
    ordered = [r.power_w for r in rows]
    assert ordered == sorted(ordered, reverse=True)


def test_print_fig6():
    print("\n" + format_table(fig6.run_area()))
    print("\n" + format_table(fig6.run_power()))
    ratios = fig6.headline_ratios()
    assert ratios["area_vs_16t"] > 12
