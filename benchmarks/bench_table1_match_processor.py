"""Table 1 — match-processor synthesis model.

Regenerates the per-stage cell/area/delay table at the paper's reference
point (C = 1,600 bits) and checks the published totals, then sweeps the
model across the geometries of the two application studies.
"""

import pytest

from repro.cost.matchproc import MatchProcessorModel
from repro.experiments import paper_values, table1
from repro.experiments.reporting import format_table


@pytest.fixture(scope="module")
def model():
    return MatchProcessorModel()


def test_table1_reference(benchmark, model):
    """Reproduce Table 1 at the published synthesis point."""
    result = benchmark(model.synthesize)
    assert result.total_cells == paper_values.TABLE1_TOTAL[0]
    assert result.total_area_um2 == pytest.approx(paper_values.TABLE1_TOTAL[1])
    assert result.critical_path_ns == pytest.approx(paper_values.TABLE1_TOTAL[2])
    # "a latency that will fit in a single cycle at over 200MHz"
    assert result.max_clock_hz > 200e6


def test_table1_power(benchmark, model):
    """Reproduce the 60.8 mW worst-case dynamic power figure."""
    power = benchmark(model.dynamic_power_mw)
    assert power == pytest.approx(paper_values.TABLE1_POWER_MW, rel=1e-6)


@pytest.mark.parametrize(
    "row_bits,key_bits",
    [
        (1600, 8),     # reference
        (2048, 64),    # Table 2 designs A-C (32 x 64-bit keys)
        (4096, 64),    # Table 2 designs D-F
        (12_288, 128), # Table 3 (96 x 128-bit keys)
    ],
)
def test_table1_geometry_sweep(benchmark, model, row_bits, key_bits):
    """Scale the synthesis model across the application geometries."""
    result = benchmark(model.synthesize, row_bits=row_bits, key_bits=key_bits)
    assert result.total_cells > 0
    assert result.critical_path_ns > 0


def test_print_table1(capsys):
    """Emit the full Table 1 reproduction to the bench log."""
    rows = table1.run()
    print("\n" + format_table(rows))
    power = table1.run_power()
    print(f"power: {power['power_mw']} mW (paper {power['paper_power_mw']})")
    assert len(rows) == 5
