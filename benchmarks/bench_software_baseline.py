"""Ablation — software search vs CA-RAM (the Section 1 / 4.1 motivation).

"Software-based approaches usually require at least 4 to 6 memory accesses
for forwarding one packet" and pointer-chasing "is difficult to fully
optimize".  Replays software lookup traces (binary trie, chained hash)
through the cache model and compares against CA-RAM's bucket-access counts.
"""

import pytest

from repro.apps.iplookup.caram import build_ip_caram
from repro.apps.iplookup.designs import IpDesign
from repro.apps.iplookup.prefix import Prefix
from repro.apps.iplookup.trie import BinaryTrie
from repro.core.config import Arrangement
from repro.experiments.reporting import format_table
from repro.hashing.base import ModuloHash
from repro.hashing.table import ChainedHashTable
from repro.memory.cache import CacheSimulator
from repro.utils.rng import make_rng

DESIGN = IpDesign("S", 8, 32, 2, Arrangement.HORIZONTAL)
HIT_CYCLES, MISS_CYCLES = 2, 60


@pytest.fixture(scope="module")
def prefix_pairs():
    rng = make_rng(77)
    prefixes = {}
    while len(prefixes) < 600:
        length = int(rng.choice([8, 16, 20, 24], p=[0.02, 0.2, 0.2, 0.58]))
        bits = int(rng.integers(0, 1 << length))
        prefix = Prefix.from_bits(bits, length)
        prefixes[(prefix.value, prefix.length)] = prefix
    return [(p, i % 100) for i, p in enumerate(prefixes.values())]


@pytest.fixture(scope="module")
def probe_addresses(prefix_pairs):
    rng = make_rng(78)
    addresses = []
    for prefix, _ in prefix_pairs:
        host = 32 - prefix.length
        offset = int(rng.integers(0, 1 << host)) if host else 0
        addresses.append(prefix.value | offset)
    return addresses


def trie_lookup_cost(prefix_pairs, probe_addresses):
    trie = BinaryTrie()
    trie.insert_all(prefix_pairs)
    cache = CacheSimulator(size_bytes=16 * 1024)
    accesses = 0
    for address in probe_addresses:
        outcome = trie.lookup(address)
        accesses += outcome.nodes_visited
        for node_address in outcome.addresses:
            cache.access(node_address)
    latency = cache.stats.average_latency_cycles(HIT_CYCLES, MISS_CYCLES)
    return {
        "accesses_per_lookup": accesses / len(probe_addresses),
        "avg_access_cycles": latency,
    }


def caram_lookup_cost(prefix_pairs, probe_addresses):
    group = build_ip_caram(prefix_pairs, DESIGN)
    group.stats.reset()
    group.search_batch(probe_addresses)
    return {"accesses_per_lookup": group.stats.amal}


def test_software_trie_baseline(benchmark, prefix_pairs, probe_addresses):
    stats = benchmark.pedantic(
        trie_lookup_cost, args=(prefix_pairs, probe_addresses),
        rounds=1, iterations=1,
    )
    # An uncompressed trie walks a node per bit: far above CA-RAM's 1.
    assert stats["accesses_per_lookup"] > 6


def test_caram_lookup(benchmark, prefix_pairs, probe_addresses):
    stats = benchmark.pedantic(
        caram_lookup_cost, args=(prefix_pairs, probe_addresses),
        rounds=1, iterations=1,
    )
    assert stats["accesses_per_lookup"] < 1.5


def test_software_hash_pointer_chasing(benchmark):
    """Chained software hashing at load factor 4: multiple dependent
    accesses per lookup, most missing in a small cache."""
    table = ChainedHashTable(ModuloHash(1 << 10))
    rng = make_rng(79)
    keys = rng.permutation(1 << 20)[:4096]
    for key in keys:
        table.insert(int(key), 0)

    def run():
        cache = CacheSimulator(size_bytes=8 * 1024)
        accesses = 0
        for key in keys:
            outcome = table.lookup(int(key))
            accesses += outcome.memory_accesses
            for address in outcome.addresses:
                cache.access(address)
        return {
            "accesses_per_lookup": accesses / len(keys),
            "miss_rate": cache.stats.miss_rate,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # Bucket slot + ~2-3 chain nodes on average at load factor 4.
    assert stats["accesses_per_lookup"] > 2.5
    assert stats["miss_rate"] > 0.4


def test_trigram_software_hash_vs_caram(benchmark, trigram_db):
    """Section 4.2's motivation: Sphinx's software DJB hash pointer-chases
    through a chained table; CA-RAM fetches one bucket."""
    from repro.hashing.djb import DJBHash

    count = 20_000
    strings = [trigram_db.string_at(row) for row in range(count)]
    table = ChainedHashTable(DJBHash(4096))
    for i, text in enumerate(strings):
        table.insert(text, i)

    def run():
        cache = CacheSimulator(size_bytes=32 * 1024)
        accesses = 0
        for text in strings[::5]:
            outcome = table.lookup(text)
            accesses += outcome.memory_accesses
            for address in outcome.addresses:
                cache.access(address)
        return {
            "accesses_per_lookup": accesses / len(strings[::5]),
            "miss_rate": cache.stats.miss_rate,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # Load factor ~5: several chain nodes per lookup, misses dominate —
    # "poor memory performance even with a large L2 cache".
    assert stats["accesses_per_lookup"] > 3
    assert stats["miss_rate"] > 0.5
    print(f"\nsoftware trigram hash: "
          f"{stats['accesses_per_lookup']:.2f} accesses/lookup, "
          f"{100 * stats['miss_rate']:.0f}% cache misses "
          "(CA-RAM design A: 1.003 bucket accesses)")


def test_print_comparison(prefix_pairs, probe_addresses):
    trie = trie_lookup_cost(prefix_pairs, probe_addresses)
    caram = caram_lookup_cost(prefix_pairs, probe_addresses)
    rows = [
        {
            "scheme": "binary trie (software)",
            "accesses_per_lookup": round(trie["accesses_per_lookup"], 2),
            "avg_access_cycles": round(trie["avg_access_cycles"], 1),
        },
        {
            "scheme": "CA-RAM",
            "accesses_per_lookup": round(caram["accesses_per_lookup"], 3),
            "avg_access_cycles": 6.0,  # one DRAM bucket access
        },
    ]
    print("\n" + format_table(rows))
    assert rows[0]["accesses_per_lookup"] > rows[1]["accesses_per_lookup"]
