"""Serving-tier benchmark: coalesced async throughput vs one-at-a-time.

The serving tier's claim is that request coalescing turns live
one-key-at-a-time traffic into the batch work the vectorized engines are
built for.  This benchmark quantifies it on a sharded cluster
(:class:`~repro.serving.cluster.CaramCluster` behind a consistent-hash
router) with Zipf-skewed verified traffic from
:mod:`repro.serving.loadgen`:

* **direct** — the synchronous scatter/gather batch path over the whole
  stream at once: the correctness reference and the throughput ceiling;
* **baseline** — a closed loop through the async service with
  ``max_batch_size=1`` (coalescing disabled): the honest
  one-request-at-a-time cost of the same machinery;
* **coalesced** — the same closed loop with the batch window on; the
  acceptance gate demands >=5x the baseline at equal correctness;
* **overload** — an open loop offered far beyond capacity against a
  deliberately small admission bound: shedding must engage (``shed > 0``)
  and the accounting must close (``requests == completed + shed +
  wrong`` with ``wrong == 0``) — overload degrades throughput, never
  correctness.

Every leg verifies each answer against the precomputed expected value;
any wrong answer fails the gate.  Results land in ``BENCH_serving.json``
with the shard/worker topology nested under ``metadata.topology`` so the
telemetry differ refuses cross-topology comparisons.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]

or through pytest (asserts the speedup/correctness/coalescing gates)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py
"""

import argparse
import asyncio
import json
import time

from harness import finalize, result_path
from repro.serving import (
    CaramCluster,
    ShardedService,
    make_request_stream,
    run_closed_loop,
    run_open_loop,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.utils.rng import make_rng

RESULT_PATH = result_path("serving")

SEED = 20070            # ISPASS 2007
KEY_BITS = 22           # keyspace the stored population is drawn from
MISS_FRACTION = 0.1
ZIPF_EXPONENT = 1.0

#: Full-scale knobs (standalone runs) and the CI ``--quick`` profile.
SCALE = {
    "full": {
        "shards": 4,
        "index_bits": 8,
        "slots": 16,
        "records": 6000,
        "requests": 20000,
        "users": 400,
        "baseline_requests": 4000,
        "baseline_users": 200,
        "overload_requests": 6000,
        "overload_qps": 400_000.0,
    },
    "quick": {
        "shards": 2,
        "index_bits": 7,
        "slots": 16,
        "records": 1500,
        "requests": 6000,
        "users": 200,
        "baseline_requests": 1200,
        "baseline_users": 100,
        "overload_requests": 2000,
        "overload_qps": 400_000.0,
    },
}

MAX_BATCH_SIZE = 512
MAX_DELAY = 0.002
OVERLOAD_MAX_PENDING = 64

#: Acceptance gates (ISSUE 9): coalesced >= 5x the batch-size-1 baseline,
#: and batches must actually coalesce, not trickle through one key each.
MIN_SPEEDUP = 5.0
MIN_COALESCING_FACTOR = 4.0


def make_records(scale: dict):
    rng = make_rng(SEED)
    keys = rng.choice(1 << KEY_BITS, size=scale["records"], replace=False)
    return [(int(key), int(key) & 0xFFFF) for key in keys]


def build_cluster(scale: dict) -> CaramCluster:
    """A freshly built and loaded cluster (one per service leg — each
    service owns and closes its cluster)."""
    cluster = CaramCluster.build(
        shard_count=scale["shards"],
        index_bits=scale["index_bits"],
        slots=scale["slots"],
    )
    cluster.load(make_records(scale))
    return cluster


def bench_direct(cluster: CaramCluster, stream) -> dict:
    """The synchronous scatter/gather reference: correctness + ceiling."""
    results = cluster.search_batch(stream.keys)  # warm the mirrors
    start = time.perf_counter()
    results = cluster.search_batch(stream.keys)
    seconds = time.perf_counter() - start
    wrong = sum(
        1
        for result, expected in zip(results, stream.expected)
        if (result.data if result.hit else -1) != expected
    )
    return {
        "requests": len(stream),
        "wrong": wrong,
        "keys_per_sec": round(len(stream) / seconds),
    }


async def _run_legs(scale: dict, registry: MetricsRegistry) -> dict:
    records = make_records(scale)
    stored = [key for key, _ in records]
    values = dict(records)

    def stream_of(requests: int, seed_offset: int = 0):
        return make_request_stream(
            stored,
            values,
            requests=requests,
            zipf_exponent=ZIPF_EXPONENT,
            miss_fraction=MISS_FRACTION,
            seed=SEED + seed_offset,
            key_bits=KEY_BITS,
        )

    # Direct reference leg (its own cluster; closed right after).
    with build_cluster(scale) as direct_cluster:
        direct = bench_direct(direct_cluster, stream_of(scale["requests"]))

    # Baseline: coalescing disabled — every request is its own batch.
    async with ShardedService(
        build_cluster(scale), max_batch_size=1, max_delay=0.0
    ) as baseline_service:
        baseline_report = await run_closed_loop(
            baseline_service,
            stream_of(scale["baseline_requests"]),
            users=scale["baseline_users"],
        )

    # Coalesced: the serving tier as configured for production.
    coalesced_service = ShardedService(
        build_cluster(scale),
        max_batch_size=MAX_BATCH_SIZE,
        max_delay=MAX_DELAY,
    )
    async with coalesced_service:
        coalesced_report = await run_closed_loop(
            coalesced_service,
            stream_of(scale["requests"]),
            users=scale["users"],
        )
        coalesced_service.register_telemetry(registry)
        snapshot = registry.snapshot()

    # Overload: open loop far past capacity, tiny admission bound.
    async with ShardedService(
        build_cluster(scale),
        max_batch_size=MAX_BATCH_SIZE,
        max_delay=MAX_DELAY,
        max_pending=OVERLOAD_MAX_PENDING,
    ) as overload_service:
        overload_report = await run_open_loop(
            overload_service,
            stream_of(scale["overload_requests"], seed_offset=1),
            offered_qps=scale["overload_qps"],
        )

    speedup = (
        coalesced_report.sustained_qps / baseline_report.sustained_qps
        if baseline_report.sustained_qps
        else 0.0
    )
    return {
        "direct": direct,
        "baseline": baseline_report.as_dict(),
        "coalesced": coalesced_report.as_dict(),
        "overload": overload_report.as_dict(),
        "speedup_vs_baseline": round(speedup, 2),
        "telemetry_snapshot": snapshot,
    }


def run_benchmark(profile: str = "full") -> dict:
    scale = SCALE[profile]
    registry = MetricsRegistry()
    legs = asyncio.run(_run_legs(scale, registry))
    snapshot = legs.pop("telemetry_snapshot")
    result = {
        "profile": profile,
        "requests": scale["requests"],
        "users": scale["users"],
        "zipf_exponent": ZIPF_EXPONENT,
        "miss_fraction": MISS_FRACTION,
        **legs,
        "gates": {
            "min_speedup": MIN_SPEEDUP,
            "min_coalescing_factor": MIN_COALESCING_FACTOR,
        },
    }
    topology = {
        "shard_count": scale["shards"],
        "router": "ConsistentHashRouter",
        "front_end": "asyncio+thread-executor",
        "max_batch_size": MAX_BATCH_SIZE,
        "max_delay_s": MAX_DELAY,
    }
    return finalize(
        RESULT_PATH,
        result,
        telemetry={"metrics": snapshot},
        metadata={"profile": profile},
        topology=topology,
    )


def check_gates(result: dict) -> None:
    """The acceptance gates, shared by pytest and the CI smoke job."""
    assert result["direct"]["wrong"] == 0, result["direct"]
    for leg in ("baseline", "coalesced", "overload"):
        section = result[leg]
        assert section["wrong"] == 0, (leg, section)
        accounted = (
            section["completed"]
            + section["shed"]
            + section.get("failed", 0)
            + section["wrong"]
        )
        assert accounted == section["requests"], (leg, section)
    assert result["speedup_vs_baseline"] >= MIN_SPEEDUP, result
    assert (
        result["coalesced"]["coalescing_factor"] >= MIN_COALESCING_FACTOR
    ), result["coalesced"]
    # Overload must actually engage admission control — an open loop at
    # far-past-capacity rates with a 64-deep bound has to shed.
    assert result["overload"]["shed"] > 0, result["overload"]
    assert result["metadata"]["topology"]["shard_count"] >= 2, result


def test_serving_coalescing_speedup():
    check_gates(run_benchmark("full"))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced-scale profile for CI smoke runs",
    )
    parser.add_argument(
        "--check-gates",
        action="store_true",
        help="apply the acceptance gates after the run (CI smoke job)",
    )
    args = parser.parse_args()
    report = run_benchmark("quick" if args.quick else "full")
    print(json.dumps({k: v for k, v in report.items() if k != "telemetry"}, indent=2))
    if args.check_gates:
        check_gates(report)
        print("\nall serving gates passed")
    print(f"\nwrote {RESULT_PATH}")
