"""Throughput of the vectorized batch-lookup engine vs the scalar path.

The behavioral scalar search decodes every slot of every fetched row
through arbitrary-precision bit slicing — exact, but slow.  The batch
engine resolves the same lookups against the decoded NumPy mirror.  This
benchmark measures both over the same >=100k-key stream on a populated
slice, checks the answers are identical, and writes the keys/sec figures
to ``BENCH_batch_lookup.json`` at the repository root.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_batch_lookup.py

or through pytest (asserts the >=10x speedup)::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_lookup.py
"""

import json
import time

from harness import finalize, result_path
from repro.core.config import SliceConfig
from repro.core.index import IndexGenerator
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.hashing.bit_select import BitSelectHash
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import enabled_profiler
from repro.utils.rng import make_rng

RESULT_PATH = result_path("batch_lookup")

INDEX_BITS = 10          # 1024 buckets
KEY_BITS = 32
DATA_BITS = 16
SLOTS = 32               # the paper's IP designs store 32 keys per row
LOAD_FACTOR = 0.7
QUERY_COUNT = 120_000
HIT_FRACTION = 0.5
SEED = 1234


def build_slice() -> CARAMSlice:
    record_format = RecordFormat(key_bits=KEY_BITS, data_bits=DATA_BITS)
    aux_bits = 8
    config = SliceConfig(
        index_bits=INDEX_BITS,
        row_bits=aux_bits + SLOTS * record_format.slot_bits,
        record_format=record_format,
        aux_bits=aux_bits,
    )
    # The hash bits sit mid-key so random keys spread evenly.
    hash_function = BitSelectHash(
        KEY_BITS, tuple(range(12, 12 + INDEX_BITS))
    )
    return CARAMSlice(config, IndexGenerator(hash_function, config.rows))


def populate(slice_: CARAMSlice):
    rng = make_rng(SEED)
    target = int(slice_.config.capacity_records * LOAD_FACTOR)
    keys = []
    seen = set()
    while len(keys) < target:
        key = int(rng.integers(0, 1 << KEY_BITS))
        if key in seen:
            continue
        seen.add(key)
        try:
            slice_.insert(key, key & 0xFFFF)
        except Exception:
            continue
        keys.append(key)
    return keys


def make_queries(stored_keys):
    rng = make_rng(SEED + 1)
    hits = rng.choice(stored_keys, size=int(QUERY_COUNT * HIT_FRACTION))
    misses = rng.integers(0, 1 << KEY_BITS, size=QUERY_COUNT - hits.size)
    queries = [int(k) for k in hits] + [int(k) for k in misses]
    rng.shuffle(queries)
    return queries


def run_benchmark() -> dict:
    slice_ = build_slice()
    stored = populate(slice_)
    queries = make_queries(stored)

    with enabled_profiler() as profiler:
        slice_.stats.reset()
        start = time.perf_counter()
        scalar_results = [slice_.search(key) for key in queries]
        scalar_seconds = time.perf_counter() - start
        scalar_stats = slice_.stats

        # Cold batch: the first call pays the full mirror decode.
        slice_.stats = type(slice_.stats)()
        start = time.perf_counter()
        batch_results = slice_.search_batch(queries)
        batch_seconds = time.perf_counter() - start

        # Warm batch: the mirror is already decoded (the steady state).
        start = time.perf_counter()
        slice_.search_batch(queries)
        warm_seconds = time.perf_counter() - start

    assert batch_results == scalar_results, "batch/scalar result divergence"
    assert slice_.stats.lookups == 2 * scalar_stats.lookups
    assert slice_.stats.hits == 2 * scalar_stats.hits
    assert (
        slice_.stats.total_bucket_accesses
        == 2 * scalar_stats.total_bucket_accesses
    )

    # Mount telemetry after the run: providers are read lazily at
    # snapshot() time, and the slice's stats object was swapped between
    # the scalar and batch phases.
    registry = MetricsRegistry()
    slice_.register_telemetry(registry)

    result = {
        "keys": len(queries),
        "load_factor": round(slice_.load_factor, 3),
        "amal": round(scalar_stats.amal, 4),
        "hit_rate": round(scalar_stats.hit_rate, 4),
        "scalar_keys_per_sec": round(len(queries) / scalar_seconds),
        "batch_keys_per_sec": round(len(queries) / batch_seconds),
        "batch_warm_keys_per_sec": round(len(queries) / warm_seconds),
        "speedup": round(scalar_seconds / batch_seconds, 2),
        "speedup_warm": round(scalar_seconds / warm_seconds, 2),
    }
    return finalize(
        RESULT_PATH, result, registry=registry, profiler=profiler
    )


def test_batch_lookup_speedup():
    result = run_benchmark()
    assert result["keys"] >= 100_000
    assert result["speedup"] >= 10, result


if __name__ == "__main__":
    stats = run_benchmark()
    print(json.dumps(stats, indent=2))
    print(f"\nwrote {RESULT_PATH}")
