"""Throughput of the vectorized batch-lookup engines vs the scalar path.

The behavioral scalar search decodes every slot of every fetched row
through arbitrary-precision bit slicing — exact, but slow.  The batch
path resolves the same lookups against a decoded NumPy mirror, through
one of two match backends: the slot-major word mirror (``word``) or the
transposed bit-plane layout (``bitplane``, the DRAMA-style kernel).  This
benchmark measures the scalar path and each requested engine over two
>=100k-key streams on a slice at alpha=0.9 — a mixed stream (50% stored
keys) and uniform traffic (overwhelmingly misses, the regime where the
reach-driven probe walk dominates) — checks all answers are identical,
exercises a churn phase so the incremental re-decode shows up in the
telemetry block, and writes the keys/sec figures to
``BENCH_batch_lookup.json`` at the repository root.

Each engine is timed twice per stream: ``search_batch`` (columnar kernel
plus ``SearchResult`` materialization, the legacy representation) and
``search_batch_columnar`` (the struct-of-arrays result set alone —
parity against the scalar answers is checked *outside* the timed
region).  A final leg measures the multi-core ``parallel-bitplane``
engine at ``--workers`` workers; on hosts with fewer than two CPUs the
leg is recorded as skipped rather than reporting meaningless
oversubscribed numbers.  The report carries a ``metadata`` block
(engines, worker count, result representation) so the telemetry differ
refuses to compare runs with different configurations.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_batch_lookup.py [--engine=bitplane] [--workers=4]

or through pytest (asserts the >=10x speedup and engine parity)::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_lookup.py
"""

import argparse
import gc
import json
import os
import time

from harness import finalize, result_path
from repro.core.config import SliceConfig
from repro.core.engines import ENGINE_KINDS
from repro.core.index import IndexGenerator
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.hashing.bit_select import BitSelectHash
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import enabled_profiler
from repro.utils.rng import make_rng

RESULT_PATH = result_path("batch_lookup")

INDEX_BITS = 10          # 1024 buckets
KEY_BITS = 32
DATA_BITS = 16
SLOTS = 32               # the paper's IP designs store 32 keys per row
LOAD_FACTOR = 0.9        # the high-load regime the probe walk exists for
QUERY_COUNT = 120_000
HIT_FRACTION = 0.5
CHURN_ROWS = 12          # rows rewritten between the churn batches
SEED = 1234
DEFAULT_WORKERS = 4      # parallel-leg pool size (ISSUE target point)


def build_slice(engine: str = "word") -> CARAMSlice:
    record_format = RecordFormat(key_bits=KEY_BITS, data_bits=DATA_BITS)
    aux_bits = 8
    config = SliceConfig(
        index_bits=INDEX_BITS,
        row_bits=aux_bits + SLOTS * record_format.slot_bits,
        record_format=record_format,
        aux_bits=aux_bits,
    )
    # The hash bits sit mid-key so random keys spread evenly.
    hash_function = BitSelectHash(
        KEY_BITS, tuple(range(12, 12 + INDEX_BITS))
    )
    return CARAMSlice(
        config, IndexGenerator(hash_function, config.rows), engine=engine
    )


def populate(slice_: CARAMSlice):
    rng = make_rng(SEED)
    target = int(slice_.config.capacity_records * LOAD_FACTOR)
    keys = []
    seen = set()
    while len(keys) < target:
        key = int(rng.integers(0, 1 << KEY_BITS))
        if key in seen:
            continue
        seen.add(key)
        try:
            slice_.insert(key, key & 0xFFFF)
        except Exception:
            continue
        keys.append(key)
    return keys


def make_queries(stored_keys):
    rng = make_rng(SEED + 1)
    hits = rng.choice(stored_keys, size=int(QUERY_COUNT * HIT_FRACTION))
    misses = rng.integers(0, 1 << KEY_BITS, size=QUERY_COUNT - hits.size)
    queries = [int(k) for k in hits] + [int(k) for k in misses]
    rng.shuffle(queries)
    return queries


def make_uniform_queries():
    rng = make_rng(SEED + 3)
    return [int(k) for k in rng.integers(0, 1 << KEY_BITS, size=QUERY_COUNT)]


def bench_engine(engine, stored, streams, scalars):
    """Cold, warm, churn, and uniform batch timings for one backend."""
    mixed, uniform = streams["mixed"], streams["uniform"]
    slice_ = build_slice(engine)
    for key in stored:
        slice_.insert(key, key & 0xFFFF)

    # Cold batch: the first call pays the full mirror decode (and, for the
    # bit-plane engine, the full transpose).
    start = time.perf_counter()
    batch_results = slice_.search_batch(mixed)
    batch_seconds = time.perf_counter() - start

    # Warm batch: the mirror is already decoded (the steady state).  Best
    # of two timings — single-shot wall times on shared runners are noisy.
    warm_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        warm_results = slice_.search_batch(mixed)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)

    assert batch_results == scalars["mixed"]["results"], (
        f"{engine} batch/scalar result divergence"
    )
    assert warm_results == scalars["mixed"]["results"]

    # Columnar-only timing: the struct-of-arrays result set with no
    # SearchResult materialization — the representation the apps and the
    # parallel merge consume.  Parity is checked after the clock stops.
    columnar_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        columnar_set = slice_.search_batch_columnar(mixed)
        columnar_seconds = min(columnar_seconds, time.perf_counter() - start)
    assert columnar_set.results() == scalars["mixed"]["results"], (
        f"{engine} columnar/scalar result divergence"
    )

    # Uniform traffic: overwhelmingly misses, every one with a reach-driven
    # extended search — the probe walk's home regime.
    uniform_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        uniform_results = slice_.search_batch(uniform)
        uniform_seconds = min(uniform_seconds, time.perf_counter() - start)
    assert uniform_results == scalars["uniform"]["results"], (
        f"{engine} uniform batch/scalar result divergence"
    )

    uniform_columnar_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        uniform_set = slice_.search_batch_columnar(uniform)
        uniform_columnar_seconds = min(
            uniform_columnar_seconds, time.perf_counter() - start
        )
    assert uniform_set.results() == scalars["uniform"]["results"], (
        f"{engine} uniform columnar/scalar result divergence"
    )

    # Churn: rewrite a few rows, then batch again — the steady state of a
    # live table, where sync() re-decodes (and re-transposes) only the
    # dirty rows.  This is what puts mirror.incremental_decode on the
    # profile for every engine.
    rng = make_rng(SEED + 2)
    churn_victims = [
        stored[int(i)]
        for i in rng.integers(0, len(stored), size=CHURN_ROWS)
    ]
    start = time.perf_counter()
    for key in churn_victims:
        try:
            slice_.delete(key)
            slice_.insert(key, (key + 1) & 0xFFFF)
        except Exception:
            pass
    churn_results = slice_.search_batch(mixed)
    churn_seconds = time.perf_counter() - start
    assert sum(r.hit for r in churn_results) == sum(
        r.hit for r in scalars["mixed"]["results"]
    )

    mixed_scalar_s = scalars["mixed"]["seconds"]
    uniform_scalar_s = scalars["uniform"]["seconds"]
    return slice_, {
        "mixed": {
            "batch_keys_per_sec": round(len(mixed) / batch_seconds),
            "batch_warm_keys_per_sec": round(len(mixed) / warm_seconds),
            "batch_churn_keys_per_sec": round(len(mixed) / churn_seconds),
            "columnar_keys_per_sec": round(len(mixed) / columnar_seconds),
            "speedup": round(mixed_scalar_s / batch_seconds, 2),
            "speedup_warm": round(mixed_scalar_s / warm_seconds, 2),
            "speedup_columnar": round(mixed_scalar_s / columnar_seconds, 2),
        },
        "uniform": {
            "batch_keys_per_sec": round(len(uniform) / uniform_seconds),
            "columnar_keys_per_sec": round(
                len(uniform) / uniform_columnar_seconds
            ),
            "speedup": round(uniform_scalar_s / uniform_seconds, 2),
            "speedup_columnar": round(
                uniform_scalar_s / uniform_columnar_seconds, 2
            ),
        },
    }


def bench_parallel(stored, streams, scalars, workers, baseline_section):
    """Multi-core fan-out leg; records a skip on single-CPU hosts."""
    cpu_count = os.cpu_count() or 1
    if cpu_count < 2 or workers < 2:
        return {
            "skipped": True,
            "reason": (
                f"parallel leg needs >=2 CPUs and >=2 workers "
                f"(host has {cpu_count}, requested {workers})"
            ),
        }
    mixed, uniform = streams["mixed"], streams["uniform"]
    slice_ = build_slice(f"parallel-bitplane:{workers}")
    for key in stored:
        slice_.insert(key, key & 0xFFFF)
    slice_.search_batch_columnar(mixed[:4096])  # decode + fork the pool
    try:
        mixed_seconds = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            mixed_set = slice_.search_batch_columnar(mixed)
            mixed_seconds = min(mixed_seconds, time.perf_counter() - start)
        assert mixed_set.results() == scalars["mixed"]["results"], (
            "parallel mixed/scalar result divergence"
        )
        uniform_seconds = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            uniform_set = slice_.search_batch_columnar(uniform)
            uniform_seconds = min(
                uniform_seconds, time.perf_counter() - start
            )
        assert uniform_set.results() == scalars["uniform"]["results"], (
            "parallel uniform/scalar result divergence"
        )
    finally:
        slice_._close_batch_engine()
    single = baseline_section["uniform"]["columnar_keys_per_sec"]
    uniform_kps = len(uniform) / uniform_seconds
    return {
        "workers": workers,
        "mixed_columnar_keys_per_sec": round(len(mixed) / mixed_seconds),
        "uniform_columnar_keys_per_sec": round(uniform_kps),
        "uniform_speedup_vs_single_core": round(uniform_kps / single, 2),
    }


def run_benchmark(engines=ENGINE_KINDS, workers=DEFAULT_WORKERS) -> dict:
    reference = build_slice()
    stored = populate(reference)
    streams = {
        "mixed": make_queries(stored),
        "uniform": make_uniform_queries(),
    }

    # The retained scalar-result lists put ~10^5 objects on the heap; with
    # the cyclic collector enabled, gen-2 scans during the timed batch
    # loops dominate the measurement (4x on the allocation-heavy mixed
    # stream).  Nothing here creates cycles, so pause collection while
    # timing, exactly as timeit does.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return _run_benchmark(reference, stored, streams, engines, workers)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()


def _run_benchmark(reference, stored, streams, engines, workers) -> dict:
    with enabled_profiler() as profiler:
        scalars = {}
        for name, queries in streams.items():
            reference.stats.reset()
            start = time.perf_counter()
            results = [reference.search(key) for key in queries]
            seconds = time.perf_counter() - start
            scalars[name] = {
                "results": results,
                "seconds": seconds,
                "amal": reference.stats.amal,
                "hit_rate": reference.stats.hit_rate,
            }

        engine_sections = {}
        last_slice = None
        for engine in engines:
            last_slice, section = bench_engine(
                engine, stored, streams, scalars
            )
            engine_sections[engine] = section

        baseline_section = engine_sections.get(
            "bitplane", engine_sections[engines[-1]]
        )
        parallel_section = bench_parallel(
            stored, streams, scalars, workers, baseline_section
        )

    # Mount telemetry after the run: providers are read lazily at
    # snapshot() time.  The registry reports the last engine measured
    # (the one a single-engine CI gate asked for).
    registry = MetricsRegistry()
    last_slice.register_telemetry(registry)

    result = {
        "keys": len(streams["mixed"]),
        "load_factor": round(reference.load_factor, 3),
        "amal": round(scalars["mixed"]["amal"], 4),
        "hit_rate": round(scalars["mixed"]["hit_rate"], 4),
        "amal_uniform": round(scalars["uniform"]["amal"], 4),
        "scalar_keys_per_sec": round(
            len(streams["mixed"]) / scalars["mixed"]["seconds"]
        ),
        "scalar_uniform_keys_per_sec": round(
            len(streams["uniform"]) / scalars["uniform"]["seconds"]
        ),
        "engines": engine_sections,
        "parallel": parallel_section,
    }
    metadata = {
        "engines": list(engines),
        "worker_count": workers,
        "result_representation": "columnar",
    }
    return finalize(
        RESULT_PATH,
        result,
        registry=registry,
        profiler=profiler,
        metadata=metadata,
    )


def test_batch_lookup_speedup():
    result = run_benchmark()
    assert result["keys"] >= 100_000
    for engine, section in result["engines"].items():
        assert section["mixed"]["speedup"] >= 10, (engine, result)
        assert section["uniform"]["speedup"] >= 10, (engine, result)
        # The columnar set skips ~10^5 SearchResult allocations, so it
        # must not be slower than the materializing warm batch (10% slack
        # for shared-runner noise).
        assert (
            section["mixed"]["columnar_keys_per_sec"]
            >= 0.9 * section["mixed"]["batch_warm_keys_per_sec"]
        ), (engine, result)
    parallel = result["parallel"]
    if not parallel.get("skipped"):
        assert parallel["uniform_columnar_keys_per_sec"] > 0, result
    assert result["metadata"]["result_representation"] == "columnar"
    phases = result["telemetry"]["phases"]
    assert "mirror.incremental_decode" in phases
    assert "batch.bitplane_match" in phases


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine",
        choices=list(ENGINE_KINDS) + ["both"],
        default="both",
        help="match backend(s) to measure (default: both)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        help="parallel-leg worker count (default: 4; leg is skipped on "
        "hosts with fewer than two CPUs)",
    )
    args = parser.parse_args()
    engines = ENGINE_KINDS if args.engine == "both" else (args.engine,)
    stats = run_benchmark(engines, workers=args.workers)
    print(json.dumps(stats, indent=2))
    print(f"\nwrote {RESULT_PATH}")
