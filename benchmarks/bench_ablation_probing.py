"""Ablation — overflow policy: linear probing vs double hashing vs
quadratic probing (Section 2.1's two options, plus one more).

Runs on the behavioral slice so the policies' actual probe sequences (and
their interaction with the reach field) are exercised, not just modeled.
"""

import pytest

from repro.core.config import SliceConfig
from repro.core.index import make_index_generator
from repro.core.probing import DoubleHashing, LinearProbing, QuadraticProbing
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.experiments.reporting import format_table
from repro.hashing.base import ModuloHash
from repro.hashing.universal import MultiplicativeHash
from repro.utils.rng import make_rng

INDEX_BITS = 7
ROWS = 1 << INDEX_BITS
SLOTS = 8
LOAD_FACTOR = 0.85


def build_slice(policy):
    record_format = RecordFormat(key_bits=24, data_bits=8)
    config = SliceConfig(
        index_bits=INDEX_BITS,
        row_bits=8 + SLOTS * record_format.slot_bits,
        record_format=record_format,
        slots_override=SLOTS,
    )
    return CARAMSlice(
        config, make_index_generator(ModuloHash(ROWS)), probing=policy
    )


def clustered_keys(count, seed):
    """Keys with clustered home buckets (where probing policy matters)."""
    rng = make_rng(seed)
    # Half the mass on a quarter of the buckets.
    hot = rng.integers(0, ROWS // 4, size=count // 2)
    cold = rng.integers(0, ROWS, size=count - count // 2)
    buckets = list(hot) + list(cold)
    keys = []
    seen = set()
    for i, bucket in enumerate(buckets):
        key = int(bucket) + ROWS * (i + 1)
        if key not in seen:
            seen.add(key)
            keys.append(key)
    return keys


POLICIES = [
    ("linear", lambda: LinearProbing()),
    ("double-hashing", lambda: DoubleHashing(MultiplicativeHash(ROWS))),
    ("quadratic", lambda: QuadraticProbing()),
]


def run_policy(policy):
    sl = build_slice(policy)
    keys = clustered_keys(int(ROWS * SLOTS * LOAD_FACTOR), seed=13)
    for key in keys:
        sl.insert(key, data=key % 251)
    sl.stats.reset()
    for key in keys:
        result = sl.search(key)
        assert result.hit and result.data == key % 251
    return {
        "amal": sl.stats.amal,
        "avg_insert_probes": sl.stats.average_insert_probes,
    }


@pytest.mark.parametrize("name,factory", POLICIES)
def test_probing_policy(benchmark, name, factory):
    stats = benchmark.pedantic(
        run_policy, args=(factory(),), rounds=1, iterations=1
    )
    assert stats["amal"] >= 1.0


def test_policies_all_correct_and_comparable():
    rows = []
    for name, factory in POLICIES:
        stats = run_policy(factory())
        rows.append(
            {
                "policy": name,
                "AMAL": round(stats["amal"], 4),
            }
        )
    print("\n" + format_table(rows))
    amals = [row["AMAL"] for row in rows]
    # All policies stay in a sane band at alpha 0.85 on a clustered
    # workload; none should be catastrophically worse.
    assert max(amals) < 3.0
    assert min(amals) >= 1.0
