"""Ablation — access-pattern skew and frequency-sorted placement.

Section 4.1: "Although the skewed access pattern we use is an artifact, it
demonstrates that access patterns can be taken into account in CA-RAM
design to improve the lookup latency."

Sweeps the Zipf exponent of the access pattern and measures how much the
frequency-sorted placement (AMALs) improves over uniform placement (AMALu)
on IP design A.
"""

import numpy as np
import pytest

from repro.apps.iplookup.designs import IP_DESIGNS
from repro.apps.iplookup.evaluate import evaluate_ip_design
from repro.apps.iplookup.mapping import map_prefixes_to_buckets
from repro.experiments.reporting import format_table


@pytest.fixture(scope="module")
def mapping(bgp_table):
    return map_prefixes_to_buckets(
        bgp_table, IP_DESIGNS["A"].effective_index_bits
    )


def test_skew_sweep(benchmark, bgp_table, mapping):
    def run():
        rows = []
        for exponent in (0.0, 0.5, 0.9, 1.2):
            result = evaluate_ip_design(
                IP_DESIGNS["A"], bgp_table, mapping=mapping,
                skew_exponent=exponent, seed=7,
            )
            rows.append(
                {
                    "zipf_exponent": exponent,
                    "AMALu": round(result.amal_uniform, 4),
                    "AMALs": round(result.amal_skewed, 4),
                    "improvement_pct": round(
                        100
                        * (result.amal_uniform - result.amal_skewed)
                        / (result.amal_uniform - 1.0),
                        1,
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(rows))

    # AMALu is placement-order invariant: identical across the sweep.
    amalu = {row["AMALu"] for row in rows}
    assert len(amalu) == 1

    # Sorted placement never hurts, and helps more as skew grows.
    for row in rows:
        assert row["AMALs"] <= row["AMALu"] + 1e-9
    gains = [row["AMALu"] - row["AMALs"] for row in rows]
    assert gains[-1] >= gains[1] >= gains[0] - 1e-9


def test_uniform_access_no_gain(bgp_table, mapping):
    """With truly uniform access (exponent 0), sorting by frequency is
    placebo: AMALs ~ AMALu."""
    result = evaluate_ip_design(
        IP_DESIGNS["A"], bgp_table, mapping=mapping,
        skew_exponent=0.0, seed=7,
    )
    assert result.amal_skewed == pytest.approx(result.amal_uniform, abs=0.02)
