"""Ablation — power-management policies (Sections 3.2 / 5.2).

Compares ALWAYS_ON / BANK_SELECT / DROWSY background-power handling across
lookup rates on a design-D-shaped subsystem, quantifying the paper's claim
that CA-RAM's single-row access pattern is what makes bank-level gating
effective ("a memory access is made on a single row most of the time").
"""

import pytest

from repro.core.config import Arrangement, SliceConfig
from repro.core.record import RecordFormat
from repro.core.subsystem import SliceGroup
from repro.cost.powermgmt import PowerPolicy, SubsystemPowerModel
from repro.experiments.reporting import format_table
from repro.hashing.base import ModuloHash
from repro.memory.timing import DRAM_TIMING


@pytest.fixture(scope="module")
def model():
    config = SliceConfig(
        index_bits=12, row_bits=4096,
        record_format=RecordFormat(key_bits=32, data_bits=16, ternary=True),
        timing=DRAM_TIMING,
    )
    group = SliceGroup(
        config, 8, Arrangement.VERTICAL,
        ModuloHash(config.rows * 8), name="ip",
    )
    return SubsystemPowerModel([group])


def test_policy_rate_sweep(benchmark, model):
    def run():
        rows = []
        for rate_mhz in (0, 10, 50, 143, 260):
            row = {"lookup_rate_M/s": rate_mhz}
            for policy in PowerPolicy:
                breakdown = model.breakdown(policy, rate_mhz * 1e6)
                row[policy.value + "_W"] = round(breakdown.total_w, 4)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table(rows))

    idle = rows[0]
    # When idle, gating saves real power; drowsy saves the most.
    assert idle["bank-select_W"] < idle["always-on_W"]
    assert idle["drowsy_W"] < idle["bank-select_W"]

    # At any rate the policy ordering is monotone.
    for row in rows:
        assert row["drowsy_W"] <= row["bank-select_W"] <= row["always-on_W"] + 1e-9


def test_gating_saving_shrinks_with_load(model):
    """The busier the subsystem, the less there is to gate."""
    def saving(rate):
        on = model.breakdown(PowerPolicy.ALWAYS_ON, rate).total_w
        gated = model.breakdown(PowerPolicy.BANK_SELECT, rate).total_w
        return (on - gated) / on

    assert saving(0.0) > saving(100e6) > saving(1e9) - 1e-9
