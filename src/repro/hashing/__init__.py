"""Hashing substrate: hash functions, software hash tables, and the
vectorized bucket-occupancy / AMAL analytics used by the application studies.
"""

from repro.hashing.base import HashFunction, ModuloHash
from repro.hashing.bit_select import BitSelectHash, greedy_bit_selection
from repro.hashing.djb import DJBHash, djb2_bytes
from repro.hashing.universal import FNV1aHash, MultiplicativeHash, TabulationHash
from repro.hashing.table import ChainedHashTable, OpenAddressingTable
from repro.hashing.analysis import (
    OccupancyReport,
    ProbeResult,
    amal,
    bucket_occupancy,
    occupancy_report,
    simulate_linear_probing,
)

__all__ = [
    "HashFunction",
    "ModuloHash",
    "BitSelectHash",
    "greedy_bit_selection",
    "DJBHash",
    "djb2_bytes",
    "FNV1aHash",
    "MultiplicativeHash",
    "TabulationHash",
    "ChainedHashTable",
    "OpenAddressingTable",
    "OccupancyReport",
    "ProbeResult",
    "amal",
    "bucket_occupancy",
    "occupancy_report",
    "simulate_linear_probing",
]
