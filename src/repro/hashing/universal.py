"""Alternative hash families for the hash-function ablation study.

Section 4.3 concludes that "the cost and performance of CA-RAM is contingent
upon the effectiveness of the hash function".  The ablation bench quantifies
that by swapping the paper's two choices (bit selection, DJB) against the
classic families implemented here: FNV-1a, Knuth's multiplicative method,
and tabulation hashing (3-independent, the strongest of the set).

All three accept either integer keys or byte strings; integers are hashed
over their big-endian byte representation so the families are directly
comparable on both application workloads.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import HashFunction
from repro.utils.rng import SeedLike, make_rng

BytesLike = Union[bytes, bytearray, str]
Key = Union[int, BytesLike]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_KNUTH_MULTIPLIER = 0x9E3779B97F4A7C15  # 2**64 / golden ratio


def _key_bytes(key: Key) -> bytes:
    if isinstance(key, int):
        length = max(1, (key.bit_length() + 7) // 8)
        return key.to_bytes(length, "big")
    if isinstance(key, str):
        return key.encode("ascii")
    return bytes(key)


def fnv1a_64(key: Key) -> int:
    """64-bit FNV-1a hash of a key's byte representation."""
    h = _FNV_OFFSET
    for byte in _key_bytes(key):
        h ^= byte
        h = (h * _FNV_PRIME) & 0xFFFF_FFFF_FFFF_FFFF
    return h


class FNV1aHash(HashFunction):
    """FNV-1a reduced modulo the bucket count."""

    def __call__(self, key: Key) -> int:
        return fnv1a_64(key) % self.bucket_count

    def rebucketed(self, bucket_count: int) -> "FNV1aHash":
        return FNV1aHash(bucket_count)


class MultiplicativeHash(HashFunction):
    """Knuth's multiplicative hashing for integer keys.

    ``h(k) = ((k * A) mod 2**64) >> (64 - R)`` — takes the high bits of a
    golden-ratio multiply.  Requires a power-of-two bucket count.
    """

    def __init__(self, bucket_count: int, multiplier: int = _KNUTH_MULTIPLIER) -> None:
        if bucket_count & (bucket_count - 1):
            raise ConfigurationError(
                f"MultiplicativeHash needs a power-of-two bucket count, "
                f"got {bucket_count}"
            )
        super().__init__(bucket_count)
        if multiplier % 2 == 0:
            raise ConfigurationError("multiplier must be odd")
        self._multiplier = multiplier
        self._shift = 64 - self.index_bits

    def __call__(self, key: int) -> int:
        product = (int(key) * self._multiplier) & 0xFFFF_FFFF_FFFF_FFFF
        return product >> self._shift

    def index_many(self, keys: Sequence[int]) -> np.ndarray:
        arr = np.asarray(keys, dtype=np.uint64)
        product = arr * np.uint64(self._multiplier)  # wraps mod 2**64
        return (product >> np.uint64(self._shift)).astype(np.int64)

    def rebucketed(self, bucket_count: int) -> "MultiplicativeHash":
        return MultiplicativeHash(bucket_count, self._multiplier)


class TabulationHash(HashFunction):
    """Simple tabulation hashing over the key's byte representation.

    One random 64-bit table per byte position (up to ``max_key_bytes``),
    XORed together.  3-independent, a strong reference point for "how good
    can a practical hash get" in the ablation.
    """

    def __init__(
        self,
        bucket_count: int,
        max_key_bytes: int = 16,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(bucket_count)
        if max_key_bytes <= 0:
            raise ConfigurationError(
                f"max_key_bytes must be positive: {max_key_bytes}"
            )
        self._max_key_bytes = max_key_bytes
        self._seed = seed
        rng = make_rng(seed)
        self._tables = rng.integers(
            0, 2**63, size=(max_key_bytes, 256), dtype=np.int64
        ).astype(np.uint64)

    def __call__(self, key: Key) -> int:
        data = _key_bytes(key)
        if len(data) > self._max_key_bytes:
            raise ConfigurationError(
                f"key of {len(data)} bytes exceeds max_key_bytes "
                f"{self._max_key_bytes}"
            )
        h = np.uint64(len(data))  # mix in the length to separate prefixes
        for position, byte in enumerate(data):
            h ^= self._tables[position, byte]
        return int(h) % self.bucket_count

    def rebucketed(self, bucket_count: int) -> "TabulationHash":
        return TabulationHash(bucket_count, self._max_key_bytes, self._seed)


__all__ = [
    "fnv1a_64",
    "FNV1aHash",
    "MultiplicativeHash",
    "TabulationHash",
]
