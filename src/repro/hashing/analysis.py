"""Vectorized bucket-occupancy analytics and the linear-probing spill model.

This module computes everything Tables 2 and 3 of the paper report for a
hash configuration: load factor, the percentage of overflowing buckets, the
percentage of spilled records, and AMAL (average number of memory accesses
per lookup), under both uniform and weighted (skewed) access patterns.

The spill model reproduces the paper's policy: "We use a simple linear
probing technique as described in Section 2.1 to deal with bucket
overflows."  Records are inserted in a given arrival order; a record whose
home bucket is full walks forward (with wraparound) to the next bucket with
a free slot.  The implementation uses the classic bucket-sweep equivalence:
processing buckets left to right, each bucket's final occupants are the
``slots_per_bucket`` earliest-arriving records among its own home records
plus the carry-over from earlier buckets.  Wraparound is handled exactly by
the cycle lemma: starting the sweep just past the bucket with the minimum
cumulative surplus (home load minus capacity), no spill crosses the sweep's
start boundary in the true circular process, so one rotated pass suffices.
The property-based test suite checks this model record-for-record against
a brute-force sequential-insertion reference.

AMALs (skewed-access AMAL) follows Section 4.1: records are *inserted* in
priority order (most frequently accessed first), so hot records land in
their home bucket, and the AMAL average is weighted by access frequency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import CapacityError, ConfigurationError


def bucket_occupancy(indices: Sequence[int], bucket_count: int) -> np.ndarray:
    """Count records per bucket.

    Args:
        indices: home bucket index per record.
        bucket_count: number of buckets ``M``.

    Returns:
        int64 array of length ``bucket_count``.
    """
    arr = np.asarray(indices, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= bucket_count):
        raise ConfigurationError("bucket index out of range")
    return np.bincount(arr, minlength=bucket_count)


@dataclass
class ProbeResult:
    """Placement outcome of the linear-probing spill model.

    Attributes:
        displacements: per-record probe distance from its home bucket
            (0 = stored in the home bucket), in input record order.
        placed_bucket: per-record final bucket.
        occupancy: final records per bucket (after spilling).
        home_occupancy: records hashed to each bucket (before spilling).
        reach: per-bucket maximum displacement of records homed there — the
            value the paper's auxiliary field would store to bound extended
            searches.
        slots_per_bucket: bucket capacity ``S`` used for the simulation.
    """

    displacements: np.ndarray
    placed_bucket: np.ndarray
    occupancy: np.ndarray
    home_occupancy: np.ndarray
    reach: np.ndarray
    slots_per_bucket: int

    @property
    def record_count(self) -> int:
        return int(self.displacements.size)

    @property
    def bucket_count(self) -> int:
        return int(self.occupancy.size)

    @property
    def spilled_count(self) -> int:
        """Records stored outside their home bucket."""
        return int((self.displacements > 0).sum())

    @property
    def spilled_fraction(self) -> float:
        return self.spilled_count / self.record_count if self.record_count else 0.0

    @property
    def overflowing_bucket_count(self) -> int:
        """Buckets whose home population exceeds the bucket capacity."""
        return int((self.home_occupancy > self.slots_per_bucket).sum())

    @property
    def overflowing_bucket_fraction(self) -> float:
        return self.overflowing_bucket_count / self.bucket_count

    @property
    def load_factor(self) -> float:
        """The paper's ``alpha = N / (M * S)``."""
        return self.record_count / (self.bucket_count * self.slots_per_bucket)


def simulate_linear_probing(
    home: Sequence[int],
    bucket_count: int,
    slots_per_bucket: int,
    arrival_order: Optional[Sequence[int]] = None,
) -> ProbeResult:
    """Place records into buckets with FCFS linear probing.

    Args:
        home: home bucket per record (``h(key)``).
        bucket_count: number of buckets ``M``.
        slots_per_bucket: bucket capacity ``S``.
        arrival_order: insertion priority per record; lower values are
            inserted earlier.  Defaults to input order.  AMALs passes the
            access-frequency rank here so hot records are placed first.

    Returns:
        A :class:`ProbeResult` with per-record displacements.

    Raises:
        CapacityError: if the records exceed total capacity ``M * S``.
    """
    home_arr = np.asarray(home, dtype=np.int64)
    record_count = int(home_arr.size)
    if record_count and (home_arr.min() < 0 or home_arr.max() >= bucket_count):
        raise ConfigurationError("home bucket index out of range")
    if slots_per_bucket <= 0:
        raise ConfigurationError(
            f"slots_per_bucket must be positive: {slots_per_bucket}"
        )
    if record_count > bucket_count * slots_per_bucket:
        raise CapacityError(
            f"{record_count} records exceed capacity "
            f"{bucket_count} x {slots_per_bucket}"
        )

    if arrival_order is None:
        arrival = np.arange(record_count, dtype=np.int64)
    else:
        arrival = np.asarray(arrival_order, dtype=np.int64)
        if arrival.shape != home_arr.shape:
            raise ConfigurationError("arrival_order must match home length")

    # Sort record ids by (home bucket, arrival) so each bucket's home group
    # is contiguous and already arrival-ordered.
    order = np.lexsort((arrival, home_arr))
    sorted_home = home_arr[order]
    group_starts = np.searchsorted(sorted_home, np.arange(bucket_count), side="left")
    group_ends = np.searchsorted(sorted_home, np.arange(bucket_count), side="right")

    displacements = np.full(record_count, -1, dtype=np.int64)
    placed_bucket = np.full(record_count, -1, dtype=np.int64)
    occupancy = np.zeros(bucket_count, dtype=np.int64)

    home_occ = bucket_occupancy(home_arr, bucket_count)
    # Cycle lemma: no spill crosses the boundary just past the bucket with
    # the minimum cumulative surplus, so a single sweep starting there is
    # exact even with wraparound.
    surplus = np.cumsum(home_occ - slots_per_bucket)
    start_bucket = (int(surplus.argmin()) + 1) % bucket_count

    # Min-heap of pending spilled records: (arrival, record_id).
    pending: list = []

    def place(record_id: int, bucket: int) -> None:
        home_bucket = int(home_arr[record_id])
        displacements[record_id] = (bucket - home_bucket) % bucket_count
        placed_bucket[record_id] = bucket

    for offset in range(bucket_count):
        bucket = (start_bucket + offset) % bucket_count
        lo, hi = int(group_starts[bucket]), int(group_ends[bucket])
        group = order[lo:hi]
        free = slots_per_bucket
        if not pending:
            # No carried spills: the bucket's earliest home arrivals stay
            # put (displacement 0) — assign them as one array operation.
            # This branch covers almost every bucket at practical load
            # factors, which is what makes bulk placement cheap.
            take = min(free, group.size)
            taken = group[:take]
            displacements[taken] = 0
            placed_bucket[taken] = bucket
            occupancy[bucket] = take
            for record_id in group[take:]:
                heapq.heappush(
                    pending, (int(arrival[record_id]), int(record_id))
                )
            continue
        # Merge home arrivals with pending spills by arrival time.
        for record_id in group:
            heapq.heappush(pending, (int(arrival[record_id]), int(record_id)))
        placed_here = 0
        while placed_here < free and pending:
            _, record_id = heapq.heappop(pending)
            place(record_id, bucket)
            placed_here += 1
        occupancy[bucket] = placed_here

    if pending:  # pragma: no cover - guarded by the capacity check above
        raise CapacityError("records left unplaced after a full sweep")
    reach = np.zeros(bucket_count, dtype=np.int64)
    if record_count:
        np.maximum.at(reach, home_arr, displacements)

    return ProbeResult(
        displacements=displacements,
        placed_bucket=placed_bucket,
        occupancy=occupancy,
        home_occupancy=home_occ,
        reach=reach,
        slots_per_bucket=slots_per_bucket,
    )


def amal(
    displacements: Sequence[int],
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Average memory accesses per (successful) lookup.

    A record at displacement ``d`` costs ``1 + d`` bucket accesses under
    linear probing.  ``weights`` turns the plain mean (the paper's AMALu)
    into a frequency-weighted mean (AMALs).
    """
    disp = np.asarray(displacements, dtype=np.float64)
    if disp.size == 0:
        return 0.0
    accesses = 1.0 + disp
    if weights is None:
        return float(accesses.mean())
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != disp.shape:
        raise ConfigurationError("weights must match displacements length")
    total = w.sum()
    if total <= 0:
        raise ConfigurationError("weights must sum to a positive value")
    return float((accesses * w).sum() / total)


def unsuccessful_amal(result: ProbeResult) -> float:
    """Average accesses for a miss: 1 + the home bucket's reach.

    A lookup that finds no match must scan the home bucket plus however far
    the auxiliary field says overflows were spilled.
    """
    return float(1.0 + result.reach.mean())


@dataclass
class OccupancyReport:
    """Everything Tables 2/3 report for one hash configuration.

    Attributes mirror the table columns; ``histogram`` is the Figure 7 data
    (number of buckets holding each record count, before spilling).
    """

    bucket_count: int
    slots_per_bucket: int
    record_count: int
    load_factor: float
    overflowing_bucket_fraction: float
    spilled_fraction: float
    amal_uniform: float
    amal_weighted: Optional[float]
    unsuccessful_amal: float
    histogram: np.ndarray
    probe: ProbeResult

    def histogram_pairs(self) -> list:
        """(records_in_bucket, bucket_count) pairs with non-zero counts."""
        return [
            (occupancy, int(count))
            for occupancy, count in enumerate(self.histogram)
            if count
        ]


def occupancy_report(
    home: Sequence[int],
    bucket_count: int,
    slots_per_bucket: int,
    weights: Optional[Sequence[float]] = None,
    weighted_arrival: Optional[Sequence[int]] = None,
) -> OccupancyReport:
    """Run the full Table-2/3 analysis for one configuration.

    When ``weights`` is given, records are inserted hottest-first (the
    paper's frequency-sorted placement) and ``amal_weighted`` is computed;
    ``amal_uniform`` always uses input-order insertion and a plain mean.
    ``weighted_arrival`` overrides the weighted run's insertion order — the
    IP study sorts by (prefix length, frequency), not frequency alone.
    """
    home_arr = np.asarray(home, dtype=np.int64)
    uniform = simulate_linear_probing(home_arr, bucket_count, slots_per_bucket)
    amal_u = amal(uniform.displacements)

    amal_w: Optional[float] = None
    report_probe = uniform
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != home_arr.shape:
            raise ConfigurationError("weights must match record count")
        if weighted_arrival is not None:
            arrival = np.asarray(weighted_arrival, dtype=np.int64)
            if arrival.shape != home_arr.shape:
                raise ConfigurationError(
                    "weighted_arrival must match record count"
                )
        else:
            # Hot records first: arrival rank is the descending-weight order.
            arrival = np.empty(home_arr.size, dtype=np.int64)
            arrival[np.argsort(-w, kind="stable")] = np.arange(home_arr.size)
        skewed = simulate_linear_probing(
            home_arr, bucket_count, slots_per_bucket, arrival_order=arrival
        )
        amal_w = amal(skewed.displacements, weights=w)

    home_occ = uniform.home_occupancy
    histogram = np.bincount(home_occ)

    return OccupancyReport(
        bucket_count=bucket_count,
        slots_per_bucket=slots_per_bucket,
        record_count=int(home_arr.size),
        load_factor=uniform.load_factor,
        overflowing_bucket_fraction=uniform.overflowing_bucket_fraction,
        spilled_fraction=uniform.spilled_fraction,
        amal_uniform=amal_u,
        amal_weighted=amal_w,
        unsuccessful_amal=unsuccessful_amal(uniform),
        histogram=histogram,
        probe=report_probe,
    )


__all__ = [
    "bucket_occupancy",
    "ProbeResult",
    "simulate_linear_probing",
    "amal",
    "unsuccessful_amal",
    "OccupancyReport",
    "occupancy_report",
]
