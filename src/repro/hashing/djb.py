"""The DJB string hash used by the trigram application.

Section 4.2: "we use the DJB hash function, which is an efficient string
hash function.  The function looks like:
``hash(i) = [hash(i-1) << 5] + hash(i-1) + str[i]``.  This method has been
also used in the software hashing technique in Sphinx."

This module provides the scalar reference (:func:`djb2_bytes`), the
:class:`DJBHash` bucket-mapping wrapper, and a vectorized kernel that hashes
millions of variable-length strings via a padded byte matrix — the full-scale
trigram database has 5.39M entries, far too many for a per-string Python
loop in the analytics path.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import HashFunction

DJB_SEED = 5381
_MASK32 = np.uint64(0xFFFF_FFFF)

BytesLike = Union[bytes, bytearray, str]


def _as_bytes(key: BytesLike) -> bytes:
    if isinstance(key, str):
        return key.encode("ascii")
    return bytes(key)


def djb2_bytes(key: BytesLike, seed: int = DJB_SEED) -> int:
    """Scalar DJB (a.k.a. djb2) hash of a byte string, truncated to 32 bits.

    >>> djb2_bytes(b"") == DJB_SEED
    True
    """
    h = seed
    for byte in _as_bytes(key):
        h = ((h << 5) + h + byte) & 0xFFFF_FFFF
    return h


def pack_strings(keys: Sequence[BytesLike], max_length: int) -> np.ndarray:
    """Pack variable-length strings into a zero-padded (N, max_length) byte
    matrix, with an extra last column holding each string's length.

    The padded layout lets :func:`djb2_matrix` process one character column
    per iteration across all strings at once.
    """
    count = len(keys)
    packed = np.zeros((count, max_length + 1), dtype=np.uint8)
    for i, key in enumerate(keys):
        data = _as_bytes(key)
        if len(data) > max_length:
            raise ConfigurationError(
                f"key of length {len(data)} exceeds max_length {max_length}"
            )
        packed[i, : len(data)] = np.frombuffer(data, dtype=np.uint8)
        packed[i, max_length] = len(data)
    return packed


def djb2_matrix(packed: np.ndarray, seed: int = DJB_SEED) -> np.ndarray:
    """Vectorized DJB over a packed byte matrix from :func:`pack_strings`.

    Strings shorter than the matrix width stop updating once their length is
    exhausted, so the result equals :func:`djb2_bytes` per row.
    """
    if packed.ndim != 2 or packed.shape[1] < 2:
        raise ConfigurationError("packed must be a (N, max_length+1) matrix")
    max_length = packed.shape[1] - 1
    lengths = packed[:, max_length].astype(np.uint64)
    hashes = np.full(packed.shape[0], seed, dtype=np.uint64)
    for col in range(max_length):
        active = lengths > col
        byte = packed[:, col].astype(np.uint64)
        updated = ((hashes << np.uint64(5)) + hashes + byte) & _MASK32
        hashes = np.where(active, updated, hashes)
    return hashes


class DJBHash(HashFunction):
    """DJB string hash reduced to a bucket index.

    The reduction is modulo when ``bucket_count`` is not a power of two, and
    a low-bit mask otherwise (what a hardware index generator would do).
    """

    def __init__(self, bucket_count: int, seed: int = DJB_SEED) -> None:
        super().__init__(bucket_count)
        self._seed = seed
        self._mask = (
            bucket_count - 1 if bucket_count & (bucket_count - 1) == 0 else None
        )

    @property
    def seed(self) -> int:
        return self._seed

    def _reduce(self, h: int) -> int:
        if self._mask is not None:
            return h & self._mask
        return h % self.bucket_count

    def __call__(self, key: BytesLike) -> int:
        return self._reduce(djb2_bytes(key, self._seed))

    def index_many(self, keys: Sequence[BytesLike]) -> np.ndarray:
        max_length = max((len(_as_bytes(k)) for k in keys), default=1)
        packed = pack_strings(keys, max_length)
        return self.index_packed(packed)

    def index_packed(self, packed: np.ndarray) -> np.ndarray:
        """Bucket indices for a pre-packed byte matrix (the fast path the
        trigram generator uses, skipping re-packing)."""
        hashes = djb2_matrix(packed, self._seed)
        if self._mask is not None:
            return (hashes & np.uint64(self._mask)).astype(np.int64)
        return (hashes % np.uint64(self.bucket_count)).astype(np.int64)

    def rebucketed(self, bucket_count: int) -> "DJBHash":
        return DJBHash(bucket_count, self._seed)


__all__ = [
    "DJB_SEED",
    "djb2_bytes",
    "pack_strings",
    "djb2_matrix",
    "DJBHash",
]
