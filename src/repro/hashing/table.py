"""Software hash tables — the Section 2.1 baseline that CA-RAM hardens.

Two classic organizations are provided:

* :class:`ChainedHashTable` — an array of bucket heads with linked-list
  chains, the layout behind "records ... chained in a linked list".  Lookups
  pointer-chase, which is exactly the access pattern the paper blames for
  poor memory behavior.
* :class:`OpenAddressingTable` — a flat array probed linearly, the software
  twin of CA-RAM's own collision policy.

Both tables assign each structure a synthetic byte address so that every
operation can emit the sequence of memory locations it touches.  The
software-baseline bench replays those traces through
:class:`repro.memory.cache.CacheSimulator` to estimate lookup cost in
memory accesses and misses, quantifying the paper's "at least 4 to 6 memory
accesses" claim for software search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generic, Hashable, List, Optional, TypeVar

from repro.errors import CapacityError, ConfigurationError
from repro.hashing.base import HashFunction

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Synthetic address-space layout: the bucket array starts at zero and node
#: storage is allocated upward from a disjoint heap base.
HEAP_BASE = 1 << 30


@dataclass
class LookupOutcome(Generic[V]):
    """Result of a software-table lookup.

    Attributes:
        value: the record's value, or None when absent.
        found: whether the key was present.
        memory_accesses: distinct structure touches (array slot or node).
        addresses: synthetic byte addresses touched, in order.
    """

    value: Optional[V]
    found: bool
    memory_accesses: int
    addresses: List[int]


class _ChainNode(Generic[K, V]):
    """One linked-list node: key, value, next pointer, synthetic address."""

    __slots__ = ("key", "value", "next", "address")

    def __init__(self, key: K, value: V, address: int) -> None:
        self.key = key
        self.value = value
        self.next: Optional["_ChainNode[K, V]"] = None
        self.address = address


class ChainedHashTable(Generic[K, V]):
    """Separate-chaining hash table with synthetic address traces.

    Args:
        hash_function: bucket mapping for keys.
        slot_bytes: size of one bucket-head pointer in the synthetic layout.
        node_bytes: size of one chain node (key + value + next pointer).
    """

    def __init__(
        self,
        hash_function: HashFunction,
        slot_bytes: int = 8,
        node_bytes: int = 32,
    ) -> None:
        if slot_bytes <= 0 or node_bytes <= 0:
            raise ConfigurationError("slot_bytes and node_bytes must be positive")
        self._hash = hash_function
        self._slot_bytes = slot_bytes
        self._node_bytes = node_bytes
        self._heads: List[Optional[_ChainNode[K, V]]] = [
            None
        ] * hash_function.bucket_count
        self._size = 0
        self._next_address = HEAP_BASE

    def __len__(self) -> int:
        return self._size

    @property
    def bucket_count(self) -> int:
        return self._hash.bucket_count

    def _slot_address(self, bucket: int) -> int:
        return bucket * self._slot_bytes

    def _allocate_node(self, key: K, value: V) -> _ChainNode[K, V]:
        node = _ChainNode(key, value, self._next_address)
        self._next_address += self._node_bytes
        return node

    def insert(self, key: K, value: V) -> None:
        """Insert or update; new nodes are prepended (LIFO chains)."""
        bucket = self._hash(key)
        node = self._heads[bucket]
        while node is not None:
            if node.key == key:
                node.value = value
                return
            node = node.next
        new_node = self._allocate_node(key, value)
        new_node.next = self._heads[bucket]
        self._heads[bucket] = new_node
        self._size += 1

    def lookup(self, key: K) -> LookupOutcome[V]:
        """Find ``key``, recording every structure touch."""
        bucket = self._hash(key)
        addresses = [self._slot_address(bucket)]
        node = self._heads[bucket]
        while node is not None:
            addresses.append(node.address)
            if node.key == key:
                return LookupOutcome(node.value, True, len(addresses), addresses)
            node = node.next
        return LookupOutcome(None, False, len(addresses), addresses)

    def delete(self, key: K) -> bool:
        """Remove ``key``; returns False when absent."""
        bucket = self._hash(key)
        node = self._heads[bucket]
        previous: Optional[_ChainNode[K, V]] = None
        while node is not None:
            if node.key == key:
                if previous is None:
                    self._heads[bucket] = node.next
                else:
                    previous.next = node.next
                self._size -= 1
                return True
            previous = node
            node = node.next
        return False

    def chain_lengths(self) -> List[int]:
        """Per-bucket chain lengths (the software occupancy histogram)."""
        lengths = []
        for head in self._heads:
            count = 0
            node = head
            while node is not None:
                count += 1
                node = node.next
            lengths.append(count)
        return lengths


class OpenAddressingTable(Generic[K, V]):
    """Linear-probing open-addressing table with synthetic address traces.

    Deletions use tombstones so probe sequences stay valid, mirroring how a
    CA-RAM bucket's auxiliary reach field must persist after deletes until a
    rebuild (Section 3.1's insert/delete discussion).
    """

    _EMPTY = object()
    _TOMBSTONE = object()

    def __init__(self, hash_function: HashFunction, slot_bytes: int = 32) -> None:
        if slot_bytes <= 0:
            raise ConfigurationError("slot_bytes must be positive")
        self._hash = hash_function
        self._slot_bytes = slot_bytes
        capacity = hash_function.bucket_count
        self._keys: List[Any] = [self._EMPTY] * capacity
        self._values: List[Any] = [None] * capacity
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return len(self._keys)

    def _slot_address(self, slot: int) -> int:
        return slot * self._slot_bytes

    def insert(self, key: K, value: V) -> int:
        """Insert or update; returns the number of probes used.

        Raises:
            CapacityError: when the table is completely full.
        """
        capacity = self.capacity
        start = self._hash(key)
        first_free = -1
        for probe in range(capacity):
            slot = (start + probe) % capacity
            current = self._keys[slot]
            if current is self._EMPTY:
                target = first_free if first_free >= 0 else slot
                self._keys[target] = key
                self._values[target] = value
                self._size += 1
                return probe + 1
            if current is self._TOMBSTONE:
                if first_free < 0:
                    first_free = slot
                continue
            if current == key:
                self._values[slot] = value
                return probe + 1
        if first_free >= 0:
            self._keys[first_free] = key
            self._values[first_free] = value
            self._size += 1
            return capacity
        raise CapacityError("open-addressing table is full")

    def lookup(self, key: K) -> LookupOutcome[V]:
        """Find ``key``, recording every probed slot."""
        capacity = self.capacity
        start = self._hash(key)
        addresses: List[int] = []
        for probe in range(capacity):
            slot = (start + probe) % capacity
            addresses.append(self._slot_address(slot))
            current = self._keys[slot]
            if current is self._EMPTY:
                return LookupOutcome(None, False, len(addresses), addresses)
            if current is not self._TOMBSTONE and current == key:
                return LookupOutcome(
                    self._values[slot], True, len(addresses), addresses
                )
        return LookupOutcome(None, False, len(addresses), addresses)

    def delete(self, key: K) -> bool:
        """Tombstone ``key``; returns False when absent."""
        capacity = self.capacity
        start = self._hash(key)
        for probe in range(capacity):
            slot = (start + probe) % capacity
            current = self._keys[slot]
            if current is self._EMPTY:
                return False
            if current is not self._TOMBSTONE and current == key:
                self._keys[slot] = self._TOMBSTONE
                self._values[slot] = None
                self._size -= 1
                return True
        return False


__all__ = ["LookupOutcome", "ChainedHashTable", "OpenAddressingTable", "HEAP_BASE"]
