"""The hash-function interface shared by software tables and CA-RAM index
generators.

A :class:`HashFunction` maps a key to a bucket index in ``[0, bucket_count)``.
The CA-RAM index generator (Section 3.1) is exactly such a function realized
in hardware; the software hashing baseline (Section 2.1) uses the same
interface, which is what lets the application studies swap hash strategies
(bit selection for IP lookup, DJB for trigrams) without touching the rest of
the stack.

Keys may be integers (fixed-width bit vectors, e.g. IP addresses) or byte
strings (e.g. trigram text).  Concrete functions document which they accept.
``index_many`` is the vectorized entry point used by the large-database
analytics; the default implementation falls back to a Python loop, and the
hot functions override it with numpy kernels.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigurationError


class HashFunction(abc.ABC):
    """Maps keys to bucket indices in ``[0, bucket_count)``."""

    def __init__(self, bucket_count: int) -> None:
        if bucket_count <= 0:
            raise ConfigurationError(
                f"bucket_count must be positive, got {bucket_count}"
            )
        self._bucket_count = bucket_count

    @property
    def bucket_count(self) -> int:
        """Number of buckets this function hashes into (the paper's ``M``)."""
        return self._bucket_count

    @property
    def index_bits(self) -> int:
        """Bits needed to express a bucket index (the paper's ``R``)."""
        return max(1, (self._bucket_count - 1).bit_length())

    @abc.abstractmethod
    def __call__(self, key: Any) -> int:
        """Return the bucket index of ``key``."""

    def index_many(self, keys: Sequence[Any]) -> np.ndarray:
        """Vectorized mapping of many keys; returns an int64 index array."""
        return np.fromiter(
            (self(key) for key in keys), dtype=np.int64, count=len(keys)
        )

    def rebucketed(self, bucket_count: int) -> "HashFunction":
        """Return a variant of this function with a different bucket count.

        Subclasses that cannot be re-bucketed may raise
        :class:`ConfigurationError`.
        """
        raise ConfigurationError(
            f"{type(self).__name__} does not support re-bucketing"
        )


class ModuloHash(HashFunction):
    """The simplest integer hash: ``key % bucket_count``.

    Useful as a reference point in the hash-function ablation and for
    synthetic uniform keys, where modulo is already near-ideal.
    """

    def __call__(self, key: int) -> int:
        return int(key) % self.bucket_count

    def index_many(self, keys: Sequence[int]) -> np.ndarray:
        arr = np.asarray(keys, dtype=np.uint64)
        return (arr % np.uint64(self.bucket_count)).astype(np.int64)

    def rebucketed(self, bucket_count: int) -> "ModuloHash":
        return ModuloHash(bucket_count)


__all__ = ["HashFunction", "ModuloHash"]
