"""Bit-selection hashing and the greedy hash-bit search of Zane et al.

Section 4.1 of the paper: "Our hash function is based on the bit selection
scheme by Zane et al., which simply uses a selected set of bits (or hash
bits) from IP addresses. ... we apply the algorithm in [32] to find the best
set of R bits which distributes the prefixes most evenly to buckets."

:class:`BitSelectHash` concatenates the key bits at chosen MSB-first
positions into a bucket index — in hardware this is pure wiring, which is why
the paper calls index generation "as simple as bit selection, incurring very
little additional logic or delay".

:func:`greedy_bit_selection` reproduces the CoolCAMs-style greedy search:
starting from the empty set, repeatedly add the candidate bit position that
minimizes a bucket-imbalance objective over a sample of keys, until R bits
are chosen.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import HashFunction
from repro.utils.bits import select_bits


class BitSelectHash(HashFunction):
    """Hash an integer key by concatenating selected bit positions.

    Args:
        key_width: key width in bits.
        positions: MSB-first bit positions, most significant output bit
            first.  ``bucket_count`` is ``2 ** len(positions)``.
    """

    def __init__(self, key_width: int, positions: Sequence[int]) -> None:
        if not positions:
            raise ConfigurationError("positions must be non-empty")
        if len(set(positions)) != len(positions):
            raise ConfigurationError(f"duplicate bit positions: {positions}")
        for pos in positions:
            if not 0 <= pos < key_width:
                raise ConfigurationError(
                    f"bit position {pos} out of range for a "
                    f"{key_width}-bit key"
                )
        super().__init__(2 ** len(positions))
        self._key_width = key_width
        self._positions = tuple(positions)
        # Precompute shift amounts for the vectorized path: position p sits
        # (key_width - 1 - p) bits above the LSB.
        self._shifts = np.array(
            [key_width - 1 - p for p in positions], dtype=np.uint64
        )
        self._position_mask = 0
        for pos in positions:
            self._position_mask |= 1 << (key_width - 1 - pos)

    @property
    def key_width(self) -> int:
        """Key width in bits."""
        return self._key_width

    @property
    def positions(self) -> tuple:
        """Selected MSB-first bit positions."""
        return self._positions

    @property
    def position_mask(self) -> int:
        """Key-space mask with a 1 at every selected bit position.

        A ternary key whose don't-care mask intersects this mask maps to
        multiple buckets (Section 4's duplication/probing rule) and must
        take the scalar multi-row path.
        """
        return self._position_mask

    def __call__(self, key: int) -> int:
        return select_bits(int(key), self._key_width, self._positions)

    def index_many(self, keys: Sequence[int]) -> np.ndarray:
        if self._key_width > 64:
            from repro.memory.mirror import keys_to_words

            return self.index_words(keys_to_words(keys, self._key_width))
        arr = np.asarray(keys, dtype=np.uint64)
        index = np.zeros(arr.shape, dtype=np.uint64)
        for shift in self._shifts:
            index = (index << np.uint64(1)) | ((arr >> shift) & np.uint64(1))
        return index.astype(np.int64)

    def index_words(self, words: np.ndarray) -> np.ndarray:
        """Vectorized indexing over keys packed as little-endian 64-bit
        words (the :mod:`repro.memory.mirror` batch representation) — the
        wide-key path the 128-bit trigram keys need.
        """
        index = np.zeros(words.shape[0], dtype=np.uint64)
        for pos in self._positions:
            bit = self._key_width - 1 - pos
            word, shift = divmod(bit, 64)
            index = (index << np.uint64(1)) | (
                (words[:, word] >> np.uint64(shift)) & np.uint64(1)
            )
        return index.astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitSelectHash(key_width={self._key_width}, positions={self._positions})"


def last_bits_of_first(key_width: int, window: int, count: int) -> BitSelectHash:
    """The paper's chosen IP hash: the last ``count`` bits within the first
    ``window`` bits of the key.

    "After experiments, we determined that choosing the last R bits in the
    first 16 bits results in the best outcome." (Section 4.1)

    >>> h = last_bits_of_first(32, 16, 11)
    >>> h.positions
    (5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)
    """
    if count > window or window > key_width:
        raise ConfigurationError(
            f"cannot take {count} bits from a {window}-bit window "
            f"of a {key_width}-bit key"
        )
    return BitSelectHash(key_width, tuple(range(window - count, window)))


def _imbalance(counts: np.ndarray, slots_per_bucket: Optional[int]) -> float:
    """Bucket-imbalance objective for the greedy search.

    With a bucket capacity, the objective is the number of spilled records
    (what AMAL actually pays for); without one, the sum of squared loads
    (minimized by the most even distribution).
    """
    if slots_per_bucket is not None:
        return float(np.maximum(counts - slots_per_bucket, 0).sum())
    return float((counts.astype(np.float64) ** 2).sum())


def greedy_bit_selection(
    keys: Sequence[int],
    key_width: int,
    select_count: int,
    candidate_positions: Optional[Sequence[int]] = None,
    slots_per_bucket: Optional[int] = None,
) -> BitSelectHash:
    """Greedily choose ``select_count`` hash-bit positions for ``keys``.

    Reproduces the spirit of the Zane et al. hash-bit search the paper uses:
    one bit at a time, always adding the candidate that minimizes bucket
    imbalance on the key sample.

    Args:
        keys: sample of integer keys to balance over.
        key_width: key width in bits.
        select_count: number of hash bits to choose (the paper's ``R``).
        candidate_positions: allowed MSB-first positions (the paper restricts
            to the first 16 bits of the IP address); defaults to all.
        slots_per_bucket: if given, minimize spilled records at this bucket
            capacity; otherwise minimize squared bucket loads.

    Returns:
        A :class:`BitSelectHash` over the chosen positions (sorted MSB-first,
        so the index preserves key bit order).
    """
    if select_count <= 0:
        raise ConfigurationError(f"select_count must be positive: {select_count}")
    if candidate_positions is None:
        candidate_positions = range(key_width)
    candidates = sorted(set(candidate_positions))
    if len(candidates) < select_count:
        raise ConfigurationError(
            f"only {len(candidates)} candidate positions for "
            f"{select_count} hash bits"
        )
    arr = np.asarray(list(keys), dtype=np.uint64)
    if arr.size == 0:
        raise ConfigurationError("keys sample must be non-empty")

    chosen: List[int] = []
    # Index value accumulated so far for every key (grows one bit per round).
    partial = np.zeros(arr.shape, dtype=np.uint64)
    for _ in range(select_count):
        best_pos = -1
        best_score = float("inf")
        best_partial = partial
        for pos in candidates:
            if pos in chosen:
                continue
            shift = np.uint64(key_width - 1 - pos)
            trial = (partial << np.uint64(1)) | ((arr >> shift) & np.uint64(1))
            counts = np.bincount(
                trial.astype(np.int64), minlength=2 ** (len(chosen) + 1)
            )
            score = _imbalance(counts, slots_per_bucket)
            if score < best_score:
                best_score = score
                best_pos = pos
                best_partial = trial
        chosen.append(best_pos)
        partial = best_partial

    return BitSelectHash(key_width, tuple(sorted(chosen)))


__all__ = ["BitSelectHash", "last_bits_of_first", "greedy_bit_selection"]
