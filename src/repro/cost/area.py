"""Area models — Figure 6(a) and the area half of Figure 8.

Two levels of comparison:

* **Per-cell** (Figure 6(a)): the silicon cost of storing one ternary
  symbol in each scheme.  A CA-RAM symbol costs two embedded-DRAM bits plus
  the ~7% match-processor overhead; TCAM symbols cost one TCAM cell.
* **Per-database** (Figure 8): a whole application database.  A CAM/TCAM
  provisions exactly one entry per record; CA-RAM provisions its full
  geometric capacity, so the load factor α is charged against it — "We take
  into account the load factor for area calculation."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.cam.cells import (
    CellSpec,
    DRAM_CELL_MORISHITA,
    MATCH_PROCESSOR_AREA_OVERHEAD,
    TCAM_16T_SRAM_NODA03,
    TCAM_6T_DYNAMIC_NODA05,
    TCAM_8T_DYNAMIC_NODA03,
    ca_ram_binary_cell_area,
    ca_ram_ternary_cell_area,
)


@dataclass(frozen=True)
class AreaEstimate:
    """One scheme's area figure within a comparison.

    Attributes:
        scheme: display name.
        area_um2: absolute area.
        relative: area normalized to the comparison's baseline (first row).
    """

    scheme: str
    area_um2: float
    relative: float


def cam_database_area_um2(
    entries: int, symbols_per_entry: int, cell: CellSpec
) -> float:
    """Area of a CAM/TCAM holding ``entries`` keys of ``symbols_per_entry``
    symbols each.

    Symbols are ternary symbols for a TCAM (one cell each) and plain bits
    for a binary CAM.
    """
    if entries <= 0 or symbols_per_entry <= 0:
        raise ConfigurationError("entries and symbols_per_entry must be positive")
    return entries * symbols_per_entry * cell.area_um2_per_cell


def ca_ram_database_area_um2(
    capacity_bits: int,
    ternary: bool = True,
    dram: CellSpec = DRAM_CELL_MORISHITA,
) -> float:
    """Area of a CA-RAM provisioned with ``capacity_bits`` of storage.

    ``capacity_bits`` is raw storage (already 2 bits per ternary symbol for
    a ternary database — the geometric ``rows x C`` product), so the area is
    bits × DRAM cell × match-processor overhead.  The ``ternary`` flag only
    affects bookkeeping in reports; the bit count carries the 2x cost.
    """
    if capacity_bits <= 0:
        raise ConfigurationError("capacity_bits must be positive")
    return capacity_bits * dram.area_um2_per_cell * (
        1.0 + MATCH_PROCESSOR_AREA_OVERHEAD
    )


def cell_size_comparison() -> List[AreaEstimate]:
    """Figure 6(a): per-ternary-symbol cell size of the four schemes.

    The paper's headline ratios: CA-RAM is "over 12x smaller than a 16T
    SRAM-based TCAM cell, and 4.8x smaller than a state-of-the-art 6T
    dynamic TCAM cell".
    """
    rows = [
        (TCAM_16T_SRAM_NODA03.name, TCAM_16T_SRAM_NODA03.area_um2_per_cell),
        (TCAM_8T_DYNAMIC_NODA03.name, TCAM_8T_DYNAMIC_NODA03.area_um2_per_cell),
        (TCAM_6T_DYNAMIC_NODA05.name, TCAM_6T_DYNAMIC_NODA05.area_um2_per_cell),
        ("ternary DRAM CA-RAM", ca_ram_ternary_cell_area()),
    ]
    baseline = rows[0][1]
    return [
        AreaEstimate(scheme=name, area_um2=area, relative=area / baseline)
        for name, area in rows
    ]


def database_area_comparison(
    cam_entries: int,
    cam_symbols_per_entry: int,
    cam_cell: CellSpec,
    ca_ram_capacity_bits: int,
    ca_ram_label: str = "CA-RAM",
) -> List[AreaEstimate]:
    """Figure 8-style application comparison: CAM/TCAM vs one CA-RAM design.

    Returns the CAM row first (relative = 1.0).
    """
    cam_area = cam_database_area_um2(cam_entries, cam_symbols_per_entry, cam_cell)
    car_area = ca_ram_database_area_um2(ca_ram_capacity_bits)
    return [
        AreaEstimate(scheme=cam_cell.name, area_um2=cam_area, relative=1.0),
        AreaEstimate(
            scheme=ca_ram_label, area_um2=car_area, relative=car_area / cam_area
        ),
    ]


__all__ = [
    "AreaEstimate",
    "cam_database_area_um2",
    "ca_ram_database_area_um2",
    "cell_size_comparison",
    "database_area_comparison",
    "ca_ram_binary_cell_area",
]
