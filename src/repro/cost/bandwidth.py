"""Search bandwidth and latency models — the Section 3.4 equations.

Bandwidth::

    B_CA-RAM = N_slice / n_mem * f_clk      (conservative, non-pipelined)
    B_CAM    = f_CAM_clk

Latency: CA-RAM pays the memory access ``T_mem`` plus the match time
``T_match`` (pipelinable), but the data comes back *with* the lookup.  A
CAM returns only the matching address, so the subsequent data access out of
a separate RAM "is fully exposed in CAM while it is effectively hidden in
CA-RAM"; many production CAMs additionally take multiple cycles per search
to save power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory.timing import MemoryTiming


def ca_ram_search_bandwidth(
    slice_count: int, timing: MemoryTiming
) -> float:
    """Lookups/second of a CA-RAM subsystem: ``N_slice / n_mem * f_clk``.

    Assumes match is pipelined with memory access (the paper drops
    ``T_match`` from the bandwidth calculation) and each lookup touches one
    slice (vertical banking).
    """
    if slice_count <= 0:
        raise ConfigurationError(f"slice_count must be positive: {slice_count}")
    return slice_count / timing.cycle_between_accesses * timing.clock_hz


def cam_search_bandwidth(cam_clock_hz: float, cycles_per_search: int = 1) -> float:
    """Lookups/second of a CAM: one search per ``cycles_per_search`` clocks."""
    if cam_clock_hz <= 0 or cycles_per_search <= 0:
        raise ConfigurationError("clock and cycles_per_search must be positive")
    return cam_clock_hz / cycles_per_search


@dataclass(frozen=True)
class LatencyComparison:
    """End-to-end lookup latency of CA-RAM vs CAM, data access included.

    Attributes:
        ca_ram_lookup_s: CA-RAM memory access + match (data included in the
            fetched row when stored alongside keys).
        cam_lookup_s: CAM match-line search alone.
        cam_with_data_s: CAM search plus the exposed RAM data access.
        amal: average bucket accesses folded into the CA-RAM figure.
    """

    ca_ram_lookup_s: float
    cam_lookup_s: float
    cam_with_data_s: float
    amal: float

    @property
    def ca_ram_wins_with_data(self) -> bool:
        """The paper's claim: T_CA-RAM is comparable to or shorter than
        T_CAM once the data access is charged to the CAM."""
        return self.ca_ram_lookup_s <= self.cam_with_data_s


def search_latency_comparison(
    ca_ram_timing: MemoryTiming,
    match_time_s: float,
    cam_clock_hz: float,
    cam_cycles_per_search: int = 1,
    data_access_timing: MemoryTiming = None,
    amal: float = 1.0,
) -> LatencyComparison:
    """Build the Section 3.4 latency comparison.

    Args:
        ca_ram_timing: the CA-RAM array's device timing (T_mem source).
        match_time_s: T_match of the match processors (one pipeline pass).
        cam_clock_hz: the CAM device clock.
        cam_cycles_per_search: cycles per CAM lookup (power-saving CAMs use
            several).
        data_access_timing: timing of the data RAM a CAM must consult after
            a match; defaults to the CA-RAM's own timing.
        amal: average bucket accesses per CA-RAM lookup.
    """
    if amal < 1.0:
        raise ConfigurationError(f"amal must be >= 1: {amal}")
    if data_access_timing is None:
        data_access_timing = ca_ram_timing
    ca_ram = (ca_ram_timing.access_time_s + match_time_s) * amal
    cam = cam_cycles_per_search / cam_clock_hz
    cam_with_data = cam + data_access_timing.access_time_s
    return LatencyComparison(
        ca_ram_lookup_s=ca_ram,
        cam_lookup_s=cam,
        cam_with_data_s=cam_with_data,
        amal=amal,
    )


__all__ = [
    "ca_ram_search_bandwidth",
    "cam_search_bandwidth",
    "LatencyComparison",
    "search_latency_comparison",
]
