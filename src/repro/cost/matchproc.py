"""Match-processor synthesis model — Table 1 of the paper.

The paper synthesized one prototype match processor (0.16 µm standard
cells, row width C = 1,600 bits, variable key size down to 1 byte) and
reports per-stage cell count, area, and delay:

=========================  =======  ===========  =========
Step                       # cells  Area (µm²)   Delay (ns)
=========================  =======  ===========  =========
Expand search key            3,804      66,228      (0.89)
Calculate match vector       5,252      10,591       0.95
Decode match vector            899       1,970       1.91
Extract result               6,037      21,775       1.99
Total                       15,992     100,564       4.85
=========================  =======  ===========  =========

plus a worst-case dynamic power of 60.8 mW (VDD = 1.8 V, switching = 0.5,
Tclk = 6 ns).

:class:`MatchProcessorModel` reproduces those numbers exactly at the
reference point and scales them to other row widths C and key widths N with
first-order rules grounded in the paper's own observations:

* expand / match-vector / extract logic is per-bit → cells & area scale
  linearly with C;
* match-vector delay is a comparator reduction tree → scales with log2(N);
* decode (priority encode) and extract delays are serial in the slot count
  P = C/N → scale with log2(P) ("the decoding of the match vector and the
  multiplexing of the output results form the critical path as all of it's
  operations are serial in nature");
* the expand stage is overlapped with memory access, so its delay is shown
  parenthesized and excluded from the critical path, as in the paper.

The reference key width is 8 bits — the smallest key the prototype accepts,
which is what sizes its worst-case slot count (200 slots at C = 1,600).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import List

from repro.errors import ConfigurationError

#: Reference synthesis point (Section 3.3).
REFERENCE_ROW_BITS = 1600
REFERENCE_KEY_BITS = 8
REFERENCE_VDD = 1.8
REFERENCE_SWITCHING = 0.5
REFERENCE_TCLK_NS = 6.0
REFERENCE_POWER_MW = 60.8

#: Published per-stage reference values: (cells, area µm², delay ns,
#: overlapped-with-memory-access flag).
_REFERENCE_STAGES = {
    "expand_search_key": (3804, 66228.0, 0.89, True),
    "calculate_match_vector": (5252, 10591.0, 0.95, False),
    "decode_match_vector": (899, 1970.0, 1.91, False),
    "extract_result": (6037, 21775.0, 1.99, False),
}


@dataclass(frozen=True)
class StageEstimate:
    """One pipeline stage's synthesis estimate."""

    name: str
    cells: int
    area_um2: float
    delay_ns: float
    overlapped: bool

    @property
    def display_delay(self) -> str:
        """Delay as the paper prints it (parenthesized when hidden)."""
        return f"({self.delay_ns:.2f})" if self.overlapped else f"{self.delay_ns:.2f}"


@dataclass(frozen=True)
class SynthesisResult:
    """A full match-processor synthesis estimate.

    Attributes:
        stages: per-stage estimates in pipeline order.
        row_bits: the row width C the estimate is for.
        key_bits: the key width N the estimate is for.
    """

    stages: List[StageEstimate]
    row_bits: int
    key_bits: int

    @property
    def total_cells(self) -> int:
        return sum(stage.cells for stage in self.stages)

    @property
    def total_area_um2(self) -> float:
        return sum(stage.area_um2 for stage in self.stages)

    @property
    def total_delay_ns(self) -> float:
        """Sum of all stage delays (the paper's 4.85 ns total row)."""
        return sum(stage.delay_ns for stage in self.stages)

    @property
    def critical_path_ns(self) -> float:
        """Delay excluding the expand stage, which overlaps memory access."""
        return sum(s.delay_ns for s in self.stages if not s.overlapped)

    @property
    def max_clock_hz(self) -> float:
        """Highest single-cycle clock the (unpipelined) processor meets."""
        return 1e9 / self.critical_path_ns

    def stage(self, name: str) -> StageEstimate:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ConfigurationError(f"no stage named {name!r}")


class MatchProcessorModel:
    """Parametric synthesis model calibrated to the Table 1 prototype."""

    def __init__(self) -> None:
        # Effective switched capacitance back-computed from the published
        # worst-case power: P = a * C_eff * VDD^2 * f.
        f_ref = 1e9 / REFERENCE_TCLK_NS
        self._c_eff_ref_farad = (REFERENCE_POWER_MW * 1e-3) / (
            REFERENCE_SWITCHING * REFERENCE_VDD**2 * f_ref
        )

    @staticmethod
    def _slots(row_bits: int, key_bits: int) -> int:
        slots = row_bits // key_bits
        if slots < 1:
            raise ConfigurationError(
                f"row of {row_bits} bits cannot hold a {key_bits}-bit key"
            )
        return slots

    def synthesize(
        self,
        row_bits: int = REFERENCE_ROW_BITS,
        key_bits: int = REFERENCE_KEY_BITS,
    ) -> SynthesisResult:
        """Estimate cells/area/delay for a (C, N) match processor."""
        if row_bits <= 0 or key_bits <= 0:
            raise ConfigurationError("row_bits and key_bits must be positive")
        slots = self._slots(row_bits, key_bits)
        ref_slots = self._slots(REFERENCE_ROW_BITS, REFERENCE_KEY_BITS)

        width_ratio = row_bits / REFERENCE_ROW_BITS
        slot_log_ratio = log2(slots + 1) / log2(ref_slots + 1)
        key_log_ratio = log2(key_bits + 1) / log2(REFERENCE_KEY_BITS + 1)

        scale = {
            # (cells/area multiplier, delay multiplier)
            "expand_search_key": (width_ratio, 1.0),
            "calculate_match_vector": (width_ratio, key_log_ratio),
            "decode_match_vector": (slots / ref_slots, slot_log_ratio),
            "extract_result": (width_ratio, slot_log_ratio),
        }

        stages = []
        for name, (cells, area, delay, overlapped) in _REFERENCE_STAGES.items():
            size_mult, delay_mult = scale[name]
            stages.append(
                StageEstimate(
                    name=name,
                    cells=max(1, round(cells * size_mult)),
                    area_um2=area * size_mult,
                    delay_ns=delay * delay_mult,
                    overlapped=overlapped,
                )
            )
        return SynthesisResult(stages=stages, row_bits=row_bits, key_bits=key_bits)

    def dynamic_power_mw(
        self,
        row_bits: int = REFERENCE_ROW_BITS,
        key_bits: int = REFERENCE_KEY_BITS,
        vdd: float = REFERENCE_VDD,
        switching: float = REFERENCE_SWITCHING,
        clock_hz: float = 1e9 / REFERENCE_TCLK_NS,
    ) -> float:
        """Worst-case dynamic power, scaled from the 60.8 mW reference.

        Switched capacitance scales with synthesized area.
        """
        result = self.synthesize(row_bits, key_bits)
        reference = self.synthesize()
        c_eff = self._c_eff_ref_farad * (
            result.total_area_um2 / reference.total_area_um2
        )
        return c_eff * switching * vdd**2 * clock_hz * 1e3

    def match_energy_j(self, row_bits: int, key_bits: int = REFERENCE_KEY_BITS) -> float:
        """Energy of one match operation (used by the search power model)."""
        power_w = (
            self.dynamic_power_mw(row_bits, key_bits) / 1e3
        )
        return power_w * REFERENCE_TCLK_NS * 1e-9


__all__ = [
    "MatchProcessorModel",
    "StageEstimate",
    "SynthesisResult",
    "REFERENCE_ROW_BITS",
    "REFERENCE_KEY_BITS",
    "REFERENCE_POWER_MW",
]
