"""Search power models — Figure 6(b) and the power half of Figure 8.

Section 3.4 gives the structural forms:

* ``P_CA-RAM = P_hash + P_mem(w, n) + P_match(n) + P_encoder(w)`` — one row
  access plus an O(n) match per search;
* ``P_CAM = P_searchline(w, n) + P_matchline(w, n) + P_encoder(w)`` — every
  searchline and matchline toggles on every search, O(w·n).

The models below keep those forms and attach per-event energy constants:

* ``E_DRAM_BIT_ACCESS_J`` — energy to read one bit out of an embedded DRAM
  row (300 fJ, within the envelope of the Morishita macro's published
  operating point);
* ``E_MATCH_BIT_J`` — energy to match one row bit, derived from the paper's
  own prototype synthesis (60.8 mW at 166 MHz over a 1,600-bit row →
  ~229 fJ/bit);
* ``E_FIXED_SEARCH_J`` — hash + priority encoder + control per search;
* per-symbol TCAM search energies, calibrated so the Figure 6(b) conditions
  (16 slices × 64K cells) reproduce the paper's reported ratios — CA-RAM
  "over 26 times more power-efficient than the 16T SRAM-based TCAM, and
  over 7 times improved over the 6T dynamic TCAM".  The resulting 6T value
  (~2.5 fJ/symbol/search) sits next to the Kasai et al. 2003 datapoint
  (3.2 W, 9.4 Mbit, 200 MSPS → 3.4 fJ/symbol), which is the sanity anchor.

Scheme comparisons are made at equal *search rate*, as the paper does for
Figure 8 ("a more aggressive 200MHz CA-RAM operation to make sure the
CA-RAM design offers competitive search bandwidth as TCAM").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.cam.cells import (
    CellSpec,
    FIGURE6_CELLS_PER_SLICE,
    FIGURE6_ROW_SYMBOLS,
    FIGURE6_SLICE_COUNT,
    TCAM_16T_SRAM_NODA03,
    TCAM_6T_DYNAMIC_NODA05,
    TCAM_8T_DYNAMIC_NODA03,
)

# ----------------------------------------------------------------------
# Energy constants (joules per event)
# ----------------------------------------------------------------------

#: Reading one bit of an embedded-DRAM row (array + periphery share).
E_DRAM_BIT_ACCESS_J = 300e-15

#: Matching one row bit in the match processors (from the Table 1
#: prototype: 60.8 mW x 6 ns / 1600 bits).
E_MATCH_BIT_J = 229e-15

#: Index generation + priority encoding + queue/control, per search.
E_FIXED_SEARCH_J = 100e-12

#: TCAM/CAM search energy per ternary symbol (searchline + matchline +
#: match transistor activity).  Calibrated against Figure 6(b); see module
#: docstring.
E_TCAM_SYMBOL_SEARCH_J: Dict[str, float] = {
    TCAM_16T_SRAM_NODA03.name: 9.20e-15,
    TCAM_8T_DYNAMIC_NODA03.name: 3.30e-15,
    TCAM_6T_DYNAMIC_NODA05.name: 2.48e-15,
}

#: Priority encoder energy per entry per search (common to both schemes'
#: ``P_encoder(w)`` term; small).
E_ENCODER_PER_ENTRY_J = 0.05e-15


@dataclass(frozen=True)
class PowerEstimate:
    """One scheme's power figure within a comparison."""

    scheme: str
    power_w: float
    relative: float


def ca_ram_search_energy_j(row_bits: int, rows_fetched: int = 1) -> float:
    """Energy of one CA-RAM bucket access: row read + parallel match.

    ``rows_fetched`` > 1 models horizontal slice groups, where one logical
    bucket access reads a row in every slice.
    """
    if row_bits <= 0 or rows_fetched <= 0:
        raise ConfigurationError("row_bits and rows_fetched must be positive")
    bits = row_bits * rows_fetched
    return (
        bits * (E_DRAM_BIT_ACCESS_J + E_MATCH_BIT_J) + E_FIXED_SEARCH_J
    )


def ca_ram_search_power_w(
    row_bits: int,
    search_rate_hz: float,
    rows_fetched: int = 1,
    amal: float = 1.0,
) -> float:
    """Average CA-RAM search power at a sustained lookup rate.

    ``amal`` multiplies the per-lookup energy: a lookup that probes 1.16
    buckets on average burns 1.16 bucket accesses of energy.
    """
    if search_rate_hz <= 0 or amal < 1.0:
        raise ConfigurationError("search_rate must be positive and amal >= 1")
    return ca_ram_search_energy_j(row_bits, rows_fetched) * amal * search_rate_hz


def cam_search_power_w(
    entries: int,
    symbols_per_entry: int,
    cell: CellSpec,
    search_rate_hz: float,
) -> float:
    """Average CAM/TCAM search power: all w·n cells active every search."""
    if entries <= 0 or symbols_per_entry <= 0 or search_rate_hz <= 0:
        raise ConfigurationError("entries, symbols and rate must be positive")
    if cell.name not in E_TCAM_SYMBOL_SEARCH_J:
        raise ConfigurationError(
            f"no calibrated search energy for cell {cell.name!r}"
        )
    per_search = (
        entries * symbols_per_entry * E_TCAM_SYMBOL_SEARCH_J[cell.name]
        + entries * E_ENCODER_PER_ENTRY_J
    )
    return per_search * search_rate_hz


def power_comparison(search_rate_hz: float = 143e6) -> List[PowerEstimate]:
    """Figure 6(b): search power of the four schemes at equal capacity and
    equal search rate.

    Conditions follow the paper's area comparison: 16 slices of 64K ternary
    cells (1M symbols total).  The TCAMs activate all 1M symbols per
    search; CA-RAM reads one 256-symbol (512-bit) row of one slice.
    """
    total_symbols = FIGURE6_SLICE_COUNT * FIGURE6_CELLS_PER_SLICE
    entries = total_symbols // FIGURE6_ROW_SYMBOLS
    rows = [
        (
            spec.name,
            cam_search_power_w(entries, FIGURE6_ROW_SYMBOLS, spec, search_rate_hz),
        )
        for spec in (
            TCAM_16T_SRAM_NODA03,
            TCAM_8T_DYNAMIC_NODA03,
            TCAM_6T_DYNAMIC_NODA05,
        )
    ]
    rows.append(
        (
            "ternary DRAM CA-RAM",
            ca_ram_search_power_w(
                row_bits=FIGURE6_ROW_SYMBOLS * 2, search_rate_hz=search_rate_hz
            ),
        )
    )
    baseline = rows[0][1]
    return [
        PowerEstimate(scheme=name, power_w=power, relative=power / baseline)
        for name, power in rows
    ]


__all__ = [
    "E_DRAM_BIT_ACCESS_J",
    "E_MATCH_BIT_J",
    "E_FIXED_SEARCH_J",
    "E_TCAM_SYMBOL_SEARCH_J",
    "E_ENCODER_PER_ENTRY_J",
    "PowerEstimate",
    "ca_ram_search_energy_j",
    "ca_ram_search_power_w",
    "cam_search_power_w",
    "power_comparison",
]
