"""Power-management policies for a CA-RAM subsystem.

Section 3.2 lists "setting power management policies" among the class-
library operations, and Section 5.2 reviews the banked-CAM techniques
CA-RAM subsumes: "In CA-RAM, even better, a memory access is made on a
single row most of the time.  The hash function used in CA-RAM replaces
the more expensive first-phase lookup table in the banked CAM scheme."

The model splits subsystem power into:

* **dynamic search power** — per-lookup row-access + match energy (from
  :mod:`repro.cost.power`), paid only by the slices a lookup touches;
* **background power** — per-bit retention/refresh and periphery leakage,
  modulated by the policy:

  - ``ALWAYS_ON`` — every slice fully powered;
  - ``BANK_SELECT`` — idle slices clock-gated (periphery saved, cell
    retention still paid);
  - ``DROWSY`` — idle slices additionally drop to a low-voltage retention
    state, at the cost of a wakeup penalty added to the access latency.

Constants are representative embedded-DRAM figures (per-bit retention
dominated by refresh), documented rather than derived — the paper gives no
leakage numbers, so only *relative* policy comparisons are meaningful.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.core.subsystem import SliceGroup
from repro.cost.power import ca_ram_search_energy_j
from repro.errors import ConfigurationError

#: Cell retention + refresh power, watts per bit (eDRAM-class).
RETENTION_W_PER_BIT = 30e-12

#: Periphery (decoders, sense amps, clock tree) power per slice as a
#: fraction of its retention power when clocked.
PERIPHERY_FACTOR = 1.5

#: Drowsy retention saves this fraction of retention power...
DROWSY_RETENTION_SAVING = 0.6

#: ...at this wakeup penalty (cycles) on the first access to a drowsy slice.
DROWSY_WAKEUP_CYCLES = 2


class PowerPolicy(enum.Enum):
    """Idle-slice power handling."""

    ALWAYS_ON = "always-on"
    BANK_SELECT = "bank-select"
    DROWSY = "drowsy"


@dataclass(frozen=True)
class PowerBreakdown:
    """Average subsystem power under one policy and lookup rate.

    Attributes:
        dynamic_w: search-activity power.
        background_w: retention + periphery power.
        wakeup_latency_cycles: added first-access latency (drowsy only).
    """

    policy: PowerPolicy
    dynamic_w: float
    background_w: float
    wakeup_latency_cycles: int

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.background_w


class SubsystemPowerModel:
    """Average-power model over one or more slice groups.

    Args:
        groups: the subsystem's slice groups.
        active_fraction: fraction of slices busy at any instant (drives how
            much periphery can be gated); estimated from the lookup rate if
            omitted.
    """

    def __init__(self, groups: Sequence[SliceGroup]) -> None:
        if not groups:
            raise ConfigurationError("at least one group is required")
        self._groups = list(groups)

    def _total_bits(self) -> int:
        return sum(
            g.config.capacity_bits * g.slice_count for g in self._groups
        )

    def _slice_count(self) -> int:
        return sum(g.slice_count for g in self._groups)

    def dynamic_power_w(self, lookups_per_second: float, amal: float = 1.0) -> float:
        """Search power at a sustained rate, spread over the groups by
        capacity share."""
        if lookups_per_second < 0:
            raise ConfigurationError("lookups_per_second must be >= 0")
        if amal < 1.0:
            raise ConfigurationError(f"amal must be >= 1: {amal}")
        total_capacity = sum(g.capacity_records for g in self._groups)
        power = 0.0
        for group in self._groups:
            share = group.capacity_records / total_capacity
            energy = ca_ram_search_energy_j(
                group.config.row_bits, group.rows_fetched_per_access
            )
            power += share * lookups_per_second * amal * energy
        return power

    def _active_slice_fraction(self, lookups_per_second: float) -> float:
        """Fraction of slices busy, per the bandwidth model."""
        busy = 0.0
        for group in self._groups:
            per_slice_rate = group.config.timing.accesses_per_second()
            demand = lookups_per_second / max(1, self._slice_count())
            busy += min(1.0, demand / per_slice_rate) * group.slice_count
        return min(1.0, busy / self._slice_count())

    def background_power_w(
        self, policy: PowerPolicy, lookups_per_second: float
    ) -> float:
        """Retention + periphery power under a policy."""
        bits = self._total_bits()
        retention = bits * RETENTION_W_PER_BIT
        periphery = retention * PERIPHERY_FACTOR
        active = self._active_slice_fraction(lookups_per_second)
        if policy is PowerPolicy.ALWAYS_ON:
            return retention + periphery
        if policy is PowerPolicy.BANK_SELECT:
            return retention + periphery * active
        # DROWSY: idle slices also save retention power.
        idle = 1.0 - active
        return (
            retention * (1.0 - DROWSY_RETENTION_SAVING * idle)
            + periphery * active
        )

    def breakdown(
        self,
        policy: PowerPolicy,
        lookups_per_second: float,
        amal: float = 1.0,
    ) -> PowerBreakdown:
        """Full power breakdown under a policy."""
        wakeup = (
            DROWSY_WAKEUP_CYCLES if policy is PowerPolicy.DROWSY else 0
        )
        return PowerBreakdown(
            policy=policy,
            dynamic_w=self.dynamic_power_w(lookups_per_second, amal),
            background_w=self.background_power_w(policy, lookups_per_second),
            wakeup_latency_cycles=wakeup,
        )

    def compare(
        self, lookups_per_second: float, amal: float = 1.0
    ) -> Sequence[PowerBreakdown]:
        """Breakdowns for every policy at one operating point."""
        return [
            self.breakdown(policy, lookups_per_second, amal)
            for policy in PowerPolicy
        ]


__all__ = [
    "PowerPolicy",
    "PowerBreakdown",
    "SubsystemPowerModel",
    "RETENTION_W_PER_BIT",
    "PERIPHERY_FACTOR",
    "DROWSY_RETENTION_SAVING",
    "DROWSY_WAKEUP_CYCLES",
]
