"""Analytical cost models: area, power, bandwidth/latency, and the match
processor synthesis model (Table 1)."""

from repro.cost.area import (
    AreaEstimate,
    ca_ram_database_area_um2,
    cam_database_area_um2,
    cell_size_comparison,
)
from repro.cost.bandwidth import (
    LatencyComparison,
    ca_ram_search_bandwidth,
    cam_search_bandwidth,
    search_latency_comparison,
)
from repro.cost.matchproc import (
    MatchProcessorModel,
    StageEstimate,
    SynthesisResult,
)
from repro.cost.power import (
    PowerEstimate,
    ca_ram_search_power_w,
    cam_search_power_w,
    power_comparison,
)

__all__ = [
    "AreaEstimate",
    "ca_ram_database_area_um2",
    "cam_database_area_um2",
    "cell_size_comparison",
    "LatencyComparison",
    "ca_ram_search_bandwidth",
    "cam_search_bandwidth",
    "search_latency_comparison",
    "MatchProcessorModel",
    "StageEstimate",
    "SynthesisResult",
    "PowerEstimate",
    "ca_ram_search_power_w",
    "cam_search_power_w",
    "power_comparison",
]
