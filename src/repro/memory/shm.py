"""Shared-memory export of decoded mirrors for multi-core lookup fan-out.

The parallel batch engine (:mod:`repro.core.parallel`) runs the match
kernels inside a persistent worker pool.  Workers forked at pool creation
would go stale the moment the parent's mirror re-decodes, and re-forking
per batch costs far more than the batch itself — so the mirror's match
surface is exported **once** into named
:mod:`multiprocessing.shared_memory` segments, and kept coherent by the
mirror's own dirty-row machinery:

* every :meth:`~repro.memory.mirror.DecodedMirror.sync` that re-decodes
  rows (and every bulk :meth:`~repro.memory.mirror.DecodedMirror.install`)
  bumps the mirror's ``version`` stamp;
* before each parallel batch the dispatcher compares stamps and, when
  behind, re-copies the arrays into the *same* segments in place
  (:meth:`MirrorExport.refresh`) — no reattach, no pool restart.  The
  copy happens strictly between batches (the dispatcher is synchronous),
  so workers never observe a half-written view.

Workers attach by segment name (:func:`attach_mirror_view`) and get a
:class:`MirrorView` — a duck-typed stand-in exposing exactly the
attribute surface the match kernels consume: ``match_rows`` plus
``reach``/``buckets`` for the word layout, or the
``key_planes``/``mask_planes``/``valid_words`` plane set
:func:`~repro.core.bitmatch.plane_match_rows` reads.  ``records`` and
``data_words`` never cross the process boundary: workers return columnar
coordinates, and the parent materializes values against its own mirror.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.mirror import int_to_words, words_for_bits
from repro.utils.bits import mask_of

__all__ = ["MirrorExport", "MirrorView", "attach_mirror_view"]


class MirrorExport:
    """Parent-side owner of a mirror's shared-memory segments.

    Creates one named segment per exported array, copies the mirror's
    current content in, and remembers the mirror's ``version`` stamp.
    Call :meth:`refresh` before each dispatch round; :meth:`close` when
    the owning engine shuts down (segments are unlinked exactly once).
    """

    def __init__(self, mirror) -> None:
        self.layout = "bitplane" if hasattr(mirror, "key_planes") else "word"
        self.version = mirror.version
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[str, np.ndarray] = {}
        self._spec_arrays: Dict[str, Tuple[str, tuple, str]] = {}
        self._closed = False
        try:
            for name, array in mirror.shared_export_arrays().items():
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=segment.buf
                )
                view[...] = array
                self._segments[name] = segment
                self._views[name] = view
                self._spec_arrays[name] = (
                    segment.name,
                    tuple(array.shape),
                    array.dtype.str,
                )
        except Exception:
            self.close()
            raise
        self._spec = {
            "layout": self.layout,
            "buckets": int(mirror.buckets),
            "slots": int(mirror.slots),
            "key_bits": int(mirror.key_bits),
            "lanes": int(getattr(mirror, "lanes", 0)),
            "segments": dict(self._spec_arrays),
        }

    def spec(self) -> dict:
        """Picklable attach recipe for :func:`attach_mirror_view`."""
        return self._spec

    def refresh(self, mirror) -> bool:
        """Re-copy the mirror into the segments if its version moved on.

        Must only be called while no worker task is in flight — the
        dispatcher guarantees this by collecting every shard before the
        next batch starts.  Returns True when a re-export happened.
        """
        if self._closed:
            raise ConfigurationError("refresh on a closed MirrorExport")
        if mirror.version == self.version:
            return False
        for name, array in mirror.shared_export_arrays().items():
            view = self._views[name]
            if view.shape != array.shape:
                raise ConfigurationError(
                    f"mirror geometry changed under export: {name} "
                    f"{array.shape} != {view.shape}"
                )
            view[...] = array
        self.version = mirror.version
        return True

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        for segment in self._segments.values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without adopting cleanup responsibility.

    The parent owns the segments' lifetime.  On Python < 3.13 merely
    *attaching* registers the segment with the (shared, forked) resource
    tracker, so the parent's eventual ``unlink`` would double-unregister
    and the tracker would log spurious KeyErrors; suppressing the
    registration for the duration of the attach keeps the tracker's view
    exactly what the parent registered.
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class MirrorView:
    """Worker-side read-only stand-in for the exported mirror.

    Exposes the duck-typed surface the match kernels need — for the word
    layout a :meth:`match_rows` replicating
    :meth:`~repro.memory.mirror.DecodedMirror.match_rows`, for the
    bit-plane layout the plane attributes
    :func:`~repro.core.bitmatch.plane_match_rows` reads.
    ``has_stored_masks`` is dispatcher-provided per task (the parent flag
    can flip between refreshes).
    """

    def __init__(self, spec: dict, arrays: Dict[str, np.ndarray]) -> None:
        self.layout = spec["layout"]
        self.buckets = spec["buckets"]
        self.slots = spec["slots"]
        self.key_bits = spec["key_bits"]
        self.lanes = spec["lanes"]
        self.reach = arrays["reach"]
        self.has_stored_masks = True
        if self.layout == "bitplane":
            self.key_planes = arrays["key_planes"]
            self.mask_planes = arrays["mask_planes"]
            self.valid_words = arrays["valid_words"]
        else:
            self.valid = arrays["valid"]
            self.key_words = arrays["key_words"]
            self.mask_words = arrays["mask_words"]
            self._word_count = words_for_bits(self.key_bits)
            self.width_words = np.array(
                int_to_words(mask_of(self.key_bits), self._word_count),
                dtype=np.uint64,
            )

    def match_rows(
        self,
        bucket_ids: np.ndarray,
        query_words: np.ndarray,
        query_mask_words: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Word-layout batch match — the same Figure 4(b) word-wise
        comparison as :meth:`DecodedMirror.match_rows`."""
        if self.layout != "word":
            raise ConfigurationError(
                "match_rows is the word-layout kernel; this view exports "
                "bit planes"
            )
        ids = np.asarray(bucket_ids)
        if ids.size and (
            int(ids.min()) < 0 or int(ids.max()) >= self.buckets
        ):
            raise ConfigurationError(
                f"bucket ids out of range [0, {self.buckets})"
            )
        stored = self.key_words[bucket_ids]
        stored_mask = self.mask_words[bucket_ids]
        if query_mask_words is None:
            care = ~stored_mask & self.width_words
        else:
            care = (
                ~(stored_mask | query_mask_words[:, None, :])
                & self.width_words
            )
        diff = (stored ^ query_words[:, None, :]) & care
        return ~diff.any(axis=2) & self.valid[bucket_ids]


def attach_mirror_view(
    spec: dict,
) -> Tuple[MirrorView, List[shared_memory.SharedMemory]]:
    """Attach to an export's segments; returns the view and its handles.

    The returned segment handles must stay referenced as long as the view
    is used (the ndarrays alias their buffers).
    """
    segments: List[shared_memory.SharedMemory] = []
    arrays: Dict[str, np.ndarray] = {}
    try:
        for name, (shm_name, shape, dtype) in spec["segments"].items():
            segment = _attach_segment(shm_name)
            segments.append(segment)
            arrays[name] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=segment.buf
            )
    except Exception:
        for segment in segments:
            try:
                segment.close()
            except Exception:
                pass
        raise
    return MirrorView(spec, arrays), segments
