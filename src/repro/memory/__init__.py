"""RAM substrate: row-organized arrays, device timing, banking, and a cache
model used to cost the software search baselines."""

from repro.memory.array import MemoryArray
from repro.memory.bank import BankedMemory
from repro.memory.bitplane import BitPlaneMirror
from repro.memory.cache import CacheSimulator, CacheStats
from repro.memory.mirror import DecodedMirror, keys_to_words
from repro.memory.timing import (
    DRAM_TIMING,
    SRAM_TIMING,
    MemoryTechnology,
    MemoryTiming,
)

__all__ = [
    "MemoryArray",
    "BankedMemory",
    "BitPlaneMirror",
    "DecodedMirror",
    "keys_to_words",
    "CacheSimulator",
    "CacheStats",
    "MemoryTechnology",
    "MemoryTiming",
    "SRAM_TIMING",
    "DRAM_TIMING",
]
