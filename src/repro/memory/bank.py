"""Banked memory: several independently accessible arrays behind one address
space.

Section 4.3 of the paper slices the IP-lookup design D "to create eight
vertical banks, in order to obtain higher overall bandwidth".  A
:class:`BankedMemory` models exactly that: a linear row address space split
across ``bank_count`` arrays, where accesses to different banks can proceed
concurrently (each bank keeps its own access counters; the bandwidth model in
:mod:`repro.cost.bandwidth` multiplies throughput by the bank count).

Rows are interleaved in contiguous blocks (bank 0 holds rows
``[0, rows_per_bank)``, bank 1 the next block, ...), which matches the
"vertical arrangement" of slices: more rows, same row width.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError, RamModeError
from repro.memory.array import MemoryArray
from repro.memory.timing import MemoryTiming, SRAM_TIMING


class BankedMemory:
    """A block-partitioned group of :class:`MemoryArray` banks.

    Args:
        rows: total rows across all banks (must divide evenly).
        row_bits: row width in bits, identical across banks.
        bank_count: number of independent banks.
        timing: per-bank device timing.
    """

    def __init__(
        self,
        rows: int,
        row_bits: int,
        bank_count: int = 1,
        timing: MemoryTiming = SRAM_TIMING,
    ) -> None:
        if bank_count <= 0:
            raise ConfigurationError(f"bank_count must be positive: {bank_count}")
        if rows % bank_count != 0:
            raise ConfigurationError(
                f"rows ({rows}) must divide evenly across {bank_count} banks"
            )
        self._rows = rows
        self._row_bits = row_bits
        self._rows_per_bank = rows // bank_count
        self._banks: List[MemoryArray] = [
            MemoryArray(self._rows_per_bank, row_bits, timing)
            for _ in range(bank_count)
        ]

    @property
    def rows(self) -> int:
        """Total rows across all banks."""
        return self._rows

    @property
    def row_bits(self) -> int:
        """Row width in bits."""
        return self._row_bits

    @property
    def bank_count(self) -> int:
        """Number of independent banks."""
        return len(self._banks)

    @property
    def banks(self) -> Tuple[MemoryArray, ...]:
        """The underlying arrays (read-only view)."""
        return tuple(self._banks)

    def locate(self, row: int) -> Tuple[int, int]:
        """Map a global row address to ``(bank_index, local_row)``."""
        if not 0 <= row < self._rows:
            raise RamModeError(f"row {row} out of range [0, {self._rows})")
        return row // self._rows_per_bank, row % self._rows_per_bank

    def read_row(self, row: int) -> int:
        """Read a row through its owning bank."""
        bank, local = self.locate(row)
        return self._banks[bank].read_row(local)

    def write_row(self, row: int, value: int) -> None:
        """Write a row through its owning bank."""
        bank, local = self.locate(row)
        self._banks[bank].write_row(local, value)

    def total_accesses(self) -> int:
        """Sum of read+write counts across banks."""
        return sum(bank.stats.total_accesses for bank in self._banks)

    def reset_stats(self) -> None:
        """Clear access counters on every bank."""
        for bank in self._banks:
            bank.stats.reset()


__all__ = ["BankedMemory"]
