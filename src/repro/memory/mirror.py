"""Decoded NumPy mirror of one or more CA-RAM memory arrays.

The behavioral model stores rows as arbitrary-precision Python integers,
which keeps sub-field extraction exact for any row width — but forces every
search to re-decode every slot of the fetched row through big-int bit
slicing.  A :class:`DecodedMirror` maintains the *decoded* view of the
array(s) as dense NumPy matrices — per logical bucket: valid bits, stored
key values, stored don't-care masks, the auxiliary reach field, and the
decoded :class:`~repro.core.record.Record` objects — so steady-state batch
lookups never touch Python-int bit extraction.

The mirror stays coherent through *dirty-row invalidation*: it subscribes to
:meth:`~repro.memory.array.MemoryArray.subscribe_invalidation`, and every
``write_row`` / ``load`` / ``fill`` marks the affected rows dirty.  A
:meth:`DecodedMirror.sync` before each batch operation re-decodes only the
dirty rows, so a read-heavy workload pays the decode cost once per mutation,
not once per lookup.  The re-decode itself is vectorized: the dirty row
values are serialized to bytes once, bit-unpacked as one matrix, and every
slot field (valid, key value, don't-care mask, data) is sliced out as a
column and re-packed through the same word codecs the bulk-build pipeline
uses — only the per-valid-slot ``Record`` construction stays in Python.
Subclasses hook :meth:`DecodedMirror._buckets_updated` to maintain derived
layouts (the bit-plane transpose) from the same incremental dirty set.

Keys wider than 64 bits (e.g. the trigram study's 128-bit keys) are held as
little-endian 64-bit *word* columns; the ternary comparison is an exact
word-wise rendering of Figure 4(b): a slot matches when, in every word,
``(stored ^ search) & ~(stored_mask | search_mask)`` is zero over the key's
width.

Logical-bucket composition mirrors :class:`~repro.core.subsystem.SliceGroup`:

* one array, or several arranged VERTICALLY — bucket ``b`` is row
  ``b % rows`` of array ``b // rows``; slot axis is one slice wide;
* several arranged HORIZONTALLY — bucket ``b`` is row ``b`` of *every*
  array, slots concatenated in slice order (slice 0 first, matching the
  match-priority order of the scalar path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, KeyFormatError
from repro.utils.bits import mask_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.bucket import BucketLayout
    from repro.memory.array import MemoryArray

#: Width of one mirror storage word.
KEY_WORD_BITS = 64

_WORD_MASK = (1 << KEY_WORD_BITS) - 1


def words_for_bits(bits: int) -> int:
    """Number of 64-bit words needed to hold a ``bits``-wide key."""
    if bits <= 0:
        raise ConfigurationError(f"bits must be positive: {bits}")
    return -(-bits // KEY_WORD_BITS)


def int_to_words(value: int, word_count: int) -> List[int]:
    """Split an unsigned integer into ``word_count`` little-endian words."""
    if value < 0:
        raise KeyFormatError(f"value must be non-negative: {value}")
    if value >> (KEY_WORD_BITS * word_count):
        raise KeyFormatError(
            f"value {value:#x} does not fit in {word_count} words"
        )
    return [
        (value >> (KEY_WORD_BITS * w)) & _WORD_MASK for w in range(word_count)
    ]


def keys_to_words(values: Sequence[int], key_bits: int) -> np.ndarray:
    """Pack integer keys into a ``(len(values), words)`` uint64 matrix.

    Little-endian word order (word 0 holds the key's low 64 bits).  Raises
    :class:`~repro.errors.KeyFormatError` when any key does not fit in
    ``key_bits`` bits — the same contract the scalar match processor
    enforces per key.
    """
    n = len(values)
    word_count = words_for_bits(key_bits)
    full = mask_of(key_bits)
    if word_count == 1:
        try:
            arr = np.array(values, dtype=np.uint64)
        except (OverflowError, TypeError) as exc:
            raise KeyFormatError(
                f"search key does not fit in {key_bits} bits: {exc}"
            ) from None
        if n and int(arr.max()) > full:
            bad = int(arr.max())
            raise KeyFormatError(
                f"search key {bad:#x} does not fit in {key_bits} bits"
            )
        return arr.reshape(n, 1)
    nbytes = word_count * (KEY_WORD_BITS // 8)
    buf = bytearray(n * nbytes)
    for i, value in enumerate(values):
        value = int(value)
        if not 0 <= value <= full:
            raise KeyFormatError(
                f"search key {value:#x} does not fit in {key_bits} bits"
            )
        buf[i * nbytes : (i + 1) * nbytes] = value.to_bytes(nbytes, "little")
    return np.frombuffer(bytes(buf), dtype="<u8").reshape(n, word_count)


# ----------------------------------------------------------------------
# Encode direction: decoded matrices -> row bit patterns
# ----------------------------------------------------------------------
#
# The decode direction above (rows -> word matrices) serves batch lookups;
# the bulk-build pipeline needs the opposite: turn whole columns of field
# values into MSB-first row bit patterns without per-record big-int
# splicing.  Both codecs below are pure reshapes/bit-unpacks — O(1) NumPy
# calls over the full matrix.


def words_to_bits(words: np.ndarray, bits: int) -> np.ndarray:
    """Unpack a little-endian uint64 word matrix into MSB-first bit columns.

    Args:
        words: ``(n, W)`` uint64 matrix (word 0 = low 64 bits), as produced
            by :func:`keys_to_words`.
        bits: field width; only the low ``bits`` of each value are kept.

    Returns:
        ``(n, bits)`` bool matrix, column 0 holding each value's MSB — the
        bit order :func:`~repro.core.record.encode_record` serializes.
    """
    if words.ndim != 2:
        raise ConfigurationError("words must be a (n, W) matrix")
    n, word_count = words.shape
    if bits > word_count * KEY_WORD_BITS:
        raise ConfigurationError(
            f"{bits} bits exceed the {word_count}-word storage"
        )
    # Reverse to big-endian word order, then view each word's bytes MSB
    # first, so unpackbits yields one MSB-first bit row per value.
    big_endian = words[:, ::-1].astype(">u8")
    byte_rows = big_endian.view(np.uint8).reshape(n, word_count * 8)
    bit_rows = np.unpackbits(byte_rows, axis=1)
    return bit_rows[:, word_count * KEY_WORD_BITS - bits :].astype(bool)


def bits_to_words(bit_matrix: np.ndarray, bits: int) -> np.ndarray:
    """Pack MSB-first bit columns into little-endian uint64 word columns.

    The exact inverse of :func:`words_to_bits`: column 0 of ``bit_matrix``
    holds each value's MSB; word 0 of the result holds the low 64 bits.
    Accepts any 0/1-valued dtype.
    """
    if bit_matrix.ndim != 2 or bit_matrix.shape[1] != bits:
        raise ConfigurationError(
            f"bit matrix must be (n, {bits}), got {bit_matrix.shape}"
        )
    word_count = words_for_bits(bits)
    n = bit_matrix.shape[0]
    padded = np.zeros((n, word_count * KEY_WORD_BITS), dtype=np.uint8)
    padded[:, word_count * KEY_WORD_BITS - bits :] = bit_matrix
    byte_rows = np.packbits(padded, axis=1)
    # Bytes are MSB-first per word and words are big-endian ordered here;
    # reverse the word axis back to little-endian storage order.
    words_be = np.ascontiguousarray(byte_rows).view(">u8")
    return words_be[:, ::-1].astype(np.uint64)


def rows_from_bits(bit_matrix: np.ndarray, row_bits: int) -> List[int]:
    """Pack an MSB-first bit matrix into one Python integer per row.

    The inverse of the per-row decode: column ``j`` carries weight
    ``2**(row_bits - 1 - j)``, matching the MSB-first row convention of
    :class:`~repro.memory.array.MemoryArray`.
    """
    if bit_matrix.ndim != 2 or bit_matrix.shape[1] != row_bits:
        raise ConfigurationError(
            f"bit matrix must be (n, {row_bits}), got {bit_matrix.shape}"
        )
    packed = np.packbits(bit_matrix, axis=1)
    pad = (-row_bits) % 8  # packbits zero-fills the low bits of the last byte
    nbytes = packed.shape[1]
    data = packed.tobytes()
    return [
        int.from_bytes(data[i * nbytes : (i + 1) * nbytes], "big") >> pad
        for i in range(bit_matrix.shape[0])
    ]


def _words_to_int(words: Sequence[int]) -> int:
    """Rebuild a Python int from little-endian word values (plain ints)."""
    if len(words) == 1:
        return words[0]
    value = 0
    for word in reversed(words):
        value = (value << KEY_WORD_BITS) | word
    return value


class DecodedMirror:
    """Incrementally-maintained decoded view of CA-RAM array content.

    Args:
        arrays: the physical :class:`~repro.memory.array.MemoryArray` list
            (one for a single slice).  All must share the same geometry.
        layout: the :class:`~repro.core.bucket.BucketLayout` that gives the
            rows their bucket/record structure.
        horizontal: True when the arrays form wider buckets (same row index
            across all arrays); False for vertical row-space concatenation.

    Attributes (all kept in sync by :meth:`sync`):
        valid: ``(buckets, slots)`` bool — slot occupancy.
        key_words: ``(buckets, slots, words)`` uint64 — stored key values.
        mask_words: ``(buckets, slots, words)`` uint64 — stored don't-care
            masks (zero for binary records).
        reach: ``(buckets,)`` int64 — the auxiliary spill-reach field.
        records: ``(buckets, slots)`` object — decoded ``Record`` instances
            (``None`` in invalid slots), used for winner extraction.
        data_words: ``(buckets, slots, data_word_count)`` uint64 — stored
            data payloads as little-endian words (zero columns when the
            record format carries no data), the numeric source the columnar
            result set gathers values from without touching ``records``.
        version: monotonically increasing content stamp, bumped whenever a
            sync re-decodes rows or a bulk image is installed — the
            coherence token the shared-memory exporter keys its re-export
            on.
    """

    def __init__(
        self,
        arrays: Sequence["MemoryArray"],
        layout: "BucketLayout",
        horizontal: bool = False,
    ) -> None:
        if not arrays:
            raise ConfigurationError("at least one memory array is required")
        rows = arrays[0].rows
        for array in arrays:
            if array.rows != rows or array.row_bits != arrays[0].row_bits:
                raise ConfigurationError(
                    "all mirrored arrays must share the same geometry"
                )
        self._arrays = list(arrays)
        self._layout = layout
        self._horizontal = horizontal
        self._rows = rows
        self._slice_slots = layout.slots_per_bucket
        if horizontal:
            self.buckets = rows
            self.slots = self._slice_slots * len(self._arrays)
        else:
            self.buckets = rows * len(self._arrays)
            self.slots = self._slice_slots
        key_bits = layout.record_format.key_bits
        self._key_bits = key_bits
        self._word_count = words_for_bits(key_bits)
        data_bits = layout.record_format.data_bits
        self._data_word_count = words_for_bits(data_bits) if data_bits else 0
        shape = (self.buckets, self.slots, self._word_count)
        self.valid = np.zeros((self.buckets, self.slots), dtype=bool)
        self.key_words = np.zeros(shape, dtype=np.uint64)
        self.mask_words = np.zeros(shape, dtype=np.uint64)
        self.reach = np.zeros(self.buckets, dtype=np.int64)
        self.records = np.empty((self.buckets, self.slots), dtype=object)
        self.data_words = np.zeros(
            (self.buckets, self.slots, self._data_word_count), dtype=np.uint64
        )
        self.version = 0
        self.width_words = np.array(
            int_to_words(mask_of(key_bits), self._word_count), dtype=np.uint64
        )
        self._dirty = [np.ones(rows, dtype=bool) for _ in self._arrays]
        self._any_dirty = True
        self.sync_count = 0
        self.rows_decoded = 0
        self._listeners: List[Callable[[int, int], None]] = []
        for slice_id, array in enumerate(self._arrays):
            listener = self._listener_for(slice_id)
            self._listeners.append(listener)
            array.subscribe_invalidation(listener)

    # ------------------------------------------------------------------
    # Invalidation / synchronization
    # ------------------------------------------------------------------

    def _listener_for(self, slice_id: int) -> Callable[[int, int], None]:
        dirty = self._dirty[slice_id]

        def invalidate(start_row: int, row_count: int) -> None:
            dirty[start_row : start_row + row_count] = True
            self._any_dirty = True

        return invalidate

    @property
    def key_bits(self) -> int:
        return self._key_bits

    @property
    def word_count(self) -> int:
        return self._word_count

    @property
    def data_word_count(self) -> int:
        """Words per stored data payload (0 when records carry no data)."""
        return self._data_word_count

    @property
    def dirty_row_count(self) -> int:
        """Rows waiting to be re-decoded on the next :meth:`sync`."""
        return int(sum(int(d.sum()) for d in self._dirty))

    def sync(self) -> int:
        """Re-decode every dirty row; returns the number of rows decoded."""
        if not self._any_dirty:
            return 0
        from repro.telemetry.profiling import profile

        decoded = 0
        updated: List[np.ndarray] = []
        with profile("mirror.incremental_decode"):
            for slice_id, array in enumerate(self._arrays):
                dirty = self._dirty[slice_id]
                dirty_rows = np.flatnonzero(dirty)
                if not dirty_rows.size:
                    continue
                # With a reliability guard installed the decode source is
                # the ECC-verified read: the mirror never adopts silently
                # corrupt rows.  All dirty rows are read *before* any mirror
                # state is overwritten, so an uncorrectable row raises while
                # the last-good decode is still intact — which is what makes
                # the mirror the recovery source of truth for quarantine.
                guard = array.guard
                row_reader = (
                    array.peek_row if guard is None else guard.verified_peek
                )
                row_values = [row_reader(row) for row in dirty_rows.tolist()]
                if self._horizontal:
                    buckets = dirty_rows
                    slot_base = slice_id * self._slice_slots
                else:
                    buckets = slice_id * self._rows + dirty_rows
                    slot_base = 0
                # The logical bucket's reach lives in its first physical
                # row — slice 0 for horizontal arrangements.
                self._decode_rows(
                    row_values,
                    buckets,
                    slot_base,
                    read_reach=not self._horizontal or slice_id == 0,
                )
                decoded += dirty_rows.size
                dirty[:] = False
                updated.append(buckets)
        self._any_dirty = False
        self.sync_count += 1
        self.rows_decoded += decoded
        if decoded:
            self.version += 1
        if updated:
            self._buckets_updated(
                np.unique(np.concatenate(updated))
                if len(updated) > 1
                else updated[0]
            )
        return decoded

    def _decode_rows(
        self,
        row_values: List[int],
        buckets: np.ndarray,
        slot_base: int,
        read_reach: bool,
    ) -> None:
        """Batched decode of whole physical rows into the mirror matrices.

        One bytes round-trip plus ``unpackbits`` turns the dirty rows into a
        bit matrix; every slot field is then a column slice re-packed through
        :func:`bits_to_words` — the decode direction of the bulk-build
        codecs.  Semantically identical to per-slot ``layout.read_slot``.
        """
        from repro.core.key import TernaryKey
        from repro.core.record import Record

        layout = self._layout
        fmt = layout.record_format
        n = len(row_values)
        if not n:
            return
        row_bits = layout.row_bits
        nbytes = (row_bits + 7) // 8
        buf = bytearray(n * nbytes)
        for i, value in enumerate(row_values):
            buf[i * nbytes : (i + 1) * nbytes] = value.to_bytes(nbytes, "big")
        bit_rows = np.unpackbits(
            np.frombuffer(bytes(buf), dtype=np.uint8).reshape(n, nbytes),
            axis=1,
        )[:, nbytes * 8 - row_bits :]

        if read_reach:
            aux_bits = layout.aux_bits
            if not aux_bits:
                self.reach[buckets] = 0
            elif aux_bits <= KEY_WORD_BITS:
                aux_words = bits_to_words(bit_rows[:, :aux_bits], aux_bits)
                self.reach[buckets] = aux_words[:, 0].astype(np.int64)
            else:
                self.reach[buckets] = [
                    layout.read_aux(value) for value in row_values
                ]

        slots = self._slice_slots
        slot_bits = fmt.slot_bits
        key_bits = fmt.key_bits
        word_count = self._word_count
        region = bit_rows[
            :, layout.aux_bits : layout.aux_bits + slots * slot_bits
        ].reshape(n, slots, slot_bits)
        valid = region[:, :, 0].astype(bool)
        key_cols = region[:, :, 1 : 1 + key_bits]
        if fmt.ternary:
            mask_cols = region[:, :, 1 + key_bits : 1 + 2 * key_bits]
            # TernaryKey normalizes the value under don't-care positions;
            # mirror the normalization so key_words matches record.key.value.
            key_cols = key_cols & (1 - mask_cols)
            mask_matrix = bits_to_words(
                mask_cols.reshape(n * slots, key_bits), key_bits
            ).reshape(n, slots, word_count)
            mask_matrix[~valid] = 0
        else:
            mask_matrix = np.zeros((n, slots, word_count), dtype=np.uint64)
        key_matrix = bits_to_words(
            key_cols.reshape(n * slots, key_bits), key_bits
        ).reshape(n, slots, word_count)
        key_matrix[~valid] = 0

        columns = slice(slot_base, slot_base + slots)
        self.valid[buckets, columns] = valid
        self.key_words[buckets, columns] = key_matrix
        self.mask_words[buckets, columns] = mask_matrix

        data_bits = fmt.data_bits
        if data_bits:
            data_start = 1 + fmt.key_storage_bits
            data_matrix = bits_to_words(
                region[:, :, data_start : data_start + data_bits].reshape(
                    n * slots, data_bits
                ),
                data_bits,
            ).reshape(n, slots, -1)
            data_matrix[~valid] = 0
            self.data_words[buckets, columns] = data_matrix
        else:
            data_matrix = None

        recs = np.full((n, slots), None, dtype=object)
        positions = np.argwhere(valid).tolist()
        if positions:
            key_list = key_matrix.tolist()
            mask_list = mask_matrix.tolist()
            data_list = data_matrix.tolist() if data_matrix is not None else None
            for i, j in positions:
                value = _words_to_int(key_list[i][j])
                mask = _words_to_int(mask_list[i][j])
                data = _words_to_int(data_list[i][j]) if data_list else 0
                recs[i][j] = Record(
                    key=TernaryKey(value=value, mask=mask, width=key_bits),
                    data=data,
                )
        self.records[buckets, columns] = recs

    def _buckets_updated(self, bucket_ids: np.ndarray) -> None:
        """Hook: the listed logical buckets were just re-decoded.

        The base mirror has nothing derived to maintain; subclasses (the
        bit-plane transpose) refresh their layouts from the fresh matrices.
        """

    def detach(self) -> None:
        """Unsubscribe from the arrays' invalidation streams (called when a
        slice/group swaps its mirror layout for another engine)."""
        for array, listener in zip(self._arrays, self._listeners):
            array.unsubscribe_invalidation(listener)
        self._listeners = []

    def install(
        self,
        valid: np.ndarray,
        key_words: np.ndarray,
        mask_words: np.ndarray,
        reach: np.ndarray,
        records: np.ndarray,
        data_words: Optional[np.ndarray] = None,
    ) -> None:
        """Adopt a complete decoded image wholesale (encode direction).

        The bulk-build pipeline already holds the decoded view it is about
        to serialize into the arrays; installing it here skips the O(rows x
        slots) big-int re-decode the invalidation listeners would otherwise
        schedule.  All dirty flags are cleared — the caller vouches that the
        image matches the array content it just loaded.
        """
        expected = (self.buckets, self.slots)
        if valid.shape != expected or records.shape != expected:
            raise ConfigurationError(
                f"decoded image shape {valid.shape} != {expected}"
            )
        if key_words.shape != self.key_words.shape:
            raise ConfigurationError(
                f"key-word shape {key_words.shape} != {self.key_words.shape}"
            )
        if mask_words.shape != self.mask_words.shape:
            raise ConfigurationError(
                f"mask-word shape {mask_words.shape} != {self.mask_words.shape}"
            )
        if reach.shape != (self.buckets,):
            raise ConfigurationError(
                f"reach shape {reach.shape} != ({self.buckets},)"
            )
        self.valid[...] = valid
        self.key_words[...] = key_words
        self.mask_words[...] = mask_words
        self.reach[...] = reach
        self.records[...] = records
        if self._data_word_count:
            if data_words is not None:
                if data_words.shape != self.data_words.shape:
                    raise ConfigurationError(
                        f"data-word shape {data_words.shape} != "
                        f"{self.data_words.shape}"
                    )
                self.data_words[...] = data_words
            else:
                # Legacy images carry no data grid — derive it from the
                # record objects so the columnar gather stays coherent.
                self.data_words[...] = 0
                dwc = self._data_word_count
                for i, j in np.argwhere(self.valid):
                    self.data_words[i, j] = int_to_words(
                        self.records[i, j].data, dwc
                    )
        for dirty in self._dirty:
            dirty[:] = False
        self._any_dirty = False
        self.sync_count += 1
        self.version += 1
        self._buckets_updated(np.arange(self.buckets))

    def shared_export_arrays(self) -> dict:
        """Arrays a shared-memory export must copy for worker-side matching.

        The word-layout match kernel reads exactly these matrices (plus the
        scalar geometry shipped in the export spec); ``records`` and
        ``data_words`` stay parent-side because workers return only
        hit/row/slot coordinates.
        """
        return {
            "valid": self.valid,
            "key_words": self.key_words,
            "mask_words": self.mask_words,
            "reach": self.reach,
        }

    # ------------------------------------------------------------------
    # Vectorized ternary matching (Figure 4(b), word-wise)
    # ------------------------------------------------------------------

    def match_rows(
        self,
        bucket_ids: np.ndarray,
        query_words: np.ndarray,
        query_mask_words: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Match a batch of queries against their (gathered) home buckets.

        Args:
            bucket_ids: ``(B,)`` bucket index per query.
            query_words: ``(B, words)`` packed search keys.
            query_mask_words: ``(B, words)`` packed search-key don't-care
                masks, or None for all-binary searches.

        Returns:
            ``(B, slots)`` bool match matrix, slot 0 first.

        Raises:
            ConfigurationError: on out-of-range bucket ids (negative ids
                would otherwise wrap around silently) or a query matrix
                whose word width does not match the stored keys.
        """
        ids = np.asarray(bucket_ids)
        if ids.size and (
            int(ids.min()) < 0 or int(ids.max()) >= self.buckets
        ):
            raise ConfigurationError(
                f"bucket ids out of range [0, {self.buckets})"
            )
        if query_words.ndim != 2 or query_words.shape[1] != self._word_count:
            raise ConfigurationError(
                f"query matrix must be (B, {self._word_count}), "
                f"got {query_words.shape}"
            )
        stored = self.key_words[bucket_ids]
        stored_mask = self.mask_words[bucket_ids]
        if query_mask_words is None:
            care = ~stored_mask & self.width_words
        else:
            care = ~(stored_mask | query_mask_words[:, None, :]) & self.width_words
        diff = (stored ^ query_words[:, None, :]) & care
        return ~diff.any(axis=2) & self.valid[bucket_ids]

    def match_all(
        self, query_words: np.ndarray, query_mask_words: np.ndarray
    ) -> np.ndarray:
        """Match one ternary predicate against every bucket.

        Args:
            query_words / query_mask_words: ``(words,)`` packed predicate.

        Returns:
            ``(buckets, slots)`` bool match matrix.
        """
        care = ~(self.mask_words | query_mask_words) & self.width_words
        diff = (self.key_words ^ query_words) & care
        return ~diff.any(axis=2) & self.valid

    def match_predicate(self, search_key: int, search_mask: int) -> np.ndarray:
        """Integer-predicate convenience wrapper around :meth:`match_all`."""
        full = mask_of(self._key_bits)
        query = np.array(
            int_to_words(search_key & full, self._word_count), dtype=np.uint64
        )
        query_mask = np.array(
            int_to_words(search_mask & full, self._word_count), dtype=np.uint64
        )
        return self.match_all(query, query_mask)

    def iter_valid(self):
        """Yield ``(bucket, slot, record)`` for every valid slot, row-major
        (bucket ascending, slot ascending — the scalar iteration order)."""
        for bucket, slot in np.argwhere(self.valid):
            yield int(bucket), int(slot), self.records[bucket, slot]


__all__ = [
    "DecodedMirror",
    "KEY_WORD_BITS",
    "words_for_bits",
    "int_to_words",
    "keys_to_words",
    "words_to_bits",
    "bits_to_words",
    "rows_from_bits",
]
