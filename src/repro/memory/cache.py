"""A compact set-associative cache simulator.

The paper motivates CA-RAM by the poor cache behavior of software search:
"A conventional search operation typically involves multiple memory accesses
following a pointer-chasing pattern" (Section 1) and software IP lookup
"usually require[s] at least 4 to 6 memory accesses" (Section 4.1).  To put
numbers behind those claims, the software baselines (chained hash table,
binary trie) replay their memory-touch traces through this cache model and
report hit/miss counts and an average access latency.

The model is a single-level, write-allocate, LRU, set-associative cache over
byte addresses — deliberately small, because the comparison only needs the
qualitative gap (pointer chasing misses; CA-RAM's single row access does
not), not a faithful processor model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError


@dataclass
class CacheStats:
    """Hit/miss counters and derived latency for one simulation run."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def average_latency_cycles(self, hit_cycles: float, miss_cycles: float) -> float:
        """Average access latency under the given hit/miss costs."""
        if not self.accesses:
            return 0.0
        total = self.hits * hit_cycles + self.misses * miss_cycles
        return total / self.accesses


class CacheSimulator:
    """Set-associative LRU cache over byte addresses.

    Args:
        size_bytes: total capacity.
        line_bytes: cache line size (power of two).
        associativity: ways per set.
    """

    def __init__(
        self,
        size_bytes: int = 32 * 1024,
        line_bytes: int = 64,
        associativity: int = 4,
    ) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ConfigurationError(
                f"line_bytes must be a power of two, got {line_bytes}"
            )
        if associativity <= 0:
            raise ConfigurationError(
                f"associativity must be positive, got {associativity}"
            )
        if size_bytes % (line_bytes * associativity) != 0:
            raise ConfigurationError(
                "size_bytes must be a multiple of line_bytes * associativity"
            )
        self._line_bytes = line_bytes
        self._associativity = associativity
        self._set_count = size_bytes // (line_bytes * associativity)
        # Each set is an OrderedDict tag -> None in LRU order (oldest first).
        self._sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(self._set_count)
        ]
        self.stats = CacheStats()

    @property
    def set_count(self) -> int:
        return self._set_count

    @property
    def line_bytes(self) -> int:
        return self._line_bytes

    @property
    def associativity(self) -> int:
        return self._associativity

    def access(self, address: int) -> bool:
        """Touch one byte address.  Returns True on a hit.

        Misses allocate the line, evicting the LRU way when the set is full.
        """
        if address < 0:
            raise ConfigurationError(f"address must be non-negative, got {address}")
        line = address // self._line_bytes
        index = line % self._set_count
        tag = line // self._set_count
        ways = self._sets[index]
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self._associativity:
            ways.popitem(last=False)
        ways[tag] = None
        return False

    def access_block(self, address: int, length: int) -> int:
        """Touch every line covered by ``[address, address + length)``.

        Returns the number of misses incurred.
        """
        if length <= 0:
            return 0
        first = address // self._line_bytes
        last = (address + length - 1) // self._line_bytes
        misses = 0
        for line in range(first, last + 1):
            if not self.access(line * self._line_bytes):
                misses += 1
        return misses

    def flush(self) -> None:
        """Empty the cache (keeps statistics)."""
        for ways in self._sets:
            ways.clear()

    def reset(self) -> None:
        """Empty the cache and clear statistics."""
        self.flush()
        self.stats = CacheStats()


__all__ = ["CacheSimulator", "CacheStats"]
