"""Bit-sliced (transposed) decoded mirror: one uint64 plane per key bit.

:class:`~repro.memory.mirror.DecodedMirror` keeps stored keys slot-major —
``key_words[bucket, slot, word]`` — which makes the batch match a per-slot
word comparison.  :class:`BitPlaneMirror` additionally maintains the
*transpose*: for every bucket, key bit ``i`` of all ``S`` slots packed into
``ceil(S / 64)`` uint64 words (slot ``s`` is bit ``s % 64`` of lane
``s // 64``).  That is the layout DRAMA uses for bit-serial search over
commodity DRAM arrays (PAPERS.md), and it turns a whole-bucket ternary
match into ``N`` XOR/AND ops plus one OR-reduction — evaluated by
:mod:`repro.core.bitmatch` without ever expanding a per-slot boolean
matrix.

The planes ride the *same* coherence protocol as the word matrices: the
base class re-decodes dirty rows on :meth:`~DecodedMirror.sync` and then
calls the :meth:`~DecodedMirror._buckets_updated` hook with exactly the
buckets that changed, so the transpose is refreshed incrementally — churn
cost stays proportional to the dirty set for both layouts.  Bulk-build
:meth:`~DecodedMirror.install` triggers the same hook over all buckets.

Stored don't-care planes are maintained only once a synced bucket actually
carries a masked key (``has_stored_masks``); all-binary stores skip the
mask gather and AND entirely on the match hot path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.memory.mirror import DecodedMirror, words_to_bits

#: Slots per packed lane — one uint64 word of the transposed layout.
SLOT_WORD_BITS = 64


def pack_slot_axis(bits: np.ndarray) -> np.ndarray:
    """Pack the trailing slot axis into LSB-first uint64 lanes.

    Slot ``s`` becomes bit ``s % 64`` of lane ``s // 64`` — the bit order
    :func:`~repro.core.bitmatch.priority_encode_packed` expects (lowest set
    bit = lowest slot = highest match priority).
    """
    slot_count = bits.shape[-1]
    lanes = -(-slot_count // SLOT_WORD_BITS)
    pad = lanes * SLOT_WORD_BITS - slot_count
    matrix = bits.astype(np.uint8)
    if pad:
        matrix = np.concatenate(
            [matrix, np.zeros(bits.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    packed = np.packbits(matrix, axis=-1, bitorder="little")
    return np.ascontiguousarray(packed).view("<u8").astype(
        np.uint64, copy=False
    )


class BitPlaneMirror(DecodedMirror):
    """Decoded mirror that also keeps the bit-plane transpose of the keys.

    Additional attributes (all coherent after :meth:`sync`):
        key_planes: ``(buckets, key_bits, lanes)`` uint64 — stored key bit
            ``i`` (plane 0 = MSB, matching ``words_to_bits`` columns) of
            slot ``s`` is bit ``s % 64`` of ``key_planes[b, i, s // 64]``.
        mask_planes: same shape — stored don't-care bits (all zero until a
            masked key is synced; see ``has_stored_masks``).
        valid_words: ``(buckets, lanes)`` uint64 packed slot occupancy.
        has_stored_masks: True once any synced bucket carries a stored
            mask; the match kernel skips the mask planes while False.
        plane_refreshes: number of incremental transpose refreshes.
    """

    def __init__(
        self,
        arrays: Sequence,
        layout,
        horizontal: bool = False,
    ) -> None:
        super().__init__(arrays, layout, horizontal)
        self.lanes = -(-self.slots // SLOT_WORD_BITS)
        plane_shape = (self.buckets, self._key_bits, self.lanes)
        self.key_planes = np.zeros(plane_shape, dtype=np.uint64)
        self.mask_planes = np.zeros(plane_shape, dtype=np.uint64)
        self.valid_words = np.zeros(
            (self.buckets, self.lanes), dtype=np.uint64
        )
        self.has_stored_masks = False
        self.plane_refreshes = 0

    def _buckets_updated(self, bucket_ids: np.ndarray) -> None:
        ids = np.asarray(bucket_ids)
        if not ids.size:
            return
        count = ids.size
        slots = self.slots
        key_bits = self._key_bits
        word_count = self._word_count
        key_bit_matrix = words_to_bits(
            self.key_words[ids].reshape(count * slots, word_count), key_bits
        ).reshape(count, slots, key_bits)
        self.key_planes[ids] = pack_slot_axis(
            np.swapaxes(key_bit_matrix, 1, 2)
        )
        stored_masks = self.mask_words[ids]
        if self.has_stored_masks or stored_masks.any():
            # Once any stored mask exists the mask planes are maintained for
            # every refreshed bucket (including clearing stale ones); the
            # flag never reverts, which only costs the AND, never parity.
            self.has_stored_masks = True
            mask_bit_matrix = words_to_bits(
                stored_masks.reshape(count * slots, word_count), key_bits
            ).reshape(count, slots, key_bits)
            self.mask_planes[ids] = pack_slot_axis(
                np.swapaxes(mask_bit_matrix, 1, 2)
            )
        self.valid_words[ids] = pack_slot_axis(self.valid[ids])
        self.plane_refreshes += 1

    def shared_export_arrays(self) -> dict:
        """Arrays a shared-memory export copies for the plane match kernel.

        ``has_stored_masks`` is *not* exported — it is a one-way flag that
        can flip between exports, so the dispatcher ships its current value
        per task instead.
        """
        return {
            "key_planes": self.key_planes,
            "mask_planes": self.mask_planes,
            "valid_words": self.valid_words,
            "reach": self.reach,
        }


__all__ = ["BitPlaneMirror", "pack_slot_axis", "SLOT_WORD_BITS"]
