"""Device timing models for the CA-RAM backing store.

Section 3.4 of the paper characterizes CA-RAM search latency as the memory
access time plus the (pipelinable) match time, and search bandwidth as
``B = N_slice / n_mem * f_clk`` where ``n_mem`` is the minimum number of
cycles between back-to-back accesses to one array.  These dataclasses carry
the three device parameters the formulas need: clock frequency, random-access
latency, and the back-to-back cycle count.

The default constants follow the devices the paper cites:

* ``DRAM_TIMING`` — the Morishita et al. 312 MHz random-cycle embedded DRAM
  macro, operated conservatively at 200 MHz with a 6-cycle access, matching
  the Figure 8 assumptions ("a more aggressive 200MHz CA-RAM operation ...
  memory access latency is at least 6 cycles (DRAM)").
* ``SRAM_TIMING`` — a single-cycle random-access SRAM at the same 200 MHz.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class MemoryTechnology(enum.Enum):
    """Backing-store technology for a CA-RAM slice."""

    SRAM = "sram"
    DRAM = "dram"


@dataclass(frozen=True)
class MemoryTiming:
    """Timing parameters of one memory array.

    Attributes:
        technology: SRAM or DRAM.
        clock_hz: operating clock frequency of the array.
        access_cycles: cycles from request to row data available (latency).
        cycle_between_accesses: minimum cycles between two back-to-back
            accesses to the same array (the paper's ``n_mem``); 1 for a fully
            pipelined array.
    """

    technology: MemoryTechnology
    clock_hz: float
    access_cycles: int
    cycle_between_accesses: int

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError(f"clock_hz must be positive: {self.clock_hz}")
        if self.access_cycles < 1:
            raise ConfigurationError(
                f"access_cycles must be >= 1: {self.access_cycles}"
            )
        if self.cycle_between_accesses < 1:
            raise ConfigurationError(
                f"cycle_between_accesses must be >= 1: {self.cycle_between_accesses}"
            )

    @property
    def access_time_s(self) -> float:
        """Random access latency in seconds (the paper's ``T_mem``)."""
        return self.access_cycles / self.clock_hz

    def accesses_per_second(self) -> float:
        """Peak accesses per second for one array: ``f_clk / n_mem``."""
        return self.clock_hz / self.cycle_between_accesses

    def scaled_to(self, clock_hz: float) -> "MemoryTiming":
        """Return a copy of this timing at a different clock frequency."""
        return MemoryTiming(
            technology=self.technology,
            clock_hz=clock_hz,
            access_cycles=self.access_cycles,
            cycle_between_accesses=self.cycle_between_accesses,
        )


SRAM_TIMING = MemoryTiming(
    technology=MemoryTechnology.SRAM,
    clock_hz=200e6,
    access_cycles=1,
    cycle_between_accesses=1,
)

DRAM_TIMING = MemoryTiming(
    technology=MemoryTechnology.DRAM,
    clock_hz=200e6,
    access_cycles=6,
    cycle_between_accesses=6,
)

__all__ = ["MemoryTechnology", "MemoryTiming", "SRAM_TIMING", "DRAM_TIMING"]
