"""Row-organized bit-addressable memory array.

This is the dense storage a CA-RAM slice is built on (Figure 3 of the paper):
``2**R`` rows of ``C`` bits each.  The array itself is content-agnostic — it
only knows rows of bits.  Bucket/record structure is layered on top by
:mod:`repro.core.bucket`.  The array also serves the "RAM mode" of Section
3.2 directly: it is an ordinary address-in/data-out memory.

Rows are stored as Python integers (arbitrary-precision bit vectors, MSB
first) which keeps sub-field extraction exact for any row width, including
the paper's 12,288-bit trigram rows.  Access counters are kept so behavioral
experiments can report memory-access statistics without any instrumentation
in calling code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import ConfigurationError, RamModeError
from repro.memory.timing import MemoryTiming, SRAM_TIMING
from repro.utils.bits import extract_bits, mask_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.trace import Tracer


@dataclass
class ArrayStats:
    """Access counters for one memory array."""

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes

    def as_dict(self) -> Dict[str, int]:
        """Structured export (the telemetry provider contract)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "total_accesses": self.total_accesses,
        }


class MemoryArray:
    """A ``rows x row_bits`` memory array with read/write row access.

    Args:
        rows: number of rows (the paper's ``2**R``; any positive count is
            accepted so partial arrays can model overflow areas).
        row_bits: row width ``C`` in bits.
        timing: device timing; defaults to single-cycle SRAM.
    """

    def __init__(
        self,
        rows: int,
        row_bits: int,
        timing: MemoryTiming = SRAM_TIMING,
    ) -> None:
        if rows <= 0:
            raise ConfigurationError(f"rows must be positive, got {rows}")
        if row_bits <= 0:
            raise ConfigurationError(f"row_bits must be positive, got {row_bits}")
        self._rows = rows
        self._row_bits = row_bits
        self._timing = timing
        self._data: List[int] = [0] * rows
        self._invalidation_listeners: List[Callable[[int, int], None]] = []
        self.stats = ArrayStats()
        #: Optional structured-event tracer; ``None`` (the default) keeps
        #: the hot paths at a single attribute check.
        self.tracer: Optional["Tracer"] = None
        #: Optional :class:`~repro.reliability.guard.RowGuard` intercepting
        #: reads/writes for fault injection + ECC; ``None`` (the default)
        #: keeps every access at a single attribute check.
        self.guard = None

    # ------------------------------------------------------------------
    # Content-change notification (decoded-mirror invalidation)
    # ------------------------------------------------------------------

    def subscribe_invalidation(self, listener: Callable[[int, int], None]) -> None:
        """Register ``listener(start_row, row_count)`` to be called whenever
        row content changes (write, bulk load, fill).

        Decoded mirrors (:mod:`repro.memory.mirror`) subscribe here so they
        can re-decode only the rows that actually changed.
        """
        self._invalidation_listeners.append(listener)

    def unsubscribe_invalidation(
        self, listener: Callable[[int, int], None]
    ) -> None:
        """Remove a previously subscribed listener (no-op when absent).

        Mirrors detach themselves here when a slice swaps its decoded
        layout for another engine, so abandoned mirrors stop receiving
        dirty-row notifications (and can be garbage collected).
        """
        try:
            self._invalidation_listeners.remove(listener)
        except ValueError:
            pass

    def _invalidate(self, start_row: int, row_count: int) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "mirror_invalidate", start=start_row, rows=row_count
            )
        for listener in self._invalidation_listeners:
            listener(start_row, row_count)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def rows(self) -> int:
        """Number of rows."""
        return self._rows

    @property
    def row_bits(self) -> int:
        """Row width in bits (the paper's ``C``)."""
        return self._row_bits

    @property
    def capacity_bits(self) -> int:
        """Total storage in bits."""
        return self._rows * self._row_bits

    @property
    def timing(self) -> MemoryTiming:
        """Device timing of this array."""
        return self._timing

    # ------------------------------------------------------------------
    # Row access (RAM mode)
    # ------------------------------------------------------------------

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._rows:
            raise RamModeError(f"row {row} out of range [0, {self._rows})")

    def _check_field(self, msb_offset: int, length: int) -> None:
        if length <= 0:
            raise RamModeError(f"field length must be positive: {length}")
        if msb_offset < 0 or msb_offset + length > self._row_bits:
            raise RamModeError(
                f"field [{msb_offset}, {msb_offset + length}) exceeds the "
                f"{self._row_bits}-bit row"
            )

    def read_row(self, row: int) -> int:
        """Read a full row as an MSB-first bit vector (integer).

        With a reliability guard installed, the read passes through fault
        injection and the ECC check — it returns corrected data or raises
        :class:`~repro.errors.CorruptionError`, never silently wrong bits.
        """
        self._check_row(row)
        self.stats.reads += 1
        if self.tracer is not None:
            self.tracer.emit("bucket_read", row=row)
        value = self._data[row]
        if self.guard is not None:
            value = self.guard.on_read(row, value)
        return value

    def write_row(self, row: int, value: int) -> None:
        """Overwrite a full row."""
        self._check_row(row)
        if value < 0 or value > mask_of(self._row_bits):
            raise RamModeError(
                f"value does not fit in a {self._row_bits}-bit row"
            )
        self.stats.writes += 1
        if self.guard is not None:
            value = self.guard.on_write(row, value)
        self._data[row] = value
        self._invalidate(row, 1)

    def read_field(self, row: int, msb_offset: int, length: int) -> int:
        """Read ``length`` bits of a row starting ``msb_offset`` from the MSB.

        Counts as one row read (a real array always fetches the whole row).
        """
        self._check_field(msb_offset, length)
        value = self.read_row(row)
        return extract_bits(value, self._row_bits, msb_offset, length)

    def write_field(self, row: int, msb_offset: int, length: int, value: int) -> None:
        """Read-modify-write ``length`` bits of a row.

        Counts as one read plus one write.
        """
        self._check_field(msb_offset, length)
        if value < 0 or value > mask_of(length):
            raise RamModeError(f"field value does not fit in {length} bits")
        old = self.read_row(row)
        shift = self._row_bits - msb_offset - length
        cleared = old & ~(mask_of(length) << shift)
        self.write_row(row, cleared | (value << shift))

    def peek_row(self, row: int) -> int:
        """Read a row without touching the access counters (for tests/debug)."""
        self._check_row(row)
        return self._data[row]

    def verified_peek_row(self, row: int) -> int:
        """Uncounted row read through the ECC check when a guard is
        installed (plain :meth:`peek_row` otherwise).

        Maintenance paths (insert/delete read-modify-writes) use this so
        they never fold silently corrupted row content back into a fresh
        checkword.
        """
        if self.guard is not None:
            return self.guard.verified_peek(row)
        self._check_row(row)
        return self._data[row]

    def charge_reads(self, count: int) -> None:
        """Account ``count`` row fetches served on this array's behalf.

        The decoded mirror answers batch lookups without touching row
        content; callers that opt into physical-counter parity
        (``account_reads``) charge the equivalent fetches here so
        :class:`ArrayStats` matches the scalar path exactly.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self.stats.reads += count
        if self.tracer is not None and count:
            self.tracer.emit("bucket_read", count=count, mirror_served=True)

    def fill(self, value: int = 0) -> None:
        """Initialize every row to ``value`` without counting accesses."""
        if value < 0 or value > mask_of(self._row_bits):
            raise RamModeError(f"value does not fit in a {self._row_bits}-bit row")
        self._data = [value] * self._rows
        if self.guard is not None:
            self.guard.on_fill(value)
        self._invalidate(0, self._rows)

    def snapshot(self) -> List[int]:
        """Return a copy of all rows (for save/restore and DMA-style copies)."""
        return list(self._data)

    def load(self, rows: List[int], offset: int = 0) -> None:
        """Bulk-load rows starting at ``offset`` (models the paper's DMA
        construction of a pre-hashed database in RAM mode)."""
        if offset < 0 or offset + len(rows) > self._rows:
            raise RamModeError(
                f"cannot load {len(rows)} rows at offset {offset} "
                f"into a {self._rows}-row array"
            )
        limit = mask_of(self._row_bits)
        # Validate the whole image before mutating anything, so a bad row
        # cannot leave the array partially loaded.
        for i, value in enumerate(rows):
            if value < 0 or value > limit:
                raise RamModeError(f"row {offset + i} value does not fit")
        if self.guard is not None:
            rows = self.guard.on_load(offset, rows)
        for i, value in enumerate(rows):
            self._data[offset + i] = value
        self.stats.writes += len(rows)
        if self.tracer is not None:
            self.tracer.emit("dma_burst", offset=offset, rows=len(rows))
        self._invalidate(offset, len(rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryArray(rows={self._rows}, row_bits={self._row_bits}, "
            f"tech={self._timing.technology.value})"
        )


__all__ = ["MemoryArray", "ArrayStats"]
