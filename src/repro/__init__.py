"""CA-RAM: a behavioral reproduction of the ISPASS 2007 memory substrate.

Cho, Martin, Xu, Hammoud, Melhem - "CA-RAM: A High-Performance Memory
Substrate for Search-Intensive Applications", ISPASS 2007.

Top-level convenience imports cover the core model; the full surface lives
in the subpackages:

* :mod:`repro.core` - slices, subsystems, match processors, ternary keys;
* :mod:`repro.hashing` - hash functions, software tables, occupancy/AMAL
  analytics;
* :mod:`repro.cam` - CAM/TCAM baselines and published cell constants;
* :mod:`repro.cost` - area / power / bandwidth / synthesis models;
* :mod:`repro.memory` - arrays, device timing, banks, cache model;
* :mod:`repro.apps.iplookup` / :mod:`repro.apps.trigram` - the two
  application studies;
* :mod:`repro.experiments` - one runnable harness per table/figure;
* :mod:`repro.telemetry` - structured tracing, metrics registry, phase
  profiling, and snapshot diffing across the whole stack;
* :mod:`repro.reliability` - fault injection, per-row segmented SECDED
  with background scrubbing, graceful degradation, and the chaos-soak
  harness.
"""

from repro.core import (
    Arrangement,
    CARAMSlice,
    CARAMSubsystem,
    Record,
    RecordFormat,
    SearchResult,
    SliceConfig,
    SliceGroup,
    TernaryKey,
)
from repro.errors import (
    CapacityError,
    CaRamError,
    ConfigurationError,
    CorruptionError,
    KeyFormatError,
    RamModeError,
    ReliabilityError,
)
from repro.reliability import FaultConfig, ReliabilityPolicy

__version__ = "1.0.0"

__all__ = [
    "Arrangement",
    "CARAMSlice",
    "CARAMSubsystem",
    "Record",
    "RecordFormat",
    "SearchResult",
    "SliceConfig",
    "SliceGroup",
    "TernaryKey",
    "CaRamError",
    "CapacityError",
    "ConfigurationError",
    "CorruptionError",
    "KeyFormatError",
    "RamModeError",
    "ReliabilityError",
    "FaultConfig",
    "ReliabilityPolicy",
    "__version__",
]
