"""Deterministic random-number-generator helpers.

Every experiment in the reproduction is seeded so the tables and figures are
bit-for-bit repeatable.  These helpers standardize how seeds are turned into
:class:`numpy.random.Generator` instances and how independent child streams
are derived for multi-part workload generators.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from repro.errors import ConfigurationError

SeedLike = Union[int, np.random.Generator, None]

DEFAULT_SEED = 0x5EED_CA_4A


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a flexible seed spec.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (library default seed, *not* entropy — reproducibility first).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    Child streams are independent regardless of how much randomness each
    consumer draws, so adding draws to one workload component never perturbs
    another.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(
        seed if isinstance(seed, int) else DEFAULT_SEED
    )
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    return [np.random.default_rng(child) for child in root.spawn(count)]


def derive_seed(seed: SeedLike, salt: str) -> int:
    """Mix a string salt into a seed, returning a new integer seed.

    Used to give named sub-experiments (e.g. ``"table2:designA"``) their own
    deterministic streams.
    """
    base = seed if isinstance(seed, int) else DEFAULT_SEED
    mixed = base
    for ch in salt:
        mixed = (mixed * 1_000_003 + ord(ch)) % (2**63)
    return mixed


__all__ = ["SeedLike", "DEFAULT_SEED", "make_rng", "spawn_rngs", "derive_seed"]
