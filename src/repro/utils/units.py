"""Units and formatting helpers for the cost models and reports.

The paper reports areas in µm² and mm², power in mW and W, and capacities in
bits/Kb/Mb.  Internally the cost models keep canonical units (µm², mW, bits,
Hz); these helpers convert and pretty-print for the experiment reports.
"""

from __future__ import annotations

UM2_PER_MM2 = 1_000_000.0
MW_PER_W = 1_000.0
BITS_PER_KBIT = 1_024
BITS_PER_MBIT = 1_024 * 1_024


def mm2(area_um2: float) -> float:
    """Convert µm² to mm²."""
    return area_um2 / UM2_PER_MM2


def mbits(bits: float) -> float:
    """Convert a bit count to Mbit (2**20 bits, as in device datasheets)."""
    return bits / BITS_PER_MBIT


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format a value with an SI prefix: ``format_si(2.5e9, 'Hz')`` → '2.5 GHz'.

    Chooses the prefix that leaves a mantissa in [1, 1000) when possible.
    """
    prefixes = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
    ]
    if value == 0:
        return f"0 {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def format_area_um2(area_um2: float) -> str:
    """Render an area: µm² below 0.1 mm², mm² above."""
    if area_um2 < 0.1 * UM2_PER_MM2:
        return f"{area_um2:,.1f} um^2"
    return f"{mm2(area_um2):,.3f} mm^2"


def format_power_mw(power_mw: float) -> str:
    """Render a power figure: mW below 1 W, W above."""
    if power_mw < MW_PER_W:
        return f"{power_mw:,.2f} mW"
    return f"{power_mw / MW_PER_W:,.3f} W"


__all__ = [
    "UM2_PER_MM2",
    "MW_PER_W",
    "BITS_PER_KBIT",
    "BITS_PER_MBIT",
    "mm2",
    "mbits",
    "format_si",
    "format_area_um2",
    "format_power_mw",
]
