"""Bit-manipulation helpers used by keys, index generators, and arrays.

Keys in the CA-RAM model are plain Python integers interpreted as fixed-width
bit vectors, MSB first (bit 0 of a width-W value is its most significant bit,
matching the way the paper numbers address bits: "the first 16 bits of an IP
address" are the high-order bits).  These helpers centralize that convention
so the rest of the library never re-derives shift arithmetic.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError


def mask_of(width: int) -> int:
    """Return a mask with the low ``width`` bits set.

    >>> mask_of(4)
    15
    """
    if width < 0:
        raise ConfigurationError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_length_for(count: int) -> int:
    """Return the number of bits needed to index ``count`` distinct values.

    >>> bit_length_for(2048)
    11
    """
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    return (count - 1).bit_length() if count > 1 else 0


def extract_bits(value: int, width: int, msb_offset: int, length: int) -> int:
    """Extract ``length`` bits starting ``msb_offset`` bits from the MSB.

    ``value`` is interpreted as a ``width``-bit vector.  ``msb_offset`` of 0
    means the extraction starts at the most significant bit.

    >>> extract_bits(0b1011_0000, 8, 0, 4)
    11
    >>> extract_bits(0b1011_0000, 8, 2, 3)
    6
    """
    if msb_offset < 0 or length < 0 or msb_offset + length > width:
        raise ConfigurationError(
            f"cannot extract bits [{msb_offset}, {msb_offset + length}) "
            f"from a {width}-bit value"
        )
    shift = width - msb_offset - length
    return (value >> shift) & mask_of(length)


def select_bits(value: int, width: int, positions: Sequence[int]) -> int:
    """Concatenate the bits of ``value`` at ``positions`` (MSB-first indices).

    Position 0 is the most significant bit of the ``width``-bit ``value``.
    The first position becomes the most significant bit of the result.  This
    is the bit-selection hashing primitive of Zane et al. used by the paper's
    IP-lookup index generator.

    >>> bin(select_bits(0b10110000, 8, [0, 2, 3]))
    '0b111'
    """
    result = 0
    for pos in positions:
        result = (result << 1) | extract_bits(value, width, pos, 1)
    return result


def to_bit_list(value: int, width: int) -> List[int]:
    """Expand ``value`` into a list of ``width`` bits, MSB first.

    >>> to_bit_list(0b101, 4)
    [0, 1, 0, 1]
    """
    if value < 0 or value > mask_of(width):
        raise ConfigurationError(f"value {value} does not fit in {width} bits")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def from_bit_list(bits: Iterable[int]) -> int:
    """Pack an MSB-first bit iterable back into an integer.

    >>> from_bit_list([0, 1, 0, 1])
    5
    """
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ConfigurationError(f"bits must be 0 or 1, got {bit!r}")
        value = (value << 1) | bit
    return value


def reverse_bits(value: int, width: int) -> int:
    """Reverse the bit order of a ``width``-bit value.

    >>> reverse_bits(0b1100, 4)
    3
    """
    return from_bit_list(reversed(to_bit_list(value, width)))
