"""Shared low-level helpers: bit manipulation, deterministic RNG, units."""

from repro.utils.bits import (
    bit_length_for,
    extract_bits,
    from_bit_list,
    mask_of,
    reverse_bits,
    select_bits,
    to_bit_list,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.units import (
    format_area_um2,
    format_power_mw,
    format_si,
    mbits,
    mm2,
)

__all__ = [
    "bit_length_for",
    "extract_bits",
    "from_bit_list",
    "mask_of",
    "reverse_bits",
    "select_bits",
    "to_bit_list",
    "make_rng",
    "spawn_rngs",
    "format_area_um2",
    "format_power_mw",
    "format_si",
    "mbits",
    "mm2",
]
