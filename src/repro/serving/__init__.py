"""The serving tier: CA-RAM as a sharded, coalescing async service.

Layers (each its own module, composable separately):

* :mod:`repro.serving.router` — keyspace partitioning (consistent-hash
  for point keys, prefix-range for LPM).
* :mod:`repro.serving.cluster` — N ``CARAMSubsystem`` shards behind one
  router: loading, the direct synchronous batch reference path, rollup
  telemetry, lifecycle.
* :mod:`repro.serving.service` — the asyncio front end: request
  coalescing into columnar batches, admission control/load shedding
  (:class:`~repro.errors.ServiceOverloadError`), graceful drain.
* :mod:`repro.serving.loadgen` — closed/open-loop load generation with
  Zipf-skewed traffic and per-request answer verification.
* :mod:`repro.serving.replication` — replica sets, chaos injection, and
  the fault-tolerant request path (deadlines, retries, hedging,
  circuit-breaker membership,
  :class:`~repro.errors.ShardUnavailableError`).
"""

from repro.serving.cluster import CaramCluster, CaramShard, ShardSpec
from repro.serving.loadgen import (
    LoadReport,
    RequestStream,
    make_request_stream,
    run_closed_loop,
    run_open_loop,
)
from repro.serving.router import (
    ConsistentHashRouter,
    PrefixRangeRouter,
    ShardRouter,
)
from repro.serving.replication import (
    ChaosSpec,
    FailoverPolicy,
    FaultTolerantService,
    Replica,
    ReplicaSet,
    ReplicatedCluster,
    ShardChaos,
)
from repro.serving.service import CoalescerStats, ShardedService

__all__ = [
    "CaramCluster",
    "CaramShard",
    "ShardSpec",
    "ShardRouter",
    "ConsistentHashRouter",
    "PrefixRangeRouter",
    "ShardedService",
    "CoalescerStats",
    "LoadReport",
    "RequestStream",
    "make_request_stream",
    "run_closed_loop",
    "run_open_loop",
    "ChaosSpec",
    "ShardChaos",
    "FailoverPolicy",
    "Replica",
    "ReplicaSet",
    "ReplicatedCluster",
    "FaultTolerantService",
]
