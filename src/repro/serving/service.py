"""Asyncio front end: request coalescing, admission control, drain.

The fast path of this repo is a vectorized batch kernel that answers
hundreds of keys per call; live traffic arrives one key at a time.
:class:`ShardedService` closes that gap: concurrent single-key
``await service.lookup(key)`` calls are routed to their owning shard
(:class:`~repro.serving.router.ShardRouter`), queued, and **coalesced**
into batches that feed
:meth:`~repro.core.subsystem.CARAMSubsystem.search_batch_columnar` —
scattering the columnar results back to the waiting futures bit-identically
with a direct batch call over the same keys.

Coalescing policy (per shard, classic batch-window):

* a batch flushes when ``max_batch_size`` requests are pending
  (**flush-on-size**), or
* ``max_delay`` seconds after its oldest request arrived
  (**flush-on-deadline**) — ``max_delay=0`` degrades gracefully to
  "flush whatever is queued each time the lane frees up", which still
  coalesces under backlog.

Admission control and backpressure:

* each shard lane holds at most ``max_pending`` queued requests; a
  request arriving at a full lane is **shed** with a typed
  :class:`~repro.errors.ServiceOverloadError` (stable CLI exit code 12) —
  every request is either answered or fails loudly, never dropped;
* :meth:`drain` stops admission, flushes every queued request, and waits
  for the lanes to empty — graceful shutdown answers everything already
  admitted; :meth:`aclose` additionally closes every shard's batch
  engine, so drained shards never leak forked worker pools.

Batch execution runs on a thread-pool executor by default (NumPy kernels
release the GIL for the heavy ops), keeping the event loop free to accept
and coalesce the next window while a shard computes; per-shard lanes
serialize their own batches, so a shard's engine is never re-entered.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, ServiceOverloadError
from repro.core.index import KeyInput
from repro.core.slice import SearchResult
from repro.serving.cluster import CaramCluster

__all__ = ["ShardedService", "CoalescerStats"]

#: Default coalescing window (seconds) — long enough to gather a batch at
#: serving rates, short enough to stay invisible next to network RTTs.
DEFAULT_MAX_DELAY = 0.002
DEFAULT_MAX_BATCH_SIZE = 512
DEFAULT_MAX_PENDING = 8192


class CoalescerStats:
    """Live counters of the coalescing front end (one per service)."""

    __slots__ = (
        "requests",
        "completed",
        "shed",
        "batches",
        "coalesced_keys",
        "max_batch_observed",
        "max_queue_depth",
        "drains",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.completed = 0
        self.shed = 0
        self.batches = 0
        self.coalesced_keys = 0
        self.max_batch_observed = 0
        self.max_queue_depth = 0
        self.drains = 0

    @property
    def coalescing_factor(self) -> float:
        """Mean keys per flushed batch — the single number that says how
        much single-request traffic the front end turned into batch work."""
        return self.coalesced_keys / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "batches": self.batches,
            "coalesced_keys": self.coalesced_keys,
            "coalescing_factor": self.coalescing_factor,
            "max_batch_observed": self.max_batch_observed,
            "max_queue_depth": self.max_queue_depth,
            "drains": self.drains,
        }


class _Request:
    __slots__ = ("key", "mask", "future")

    def __init__(self, key, mask, future) -> None:
        self.key = key
        self.mask = mask
        self.future = future


class _Lane:
    """One shard's bounded queue + wakeup event + worker task."""

    __slots__ = ("shard", "pending", "event", "task", "busy", "oldest_at")

    def __init__(self, shard) -> None:
        self.shard = shard
        self.pending: List[_Request] = []
        self.event: Optional[asyncio.Event] = None
        self.task: Optional[asyncio.Task] = None
        self.busy = False
        self.oldest_at = 0.0


class ShardedService:
    """The asyncio serving tier over a :class:`CaramCluster`.

    Args:
        cluster: the shards and router to serve.
        max_batch_size: flush a lane as soon as this many requests are
            queued (1 disables coalescing — the honest one-request-at-a-
            time baseline the serving benchmark compares against).
        max_delay: seconds a request may wait for co-batched company.
        max_pending: per-shard admission bound; beyond it requests shed.
        offload: run batch kernels on the loop's thread-pool executor
            (default) instead of inline on the event loop.

    Use as an async context manager, or call :meth:`aclose` explicitly —
    a garbage-collected service cancels its lane tasks but cannot await
    them, so explicit shutdown is the clean path.
    """

    def __init__(
        self,
        cluster: CaramCluster,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_delay: float = DEFAULT_MAX_DELAY,
        max_pending: int = DEFAULT_MAX_PENDING,
        offload: bool = True,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1: {max_batch_size}"
            )
        if max_delay < 0:
            raise ConfigurationError(
                f"max_delay must be >= 0: {max_delay}"
            )
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1: {max_pending}"
            )
        self.cluster = cluster
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay
        self.max_pending = max_pending
        self.offload = offload
        self.stats = CoalescerStats()
        self._lanes = [_Lane(shard) for shard in cluster.shards]
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._accepting = True
        self._closed = False
        self._close_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    async def lookup(
        self, key: KeyInput, search_mask: int = 0
    ) -> SearchResult:
        """One key in, one :class:`SearchResult` out — batched under the
        hood with every other concurrent caller of the same shard.

        Raises:
            ServiceOverloadError: the owning shard's queue is full, or
                the service is draining/closed.
        """
        if not self._accepting:
            raise ServiceOverloadError(
                "service is draining; request rejected"
            )
        shard_id = self.cluster.router.shard_for_query(key)
        lane = self._lanes[shard_id]
        loop = self._ensure_started()
        if lane.task is not None and lane.task.done():
            raise ServiceOverloadError(
                f"shard {shard_id} lane worker is not running; "
                "request rejected",
                shard_id=shard_id,
            )
        self.stats.requests += 1
        if len(lane.pending) >= self.max_pending:
            self.stats.shed += 1
            raise ServiceOverloadError(
                f"shard {shard_id} queue full "
                f"({self.max_pending} pending); request shed",
                shard_id=shard_id,
            )
        future: asyncio.Future = loop.create_future()
        if not lane.pending:
            lane.oldest_at = loop.time()
        lane.pending.append(_Request(key, search_mask, future))
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, len(lane.pending)
        )
        assert lane.event is not None
        lane.event.set()
        result = await future
        self.stats.completed += 1
        return result

    async def lookup_value(
        self, key: KeyInput, search_mask: int = 0
    ) -> Optional[int]:
        """Convenience: the matched record's data, or None."""
        return (await self.lookup(key, search_mask)).data

    # ------------------------------------------------------------------
    # Lane workers
    # ------------------------------------------------------------------

    def _ensure_started(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            for lane in self._lanes:
                lane.event = asyncio.Event()
                lane.task = loop.create_task(self._run_lane(lane))
        elif self._loop is not loop:
            raise ConfigurationError(
                "ShardedService is bound to the event loop of its first "
                "request; create one service per loop"
            )
        return loop

    async def _run_lane(self, lane: _Lane) -> None:
        loop = self._loop
        assert loop is not None and lane.event is not None
        try:
            while True:
                while not lane.pending:
                    if self._closed:
                        return
                    lane.event.clear()
                    await lane.event.wait()
                # Coalescing window: hold the batch open until it fills
                # or its oldest request's deadline passes.  A drain
                # flushes immediately.
                while (
                    len(lane.pending) < self.max_batch_size
                    and self._accepting
                    and not self._closed
                ):
                    remaining = (
                        lane.oldest_at + self.max_delay - loop.time()
                    )
                    if remaining <= 0:
                        break
                    lane.event.clear()
                    try:
                        await asyncio.wait_for(
                            lane.event.wait(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                batch = lane.pending[: self.max_batch_size]
                del lane.pending[: len(batch)]
                # Requests still queued (or arriving mid-execute) inherit
                # the already-expired window, so a backlog flushes
                # back-to-back instead of re-arming a delay it has
                # already paid.
                lane.busy = True
                try:
                    await self._execute(lane, batch)
                finally:
                    lane.busy = False
        finally:
            # The worker is leaving (close, cancellation, or a bug that
            # escaped _execute): whatever is still queued must resolve to
            # a typed error, never hang on a future nobody will answer.
            self._fail_pending(
                lane,
                ServiceOverloadError(
                    f"shard {lane.shard.shard_id} lane worker exited "
                    "with requests queued",
                    shard_id=lane.shard.shard_id,
                ),
            )

    def _fail_pending(self, lane: _Lane, error: Exception) -> None:
        pending, lane.pending = lane.pending, []
        for request in pending:
            if not request.future.done():
                request.future.set_exception(error)

    async def _execute(self, lane: _Lane, batch: List[_Request]) -> None:
        """Resolve one flushed batch against the lane's shard.

        Requests sharing a search mask resolve in one columnar call; the
        (rare) mixed-mask batch splits by mask, preserving order within
        each sub-batch, so results stay identical to per-key calls.
        """
        self.stats.batches += 1
        self.stats.coalesced_keys += len(batch)
        self.stats.max_batch_observed = max(
            self.stats.max_batch_observed, len(batch)
        )
        for mask, group in itertools.groupby(batch, key=lambda r: r.mask):
            requests = list(group)
            keys = [request.key for request in requests]
            try:
                results = await self._resolve(lane, keys, mask)
            except Exception as error:  # noqa: BLE001 - fan the failure out
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(error)
                continue
            for request, result in zip(requests, results):
                if not request.future.done():
                    request.future.set_result(result)

    async def _resolve(
        self, lane: _Lane, keys: List[KeyInput], mask: int
    ) -> List[SearchResult]:
        """Answer one same-mask sub-batch against the lane's shard.

        The single overridable seam of the request path: subclasses (the
        fault-tolerant replicated service) swap in deadlines, retries,
        and hedging here while inheriting coalescing, admission control,
        and drain unchanged.
        """

        def run() -> List[SearchResult]:
            return lane.shard.search_batch_columnar(keys, mask).results()

        if self.offload:
            return await self._loop.run_in_executor(None, run)
        return run()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    async def drain(self) -> None:
        """Stop admission, flush and answer everything already queued.

        After a drain the service rejects new requests (every
        :meth:`lookup` raises :class:`ServiceOverloadError`); the shards
        themselves stay open until :meth:`aclose`.
        """
        self._accepting = False
        self.stats.drains += 1
        for lane in self._lanes:
            if lane.event is not None:
                lane.event.set()
        while any(lane.pending or lane.busy for lane in self._lanes):
            await asyncio.sleep(0)

    async def aclose(self) -> None:
        """Drain, stop the lane workers, and close every shard.

        Idempotent and safe to call concurrently — every caller (and
        every concurrent call racing the first) awaits the same close
        task, the teardown body runs exactly once, and any request still
        in flight resolves to its answer or a typed
        :class:`ServiceOverloadError`; nothing hangs.
        """
        if self._closed and self._close_task is None:
            return
        if self._close_task is None:
            loop = asyncio.get_running_loop()
            self._close_task = loop.create_task(self._aclose_once())
        await asyncio.shield(self._close_task)

    async def _aclose_once(self) -> None:
        await self.drain()
        self._closed = True
        for lane in self._lanes:
            if lane.event is not None:
                lane.event.set()
        for lane in self._lanes:
            if lane.task is not None:
                task = lane.task
                lane.task = None
                try:
                    await task
                except asyncio.CancelledError:
                    # A lane killed from outside still closes cleanly;
                    # cancellation of the close itself propagates.
                    if not task.cancelled():
                        raise
            # Belt and braces: a lane whose worker never started (the
            # service saw no traffic) can still hold nothing, but a
            # worker that died early leaves its queue to the cleanup in
            # _run_lane; anything remaining here fails typed.
            self._fail_pending(
                lane,
                ServiceOverloadError(
                    "service closed; request rejected",
                    shard_id=lane.shard.shard_id,
                ),
            )
        self.cluster.close()

    async def __aenter__(self) -> "ShardedService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def register_telemetry(
        self, registry, prefix: str = "serving"
    ) -> None:
        """Mount the cluster (shards + rollup aggregate) and the
        coalescer counters under ``{prefix}.*``."""
        self.cluster.register_telemetry(registry, prefix=prefix)
        registry.register_provider(
            f"{prefix}.coalescer", self.stats.as_dict
        )
