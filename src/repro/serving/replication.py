"""Replicated shards, failover, and chaos: the fault-tolerant tier.

The serving tier before this module treats every shard as immortal — one
crashed or hung shard stalls its lane forever.  Here each logical shard
becomes a **replica set** of R bit-identical copies (same deterministic
build, same records, same router ring), and the request path becomes a
failover loop:

* :class:`ReplicatedCluster` — builds R :class:`~repro.serving.cluster.
  CaramCluster`-shaped copies and transposes them into one
  :class:`ReplicaSet` per logical shard, preserving the cluster surface
  (``router`` / ``shards`` / ``load`` / ``search_batch`` /
  ``total_stats`` / ``register_telemetry`` / ``close``) so the coalescing
  front end and the load generator run unchanged on top.
* :class:`ShardChaos` — a deterministic, seedable per-replica fault
  layer: **crash** (every call raises), **hang** (calls sleep a
  configured latency), **error** (calls raise transiently at a
  configured rate), each active over a call-index window so schedules
  replay exactly.  The **corrupt** mode routes through the reliability
  layer's :class:`~repro.reliability.faults.FaultInjector` instead, so
  ECC correction, quarantine, and the victim store all still fire under
  replica-level chaos.
* :class:`ReplicaSet` — read balancing (round-robin or least-inflight)
  plus a circuit breaker: consecutive failures **evict** a replica,
  evicted replicas re-enter on **probation** after a cooldown, probation
  replicas serve trickle probes and are **re-admitted** after enough
  successes (one probation failure re-evicts).  Health verdicts from
  :mod:`repro.telemetry.health` feed the same loop via
  :meth:`ReplicaSet.apply_health_report`.
* :class:`FaultTolerantService` — a :class:`~repro.serving.service.
  ShardedService` whose resolve step adds per-lookup deadlines
  (``asyncio.wait_for`` semantics over executor calls), retry with
  jittered exponential backoff onto a *different* replica, and optional
  hedged second reads for tail latency.  When the whole set is down the
  caller gets a typed :class:`~repro.errors.ShardUnavailableError`
  (stable exit code 13) — admitted requests always resolve, never hang.

Everything here is deterministic where determinism is possible: replica
builds are bit-identical, chaos schedules key off call indices, backoff
jitter draws from a seeded generator, and the breaker clock is
injectable for tests.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    CaRamError,
    ConfigurationError,
    ReliabilityError,
    ServiceOverloadError,
    ShardUnavailableError,
)
from repro.core.index import KeyInput
from repro.core.slice import SearchResult
from repro.core.stats import SearchStats
from repro.serving.cluster import CaramCluster, CaramShard, ShardSpec
from repro.serving.router import ConsistentHashRouter, ShardRouter
from repro.serving.service import ShardedService
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.health import HealthReport
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.trace import Tracer

__all__ = [
    "CRASH",
    "HANG",
    "ERROR",
    "CORRUPT",
    "ACTIVE",
    "EVICTED",
    "PROBATION",
    "ChaosSpec",
    "ShardChaos",
    "FailoverPolicy",
    "Replica",
    "ReplicaSet",
    "ReplicatedCluster",
    "FaultTolerantService",
]

# Chaos modes.
CRASH, HANG, ERROR, CORRUPT = "crash", "hang", "error", "corrupt"
_CHAOS_MODES = (CRASH, HANG, ERROR, CORRUPT)

# Circuit-breaker membership states.
ACTIVE, EVICTED, PROBATION = "active", "evicted", "probation"


# ----------------------------------------------------------------------
# Chaos layer
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosSpec:
    """One replica's deterministic fault schedule.

    The schedule keys off the replica's **call index** (0-based count of
    batch calls it has served), so a given spec against a given request
    stream replays exactly.

    Args:
        mode: ``crash`` | ``hang`` | ``error`` | ``corrupt``.
        at_call: first call index at which the fault is active.
        duration_calls: how many calls the fault stays active
            (``None`` = permanent, the default — a crashed process does
            not come back on its own).
        hang_seconds: per-call latency injected in ``hang`` mode.
        error_rate: per-call probability of raising in ``error`` mode
            (drawn from a generator seeded with ``seed``).
        bit_flip_rate: per-bit-read flip probability in ``corrupt`` mode
            (wired through the reliability layer's ``FaultInjector``).
        seed: seeds the error-rate draws / the corrupt-mode injector.
    """

    mode: str
    at_call: int = 0
    duration_calls: Optional[int] = None
    hang_seconds: float = 0.05
    error_rate: float = 1.0
    bit_flip_rate: float = 1e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in _CHAOS_MODES:
            raise ConfigurationError(
                f"unknown chaos mode {self.mode!r}; "
                f"expected one of {_CHAOS_MODES}"
            )
        if self.at_call < 0:
            raise ConfigurationError(
                f"at_call must be >= 0: {self.at_call}"
            )
        if self.duration_calls is not None and self.duration_calls < 1:
            raise ConfigurationError(
                f"duration_calls must be >= 1 or None: "
                f"{self.duration_calls}"
            )
        if self.hang_seconds < 0:
            raise ConfigurationError(
                f"hang_seconds must be >= 0: {self.hang_seconds}"
            )
        if not 0 <= self.error_rate <= 1:
            raise ConfigurationError(
                f"error_rate must be in [0, 1]: {self.error_rate}"
            )


class ShardChaos:
    """Executes a :class:`ChaosSpec` in a replica's call path.

    ``corrupt`` mode is *not* handled here — it is wired through
    ``enable_reliability`` at injection time (see
    :meth:`ReplicatedCluster.inject_chaos`) so the full ECC/quarantine
    machinery runs; this class covers the process-level modes.
    """

    __slots__ = ("spec", "calls", "injected", "_rng")

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec
        self.calls = 0
        self.injected = 0
        self._rng = make_rng(spec.seed)

    def _active(self, index: int) -> bool:
        spec = self.spec
        if index < spec.at_call:
            return False
        if spec.duration_calls is None:
            return True
        return index < spec.at_call + spec.duration_calls

    def before_call(self, replica: "Replica") -> None:
        """Runs at the top of every replica batch call (under the
        replica's lock, in the executor thread for the async path)."""
        index = self.calls
        self.calls += 1
        if not self._active(index):
            return
        spec = self.spec
        if spec.mode == CRASH:
            self.injected += 1
            raise ShardUnavailableError(
                f"replica {replica.replica_id} of shard "
                f"{replica.shard_id} crashed (chaos)",
                shard_id=replica.shard_id,
            )
        if spec.mode == HANG:
            self.injected += 1
            time.sleep(spec.hang_seconds)
            return
        if spec.mode == ERROR:
            if spec.error_rate >= 1.0 or (
                float(self._rng.random()) < spec.error_rate
            ):
                self.injected += 1
                raise ReliabilityError(
                    f"replica {replica.replica_id} of shard "
                    f"{replica.shard_id} raised (chaos, transient)"
                )


# ----------------------------------------------------------------------
# Failover policy + replica bookkeeping
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FailoverPolicy:
    """Knobs of the fault-tolerant request path and circuit breaker.

    Args:
        deadline: total per-sub-batch budget in seconds (``None`` = no
            deadline).  When it expires the requests fail typed.
        attempt_timeout: per-replica-call budget in seconds; a call that
            outlives it is abandoned (its thread may still run) and the
            loop fails over to another replica.  ``None`` = only the
            overall deadline bounds a call — set this when hangs are in
            the threat model, otherwise one hung replica can eat the
            whole deadline.
        max_attempts: primary replica attempts per sub-batch (hedges do
            not count).
        backoff_base / backoff_multiplier / backoff_cap: jittered
            exponential backoff between attempts, in seconds.
        jitter: +/- fraction applied to each backoff delay (0.5 = the
            delay varies uniformly within +/-50%), drawn from a seeded
            generator for reproducibility.
        hedge_delay: if a call has not answered after this many seconds,
            fire the same sub-batch at a second replica and take the
            first success (``None`` disables hedging).
        evict_after: consecutive failures that evict a replica.
        probation_after: seconds an evicted replica waits before
            re-entering on probation.
        readmit_after: probation successes required for re-admission
            (one probation failure re-evicts immediately).
        probe_interval: while healthy replicas exist, every Nth pick is
            routed to a probation replica so it can earn re-admission.
        balancer: ``round-robin`` or ``least-inflight``.
        seed: seeds the backoff jitter stream.
    """

    deadline: Optional[float] = 0.25
    attempt_timeout: Optional[float] = None
    max_attempts: int = 3
    backoff_base: float = 0.001
    backoff_multiplier: float = 2.0
    backoff_cap: float = 0.05
    jitter: float = 0.5
    hedge_delay: Optional[float] = None
    evict_after: int = 3
    probation_after: float = 0.25
    readmit_after: int = 2
    probe_interval: int = 8
    balancer: str = "round-robin"
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("deadline", "attempt_timeout", "hedge_delay"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{name} must be positive or None: {value}"
                )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff must be >= 0")
        if self.backoff_multiplier < 1:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1: "
                f"{self.backoff_multiplier}"
            )
        if not 0 <= self.jitter < 1:
            raise ConfigurationError(
                f"jitter must be in [0, 1): {self.jitter}"
            )
        if self.evict_after < 1 or self.readmit_after < 1:
            raise ConfigurationError(
                "evict_after and readmit_after must be >= 1"
            )
        if self.probation_after < 0:
            raise ConfigurationError(
                f"probation_after must be >= 0: {self.probation_after}"
            )
        if self.probe_interval < 1:
            raise ConfigurationError(
                f"probe_interval must be >= 1: {self.probe_interval}"
            )
        if self.balancer not in ("round-robin", "least-inflight"):
            raise ConfigurationError(
                f"balancer must be round-robin or least-inflight: "
                f"{self.balancer!r}"
            )

    def backoff_delay(self, attempt: int, rng) -> float:
        """Jittered exponential delay before retry ``attempt`` (>= 1)."""
        delay = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_multiplier ** (attempt - 1),
        )
        if self.jitter and delay > 0:
            delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return delay


class Replica:
    """One physical copy of a logical shard, plus its breaker state."""

    __slots__ = (
        "shard_id",
        "replica_id",
        "shard",
        "chaos",
        "state",
        "inflight",
        "calls",
        "successes",
        "errors",
        "timeouts",
        "consecutive_failures",
        "probation_successes",
        "evicted_at",
        "evictions",
        "readmissions",
        "health_warnings",
        "_lock",
    )

    def __init__(
        self, shard_id: int, replica_id: int, shard: CaramShard
    ) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.shard = shard
        self.chaos: Optional[ShardChaos] = None
        self.state = ACTIVE
        self.inflight = 0
        self.calls = 0
        self.successes = 0
        self.errors = 0
        self.timeouts = 0
        self.consecutive_failures = 0
        self.probation_successes = 0
        self.evicted_at = 0.0
        self.evictions = 0
        self.readmissions = 0
        self.health_warnings = 0
        # Serializes batch calls into this replica's engine: a retry or
        # hedge must never re-enter a slice whose abandoned call is
        # still running in another executor thread.
        self._lock = threading.Lock()

    def call(
        self, keys: Sequence[KeyInput], mask: int = 0
    ) -> List[SearchResult]:
        """One materialized batch lookup against this replica.

        ``inflight`` is bumped *before* the lock so callers queued
        behind a slow/hung replica count toward its load — exactly the
        signal the least-inflight balancer needs to route around it.
        """
        self.inflight += 1
        try:
            with self._lock:
                self.calls += 1
                if self.chaos is not None:
                    self.chaos.before_call(self)
                return self.shard.search_batch_columnar(
                    keys, mask
                ).results()
        finally:
            self.inflight -= 1

    def counters(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "inflight": self.inflight,
            "calls": self.calls,
            "successes": self.successes,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "consecutive_failures": self.consecutive_failures,
            "evictions": self.evictions,
            "readmissions": self.readmissions,
            "health_warnings": self.health_warnings,
        }


class ReplicaSetStats:
    """Failover counters of one replica set."""

    __slots__ = (
        "retries",
        "timeouts",
        "hedges",
        "hedge_wins",
        "evictions",
        "probations",
        "readmissions",
        "exhausted",
    )

    def __init__(self) -> None:
        self.retries = 0
        self.timeouts = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.evictions = 0
        self.probations = 0
        self.readmissions = 0
        self.exhausted = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class ReplicaSet:
    """R replicas of one logical shard: balancing + circuit breaker.

    Duck-compatible with :class:`~repro.serving.cluster.CaramShard`
    where the serving tier needs it (``shard_id``, ``stats``,
    ``search_batch_columnar``, ``bulk_load``, ``close``), so both the
    plain coalescing service and the direct reference path run on top —
    the synchronous path simply fails over without deadlines.
    """

    def __init__(
        self,
        shard_id: int,
        replicas: Sequence[Replica],
        policy: Optional[FailoverPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if not replicas:
            raise ConfigurationError(
                "a replica set needs at least one replica"
            )
        self.shard_id = shard_id
        self.replicas = list(replicas)
        self.policy = policy if policy is not None else FailoverPolicy()
        self.clock = clock
        self.tracer = tracer
        self.stats = ReplicaSetStats()
        self._rr = 0
        self._picks = 0
        self._rng = make_rng(self.policy.seed * 1_000_003 + shard_id)

    # -- membership ----------------------------------------------------

    def _emit(self, kind: str, **payload) -> None:
        if self.tracer is not None:
            self.tracer.emit(kind, shard_id=self.shard_id, **payload)

    def _evict(self, replica: Replica, reason: str) -> None:
        replica.state = EVICTED
        replica.evicted_at = self.clock()
        replica.consecutive_failures = 0
        replica.probation_successes = 0
        replica.evictions += 1
        self.stats.evictions += 1
        self._emit(
            "replica.evicted",
            replica_id=replica.replica_id,
            reason=reason,
        )

    def _promote_cooled(self) -> None:
        now = self.clock()
        for replica in self.replicas:
            if (
                replica.state == EVICTED
                and now - replica.evicted_at >= self.policy.probation_after
            ):
                replica.state = PROBATION
                replica.probation_successes = 0
                self.stats.probations += 1
                self._emit(
                    "replica.probation", replica_id=replica.replica_id
                )

    def pick(
        self, exclude: Sequence[Replica] = (), retry_tried: bool = True
    ) -> Optional[Replica]:
        """Choose a replica for the next call, or None if none remain.

        Active replicas are balanced per policy; probation replicas get
        every ``probe_interval``-th pick (so they can earn re-admission)
        and the whole pool when no active replica remains.

        ``exclude`` holds the replicas this request already consumed —
        retries prefer an untried replica.  When every live replica has
        been tried and ``retry_tried`` is set, the pick falls back to
        them anyway: a second attempt on a replica that merely timed out
        beats declaring the set exhausted while members are still
        serving.  Hedges pass ``retry_tried=False`` — hedging the call
        already in flight is pure waste.
        """
        self._promote_cooled()
        self._picks += 1
        active = [
            r
            for r in self.replicas
            if r.state == ACTIVE and r not in exclude
        ]
        probation = [
            r
            for r in self.replicas
            if r.state == PROBATION and r not in exclude
        ]
        pool = active
        if probation and (
            not active or self._picks % self.policy.probe_interval == 0
        ):
            pool = probation
        if not pool:
            pool = active
        if not pool and retry_tried:
            pool = [r for r in self.replicas if r.state == ACTIVE]
            if not pool:
                pool = [
                    r for r in self.replicas if r.state == PROBATION
                ]
        if not pool:
            return None
        if self.policy.balancer == "least-inflight":
            return min(pool, key=lambda r: (r.inflight, r.replica_id))
        self._rr = (self._rr + 1) % len(self.replicas)
        return pool[self._rr % len(pool)]

    def record_success(self, replica: Replica) -> None:
        replica.successes += 1
        replica.consecutive_failures = 0
        if replica.state == PROBATION:
            replica.probation_successes += 1
            if replica.probation_successes >= self.policy.readmit_after:
                replica.state = ACTIVE
                replica.readmissions += 1
                self.stats.readmissions += 1
                self._emit(
                    "replica.readmitted",
                    replica_id=replica.replica_id,
                )

    def record_failure(self, replica: Replica, kind: str) -> None:
        if kind == "timeout":
            replica.timeouts += 1
            self.stats.timeouts += 1
        else:
            replica.errors += 1
        replica.consecutive_failures += 1
        if replica.state == PROBATION:
            self._evict(replica, f"probation-{kind}")
        elif (
            replica.state == ACTIVE
            and replica.consecutive_failures >= self.policy.evict_after
        ):
            self._evict(replica, kind)

    def apply_health_report(
        self, replica_id: int, report: "HealthReport"
    ) -> None:
        """Fold a health-monitor verdict into membership: CRITICAL
        evicts the replica, WARN is counted (visible in telemetry) but
        does not change membership on its own."""
        from repro.telemetry.health import CRITICAL, OK

        replica = self.replicas[replica_id]
        level = report.level
        if level == OK:
            return
        replica.health_warnings += 1
        if level == CRITICAL and replica.state != EVICTED:
            self._evict(replica, "health-critical")

    # -- CaramShard-compatible surface ---------------------------------

    @property
    def stats_merged(self) -> SearchStats:
        total = SearchStats()
        for replica in self.replicas:
            total.merge(replica.shard.stats)
        return total

    def search_batch_columnar(
        self, keys: Sequence[KeyInput], search_mask: int = 0
    ):
        """Synchronous failover lookup (the reference path; no
        deadlines — hangs are an async-path concern).

        Returns an object with ``.results()`` like the shard path does.
        """
        return _MaterializedResults(self.call(keys, search_mask))

    def call(
        self, keys: Sequence[KeyInput], search_mask: int = 0
    ) -> List[SearchResult]:
        tried: List[Replica] = []
        last_error: Optional[CaRamError] = None
        for _ in range(
            max(self.policy.max_attempts, len(self.replicas))
        ):
            replica = self.pick(exclude=tried)
            if replica is None:
                break
            if tried:
                self.stats.retries += 1
            tried.append(replica)
            try:
                results = replica.call(keys, search_mask)
            except ServiceOverloadError:
                raise
            except CaRamError as error:
                self.record_failure(replica, "error")
                last_error = error
                continue
            self.record_success(replica)
            return results
        self.stats.exhausted += 1
        raise ShardUnavailableError(
            f"shard {self.shard_id}: no replica answered "
            f"({len(tried)} tried)",
            shard_id=self.shard_id,
            attempts=len(tried),
        ) from last_error

    def bulk_load(self, records) -> int:
        """Load the same records into every replica (bit-identical
        copies); returns logical (per-replica) stored copies."""
        counts = [replica.shard.bulk_load(records) for replica in self.replicas]
        if len(set(counts)) > 1:  # pragma: no cover - defensive
            raise ReliabilityError(
                f"shard {self.shard_id}: replicas diverged at load time "
                f"({counts})"
            )
        return counts[0]

    def close(self) -> None:
        for replica in self.replicas:
            replica.shard.close()

    def membership(self) -> Dict[str, object]:
        return {
            "shard_id": self.shard_id,
            "replicas": {
                f"replica{r.replica_id}": r.counters()
                for r in self.replicas
            },
            "failover": self.stats.as_dict(),
        }


class _NoReplicaAvailable(Exception):
    """Internal: a pick found the whole set evicted/exhausted.

    Distinct from a chaos-injected :class:`ShardUnavailableError`
    bubbling out of one replica's call — that one is a *replica*
    failure the retry loop must fail over from, not a verdict on the
    set."""


class _MaterializedResults:
    """Adapter: a pre-materialized result list behind ``.results()``."""

    __slots__ = ("_results",)

    def __init__(self, results: List[SearchResult]) -> None:
        self._results = results

    def results(self) -> List[SearchResult]:
        return self._results


# ----------------------------------------------------------------------
# Replicated cluster
# ----------------------------------------------------------------------


class ReplicatedCluster:
    """R bit-identical replicas of every shard behind one router.

    Exposes the :class:`~repro.serving.cluster.CaramCluster` surface the
    serving tier consumes (``router``, ``shards`` — here the replica
    sets — ``load``, ``search_batch``, ``total_stats``,
    ``register_telemetry``, ``close``), so the coalescer, load
    generator, and telemetry CLI all run unchanged over a replicated
    deployment.
    """

    def __init__(
        self,
        replica_sets: Sequence[ReplicaSet],
        router: ShardRouter,
    ) -> None:
        if not replica_sets:
            raise ConfigurationError(
                "a replicated cluster needs at least one shard"
            )
        if router.shard_count != len(replica_sets):
            raise ConfigurationError(
                f"router partitions {router.shard_count} ways but the "
                f"cluster has {len(replica_sets)} replica sets"
            )
        self.replica_sets = list(replica_sets)
        self.router = router

    #: The serving tier addresses logical shards; replica sets are the
    #: logical shards of a replicated cluster.
    @property
    def shards(self) -> List[ReplicaSet]:
        return self.replica_sets

    @property
    def replication_factor(self) -> int:
        return len(self.replica_sets[0].replicas)

    @classmethod
    def build(
        cls,
        shard_count: int,
        replication: int = 2,
        policy: Optional[FailoverPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        index_bits: int = 8,
        slots: int = 16,
        specs: Optional[Sequence[ShardSpec]] = None,
        router: Optional[ShardRouter] = None,
        slot_priority: Optional[Callable] = None,
        key_bits: Optional[int] = None,
        data_bits: Optional[int] = None,
        ternary: bool = False,
    ) -> "ReplicatedCluster":
        """Build ``replication`` deterministic copies of the uniform
        cluster and transpose them into per-shard replica sets.

        The copies reuse :meth:`CaramCluster.build` verbatim, so every
        replica of shard *s* has the same geometry, hash, engine spec,
        and (after :meth:`load`) the same records in the same slots —
        bit-identical by construction, which is what makes failover
        answer-preserving.
        """
        if replication < 1:
            raise ConfigurationError(
                f"replication must be >= 1: {replication}"
            )
        if router is None:
            router = ConsistentHashRouter(shard_count)
        copies = [
            CaramCluster.build(
                shard_count,
                index_bits=index_bits,
                slots=slots,
                specs=specs,
                router=router,
                slot_priority=slot_priority,
                key_bits=key_bits,
                data_bits=data_bits,
                ternary=ternary,
            )
            for _ in range(replication)
        ]
        sets = []
        for shard_id in range(shard_count):
            replicas = [
                Replica(shard_id, r, copies[r].shards[shard_id])
                for r in range(replication)
            ]
            sets.append(
                ReplicaSet(shard_id, replicas, policy=policy, clock=clock)
            )
        return cls(sets, router)

    # -- loading -------------------------------------------------------

    def load(self, records) -> int:
        """Partition once, load every replica of each shard with the
        same per-shard record list; returns logical stored copies (one
        replica's worth — every replica holds the same set)."""
        per_shard: List[List[Tuple[KeyInput, int]]] = [
            [] for _ in self.replica_sets
        ]
        for key, data in records:
            for shard_id in self.router.shards_for_stored(key):
                per_shard[shard_id].append((key, data))
        return sum(
            replica_set.bulk_load(pairs)
            for replica_set, pairs in zip(self.replica_sets, per_shard)
            if pairs
        )

    @property
    def record_count(self) -> int:
        return sum(
            rset.replicas[0].shard.group.record_count
            for rset in self.replica_sets
        )

    # -- direct (synchronous) lookup -----------------------------------

    def search(
        self, key: KeyInput, search_mask: int = 0
    ) -> SearchResult:
        shard_id = self.router.shard_for_query(key)
        return self.replica_sets[shard_id].call([key], search_mask)[0]

    def lookup(
        self, key: KeyInput, search_mask: int = 0
    ) -> Optional[int]:
        return self.search(key, search_mask).data

    def search_batch(
        self, keys: Sequence[KeyInput], search_mask: int = 0
    ) -> List[SearchResult]:
        """Scatter by router, per-set failover lookup, gather in order."""
        out: List[Optional[SearchResult]] = [None] * len(keys)
        for replica_set, positions in zip(
            self.replica_sets, self.router.partition_queries(keys)
        ):
            if not len(positions):
                continue
            shard_keys = [keys[int(i)] for i in positions]
            results = replica_set.call(shard_keys, search_mask)
            for position, result in zip(positions.tolist(), results):
                out[position] = result
        return out  # type: ignore[return-value]

    def total_stats(self) -> SearchStats:
        total = SearchStats()
        for replica_set in self.replica_sets:
            total.merge(replica_set.stats_merged)
        return total

    # -- chaos injection -----------------------------------------------

    def replica(self, shard_id: int, replica_id: int) -> Replica:
        return self.replica_sets[shard_id].replicas[replica_id]

    def inject_chaos(
        self, shard_id: int, replica_id: int, spec: ChaosSpec
    ) -> None:
        """Attach a fault schedule to one replica.

        ``corrupt`` mode enables the reliability layer (ECC + quarantine
        + victim store) on the replica's group with a seeded
        ``FaultInjector`` at the spec's flip rate — corruption chaos
        exercises the whole PR-4 detect-or-correct stack rather than
        bypassing it; the other modes attach a :class:`ShardChaos`.
        """
        replica = self.replica(shard_id, replica_id)
        if spec.mode == CORRUPT:
            from repro.reliability.faults import FaultConfig

            replica.shard.group.enable_reliability(
                faults=FaultConfig(
                    seed=spec.seed, bit_flip_rate=spec.bit_flip_rate
                )
            )
            return
        replica.chaos = ShardChaos(spec)

    def kill_replica(self, shard_id: int, replica_id: int) -> None:
        """Crash one replica immediately (every future call raises)."""
        self.inject_chaos(shard_id, replica_id, ChaosSpec(mode=CRASH))

    def clear_chaos(self, shard_id: int, replica_id: int) -> None:
        self.replica(shard_id, replica_id).chaos = None

    # -- health-driven membership --------------------------------------

    def apply_health_report(
        self, shard_id: int, replica_id: int, report: "HealthReport"
    ) -> None:
        self.replica_sets[shard_id].apply_health_report(
            replica_id, report
        )

    def set_tracer(self, tracer: Optional["Tracer"]) -> None:
        for replica_set in self.replica_sets:
            replica_set.tracer = tracer

    def membership(self) -> Dict[str, object]:
        return {
            f"shard{rset.shard_id}": rset.membership()
            for rset in self.replica_sets
        }

    # -- telemetry -----------------------------------------------------

    def enable_latency_tracking(
        self, relative_error: Optional[float] = None
    ) -> None:
        for rset in self.replica_sets:
            for replica in rset.replicas:
                replica.shard.group.enable_latency_tracking(
                    relative_error
                )

    def register_telemetry(
        self, registry: "MetricsRegistry", prefix: str = "serving"
    ) -> None:
        """Per-replica mounts at ``{prefix}.shard{s}.replica{r}.*``, the
        cluster-wide search rollup at ``{prefix}.cluster.search`` (exact
        merge across every replica), membership/failover counters at
        ``{prefix}.replica.membership``, and topology metadata."""
        from repro.telemetry.rollup import merge_blocks

        replicas = [
            replica
            for rset in self.replica_sets
            for replica in rset.replicas
        ]
        for replica in replicas:
            replica.shard.group.register_telemetry(
                registry,
                prefix=(
                    f"{prefix}.shard{replica.shard_id}"
                    f".replica{replica.replica_id}"
                ),
            )
        registry.register_provider(
            f"{prefix}.cluster.search",
            lambda: merge_blocks(
                [r.shard.stats.as_dict() for r in replicas]
            ),
        )
        registry.register_provider(
            f"{prefix}.replica.membership", self.membership
        )
        registry.register_provider(
            f"{prefix}.cluster.topology",
            lambda: {
                "shard_count": len(self.replica_sets),
                "replication": self.replication_factor,
                "router": type(self.router).__name__,
                "balancer": self.replica_sets[0].policy.balancer,
            },
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        for replica_set in self.replica_sets:
            replica_set.close()

    def __enter__(self) -> "ReplicatedCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.replica_sets)


# ----------------------------------------------------------------------
# Fault-tolerant service
# ----------------------------------------------------------------------


class FaultTolerantService(ShardedService):
    """The coalescing front end with failover in its resolve step.

    Inherits admission control, coalescing windows, drain, and the
    idempotent close from :class:`ShardedService`; overrides the
    per-sub-batch resolve with the policy loop: deadline, per-attempt
    timeout, retry-with-backoff onto an untried replica, optional
    hedging, and a typed :class:`ShardUnavailableError` when the set is
    exhausted.

    Batch calls always run on the executor here regardless of
    ``offload`` — a deadline can only preempt a call the event loop is
    not itself executing (a hung in-line call would block the loop and
    the timer with it).
    """

    def __init__(self, cluster: ReplicatedCluster, **kwargs) -> None:
        if not isinstance(cluster, ReplicatedCluster):
            raise ConfigurationError(
                "FaultTolerantService requires a ReplicatedCluster; "
                "use ShardedService for unreplicated deployments"
            )
        super().__init__(cluster, **kwargs)

    async def _resolve(
        self, lane, keys: List[KeyInput], mask: int
    ) -> List[SearchResult]:
        rset: ReplicaSet = lane.shard
        policy = rset.policy
        loop = self._loop
        deadline_at = (
            None
            if policy.deadline is None
            else loop.time() + policy.deadline
        )
        tried: List[Replica] = []
        last_error: Optional[CaRamError] = None
        timed_out = False
        for attempt in range(policy.max_attempts):
            if attempt:
                rset.stats.retries += 1
                rset._emit(
                    "replica.retry", attempt=attempt, keys=len(keys)
                )
                delay = policy.backoff_delay(attempt, rset._rng)
                if deadline_at is not None:
                    delay = min(
                        delay, max(0.0, deadline_at - loop.time())
                    )
                if delay > 0:
                    await asyncio.sleep(delay)
            try:
                return await self._attempt(
                    rset, keys, mask, tried, deadline_at
                )
            except asyncio.TimeoutError:
                timed_out = True
                last_error = None
                if (
                    deadline_at is not None
                    and loop.time() >= deadline_at
                ):
                    break  # total budget gone; retrying cannot help
            except _NoReplicaAvailable:
                break  # nothing left to pick from
            except CaRamError as error:
                last_error = error
        rset.stats.exhausted += 1
        detail = "deadline exceeded" if timed_out else "all failed"
        raise ShardUnavailableError(
            f"shard {rset.shard_id}: no replica answered within policy "
            f"({len(tried)} tried, {detail})",
            shard_id=rset.shard_id,
            attempts=len(tried),
        ) from last_error

    async def _attempt(
        self,
        rset: ReplicaSet,
        keys: List[KeyInput],
        mask: int,
        tried: List[Replica],
        deadline_at: Optional[float],
    ) -> List[SearchResult]:
        """One primary call, optionally hedged; first success wins.

        Records per-replica success/failure internally and appends every
        replica it consumed to ``tried`` so the outer retry loop never
        re-picks a replica that already failed this sub-batch.
        """
        loop = self._loop
        policy = rset.policy
        primary = rset.pick(exclude=tried)
        if primary is None:
            raise _NoReplicaAvailable
        tried.append(primary)
        attempt_deadline = (
            None
            if policy.attempt_timeout is None
            else loop.time() + policy.attempt_timeout
        )
        calls: Dict[asyncio.Future, Replica] = {
            self._spawn(primary, keys, mask): primary
        }
        hedge_armed = policy.hedge_delay is not None
        last_error: Optional[CaRamError] = None
        while calls:
            remaining = None
            for cutoff in (deadline_at, attempt_deadline):
                if cutoff is None:
                    continue
                budget = cutoff - loop.time()
                if budget <= 0:
                    self._abandon(rset, calls, timed_out=True)
                    raise asyncio.TimeoutError
                remaining = (
                    budget if remaining is None else min(remaining, budget)
                )
            wait_timeout = remaining
            if hedge_armed:
                wait_timeout = (
                    policy.hedge_delay
                    if remaining is None
                    else min(policy.hedge_delay, remaining)
                )
            done, _ = await asyncio.wait(
                set(calls),
                timeout=wait_timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if not done:
                if hedge_armed:
                    hedge_armed = False
                    hedge = rset.pick(exclude=tried, retry_tried=False)
                    if hedge is not None:
                        tried.append(hedge)
                        rset.stats.hedges += 1
                        rset._emit(
                            "replica.hedge",
                            replica_id=hedge.replica_id,
                            keys=len(keys),
                        )
                        calls[self._spawn(hedge, keys, mask)] = hedge
                continue
            for future in done:
                replica = calls.pop(future)
                try:
                    results = future.result()
                except ServiceOverloadError:
                    self._abandon(rset, calls, timed_out=False)
                    raise
                except CaRamError as error:
                    rset.record_failure(replica, "error")
                    last_error = error
                    continue
                rset.record_success(replica)
                if replica is not primary:
                    rset.stats.hedge_wins += 1
                    rset._emit(
                        "replica.hedge_won",
                        replica_id=replica.replica_id,
                    )
                self._abandon(rset, calls, timed_out=False)
                return results
        if last_error is not None:
            raise last_error
        raise asyncio.TimeoutError  # pragma: no cover - defensive

    def _spawn(
        self, replica: Replica, keys: List[KeyInput], mask: int
    ) -> asyncio.Future:
        def run() -> List[SearchResult]:
            return replica.call(keys, mask)

        return self._loop.run_in_executor(None, run)

    def _abandon(
        self,
        rset: ReplicaSet,
        calls: Dict[asyncio.Future, Replica],
        timed_out: bool,
    ) -> None:
        """Walk away from still-inflight calls.

        The executor threads may keep running (a hang cannot be
        preempted), but their results are dropped: cancelling the
        asyncio wrapper makes a late set_result/exception a no-op, so
        nothing leaks and nothing warns.
        """
        for future, replica in calls.items():
            if timed_out:
                rset.record_failure(replica, "timeout")
            future.cancel()
        calls.clear()
