"""Shard assembly: N ``CARAMSubsystem`` shards behind one router.

:class:`CaramShard` wraps one :class:`~repro.core.subsystem.CARAMSubsystem`
holding one database group — a full subsystem per shard, so each shard can
carry its own overflow store, ports, engine spec, and telemetry, exactly
like an independent CA-RAM chip in a multi-bank deployment.
:class:`CaramCluster` composes the shards with a
:class:`~repro.serving.router.ShardRouter` and provides:

* **loading** — records partition by :meth:`ShardRouter.shards_for_stored`
  (an LPM prefix spanning several ranges is duplicated into each) and
  bulk-load per shard through the vectorized pipeline;
* a **direct synchronous batch path** (:meth:`search_batch`,
  :meth:`lookup`) — scatter by router, per-shard columnar lookup, gather
  back into request order.  This is simultaneously the serving tier's
  correctness reference (the async coalescer must be bit-identical to it)
  and the cluster half of the load generator's baseline;
* **telemetry** — every shard mounts under ``{prefix}.shard{i}.*`` and the
  cluster aggregate mounts under ``{prefix}.cluster.*``, computed through
  :func:`repro.telemetry.rollup.merge_blocks` so counters sum exactly,
  latency sketches merge bucket-exactly, and derived ratios (AMAL, hit
  rate, spill rate) are recomputed from the merged bases — the existing
  ``repro telemetry serve``/``health`` CLI reads the whole cluster off
  these mounts;
* **lifecycle** — :meth:`close` tears down every shard's batch engine
  (worker pools, shared memory); the cluster is a context manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError
from repro.core.config import Arrangement, SliceConfig
from repro.core.index import KeyInput
from repro.core.record import RecordFormat
from repro.core.slice import SearchResult
from repro.core.stats import SearchStats
from repro.core.subsystem import CARAMSubsystem, SliceGroup
from repro.hashing.bit_select import BitSelectHash
from repro.serving.router import ConsistentHashRouter, ShardRouter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import BatchResultSet
    from repro.telemetry.metrics import MetricsRegistry

__all__ = ["ShardSpec", "CaramShard", "CaramCluster", "DEFAULT_GROUP"]

#: Group name every shard's subsystem registers its database under.
DEFAULT_GROUP = "db"


@dataclass(frozen=True)
class ShardSpec:
    """Per-shard engine/telemetry configuration.

    One spec can configure the whole cluster, or a per-shard list can mix
    configurations (e.g. a bitplane hot shard next to word-mirror ones).
    """

    engine: str = "word"
    batch_chunk_size: Optional[int] = None
    account_reads: bool = False
    track_latency: bool = False
    latency_error: Optional[float] = None


class CaramShard:
    """One serving shard: a subsystem, its database group, its config."""

    def __init__(
        self,
        shard_id: int,
        subsystem: CARAMSubsystem,
        group_name: str = DEFAULT_GROUP,
    ) -> None:
        self.shard_id = shard_id
        self.subsystem = subsystem
        self.group_name = group_name

    @property
    def group(self) -> SliceGroup:
        return self.subsystem.group(self.group_name)

    @property
    def stats(self) -> SearchStats:
        return self.group.stats

    def search_batch_columnar(
        self, keys: Sequence[KeyInput], search_mask: int = 0
    ) -> "BatchResultSet":
        """This shard's vectorized lookup (overflow store included)."""
        return self.subsystem.search_batch_columnar(
            self.group_name, keys, search_mask
        )

    def search(self, key: KeyInput, search_mask: int = 0) -> SearchResult:
        return self.subsystem.search(self.group_name, key, search_mask)

    def bulk_load(self, records) -> int:
        return self.subsystem.bulk_load(self.group_name, records)

    def close(self) -> None:
        """Tear down this shard's batch engines (pools, shared memory)."""
        self.subsystem.close()


class CaramCluster:
    """N shards + a router = one logical database.

    Build shards yourself and pass them in, or use :meth:`build` for a
    uniform lookup-table cluster shaped like the telemetry workload's
    slice (32-bit keys, 16-bit data).
    """

    def __init__(
        self, shards: Sequence[CaramShard], router: ShardRouter
    ) -> None:
        if not shards:
            raise ConfigurationError("a cluster needs at least one shard")
        if router.shard_count != len(shards):
            raise ConfigurationError(
                f"router partitions {router.shard_count} ways but the "
                f"cluster has {len(shards)} shards"
            )
        self.shards = list(shards)
        self.router = router

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    #: Geometry shared with :mod:`repro.telemetry.workload`.
    KEY_BITS = 32
    DATA_BITS = 16
    HASH_LSB = 12

    @classmethod
    def build(
        cls,
        shard_count: int,
        index_bits: int = 8,
        slots: int = 16,
        specs: Optional[Sequence[ShardSpec]] = None,
        router: Optional[ShardRouter] = None,
        slot_priority: Optional[Callable] = None,
        key_bits: Optional[int] = None,
        data_bits: Optional[int] = None,
        ternary: bool = False,
    ) -> "CaramCluster":
        """A uniform cluster of single-slice lookup-table shards.

        Args:
            shard_count: number of shards.
            index_bits: per-shard slice index bits (rows = ``2**b``).
            slots: record slots per bucket.
            specs: one :class:`ShardSpec` per shard (or None for
                defaults); a single spec list entry shorter than
                ``shard_count`` is cycled.
            router: placement policy (default: consistent hashing).
            key_bits / data_bits / ternary / slot_priority: record-format
                overrides for non-default workloads (e.g. LPM shards).
        """
        key_bits = cls.KEY_BITS if key_bits is None else key_bits
        data_bits = cls.DATA_BITS if data_bits is None else data_bits
        if router is None:
            router = ConsistentHashRouter(shard_count)
        if specs is None:
            specs = [ShardSpec()]
        record_format = RecordFormat(
            key_bits=key_bits, data_bits=data_bits, ternary=ternary
        )
        aux_bits = 8
        config = SliceConfig(
            index_bits=index_bits,
            row_bits=aux_bits + slots * record_format.slot_bits,
            record_format=record_format,
            aux_bits=aux_bits,
        )
        hash_lsb = min(cls.HASH_LSB, key_bits - index_bits)
        shards: List[CaramShard] = []
        for shard_id in range(shard_count):
            spec = specs[shard_id % len(specs)]
            group = SliceGroup(
                config=config,
                slice_count=1,
                arrangement=Arrangement.VERTICAL,
                hash_function=BitSelectHash(
                    key_bits,
                    tuple(range(hash_lsb, hash_lsb + index_bits)),
                ),
                slot_priority=slot_priority,
                name=DEFAULT_GROUP,
                account_reads=spec.account_reads,
                batch_chunk_size=spec.batch_chunk_size,
                engine=spec.engine,
            )
            if spec.track_latency:
                group.enable_latency_tracking(spec.latency_error)
            subsystem = CARAMSubsystem()
            subsystem.add_group(group)
            shards.append(CaramShard(shard_id, subsystem))
        return cls(shards, router)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, records: Iterable[Tuple[KeyInput, int]]) -> int:
        """Partition and bulk-load a record set; returns stored copies.

        Each record lands on every shard the router names for it (one for
        point keys; every covered range for an LPM prefix), preserving the
        incoming order within each shard so priority-sorted loads (LPM's
        longest-first) keep their ordering guarantees.
        """
        per_shard: List[List[Tuple[KeyInput, int]]] = [
            [] for _ in self.shards
        ]
        for key, data in records:
            for shard_id in self.router.shards_for_stored(key):
                per_shard[shard_id].append((key, data))
        return sum(
            shard.bulk_load(pairs)
            for shard, pairs in zip(self.shards, per_shard)
            if pairs
        )

    @property
    def record_count(self) -> int:
        return sum(shard.group.record_count for shard in self.shards)

    # ------------------------------------------------------------------
    # Direct (synchronous) lookup — the serving tier's reference path
    # ------------------------------------------------------------------

    def search(self, key: KeyInput, search_mask: int = 0) -> SearchResult:
        """Scalar lookup routed to the owning shard."""
        return self.shards[self.router.shard_for_query(key)].search(
            key, search_mask
        )

    def lookup(self, key: KeyInput, search_mask: int = 0) -> Optional[int]:
        return self.search(key, search_mask).data

    def search_batch(
        self, keys: Sequence[KeyInput], search_mask: int = 0
    ) -> List[SearchResult]:
        """Batch lookup: scatter by router, per-shard columnar lookup,
        gather back into request order.

        The coalescing front end must return exactly these results for
        the same keys — the bit-identity contract the property tests pin.
        """
        out: List[Optional[SearchResult]] = [None] * len(keys)
        for shard, positions in zip(
            self.shards, self.router.partition_queries(keys)
        ):
            if not len(positions):
                continue
            shard_keys = [keys[int(i)] for i in positions]
            results = shard.search_batch_columnar(
                shard_keys, search_mask
            ).results()
            for position, result in zip(positions.tolist(), results):
                out[position] = result
        return out  # type: ignore[return-value]

    def total_stats(self) -> SearchStats:
        """Sum of every shard's search stats (exact counter merge)."""
        total = SearchStats()
        for shard in self.shards:
            total.merge(shard.stats)
        return total

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def enable_latency_tracking(
        self, relative_error: Optional[float] = None
    ) -> None:
        for shard in self.shards:
            shard.group.enable_latency_tracking(relative_error)

    def register_telemetry(
        self, registry: "MetricsRegistry", prefix: str = "serving"
    ) -> None:
        """Mount every shard plus the rollup aggregate.

        Shard ``i`` mounts its full group telemetry under
        ``{prefix}.shard{i}.*``; the cluster-wide view mounts under
        ``{prefix}.cluster.search`` / ``.occupancy`` / ``.bulk``, merged
        at snapshot time with the rollup leaf rules (exact counter sums,
        sketch merges, recomputed ratios) so health rules and dashboards
        can address the whole cluster as one database.
        """
        from repro.telemetry.rollup import merge_blocks

        for shard in self.shards:
            shard.group.register_telemetry(
                registry, prefix=f"{prefix}.shard{shard.shard_id}"
            )

        def _merged(block_of) -> Callable[[], dict]:
            def provider() -> dict:
                return merge_blocks(
                    [block_of(shard) for shard in self.shards]
                )

            return provider

        registry.register_provider(
            f"{prefix}.cluster.search",
            _merged(lambda shard: shard.stats.as_dict()),
        )
        registry.register_provider(
            f"{prefix}.cluster.occupancy",
            _merged(
                lambda shard: {
                    "record_count": shard.group.record_count,
                    "capacity_records": shard.group.capacity_records,
                    "load_factor": shard.group.load_factor,
                    "physical_row_fetches": (
                        shard.group.physical_row_fetches
                    ),
                }
            ),
        )
        registry.register_provider(
            f"{prefix}.cluster.bulk",
            _merged(
                lambda shard: (
                    shard.group.last_bulk_plan.as_dict()
                    if shard.group.last_bulk_plan is not None
                    else {}
                )
            ),
        )
        registry.register_provider(
            f"{prefix}.cluster.topology",
            lambda: {
                "shard_count": len(self.shards),
                "router": type(self.router).__name__,
            },
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close every shard (batch engines, pools, shared memory)."""
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "CaramCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.shards)
