"""Keyspace partitioning for the sharded serving tier.

A serving cluster splits one logical database across N CA-RAM shards so
that every shard's banks stay saturated with batched work (HashMem's
bank-level parallelism; the CRAM IP-lookup scaling study — PAPERS.md).
The router is the pure-placement half of that design: given a key it
answers "which shard stores it" (for loads) and "which shard answers it"
(for queries), with no I/O and no randomness, so placement is a stable
function of the key alone and any two processes agree on it.

Two strategies cover the repo's two workload families:

* :class:`ConsistentHashRouter` — **point keys** (exact-match lookup
  tables, trigram strings).  Each shard owns ``replicas`` pseudo-random
  points on a 64-bit hash ring; a key lands on the first point at or
  after its digest.  Adding or removing one shard therefore moves only
  ``~1/N`` of the keyspace — the property that makes resharding cheap.
* :class:`PrefixRangeRouter` — **longest-prefix-match** databases.  The
  address space splits into ``shard_count`` contiguous equal ranges; a
  query address maps to exactly one range, while a stored prefix maps to
  *every* range its span covers (a short prefix is duplicated into each,
  exactly like a TCAM row replicated across banks), so the shard that
  answers an address always holds every prefix that could match it.

Both implement the small :class:`ShardRouter` protocol the service and
cluster layers consume; a custom router only needs those three methods.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, KeyFormatError
from repro.core.index import KeyInput
from repro.core.key import TernaryKey

__all__ = [
    "ShardRouter",
    "ConsistentHashRouter",
    "PrefixRangeRouter",
    "splitmix64",
]

_U64 = np.uint64
_MASK64 = (1 << 64) - 1


def splitmix64(values: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a uint64 array (vectorized).

    A fast, well-mixed 64-bit permutation — every input bit affects every
    output bit — used to spread structured integer keys (sequential IDs,
    IP addresses) uniformly over the hash ring.
    """
    z = values.astype(_U64, copy=True)
    with np.errstate(over="ignore"):
        z += _U64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        z ^= z >> _U64(31)
    return z


def _digest_int(value: int) -> int:
    """Scalar splitmix64 (matches the vectorized path bit for bit; pure
    Python — the per-request hot path must not pay numpy dispatch)."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _digest_bytes(data: bytes) -> int:
    """Stable 64-bit digest for byte/string keys (independent of
    ``PYTHONHASHSEED``, so every process routes identically)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


def key_digest(key: KeyInput) -> int:
    """Stable 64-bit routing digest of any point key."""
    if isinstance(key, TernaryKey):
        if key.mask:
            raise KeyFormatError(
                "consistent-hash routing needs exact keys; a ternary key "
                "with don't-care bits can live on any shard — use a "
                "PrefixRangeRouter for LPM databases"
            )
        return _digest_int(key.value)
    if isinstance(key, bytes):
        return _digest_bytes(key)
    if isinstance(key, str):
        return _digest_bytes(key.encode("utf-8"))
    return _digest_int(int(key))


class ShardRouter:
    """What the serving tier needs from a placement policy."""

    def __init__(self, shard_count: int) -> None:
        if shard_count <= 0:
            raise ConfigurationError(
                f"shard_count must be positive: {shard_count}"
            )
        self.shard_count = shard_count

    def shard_for_query(self, key: KeyInput) -> int:
        """The single shard that answers a lookup for ``key``."""
        raise NotImplementedError

    def shards_for_stored(self, key: KeyInput) -> Tuple[int, ...]:
        """Every shard that must store ``key`` (>=1; a prefix spanning
        several ranges is duplicated into each)."""
        raise NotImplementedError

    def partition_queries(
        self, keys: Sequence[KeyInput]
    ) -> List[np.ndarray]:
        """Split a query batch by owning shard.

        Returns one int64 position array per shard (ascending positions,
        possibly empty), a partition of ``range(len(keys))`` — the scatter
        map the direct batch path and the parity tests share.
        """
        shards = np.fromiter(
            (self.shard_for_query(key) for key in keys),
            dtype=np.int64,
            count=len(keys),
        )
        return [
            np.flatnonzero(shards == shard)
            for shard in range(self.shard_count)
        ]


class ConsistentHashRouter(ShardRouter):
    """Consistent hashing over a 64-bit ring for point-key databases.

    Args:
        shard_count: number of shards.
        replicas: virtual nodes per shard; more replicas smooth the
            keyspace split (the default keeps per-shard load within a few
            percent of even).
    """

    def __init__(self, shard_count: int, replicas: int = 128) -> None:
        super().__init__(shard_count)
        if replicas <= 0:
            raise ConfigurationError(
                f"replicas must be positive: {replicas}"
            )
        self.replicas = replicas
        points = []
        owners = []
        for shard in range(shard_count):
            for replica in range(replicas):
                points.append(
                    _digest_bytes(b"shard:%d:%d" % (shard, replica))
                )
                owners.append(shard)
        order = np.argsort(np.array(points, dtype=_U64), kind="stable")
        self._points = np.array(points, dtype=_U64)[order]
        self._owners = np.array(owners, dtype=np.int64)[order]
        # Plain-Python copies for the scalar per-request path (bisect over
        # a list beats numpy scalar extraction by an order of magnitude).
        self._points_list: List[int] = self._points.tolist()
        self._owners_list: List[int] = self._owners.tolist()
        # Ring points are blake2b digests; 2**64 collisions across a few
        # thousand points are effectively impossible, but fail loudly.
        if len(np.unique(self._points)) != len(self._points):
            raise ConfigurationError(
                "hash-ring collision; change shard_count/replicas"
            )  # pragma: no cover - astronomically unlikely

    def _owner_of_digest(self, digest: int) -> int:
        index = bisect_left(self._points_list, digest)
        if index == len(self._points_list):
            index = 0  # wrap: past the last point, the ring restarts
        return self._owners_list[index]

    def shard_for_query(self, key: KeyInput) -> int:
        return self._owner_of_digest(key_digest(key))

    def shards_for_stored(self, key: KeyInput) -> Tuple[int, ...]:
        return (self.shard_for_query(key),)

    def partition_queries(
        self, keys: Sequence[KeyInput]
    ) -> List[np.ndarray]:
        values = self._int_values(keys)
        if values is None:  # string/bytes keys: scalar digests
            return super().partition_queries(keys)
        digests = splitmix64(values)
        indices = np.searchsorted(self._points, digests, side="left")
        indices[indices == len(self._points)] = 0
        shards = self._owners[indices]
        return [
            np.flatnonzero(shards == shard)
            for shard in range(self.shard_count)
        ]

    @staticmethod
    def _int_values(keys: Sequence[KeyInput]):
        """Uint64 view of an all-integer key batch, or None."""
        if isinstance(keys, np.ndarray) and np.issubdtype(
            keys.dtype, np.integer
        ):
            return keys.astype(_U64)
        try:
            return np.array(
                [int(k) for k in keys], dtype=_U64  # raises on str/ternary
            )
        except (TypeError, ValueError):
            return None


class PrefixRangeRouter(ShardRouter):
    """Contiguous address-range partitioning for LPM databases.

    The ``key_bits``-wide address space splits into ``shard_count`` equal
    ranges: address ``a`` belongs to shard ``a * shard_count >> key_bits``.
    A stored prefix covers the address interval ``[value, value | mask]``
    and is placed on every shard that interval touches, so the one shard a
    query address routes to is guaranteed to hold all its candidate
    prefixes.
    """

    def __init__(self, shard_count: int, key_bits: int) -> None:
        super().__init__(shard_count)
        if key_bits <= 0:
            raise ConfigurationError(
                f"key_bits must be positive: {key_bits}"
            )
        if shard_count > (1 << key_bits):
            raise ConfigurationError(
                f"{shard_count} shards cannot partition a "
                f"{key_bits}-bit address space"
            )
        self.key_bits = key_bits

    def _address_shard(self, address: int) -> int:
        if not 0 <= address < (1 << self.key_bits):
            raise KeyFormatError(
                f"address {address:#x} does not fit in "
                f"{self.key_bits} bits"
            )
        return (address * self.shard_count) >> self.key_bits

    def shard_for_query(self, key: KeyInput) -> int:
        if isinstance(key, TernaryKey):
            if key.mask:
                raise KeyFormatError(
                    "a query must be a full address; don't-care bits "
                    "have no single home range"
                )
            return self._address_shard(key.value)
        return self._address_shard(int(key))

    def shards_for_stored(self, key: KeyInput) -> Tuple[int, ...]:
        if isinstance(key, TernaryKey):
            low, high = key.value, key.value | key.mask
        else:
            low = high = int(key)
        return tuple(
            range(self._address_shard(low), self._address_shard(high) + 1)
        )

    def partition_queries(
        self, keys: Sequence[KeyInput]
    ) -> List[np.ndarray]:
        values = ConsistentHashRouter._int_values(keys)
        if values is None:
            return super().partition_queries(keys)
        if values.size and int(values.max()) >= (1 << self.key_bits):
            raise KeyFormatError(
                f"address batch exceeds {self.key_bits} bits"
            )
        shards = (
            values.astype(object) * self.shard_count >> self.key_bits
            if self.key_bits > 32
            else (values.astype(np.int64) * self.shard_count)
            >> self.key_bits
        )
        shards = np.asarray(shards, dtype=np.int64)
        return [
            np.flatnonzero(shards == shard)
            for shard in range(self.shard_count)
        ]
