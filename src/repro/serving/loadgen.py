"""Closed- and open-loop load generation against the serving tier.

Simulates the "millions of users" traffic shape the north star asks for:
a Zipf-skewed key popularity (heavy-tailed, like real prefix/trigram
traffic — :mod:`repro.workloads.access`) with a configurable miss
fraction, driven through :class:`~repro.serving.service.ShardedService`
two ways:

* **closed loop** — ``users`` concurrent simulated users, each issuing
  its next request the moment the previous answer returns.  Throughput
  here is *sustained* throughput: the service is never idle and never
  overdriven, so requests/second measures the pipeline itself.
* **open loop** — arrivals fire on a fixed schedule at ``offered_qps``
  regardless of completions (the arrival process of a large independent
  user population).  When the offered rate exceeds capacity the pending
  queues fill and admission control sheds load; the report separates
  offered from sustained throughput and counts every shed request.

Every request is **verified**: the generator pre-computes the expected
answer for each key (the data payload for stored keys, a miss for
strangers) and counts wrong answers — the benchmark's zero-wrong gate.
Per-request latency (enqueue to answer, coalescing wait included) feeds a
:class:`~repro.telemetry.histogram.LatencyHistogram`, so reports carry
p50/p99 within the sketch's relative-error bound.  All accounting closes:
``requests == completed + shed + failed + wrong`` — nothing is dropped
without an error.  ``shed`` counts admission-control rejections
(:class:`~repro.errors.ServiceOverloadError`); ``failed`` counts every
other typed :class:`~repro.errors.CaRamError` (the fault-tolerant path's
:class:`~repro.errors.ShardUnavailableError` when a whole replica set is
down, detected corruption, ...) — under chaos a request may legitimately
fail, but it must fail *loudly and typed*, never silently wrong.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import (
    CaRamError,
    ConfigurationError,
    ServiceOverloadError,
)
from repro.serving.service import ShardedService
from repro.telemetry.histogram import LatencyHistogram
from repro.utils.rng import make_rng
from repro.workloads.access import sample_accesses, skewed_rank_weights

__all__ = [
    "LoadReport",
    "RequestStream",
    "make_request_stream",
    "run_closed_loop",
    "run_open_loop",
]

#: Sentinel expected value for keys that must miss.
MISS = -1


@dataclass
class RequestStream:
    """A pre-sampled request sequence with per-request expected answers."""

    keys: List[int]
    expected: List[int]  # data payload, or MISS
    zipf_exponent: float
    miss_fraction: float
    seed: int

    def __len__(self) -> int:
        return len(self.keys)


def make_request_stream(
    stored: Sequence[int],
    values: Dict[int, int],
    requests: int,
    zipf_exponent: float = 1.0,
    miss_fraction: float = 0.1,
    seed: int = 0,
    key_bits: int = 32,
) -> RequestStream:
    """Zipf-skewed request stream over a stored key population.

    Args:
        stored: the loaded keys (popularity ranks are shuffled over them,
            so popularity is uncorrelated with key value — the paper's
            "skew is an artifact" convention).
        values: expected data payload per stored key.
        requests: stream length.
        zipf_exponent: skew (0 = uniform; ~1 = classic web/trace skew).
        miss_fraction: fraction of requests replaced with random
            not-stored keys (verified to miss).
    """
    if not 0 <= miss_fraction <= 1:
        raise ConfigurationError(
            f"miss_fraction must be in [0, 1]: {miss_fraction}"
        )
    weights = skewed_rank_weights(len(stored), zipf_exponent, seed=seed)
    picks = sample_accesses(weights, requests, seed=seed + 1)
    rng = make_rng(seed + 2)
    stored_set = set(stored)
    keys: List[int] = []
    expected: List[int] = []
    miss_draws = rng.random(requests)
    for i in range(requests):
        if miss_draws[i] < miss_fraction:
            key = int(rng.integers(0, 1 << key_bits))
            while key in stored_set:
                key = int(rng.integers(0, 1 << key_bits))
            keys.append(key)
            expected.append(MISS)
        else:
            key = int(stored[int(picks[i])])
            keys.append(key)
            expected.append(int(values[key]))
    return RequestStream(
        keys=keys,
        expected=expected,
        zipf_exponent=zipf_exponent,
        miss_fraction=miss_fraction,
        seed=seed,
    )


@dataclass
class LoadReport:
    """Outcome of one load-generation run (all accounting closes)."""

    mode: str
    requests: int
    completed: int
    shed: int
    failed: int
    wrong: int
    duration_s: float
    offered_qps: Optional[float]
    sustained_qps: float
    coalescing_factor: float
    batches: int
    latency: Dict[str, object] = field(default_factory=dict)

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def failed_fraction(self) -> float:
        return self.failed / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "shed_fraction": self.shed_fraction,
            "failed": self.failed,
            "failed_fraction": self.failed_fraction,
            "wrong": self.wrong,
            "duration_s": self.duration_s,
            "offered_qps": self.offered_qps,
            "sustained_qps": self.sustained_qps,
            "coalescing_factor": self.coalescing_factor,
            "batches": self.batches,
            "latency": self.latency,
        }


class _Accounting:
    """Shared tallies all user/request coroutines fold into."""

    __slots__ = ("completed", "shed", "failed", "wrong", "latency")

    def __init__(self, latency_error: Optional[float]) -> None:
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.wrong = 0
        self.latency = (
            LatencyHistogram(latency_error)
            if latency_error is not None
            else LatencyHistogram()
        )

    async def issue(
        self, service: ShardedService, key: int, expected: int
    ) -> None:
        started = time.perf_counter()
        try:
            result = await service.lookup(key)
        except ServiceOverloadError:
            self.shed += 1
            return
        except CaRamError:
            # Typed failure (replica set down, detected corruption, ...):
            # the request resolved loudly — count it, never drop it.
            self.failed += 1
            return
        self.latency.observe(time.perf_counter() - started)
        answer = MISS if not result.hit else result.data
        if answer != expected:
            self.wrong += 1
        else:
            self.completed += 1


def _report(
    mode: str,
    stream_len: int,
    accounting: _Accounting,
    duration: float,
    offered_qps: Optional[float],
    batches_before: int,
    keys_before: int,
    service: ShardedService,
) -> LoadReport:
    batches = service.stats.batches - batches_before
    keys = service.stats.coalesced_keys - keys_before
    return LoadReport(
        mode=mode,
        requests=stream_len,
        completed=accounting.completed,
        shed=accounting.shed,
        failed=accounting.failed,
        wrong=accounting.wrong,
        duration_s=duration,
        offered_qps=offered_qps,
        sustained_qps=(
            accounting.completed / duration if duration > 0 else 0.0
        ),
        coalescing_factor=keys / batches if batches else 0.0,
        batches=batches,
        latency=accounting.latency.as_dict(),
    )


async def run_closed_loop(
    service: ShardedService,
    stream: RequestStream,
    users: int,
    latency_error: Optional[float] = None,
) -> LoadReport:
    """``users`` concurrent users splitting the stream round-robin, each
    issuing back-to-back requests (sustained-throughput mode)."""
    if users <= 0:
        raise ConfigurationError(f"users must be positive: {users}")
    accounting = _Accounting(latency_error)

    async def user(user_id: int) -> None:
        for i in range(user_id, len(stream), users):
            await accounting.issue(
                service, stream.keys[i], stream.expected[i]
            )

    batches_before = service.stats.batches
    keys_before = service.stats.coalesced_keys
    started = time.perf_counter()
    await asyncio.gather(*(user(u) for u in range(min(users, len(stream)))))
    duration = time.perf_counter() - started
    return _report(
        "closed_loop",
        len(stream),
        accounting,
        duration,
        None,
        batches_before,
        keys_before,
        service,
    )


async def run_open_loop(
    service: ShardedService,
    stream: RequestStream,
    offered_qps: float,
    latency_error: Optional[float] = None,
) -> LoadReport:
    """Fire the stream on a fixed arrival schedule at ``offered_qps``.

    Arrivals are independent of completions — the millions-of-users
    arrival process.  Overload is expected behavior here: requests the
    admission controller sheds count as shed (they received a typed
    error), and the report's ``sustained_qps`` is what actually
    completed.
    """
    if offered_qps <= 0:
        raise ConfigurationError(
            f"offered_qps must be positive: {offered_qps}"
        )
    accounting = _Accounting(latency_error)
    inflight: List[asyncio.Task] = []
    batches_before = service.stats.batches
    keys_before = service.stats.coalesced_keys
    loop = asyncio.get_running_loop()
    started = time.perf_counter()
    start_at = loop.time()
    for i in range(len(stream)):
        due = start_at + i / offered_qps
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        inflight.append(
            loop.create_task(
                accounting.issue(
                    service, stream.keys[i], stream.expected[i]
                )
            )
        )
    await asyncio.gather(*inflight)
    duration = time.perf_counter() - started
    return _report(
        "open_loop",
        len(stream),
        accounting,
        duration,
        offered_qps,
        batches_before,
        keys_before,
        service,
    )
