"""Access-pattern weights: uniform and skewed lookups.

Section 4.1 evaluates AMAL twice: "we first assume a uniform access pattern
for all prefixes, and compute AMALu.  Then we assume a skewed access
pattern [22], where some prefixes are accessed more frequently than
others."  The skew reference (Narlikar & Zane 2001) observed heavy-tailed
prefix popularity in real traces, which a Zipf distribution over popularity
rank captures.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, make_rng


def uniform_weights(count: int) -> np.ndarray:
    """Equal access probability for every record."""
    if count <= 0:
        raise ConfigurationError(f"count must be positive: {count}")
    return np.full(count, 1.0 / count)


def zipf_weights(count: int, exponent: float = 1.0) -> np.ndarray:
    """Zipf(``exponent``) weights over ranks 1..count (rank 0 hottest).

    Normalized to sum to 1.
    """
    if count <= 0:
        raise ConfigurationError(f"count must be positive: {count}")
    if exponent < 0:
        raise ConfigurationError(f"exponent must be >= 0: {exponent}")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def skewed_rank_weights(
    count: int,
    exponent: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Zipf weights assigned to records in a random rank order.

    The paper's skewed pattern is "an artifact": popularity is not
    correlated with key value, so ranks are shuffled before weights are
    assigned.  Returned in record order (index i = record i's weight).
    """
    weights = zipf_weights(count, exponent)
    rng = make_rng(seed)
    order = rng.permutation(count)
    assigned = np.empty(count)
    assigned[order] = weights
    return assigned


def sample_accesses(
    weights: np.ndarray, count: int, seed: SeedLike = None
) -> np.ndarray:
    """Draw ``count`` record indices according to the access weights."""
    if count < 0:
        raise ConfigurationError(f"count must be non-negative: {count}")
    rng = make_rng(seed)
    probabilities = np.asarray(weights, dtype=np.float64)
    probabilities = probabilities / probabilities.sum()
    return rng.choice(len(probabilities), size=count, p=probabilities)


__all__ = [
    "uniform_weights",
    "zipf_weights",
    "skewed_rank_weights",
    "sample_accesses",
]
