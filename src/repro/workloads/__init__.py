"""Workload generation: key sets and access-pattern weights."""

from repro.workloads.access import (
    skewed_rank_weights,
    uniform_weights,
    zipf_weights,
)
from repro.workloads.keys import (
    random_byte_strings,
    random_keys,
    unique_random_keys,
)

__all__ = [
    "uniform_weights",
    "zipf_weights",
    "skewed_rank_weights",
    "random_keys",
    "unique_random_keys",
    "random_byte_strings",
]
