"""Synthetic key-set generators used by tests, examples, and ablations.

The two application studies have their own domain-specific generators
(:mod:`repro.apps.iplookup.table_gen`, :mod:`repro.apps.trigram.generator`);
these are the generic building blocks.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, make_rng


def random_keys(count: int, key_bits: int, seed: SeedLike = None) -> np.ndarray:
    """``count`` uniform random keys of ``key_bits`` bits (duplicates allowed)."""
    if count < 0:
        raise ConfigurationError(f"count must be non-negative: {count}")
    if not 1 <= key_bits <= 64:
        raise ConfigurationError(f"key_bits must be in [1, 64]: {key_bits}")
    rng = make_rng(seed)
    high = 1 << key_bits
    return rng.integers(0, high, size=count, dtype=np.uint64)


def unique_random_keys(count: int, key_bits: int, seed: SeedLike = None) -> np.ndarray:
    """``count`` distinct uniform random keys.

    Raises:
        ConfigurationError: when the key space is too small.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative: {count}")
    if not 1 <= key_bits <= 64:
        raise ConfigurationError(f"key_bits must be in [1, 64]: {key_bits}")
    space = 1 << key_bits
    if count > space:
        raise ConfigurationError(
            f"cannot draw {count} unique keys from a {key_bits}-bit space"
        )
    rng = make_rng(seed)
    if count > space // 2:
        # Dense draw: permute the whole space.
        return rng.permutation(space).astype(np.uint64)[:count]
    keys = set()
    result = np.empty(count, dtype=np.uint64)
    filled = 0
    while filled < count:
        batch = rng.integers(0, space, size=count - filled, dtype=np.uint64)
        for key in batch:
            value = int(key)
            if value not in keys:
                keys.add(value)
                result[filled] = value
                filled += 1
                if filled == count:
                    break
    return result


def random_byte_strings(
    count: int,
    min_length: int,
    max_length: int,
    alphabet: bytes = b"abcdefghijklmnopqrstuvwxyz",
    seed: SeedLike = None,
) -> List[bytes]:
    """``count`` random byte strings with lengths in [min, max]."""
    if count < 0:
        raise ConfigurationError(f"count must be non-negative: {count}")
    if not 1 <= min_length <= max_length:
        raise ConfigurationError(
            f"invalid length range [{min_length}, {max_length}]"
        )
    if not alphabet:
        raise ConfigurationError("alphabet must be non-empty")
    rng = make_rng(seed)
    lengths = rng.integers(min_length, max_length + 1, size=count)
    symbols = np.frombuffer(alphabet, dtype=np.uint8)
    strings = []
    for length in lengths:
        picks = rng.integers(0, len(symbols), size=int(length))
        strings.append(symbols[picks].tobytes())
    return strings


__all__ = ["random_keys", "unique_random_keys", "random_byte_strings"]
