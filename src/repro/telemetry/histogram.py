"""Mergeable log-bucketed latency histograms with bounded relative error.

:class:`~repro.telemetry.metrics.HistogramMetric` keeps *exact* counts —
right for the paper's integer access histograms, wrong for wall-clock
latencies, whose support is continuous and spans orders of magnitude.
:class:`LatencyHistogram` is the serving-tier complement: a DDSketch-style
sketch whose buckets grow geometrically, so every quantile estimate is
within a configured **relative error** of the exact sample quantile while
the whole sketch stays a small sparse dict.

Design (the classic log-bucket scheme):

* pick ``gamma = (1 + e) / (1 - e)`` for relative error ``e``;
* a positive observation ``v`` lands in bucket ``ceil(log_gamma(v))``,
  i.e. bucket ``i`` covers ``(gamma**(i-1), gamma**i]``;
* the bucket's representative value ``2 * gamma**i / (gamma + 1)`` (the
  harmonic midpoint) is within ``e`` of every value in the bucket;
* zero (and negative, clamped) observations count in a dedicated zero
  bucket, reported as exactly ``0.0``.

Because a value's bucket depends only on ``gamma``, two sketches with the
same ``relative_error`` **merge by adding counts** — the merge is exact,
commutative, and associative, which is what lets parallel-worker shards
and per-slice histograms roll up into one subsystem distribution without
caring about arrival order (:mod:`repro.telemetry.rollup`).

``as_dict()`` / :meth:`LatencyHistogram.from_dict` round-trip the full
sketch through JSON (the cross-process shipping format of
:class:`~repro.core.parallel.ParallelBatchEngine` worker payloads); the
exported dict also carries ready-made ``p50/p90/p99/p999`` leaves so
snapshot diffs (:mod:`repro.telemetry.compare`) see latency percentiles as
plain numeric metrics.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError

#: Default quantile relative-error bound (1%).
DEFAULT_RELATIVE_ERROR = 0.01

#: Quantiles exported by :meth:`LatencyHistogram.as_dict`.
EXPORTED_QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999"))

#: Marker identifying a serialized sketch inside a snapshot tree (the
#: rollup/export layers duck-type on it).
SKETCH_KIND = "latency_histogram"


class LatencyHistogram:
    """Log-bucketed quantile sketch with a fixed relative-error bound.

    Args:
        relative_error: guaranteed bound ``e`` — for every quantile ``q``,
            ``|percentile(q) - exact_q| <= e * exact_q`` (exact over the
            observed samples; zero observations are returned exactly).
    """

    __slots__ = ("relative_error", "_gamma", "_log_gamma", "counts",
                 "zero_count", "total", "min", "max")

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ConfigurationError(
                f"relative_error must be in (0, 1), got {relative_error}"
            )
        self.relative_error = float(relative_error)
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        #: Sparse ``{bucket_index: count}`` over positive observations.
        self.counts: Dict[int, int] = {}
        self.zero_count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _bucket(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def observe(self, value: float) -> None:
        """Record one observation (negatives clamp to the zero bucket)."""
        value = float(value)
        if value <= 0.0:
            self.zero_count += 1
            self.min = min(self.min, 0.0)
            return
        index = self._bucket(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Total observations recorded (zero bucket included)."""
        return self.zero_count + sum(self.counts.values())

    @property
    def mean(self) -> float:
        n = self.count
        return self.total / n if n else 0.0

    def _representative(self, index: int) -> float:
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) of the observed values.

        Defined over ranks: the returned value approximates the
        ``max(1, ceil(q * n))``-th smallest observation within the
        configured relative error (exactly 0.0 for ranks inside the zero
        bucket).  Returns 0.0 on an empty sketch.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        n = self.count
        if n == 0:
            return 0.0
        rank = max(1, math.ceil(q * n))
        if rank <= self.zero_count:
            return 0.0
        cumulative = self.zero_count
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            if cumulative >= rank:
                return self._representative(index)
        return self._representative(max(self.counts))  # pragma: no cover

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Batch :meth:`percentile` (one sorted-bucket walk per query)."""
        return [self.percentile(q) for q in qs]

    # ------------------------------------------------------------------
    # Merge (commutative, exact)
    # ------------------------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another sketch into this one (bucket-exact, commutative).

        Both sketches must share the same ``relative_error`` — bucket
        boundaries depend on it, so cross-error merges are refused rather
        than silently degraded.
        """
        if not math.isclose(self.relative_error, other.relative_error):
            raise ConfigurationError(
                "cannot merge latency histograms with different relative "
                f"errors ({self.relative_error} vs {other.relative_error})"
            )
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.zero_count += other.zero_count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def copy(self) -> "LatencyHistogram":
        out = LatencyHistogram(self.relative_error)
        out.counts = dict(self.counts)
        out.zero_count = self.zero_count
        out.total = self.total
        out.min = self.min
        out.max = self.max
        return out

    def reset(self) -> None:
        self.counts.clear()
        self.zero_count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    # ------------------------------------------------------------------
    # Serialization (JSON round-trip, cross-process shipping format)
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable export with percentile leaves.

        The ``buckets`` block preserves the full sketch (for
        :meth:`from_dict` round-trips and merges); the ``p50/p90/p99/p999``
        leaves give snapshot diffs plain numeric percentile metrics.
        """
        out: Dict[str, object] = {
            "kind": SKETCH_KIND,
            "relative_error": self.relative_error,
            "count": self.count,
            "zero_count": self.zero_count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.counts.items())},
        }
        for q, name in EXPORTED_QUANTILES:
            out[name] = self.percentile(q)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LatencyHistogram":
        """Rebuild a sketch serialized by :meth:`as_dict`."""
        out = cls(float(data["relative_error"]))
        out.counts = {int(k): int(v) for k, v in data["buckets"].items()}
        out.zero_count = int(data.get("zero_count", 0))
        out.total = float(data.get("sum", 0.0))
        out.max = float(data.get("max", 0.0))
        out.min = float(data.get("min", math.inf)) if out.count else math.inf
        return out


def is_sketch_dict(value: object) -> bool:
    """True when ``value`` is a serialized :class:`LatencyHistogram`."""
    return (
        isinstance(value, dict)
        and value.get("kind") == SKETCH_KIND
        and "buckets" in value
        and "relative_error" in value
    )


def merge_sketch_dicts(dicts: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Merge serialized sketches (the rollup layer's leaf-merge hook)."""
    merged: Optional[LatencyHistogram] = None
    for data in dicts:
        sketch = LatencyHistogram.from_dict(data)
        merged = sketch if merged is None else merged.merge(sketch)
    return merged.as_dict() if merged is not None else {}


__all__ = [
    "LatencyHistogram",
    "DEFAULT_RELATIVE_ERROR",
    "EXPORTED_QUANTILES",
    "SKETCH_KIND",
    "is_sketch_dict",
    "merge_sketch_dicts",
]
