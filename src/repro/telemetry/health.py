"""Rule-driven health monitor over telemetry snapshots.

The serving tier's question is not "what are the counters" but "is this
shard still healthy enough to take traffic".  :class:`HealthMonitor`
answers it mechanically: a set of :class:`HealthRule` objects, each
reading a few dotted leaves out of a registry snapshot (via
:func:`~repro.telemetry.compare.flatten_numeric`) and classifying them
into OK / WARN / CRITICAL bands.  The shipped rules cover the four
degradation axes the ROADMAP's serving work needs:

* :class:`AmalDriftRule` — measured AMAL vs the value the
  :mod:`repro.hashing.analysis` occupancy model predicts for the loaded
  database; drift means the hash function has stopped matching the key
  population (churn skew, pathological inserts) and a rebalance is due.
* :class:`SpillFractionRule` — fraction of records placed outside their
  home bucket (the bulk planner's ``spill_rate`` or a live ratio);
  rising spill is the leading indicator of AMAL regressions.
* :class:`CorrectionTrendRule` — ECC-correction + quarantine *rate
  per lookup* and its trend across successive evaluations; a worsening
  trend means the array is accumulating damage faster than scrubbing
  heals it.
* :class:`LatencySLORule` — a percentile read from a
  :class:`~repro.telemetry.histogram.LatencyHistogram` leaf against an
  SLO bound, with WARN at a configurable burn fraction of the bound.

Each evaluation emits typed ``health.<level>`` trace events (one per
non-OK finding plus one verdict event) when a tracer is attached, and the
:class:`HealthReport` maps to the stable CLI exit codes of
:mod:`repro.errors` — 0 healthy, 10 degraded, 11 critical — so cron jobs
and CI can gate on `repro telemetry health` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import (
    ConfigurationError,
    HealthCriticalError,
    HealthDegradedError,
)
from repro.telemetry.compare import flatten_numeric

#: Severity bands, ordered.
OK, WARN, CRITICAL = "ok", "warn", "critical"
_SEVERITY = {OK: 0, WARN: 1, CRITICAL: 2}


#: Envelope prefixes stripped (as aliases) when flattening snapshots, so
#: rule paths address the provider mount directly.
_ENVELOPE_PREFIXES = ("metrics.stats.", "metrics.", "stats.")


def _flatten_with_aliases(snapshot: Dict[str, object]) -> Dict[str, float]:
    flat = flatten_numeric(snapshot)
    for path in list(flat):
        for prefix in _ENVELOPE_PREFIXES:
            if path.startswith(prefix):
                flat.setdefault(path[len(prefix):], flat[path])
    return flat


@dataclass(frozen=True)
class HealthFinding:
    """One rule's verdict for one evaluation."""

    rule: str
    level: str
    message: str
    value: Optional[float] = None
    threshold: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "level": self.level,
            "message": self.message,
            "value": self.value,
            "threshold": self.threshold,
        }


class HealthRule:
    """One health check: reads snapshot leaves, returns a finding.

    Subclasses implement :meth:`evaluate` over the *flattened* snapshot
    (``{dotted.path: float}``).  ``history`` carries this rule's previous
    findings' values (oldest first) so trend rules can difference them.
    """

    name = "rule"

    def evaluate(
        self, flat: Dict[str, float], history: Sequence[float]
    ) -> HealthFinding:  # pragma: no cover - interface
        raise NotImplementedError

    def _missing(self, what: str) -> HealthFinding:
        return HealthFinding(
            rule=self.name,
            level=OK,
            message=f"{what} not present in snapshot (rule skipped)",
        )


def _banded(value: float, warn: float, critical: float) -> str:
    if value >= critical:
        return CRITICAL
    if value >= warn:
        return WARN
    return OK


class AmalDriftRule(HealthRule):
    """Measured AMAL vs the occupancy model's expectation.

    Args:
        expected_amal: the model prediction — e.g.
            ``occupancy_report(...).amal`` from :mod:`repro.hashing.
            analysis` computed over the loaded key set, or the value a
            capacity plan was signed off against.
        path: snapshot leaf carrying the measured AMAL.
        warn / critical: relative drift ``measured/expected - 1`` bands.
    """

    name = "amal_drift"

    def __init__(
        self,
        expected_amal: float,
        path: str = "slice.search.amal",
        warn: float = 0.10,
        critical: float = 0.25,
    ) -> None:
        if expected_amal <= 0:
            raise ConfigurationError(
                f"expected_amal must be positive, got {expected_amal}"
            )
        self.expected = float(expected_amal)
        self.path = path
        self.warn = warn
        self.critical = critical

    def evaluate(self, flat, history) -> HealthFinding:
        measured = flat.get(self.path)
        if measured is None or measured == 0.0:
            return self._missing(f"measured AMAL ({self.path})")
        drift = measured / self.expected - 1.0
        level = _banded(drift, self.warn, self.critical)
        return HealthFinding(
            rule=self.name,
            level=level,
            message=(
                f"AMAL {measured:.4f} vs model {self.expected:.4f} "
                f"({drift:+.1%} drift)"
            ),
            value=drift,
            threshold=self.warn if level != CRITICAL else self.critical,
        )


class SpillFractionRule(HealthRule):
    """Fraction of records spilled outside their home bucket."""

    name = "spill_fraction"

    def __init__(
        self,
        path: str = "slice.bulk.spill_rate",
        warn: float = 0.10,
        critical: float = 0.30,
    ) -> None:
        self.path = path
        self.warn = warn
        self.critical = critical

    def evaluate(self, flat, history) -> HealthFinding:
        spill = flat.get(self.path)
        if spill is None:
            return self._missing(f"spill fraction ({self.path})")
        level = _banded(spill, self.warn, self.critical)
        return HealthFinding(
            rule=self.name,
            level=level,
            message=f"spill fraction {spill:.1%}",
            value=spill,
            threshold=self.warn if level != CRITICAL else self.critical,
        )


class CorrectionTrendRule(HealthRule):
    """ECC-correction + quarantine rate per lookup, and its trend.

    The *rate* bands catch a sick array outright; the *trend* check
    escalates to WARN when the rate grew across ``trend_window``
    consecutive evaluations even while still under the warn band —
    damage accumulating faster than scrubbing heals it.
    """

    name = "correction_trend"

    def __init__(
        self,
        corrections_path: str = "slice.search.ecc_corrections",
        quarantines_path: str = "slice.search.quarantines",
        lookups_path: str = "slice.search.lookups",
        warn: float = 1e-3,
        critical: float = 1e-2,
        trend_window: int = 3,
    ) -> None:
        self.corrections_path = corrections_path
        self.quarantines_path = quarantines_path
        self.lookups_path = lookups_path
        self.warn = warn
        self.critical = critical
        self.trend_window = max(2, trend_window)

    def evaluate(self, flat, history) -> HealthFinding:
        lookups = flat.get(self.lookups_path)
        if not lookups:
            return self._missing(f"lookup count ({self.lookups_path})")
        events = flat.get(self.corrections_path, 0.0) + flat.get(
            self.quarantines_path, 0.0
        )
        rate = events / lookups
        level = _banded(rate, self.warn, self.critical)
        message = f"correction+quarantine rate {rate:.2e}/lookup"
        if level == OK and len(history) >= self.trend_window - 1:
            window = list(history[-(self.trend_window - 1):]) + [rate]
            rising = all(b > a for a, b in zip(window, window[1:]))
            if rising and rate > 0:
                level = WARN
                message += (
                    f" rising across {self.trend_window} evaluations"
                )
        return HealthFinding(
            rule=self.name,
            level=level,
            message=message,
            value=rate,
            threshold=self.warn if level != CRITICAL else self.critical,
        )


class LatencySLORule(HealthRule):
    """A latency percentile against an SLO bound.

    Args:
        slo_seconds: the bound the percentile must stay under.
        path: leaf carrying the percentile (a ``p99`` leaf of a
            serialized latency sketch, or any numeric seconds leaf).
        warn_burn: fraction of the SLO at which WARN starts (CRITICAL at
            or above the SLO itself).
    """

    name = "latency_slo"

    def __init__(
        self,
        slo_seconds: float,
        path: str = "slice.search.latency.p99",
        warn_burn: float = 0.8,
    ) -> None:
        if slo_seconds <= 0:
            raise ConfigurationError(
                f"slo_seconds must be positive, got {slo_seconds}"
            )
        self.slo = float(slo_seconds)
        self.path = path
        self.warn_burn = warn_burn

    def evaluate(self, flat, history) -> HealthFinding:
        value = flat.get(self.path)
        if value is None:
            return self._missing(f"latency percentile ({self.path})")
        burn = value / self.slo
        level = _banded(burn, self.warn_burn, 1.0)
        return HealthFinding(
            rule=self.name,
            level=level,
            message=(
                f"{self.path} = {value * 1e3:.3f} ms "
                f"({burn:.0%} of the {self.slo * 1e3:.3f} ms SLO)"
            ),
            value=burn,
            threshold=self.warn_burn if level != CRITICAL else 1.0,
        )


@dataclass
class HealthReport:
    """One evaluation's findings plus the overall verdict."""

    findings: List[HealthFinding] = field(default_factory=list)

    @property
    def level(self) -> str:
        worst = OK
        for finding in self.findings:
            if _SEVERITY[finding.level] > _SEVERITY[worst]:
                worst = finding.level
        return worst

    @property
    def ok(self) -> bool:
        return self.level == OK

    @property
    def exit_code(self) -> int:
        """The stable CLI exit code for this verdict (0 / 10 / 11)."""
        level = self.level
        if level == CRITICAL:
            return HealthCriticalError.exit_code
        if level == WARN:
            return HealthDegradedError.exit_code
        return 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "ok": self.ok,
            "exit_code": self.exit_code,
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def format(self) -> str:
        lines = [f"health: {self.level.upper()}"]
        for finding in self.findings:
            lines.append(
                f"  [{finding.level.upper():<8}] "
                f"{finding.rule}: {finding.message}"
            )
        return "\n".join(lines)


class HealthMonitor:
    """Evaluates a rule set against successive snapshots.

    Args:
        rules: the checks to run, in report order.
        tracer: optional :class:`~repro.telemetry.trace.Tracer`; each
            evaluation emits one ``health.<level>`` event per non-OK
            finding plus a ``health.verdict`` event, so health state
            changes land in the same replayable stream as everything else.
    """

    def __init__(self, rules: Sequence[HealthRule], tracer=None) -> None:
        if not rules:
            raise ConfigurationError("health monitor needs at least one rule")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate health rule names: {sorted(names)}"
            )
        self.rules = list(rules)
        self.tracer = tracer
        self._history: Dict[str, List[float]] = {r.name: [] for r in rules}
        self.reports: List[HealthReport] = []

    def evaluate(self, snapshot: Dict[str, object]) -> HealthReport:
        """Run every rule over one snapshot; record history and events.

        Accepts a raw registry snapshot, a ``repro telemetry run`` report,
        or any nested numeric tree: the registry's ``stats.`` / a report's
        ``metrics.`` wrappers are aliased away, so rule paths are written
        against the provider mount (``slice.search.amal``) regardless of
        which envelope carried it.
        """
        flat = _flatten_with_aliases(snapshot)
        report = HealthReport()
        for rule in self.rules:
            finding = rule.evaluate(flat, self._history[rule.name])
            if finding.value is not None:
                self._history[rule.name].append(finding.value)
            report.findings.append(finding)
            if self.tracer is not None and finding.level != OK:
                self.tracer.emit(
                    f"health.{finding.level}",
                    rule=finding.rule,
                    message=finding.message,
                    value=finding.value,
                    threshold=finding.threshold,
                )
        if self.tracer is not None:
            self.tracer.emit(
                "health.verdict",
                level=report.level,
                exit_code=report.exit_code,
                findings=len(report.findings),
            )
        self.reports.append(report)
        return report


def default_rules(
    expected_amal: Optional[float] = None,
    slo_seconds: Optional[float] = None,
    prefix: str = "slice",
) -> List[HealthRule]:
    """The standard rule set over a slice/group telemetry mount.

    ``expected_amal`` and ``slo_seconds`` gate their rules in (both need
    an external reference the snapshot cannot supply); the spill and
    correction rules always apply.
    """
    rules: List[HealthRule] = []
    if expected_amal is not None:
        rules.append(
            AmalDriftRule(expected_amal, path=f"{prefix}.search.amal")
        )
    rules.append(SpillFractionRule(path=f"{prefix}.bulk.spill_rate"))
    rules.append(
        CorrectionTrendRule(
            corrections_path=f"{prefix}.search.ecc_corrections",
            quarantines_path=f"{prefix}.search.quarantines",
            lookups_path=f"{prefix}.search.lookups",
        )
    )
    if slo_seconds is not None:
        rules.append(
            LatencySLORule(
                slo_seconds, path=f"{prefix}.search.latency.p99"
            )
        )
    return rules


__all__ = [
    "OK",
    "WARN",
    "CRITICAL",
    "AmalDriftRule",
    "CorrectionTrendRule",
    "HealthFinding",
    "HealthMonitor",
    "HealthReport",
    "HealthRule",
    "LatencySLORule",
    "SpillFractionRule",
    "default_rules",
]
