"""Exporters: Prometheus text exposition, periodic JSONL sampler, scraper.

Three ways out of the process for a :class:`~repro.telemetry.metrics.
MetricsRegistry` snapshot:

* :func:`render_prometheus` — the Prometheus **text exposition format**
  (version 0.0.4): counters/gauges typed, exact histograms and latency
  sketches rendered as summaries with quantile labels, every other numeric
  provider leaf as an untyped sample carrying its dotted path in a
  ``path`` label.  :func:`validate_exposition` is the matching grammar
  checker (used by the tests *and* the CI scrape step, so format drift is
  caught without promtool).
* :class:`JsonlSampler` — a periodic background sampler appending one
  timestamped snapshot per line to a JSONL file, flushed per sample so a
  crashed soak run still leaves a replayable series.  ``sample()`` can
  also be driven manually (deterministic tests).
* :class:`TelemetryServer` — an opt-in stdlib :mod:`http.server` scrape
  endpoint (``repro telemetry serve``): ``/metrics`` serves the
  exposition, ``/health`` the health monitor's JSON verdict, ``/snapshot``
  the raw snapshot.  ``max_requests`` lets CI scrape-and-exit without
  process management gymnastics.

Nothing here imports outside the stdlib — the scrape endpoint must run in
the bare CI container.
"""

from __future__ import annotations

import http.server
import json
import re
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.telemetry.histogram import EXPORTED_QUANTILES, is_sketch_dict
from repro.telemetry.metrics import MetricsRegistry

#: Prefix stamped onto every exported metric name.
DEFAULT_NAMESPACE = "caram"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
#: One label value: any run of non-quote/backslash chars or escapes
#: (``\"``, ``\\``, ``\n`` are legal inside label values).
_LABEL_VALUE = r"\"(?:[^\"\\\n]|\\.)*\""
_METRIC_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=" + _LABEL_VALUE  # first label
    + r"(,[a-zA-Z_][a-zA-Z0-9_]*=" + _LABEL_VALUE + r")*\})?"
    r" [^ \n]+$"                                  # value
)


def sanitize_name(path: str, namespace: str = DEFAULT_NAMESPACE) -> str:
    """Dotted path -> Prometheus-legal metric name."""
    name = _NAME_RE.sub("_", path.strip("."))
    if not name or not (name[0].isalpha() or name[0] == "_"):
        name = "_" + name
    return f"{namespace}_{name}" if namespace else name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _summary_lines(
    name: str,
    quantile_values: List[Tuple[str, float]],
    count: int,
    total: float,
    labels: str = "",
) -> List[str]:
    lines = [f"# TYPE {name} summary"]
    for quantile, value in quantile_values:
        sep = "," if labels else ""
        lines.append(
            f'{name}{{{labels}{sep}quantile="{quantile}"}} '
            f"{_format_value(value)}"
        )
    suffix = f"{{{labels}}}" if labels else ""
    lines.append(f"{name}_count{suffix} {count}")
    lines.append(f"{name}_sum{suffix} {_format_value(total)}")
    return lines


def _exact_histogram_quantiles(block: Dict[str, object]) -> List[Tuple[str, float]]:
    """Quantiles of an exact ``HistogramMetric.as_dict`` counts block."""
    counts = sorted(
        (int(k), int(v)) for k, v in block.get("counts", {}).items()
    )
    n = sum(c for _, c in counts)
    out: List[Tuple[str, float]] = []
    for q, _ in EXPORTED_QUANTILES:
        if n == 0:
            out.append((str(q), 0.0))
            continue
        rank = max(1, -(-int(q * n * 1000) // 1000))  # ceil without floats
        cumulative = 0
        for value, count in counts:
            cumulative += count
            if cumulative >= rank:
                out.append((str(q), float(value)))
                break
    return out


def render_prometheus(
    snapshot: Dict[str, object], namespace: str = DEFAULT_NAMESPACE
) -> str:
    """Render one registry snapshot as Prometheus text exposition.

    Counters and gauges become typed samples under their sanitized dotted
    names.  Exact histograms and serialized latency sketches render as
    summaries (quantile-labelled samples plus ``_count``/``_sum``).  Every
    other numeric leaf of a provider block becomes an untyped gauge named
    after the leaf, labelled with its mount ``path`` — so per-slice blocks
    share one metric family distinguishable by label, the Prometheus idiom
    for the rollup tree.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = sanitize_name(name, namespace)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = sanitize_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, block in snapshot.get("histograms", {}).items():
        metric = sanitize_name(name, namespace)
        lines.extend(
            _summary_lines(
                metric,
                _exact_histogram_quantiles(block),
                int(block.get("observations", 0)),
                float(block.get("total", 0.0)),
            )
        )
    stat_families: Dict[str, List[str]] = {}
    for prefix in sorted(snapshot.get("stats", {})):
        block = snapshot["stats"][prefix]
        if not isinstance(block, dict):
            continue
        label = f'path="{_escape_label(prefix)}"'
        for leaf in sorted(block):
            value = block[leaf]
            if is_sketch_dict(value):
                metric = sanitize_name(leaf, namespace)
                lines.extend(
                    _summary_lines(
                        metric,
                        [
                            (str(q), float(value[qname]))
                            for q, qname in EXPORTED_QUANTILES
                        ],
                        int(value.get("count", 0)),
                        float(value.get("sum", 0.0)),
                        labels=label,
                    )
                )
            elif isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            else:
                metric = sanitize_name(leaf, namespace)
                stat_families.setdefault(metric, []).append(
                    f"{metric}{{{label}}} {_format_value(value)}"
                )
    for metric in sorted(stat_families):
        lines.append(f"# TYPE {metric} gauge")
        lines.extend(stat_families[metric])
    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> int:
    """Check Prometheus text-format conformance; returns the sample count.

    Raises :class:`~repro.errors.ConfigurationError` on the first
    malformed line — the CI scrape step and the exporter tests share this
    checker, so the rendered format cannot silently drift.
    """
    samples = 0
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram", "untyped"
            ):
                raise ConfigurationError(
                    f"line {lineno}: malformed TYPE line {line!r}"
                )
            if parts[2] in typed:
                raise ConfigurationError(
                    f"line {lineno}: duplicate TYPE for {parts[2]!r}"
                )
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        if not _METRIC_LINE_RE.match(line):
            raise ConfigurationError(
                f"line {lineno}: malformed sample line {line!r}"
            )
        value = line.rsplit(" ", 1)[1]
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ConfigurationError(
                    f"line {lineno}: non-numeric sample value {value!r}"
                ) from None
        samples += 1
    if samples == 0:
        raise ConfigurationError("exposition contains no samples")
    return samples


class JsonlSampler:
    """Periodic registry snapshots appended to a JSONL file.

    Each line is ``{"seq": n, "elapsed_s": t, "snapshot": {...}}`` —
    flushed immediately, so a crashed run keeps every completed sample.
    ``start()`` drives sampling from a daemon thread on ``interval``
    seconds; ``sample()`` can also be called directly (manual cadence,
    deterministic tests).  Use as a context manager to guarantee the final
    sample and the file close.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path,
        interval: float = 1.0,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"sampler interval must be positive, got {interval}"
            )
        self._registry = registry
        self._path = path
        self.interval = interval
        self._file = open(path, "a", encoding="utf-8")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self.samples_written = 0

    @property
    def path(self):
        return self._path

    def sample(self) -> Dict[str, object]:
        """Take and append one snapshot (thread-safe, flushed)."""
        record = {
            "seq": self.samples_written,
            "elapsed_s": round(time.perf_counter() - self._started, 6),
            "snapshot": self._registry.snapshot(),
        }
        with self._lock:
            if self._file.closed:
                return record
            self._file.write(json.dumps(record) + "\n")
            self._file.flush()
            self.samples_written += 1
        return record

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def start(self) -> "JsonlSampler":
        """Begin background sampling every ``interval`` seconds."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="telemetry-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        """Stop the background thread, optionally recording a last sample."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if final_sample and not self._file.closed:
            self.sample()

    def close(self) -> None:
        self.stop(final_sample=False)
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "JsonlSampler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        self.close()
        return False


def read_samples(path) -> List[Dict[str, object]]:
    """Load every sample line of a :class:`JsonlSampler` file."""
    out: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


class _ScrapeHandler(http.server.BaseHTTPRequestHandler):
    server_version = "caram-telemetry/1"

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        server: "TelemetryServer" = self.server.telemetry  # type: ignore
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = render_prometheus(
                    server.registry.snapshot(), server.namespace
                ).encode("utf-8")
                self._send(
                    200, "text/plain; version=0.0.4; charset=utf-8", body
                )
            elif path == "/snapshot":
                body = json.dumps(server.registry.snapshot(), indent=2)
                self._send(200, "application/json", body.encode("utf-8"))
            elif path == "/health" and server.health_check is not None:
                body = json.dumps(server.health_check(), indent=2)
                self._send(200, "application/json", body.encode("utf-8"))
            else:
                self._send(404, "text/plain", b"not found\n")
                return
        except Exception as exc:  # pragma: no cover - defensive
            self._send(500, "text/plain", f"error: {exc}\n".encode("utf-8"))
            return
        server._count_request()

    def log_message(self, fmt: str, *args) -> None:
        if self.server.telemetry.verbose:  # type: ignore[attr-defined]
            super().log_message(fmt, *args)


class TelemetryServer:
    """Opt-in stdlib HTTP scrape endpoint over one metrics registry.

    Args:
        registry: the live registry snapshotted per request.
        host / port: bind address (``port=0`` picks a free port — tests).
        health_check: optional zero-arg callable returning the JSON body
            of ``/health`` (the health monitor's report).
        max_requests: after this many *successful* scrapes the server
            shuts itself down (0 = serve until :meth:`stop`); lets CI
            scrape once and exit cleanly.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        health_check: Optional[Callable[[], Dict[str, object]]] = None,
        max_requests: int = 0,
        namespace: str = DEFAULT_NAMESPACE,
        verbose: bool = False,
    ) -> None:
        self.registry = registry
        self.health_check = health_check
        self.max_requests = max_requests
        self.namespace = namespace
        self.verbose = verbose
        self.requests_served = 0
        self._httpd = http.server.ThreadingHTTPServer(
            (host, port), _ScrapeHandler
        )
        self._httpd.telemetry = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._done = threading.Event()

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _count_request(self) -> None:
        self.requests_served += 1
        if self.max_requests and self.requests_served >= self.max_requests:
            self._done.set()
            # shutdown() must come from another thread than the handler's.
            threading.Thread(target=self._httpd.shutdown, daemon=True).start()

    def start(self) -> "TelemetryServer":
        """Serve in a background thread; returns immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="telemetry-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_until_done(self) -> int:
        """Block until ``max_requests`` scrapes landed (or forever).

        The foreground spelling the CLI uses; returns requests served.
        """
        self.start()
        try:
            self._done.wait()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        self.stop()
        return self.requests_served

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


__all__ = [
    "DEFAULT_NAMESPACE",
    "JsonlSampler",
    "TelemetryServer",
    "read_samples",
    "render_prometheus",
    "sanitize_name",
    "validate_exposition",
]
