"""Low-overhead structured event tracing for the CA-RAM stack.

The paper's evaluation is counter-driven; the tracer records *why* the
counters moved: one typed event per interesting step of a run.  Event kinds
emitted by the stack:

``bucket_read``
    A bucket/row fetch (scalar ``read_row`` or a batch of mirror-served
    fetches with a ``count``).
``probe_step``
    One attempt of an extended search along the probe sequence.
``spill``
    An insert that overflowed its home bucket and was displaced
    ``attempt`` buckets along the probe sequence.
``match_pass``
    Pipelined matching passes accounted by the match processors.
``mirror_invalidate``
    Row-content change notification (write / bulk load / fill) — the
    signal that forces decoded-mirror re-decodes.
``bulk_plan``
    One vectorized bulk-build placement resolved (record/copy/spill
    totals).
``dma_burst``
    A DMA-style bulk row load into a memory array.
``lookup`` / ``lookup_batch`` / ``lookup_batch_varied`` / ``insert`` /
``insert_batch`` / ``delete`` / ``probe_walk`` / ``scalar_fallback`` /
``fault_inject`` / ``ecc_correct`` / ``corruption_detect`` /
``quarantine`` / ``victim_hit`` / ``lookup_retry``
    The :class:`~repro.core.stats.SearchStats` mutation stream (the last
    six are the reliability layer's fault/correction/degradation events).
    These
    carry exactly the arguments of the corresponding ``record_*`` call, so
    a trace **replays**: :func:`replay_search_stats` folds them back into a
    fresh ``SearchStats`` whose counters are bit-identical to the ones
    accumulated live (the round-trip the telemetry tests pin down).

Tracing is **off by default** and costs one ``is None`` attribute check on
the hot paths when disabled: components hold ``tracer = None`` and emit
only behind that guard.  When enabled, events land in a bounded ring
buffer (newest win) and are forwarded to a pluggable sink — in-memory,
JSONL file, or null.
"""

from __future__ import annotations

import atexit
import json
from collections import deque
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional

from repro.errors import ConfigurationError

#: Default ring-buffer capacity (events kept in memory).
DEFAULT_RING_CAPACITY = 65_536


class TraceEvent(NamedTuple):
    """One structured trace event: a kind tag plus a flat JSON payload."""

    kind: str
    payload: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        """Flatten to one JSON-serializable dict (``kind`` key first)."""
        out: Dict[str, object] = {"kind": self.kind}
        out.update(self.payload)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceEvent":
        payload = dict(data)
        kind = payload.pop("kind")
        return cls(str(kind), payload)


class TraceSink:
    """Receives every emitted event; subclasses route them somewhere."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release any underlying resource (default: nothing)."""


class NullSink(TraceSink):
    """Swallows events (ring-buffer-only tracing)."""

    def emit(self, event: TraceEvent) -> None:
        pass


class InMemorySink(TraceSink):
    """Appends every event to an unbounded in-process list."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)


class JsonlSink(TraceSink):
    """Streams events to a JSON-lines file, one event per line.

    Every emit is flushed, so the file is complete up to the last event
    even if the process dies mid-run; the sink also registers an
    :mod:`atexit` close and works as a context manager, so traces survive
    callers that forget ``close()``.
    """

    def __init__(self, path) -> None:
        self._path = path
        self._file = open(path, "w", encoding="utf-8")
        atexit.register(self.close)

    @property
    def path(self):
        return self._path

    def emit(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.as_dict()) + "\n")
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
        atexit.unregister(self.close)

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_jsonl(path) -> Iterator[TraceEvent]:
    """Yield the events of a JSONL trace file in emission order."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield TraceEvent.from_dict(json.loads(line))


class Tracer:
    """Bounded-ring event recorder with an optional forwarding sink.

    Args:
        sink: where emitted events are forwarded (None = ring buffer only).
        capacity: ring-buffer size; the newest ``capacity`` events are kept.

    A ``Tracer`` instance is always "enabled" in the sense that ``emit``
    records; the zero-overhead disabled state is represented by *not
    attaching a tracer at all* (``component.tracer = None``), which reduces
    the hot-path cost to a single attribute check.
    """

    __slots__ = ("_ring", "_sink", "events_emitted", "dropped_events")

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"ring capacity must be positive, got {capacity}"
            )
        self._ring: deque = deque(maxlen=capacity)
        self._sink = sink
        self.events_emitted = 0
        #: Events evicted from the ring by newer ones (sinks still saw
        #: them) — nonzero means ring-only readers lost history.
        self.dropped_events = 0

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    @property
    def sink(self) -> Optional[TraceSink]:
        return self._sink

    def emit(self, kind: str, **payload) -> None:
        """Record one event (and forward it to the sink, if any)."""
        event = TraceEvent(kind, payload)
        ring = self._ring
        if len(ring) == ring.maxlen:
            self.dropped_events += 1
        ring.append(event)
        self.events_emitted += 1
        if self._sink is not None:
            self._sink.emit(event)

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """The ring-buffer content, oldest first (optionally one kind)."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.kind == kind]

    def clear(self) -> None:
        """Drop the ring-buffer content (the sink is untouched)."""
        self._ring.clear()

    def close(self) -> None:
        """Close the attached sink (flushing file-backed sinks)."""
        if self._sink is not None:
            self._sink.close()

    def summary(self) -> Dict[str, int]:
        """Event counts by kind over the current ring content, plus the
        total emitted/dropped accounting (``dropped_events`` > 0 means the
        ring no longer holds the full history)."""
        counts: Dict[str, int] = {}
        for event in self._ring:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        counts["events_emitted"] = self.events_emitted
        counts["dropped_events"] = self.dropped_events
        return counts


#: Trace kinds that carry ``SearchStats`` mutations (the replayable set).
STATS_EVENT_KINDS = frozenset(
    {
        "lookup",
        "lookup_batch",
        "lookup_batch_varied",
        "match_pass",
        "insert",
        "insert_batch",
        "delete",
        "probe_walk",
        "scalar_fallback",
        "fault_inject",
        "ecc_correct",
        "corruption_detect",
        "quarantine",
        "victim_hit",
        "lookup_retry",
    }
)


def replay_search_stats(events: Iterable[TraceEvent]):
    """Fold a trace's stats events back into a fresh ``SearchStats``.

    Non-stats events (``bucket_read``, ``dma_burst``, ...) are skipped, so
    a full mixed trace replays cleanly.  The returned counters are
    bit-identical to the live run's — the round-trip contract of the
    stats-level tracing hooks.
    """
    from repro.core.stats import SearchStats

    stats = SearchStats()
    for event in events:
        kind, payload = event.kind, event.payload
        if kind == "lookup":
            stats.record_lookup(int(payload["accesses"]), bool(payload["hit"]))
        elif kind == "lookup_batch":
            stats.record_lookup_batch(
                int(payload["count"]),
                int(payload["hits"]),
                int(payload["accesses"]),
            )
        elif kind == "lookup_batch_varied":
            histogram = {
                int(accesses): int(count)
                for accesses, count in payload["histogram"].items()
            }
            for accesses, count in sorted(histogram.items()):
                stats.lookups += count
                stats.total_bucket_accesses += accesses * count
                stats.access_histogram[accesses] += count
            stats.hits += int(payload["hits"])
        elif kind == "match_pass":
            stats.record_match_passes(int(payload["passes"]))
        elif kind == "insert":
            stats.record_insert(int(payload["probes"]))
        elif kind == "insert_batch":
            stats.record_insert_batch(
                int(payload["count"]), int(payload["probes"])
            )
        elif kind == "delete":
            stats.record_delete()
        elif kind == "probe_walk":
            stats.record_probe_walk(int(payload["keys"]))
        elif kind == "scalar_fallback":
            stats.record_scalar_fallbacks(int(payload["count"]))
        elif kind == "fault_inject":
            stats.record_fault_injected()
        elif kind == "ecc_correct":
            stats.record_ecc_correction()
        elif kind == "corruption_detect":
            stats.record_corruption_detected()
        elif kind == "quarantine":
            stats.record_quarantine(int(payload["records"]))
        elif kind == "victim_hit":
            stats.record_victim_hit()
        elif kind == "lookup_retry":
            stats.record_lookup_retry()
    return stats


__all__ = [
    "TraceEvent",
    "TraceSink",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "Tracer",
    "read_jsonl",
    "replay_search_stats",
    "STATS_EVENT_KINDS",
    "DEFAULT_RING_CAPACITY",
]
