"""Synthetic telemetry workload: one command, every instrument exercised.

Builds a small CA-RAM slice, bulk-loads it, and drives a mixed hit/miss
lookup stream through both the scalar and batch paths with the full
telemetry stack attached — metrics registry, structured-event tracer, and
phase profiler.  The returned report is plain JSON-serializable data, so
the CLI (``repro telemetry run``), the CI telemetry job, and the tests all
share this one entry point.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import SliceConfig
from repro.core.index import IndexGenerator
from repro.core.record import RecordFormat
from repro.core.slice import CARAMSlice
from repro.hashing.bit_select import BitSelectHash
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import enabled_profiler
from repro.telemetry.trace import InMemorySink, JsonlSink, Tracer
from repro.utils.rng import make_rng

KEY_BITS = 32
DATA_BITS = 16
HASH_LSB = 12  # hash bits sit mid-key so random keys spread evenly


def build_workload_slice(index_bits: int, slots: int) -> CARAMSlice:
    """A lookup-table slice shaped like the batch-lookup benchmark's."""
    record_format = RecordFormat(key_bits=KEY_BITS, data_bits=DATA_BITS)
    aux_bits = 8
    config = SliceConfig(
        index_bits=index_bits,
        row_bits=aux_bits + slots * record_format.slot_bits,
        record_format=record_format,
        aux_bits=aux_bits,
    )
    hash_function = BitSelectHash(
        KEY_BITS, tuple(range(HASH_LSB, HASH_LSB + index_bits))
    )
    return CARAMSlice(config, IndexGenerator(hash_function, config.rows))


def make_keys(slice_: CARAMSlice, load_factor: float, seed: int):
    """Distinct random keys filling the slice to ``load_factor``."""
    rng = make_rng(seed)
    target = int(slice_.config.capacity_records * load_factor)
    keys = []
    seen = set()
    while len(keys) < target:
        key = int(rng.integers(0, 1 << KEY_BITS))
        if key not in seen:
            seen.add(key)
            keys.append(key)
    return keys


def make_queries(stored, queries: int, hit_fraction: float, seed: int):
    """Shuffled mix of stored keys and uniform (mostly-miss) keys."""
    rng = make_rng(seed)
    hits = rng.choice(stored, size=int(queries * hit_fraction))
    misses = rng.integers(0, 1 << KEY_BITS, size=queries - hits.size)
    mixed = [int(k) for k in hits] + [int(k) for k in misses]
    rng.shuffle(mixed)
    return mixed


def run_synthetic_workload(
    index_bits: int = 8,
    slots: int = 16,
    load_factor: float = 0.7,
    queries: int = 10_000,
    hit_fraction: float = 0.5,
    seed: int = 99,
    trace: bool = True,
    trace_path: Optional[str] = None,
    scalar_queries: int = 256,
    track_latency: bool = False,
    latency_error: Optional[float] = None,
) -> Dict[str, object]:
    """Run the synthetic workload and return the full telemetry report.

    Args:
        trace: attach a structured-event tracer (in-memory ring unless
            ``trace_path`` routes events to a JSONL file as well).
        trace_path: optional JSONL file receiving every event.
        scalar_queries: prefix of the query stream replayed through the
            scalar path first, so per-key ``probe_step`` events and
            physical ``bucket_read`` events appear in the trace.
        track_latency: record per-chunk batch-lookup latency into the
            search stats' quantile sketch (surfaces as
            ``slice.search.latency`` in the metrics snapshot).
        latency_error: relative-error bound for that sketch (None =
            library default).

    Returns a JSON-serializable report::

        {"workload": {...}, "metrics": <registry snapshot>,
         "phases": {phase: {"seconds", "calls"}}, "trace": <summary|None>}
    """
    slice_ = build_workload_slice(index_bits, slots)

    registry = MetricsRegistry()
    slice_.register_telemetry(registry)
    if track_latency:
        slice_.enable_latency_tracking(latency_error)

    tracer: Optional[Tracer] = None
    if trace:
        sink = JsonlSink(trace_path) if trace_path else InMemorySink()
        tracer = Tracer(sink=sink)
        slice_.tracer = tracer
        registry.register_provider(
            "tracer",
            lambda: {
                "events_emitted": tracer.events_emitted,
                "dropped_events": tracer.dropped_events,
            },
        )

    with enabled_profiler() as profiler:
        stored = make_keys(slice_, load_factor, seed)
        slice_.bulk_load([(key, key & 0xFFFF) for key in stored])

        mixed = make_queries(stored, queries, hit_fraction, seed + 1)
        for key in mixed[:scalar_queries]:
            slice_.search(key)
        slice_.search_batch(mixed)

        registry.counter("workload.batches").inc()
        registry.gauge("workload.queries").set(
            len(mixed) + min(scalar_queries, len(mixed))
        )

    report: Dict[str, object] = {
        "workload": {
            "index_bits": index_bits,
            "slots": slots,
            "load_factor": round(slice_.load_factor, 3),
            "records": slice_.record_count,
            "queries": queries,
            "scalar_queries": min(scalar_queries, queries),
            "hit_fraction": hit_fraction,
            "seed": seed,
        },
        "metrics": registry.snapshot(),
        "phases": profiler.as_dict(),
        "trace": tracer.summary() if tracer is not None else None,
    }
    if tracer is not None:
        tracer.close()
    return report


__all__ = [
    "build_workload_slice",
    "make_keys",
    "make_queries",
    "run_synthetic_workload",
]
