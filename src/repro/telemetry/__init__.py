"""Telemetry: structured tracing, metrics registry, per-phase profiling.

The cross-cutting observability layer of the CA-RAM stack:

* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` with counters,
  gauges, exact histograms, and mounted stat providers (``SearchStats``,
  ``ArrayStats``, bulk-plan totals), exported via ``snapshot()``;
* :mod:`repro.telemetry.trace` — a ring-buffered typed-event
  :class:`Tracer` with pluggable sinks (in-memory, JSONL, null); off by
  default, one ``is None`` check on the hot paths when disabled, and
  stats-event streams replay to bit-identical counters;
* :mod:`repro.telemetry.profiling` — ``with profile(phase):`` wall-time
  accounting for the batch/bulk pipeline stages;
* :mod:`repro.telemetry.compare` — snapshot diffing that flags counter and
  timing regressions beyond a threshold.
"""

from repro.telemetry.compare import (
    ComparisonReport,
    IncomparableRunsError,
    MetricDelta,
    compare_telemetry,
    flatten_numeric,
    load_snapshot,
)
from repro.telemetry.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from repro.telemetry.profiling import (
    PhaseProfiler,
    enabled_profiler,
    get_profiler,
    profile,
    set_profiler,
)
from repro.telemetry.workload import run_synthetic_workload
from repro.telemetry.trace import (
    InMemorySink,
    JsonlSink,
    NullSink,
    TraceEvent,
    TraceSink,
    Tracer,
    read_jsonl,
    replay_search_stats,
)

__all__ = [
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "Tracer",
    "TraceEvent",
    "TraceSink",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "read_jsonl",
    "replay_search_stats",
    "PhaseProfiler",
    "profile",
    "get_profiler",
    "set_profiler",
    "enabled_profiler",
    "compare_telemetry",
    "ComparisonReport",
    "IncomparableRunsError",
    "MetricDelta",
    "flatten_numeric",
    "load_snapshot",
    "run_synthetic_workload",
]
