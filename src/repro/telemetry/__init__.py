"""Telemetry: structured tracing, metrics registry, per-phase profiling.

The cross-cutting observability layer of the CA-RAM stack:

* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` with counters,
  gauges, exact histograms, and mounted stat providers (``SearchStats``,
  ``ArrayStats``, bulk-plan totals), exported via ``snapshot()``;
* :mod:`repro.telemetry.trace` — a ring-buffered typed-event
  :class:`Tracer` with pluggable sinks (in-memory, JSONL, null); off by
  default, one ``is None`` check on the hot paths when disabled, and
  stats-event streams replay to bit-identical counters;
* :mod:`repro.telemetry.profiling` — ``with profile(phase):`` wall-time
  accounting for the batch/bulk pipeline stages;
* :mod:`repro.telemetry.compare` — snapshot diffing that flags counter and
  timing regressions beyond a threshold;
* :mod:`repro.telemetry.histogram` — mergeable log-bucketed
  :class:`LatencyHistogram` quantile sketches (bounded relative error);
* :mod:`repro.telemetry.rollup` — hierarchical label-tagged aggregation of
  registry snapshots (slice → group → subsystem, worker shards as
  children) with commutative merge;
* :mod:`repro.telemetry.export` — Prometheus text exposition, a periodic
  JSONL sampler, and an opt-in stdlib HTTP scrape endpoint;
* :mod:`repro.telemetry.health` — rule-driven health monitor (occupancy
  drift, spill fraction, correction trend, latency SLO burn) with stable
  CLI exit codes.
"""

from repro.telemetry.compare import (
    ComparisonReport,
    IncomparableRunsError,
    MetricDelta,
    compare_telemetry,
    flatten_numeric,
    load_snapshot,
)
from repro.telemetry.export import (
    JsonlSampler,
    TelemetryServer,
    read_samples,
    render_prometheus,
    validate_exposition,
)
from repro.telemetry.health import (
    AmalDriftRule,
    CorrectionTrendRule,
    HealthFinding,
    HealthMonitor,
    HealthReport,
    HealthRule,
    LatencySLORule,
    SpillFractionRule,
    default_rules,
)
from repro.telemetry.histogram import (
    DEFAULT_RELATIVE_ERROR,
    LatencyHistogram,
    is_sketch_dict,
    merge_sketch_dicts,
)
from repro.telemetry.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from repro.telemetry.profiling import (
    PhaseProfiler,
    enabled_profiler,
    get_profiler,
    profile,
    set_profiler,
)
from repro.telemetry.rollup import (
    RollupNode,
    build_rollup,
    flatten_rollup,
    merge_blocks,
    rollup_from_dict,
)
from repro.telemetry.workload import run_synthetic_workload
from repro.telemetry.trace import (
    InMemorySink,
    JsonlSink,
    NullSink,
    TraceEvent,
    TraceSink,
    Tracer,
    read_jsonl,
    replay_search_stats,
)

__all__ = [
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "Tracer",
    "TraceEvent",
    "TraceSink",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "read_jsonl",
    "replay_search_stats",
    "PhaseProfiler",
    "profile",
    "get_profiler",
    "set_profiler",
    "enabled_profiler",
    "compare_telemetry",
    "ComparisonReport",
    "IncomparableRunsError",
    "MetricDelta",
    "flatten_numeric",
    "load_snapshot",
    "run_synthetic_workload",
    "LatencyHistogram",
    "DEFAULT_RELATIVE_ERROR",
    "is_sketch_dict",
    "merge_sketch_dicts",
    "RollupNode",
    "build_rollup",
    "rollup_from_dict",
    "flatten_rollup",
    "merge_blocks",
    "render_prometheus",
    "validate_exposition",
    "JsonlSampler",
    "read_samples",
    "TelemetryServer",
    "HealthMonitor",
    "HealthReport",
    "HealthFinding",
    "HealthRule",
    "AmalDriftRule",
    "SpillFractionRule",
    "CorrectionTrendRule",
    "LatencySLORule",
    "default_rules",
]
