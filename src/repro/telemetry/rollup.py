"""Hierarchical rollup of a telemetry snapshot: slice -> group -> subsystem.

:meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` is *flat*: every
provider mounts under a dotted prefix (``subsystem.ip.slice0.memory``,
``routes.search``, ``routes.shard1.search``) and snapshots to its own
dict.  A serving tier wants the other view — "what is the aggregate AMAL
of group ``ip``", "how many reads across every slice of the subsystem" —
without each component knowing it is being aggregated.

:func:`build_rollup` turns one snapshot into a :class:`RollupNode` tree
keyed by the dotted-path segments, then computes, at every interior node,
the **aggregate** of each same-named stat block appearing anywhere below
it.  Leaf-merge rules:

* integer leaves add exactly;
* float leaves add (accumulated in sorted child order, so the result is a
  pure function of the *set* of children — shard arrival order never
  changes the rollup);
* integer-keyed count dicts (access histograms) add per key;
* serialized :class:`~repro.telemetry.histogram.LatencyHistogram` sketches
  merge bucket-exactly;
* **derived ratios** (``hit_rate``, ``amal``, ``mean``...) are *recomputed*
  from the merged base counters — summing ratios would be wrong — and
  dropped when their bases are absent;
* strings/bools are kept only when every instance agrees (configuration
  echoes survive, conflicts drop).

Because every rule is commutative and the fold order is canonicalized,
``merge(a, b) == merge(b, a)`` holds for whole trees — the property the
parallel shard tests pin down.  ``as_dict()``/:func:`rollup_from_dict`
round-trip the tree through JSON, and :func:`flatten_rollup` exposes the
aggregates as dotted numeric leaves for
:func:`~repro.telemetry.compare.compare_telemetry`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.telemetry.histogram import is_sketch_dict, merge_sketch_dicts

#: Derived leaves recomputed (never summed) at aggregate time:
#: ``name: (numerator leaf, denominator leaf)`` within the same block.
DERIVED_RATIOS: Dict[str, Tuple[str, str]] = {
    "hit_rate": ("hits", "lookups"),
    "amal": ("total_bucket_accesses", "lookups"),
    "average_match_passes": ("total_match_passes", "total_bucket_accesses"),
    "average_insert_probes": ("insert_probe_total", "inserts"),
    "load_factor": ("record_count", "capacity_records"),
    "mean": ("sum", "count"),
    "spill_rate": ("spilled_copies", "copy_count"),
}


def _is_count_dict(value: object) -> bool:
    """True for ``{"3": 17, ...}`` integer-keyed count mappings."""
    if not isinstance(value, dict) or is_sketch_dict(value):
        return False
    for key, count in value.items():
        try:
            int(key)
        except (TypeError, ValueError):
            return False
        if not isinstance(count, int) or isinstance(count, bool):
            return False
    return True


def merge_blocks(blocks: List[Dict[str, object]]) -> Dict[str, object]:
    """Merge same-shaped stat dicts under the rollup leaf rules.

    The fold is canonicalized (keys visited in sorted order, instances in
    the order given but every rule commutative), so any permutation of
    ``blocks`` produces the same result.
    """
    if not blocks:
        return {}
    if len(blocks) == 1:
        return dict(blocks[0])
    keys = sorted({key for block in blocks for key in block})
    merged: Dict[str, object] = {}
    for key in keys:
        values = [block[key] for block in blocks if key in block]
        if key in DERIVED_RATIOS:
            continue  # recomputed below from the merged bases
        first = values[0]
        if isinstance(first, bool):
            if all(v == first for v in values):
                merged[key] = first
        elif isinstance(first, (int, float)):
            total = 0
            for v in sorted(float(v) for v in values):
                total += v
            if all(isinstance(v, int) for v in values):
                total = int(total)
            merged[key] = total
        elif is_sketch_dict(first):
            merged[key] = merge_sketch_dicts(values)
        elif _is_count_dict(first) and all(_is_count_dict(v) for v in values):
            counts: Dict[int, int] = {}
            for v in values:
                for bucket, count in v.items():
                    counts[int(bucket)] = counts.get(int(bucket), 0) + count
            merged[key] = {str(k): v for k, v in sorted(counts.items())}
        elif isinstance(first, dict):
            merged[key] = merge_blocks([v for v in values if isinstance(v, dict)])
        else:
            if all(v == first for v in values):
                merged[key] = first
    for name, (num, den) in DERIVED_RATIOS.items():
        if any(name in block for block in blocks):
            numerator = merged.get(num)
            denominator = merged.get(den)
            if isinstance(numerator, (int, float)) and isinstance(
                denominator, (int, float)
            ):
                merged[name] = numerator / denominator if denominator else 0.0
    return merged


class RollupNode:
    """One node of the rollup tree: own stat blocks plus children.

    Attributes:
        name: the path segment this node sits under.
        blocks: stat blocks mounted *directly* at this node
            (``{block_name: dict}`` — e.g. the ``search`` block of
            ``subsystem.ip.slice0``).
        children: child nodes by segment name.
    """

    __slots__ = ("name", "blocks", "children")

    def __init__(self, name: str = "root") -> None:
        self.name = name
        self.blocks: Dict[str, Dict[str, object]] = {}
        self.children: Dict[str, "RollupNode"] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def child(self, name: str) -> "RollupNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = RollupNode(name)
        return node

    def mount(self, path: str, block: Dict[str, object]) -> None:
        """Attach one provider dict under a dotted path.

        The last segment names the block; everything before it walks (and
        creates) intermediate nodes.
        """
        if not path:
            raise ConfigurationError("rollup mount path must be non-empty")
        *segments, block_name = path.split(".")
        node = self
        for segment in segments:
            node = node.child(segment)
        node.blocks[block_name] = dict(block)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _collect(self, name: str, out: List[Dict[str, object]]) -> None:
        if name in self.blocks:
            out.append(self.blocks[name])
        for key in sorted(self.children):
            self.children[key]._collect(name, out)

    def block_names(self) -> List[str]:
        """Every block name appearing at or below this node, sorted."""
        names = set(self.blocks)
        for node in self.children.values():
            names.update(node.block_names())
        return sorted(names)

    def aggregate(self) -> Dict[str, Dict[str, object]]:
        """Merge every same-named block of the subtree (sorted-child fold).

        Children are always folded in sorted-name order, so the aggregate
        is a function of the subtree *content*, never of mount/registration
        order — the shard-order-independence contract.
        """
        out: Dict[str, Dict[str, object]] = {}
        for name in self.block_names():
            instances: List[Dict[str, object]] = []
            self._collect(name, instances)
            out[name] = merge_blocks(instances)
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def as_dict(self, include_aggregate: bool = True) -> Dict[str, object]:
        """Nested JSON form: blocks, children, and (optionally) the
        subtree aggregates at every interior node."""
        out: Dict[str, object] = {
            "blocks": {k: dict(v) for k, v in sorted(self.blocks.items())},
            "children": {
                name: self.children[name].as_dict(include_aggregate)
                for name in sorted(self.children)
            },
        }
        if include_aggregate and self.children:
            out["aggregate"] = self.aggregate()
        return out

    def flatten(self) -> Dict[str, object]:
        """Dotted ``{path.block.leaf: value}`` view of the mounted blocks
        (no aggregates — the exact inverse of repeated :meth:`mount`)."""
        flat: Dict[str, object] = {}
        for block_name in sorted(self.blocks):
            for leaf, value in self.blocks[block_name].items():
                flat[f"{block_name}.{leaf}"] = value
        for child_name in sorted(self.children):
            for path, value in self.children[child_name].flatten().items():
                flat[f"{child_name}.{path}"] = value
        return flat


def build_rollup(
    snapshot: Dict[str, object], root_name: str = "root"
) -> RollupNode:
    """Build the rollup tree from one registry snapshot.

    Provider stats mount under their dotted prefixes; counters, gauges,
    and exact histograms mount as single-leaf blocks so they participate
    in the same tree (``tracer.dropped_events`` rolls up like any other
    counter).
    """
    root = RollupNode(root_name)
    for prefix, block in snapshot.get("stats", {}).items():
        if isinstance(block, dict) and block:
            root.mount(prefix, block)
    for name, value in snapshot.get("counters", {}).items():
        root.mount(name, {"count": value})
    for name, value in snapshot.get("gauges", {}).items():
        root.mount(name, {"value": value})
    for name, block in snapshot.get("histograms", {}).items():
        if isinstance(block, dict):
            root.mount(name, dict(block))
    return root


def rollup_from_dict(
    data: Dict[str, object], name: str = "root"
) -> RollupNode:
    """Rebuild a tree serialized by :meth:`RollupNode.as_dict` (the
    ``aggregate`` annotations are recomputable, so they are ignored)."""
    node = RollupNode(name)
    for block_name, block in data.get("blocks", {}).items():
        node.blocks[block_name] = dict(block)
    for child_name, child in data.get("children", {}).items():
        node.children[child_name] = rollup_from_dict(child, child_name)
    return node


def flatten_rollup(node: RollupNode) -> Dict[str, object]:
    """Dotted numeric view of a tree's **aggregates** plus its leaves —
    the form :func:`~repro.telemetry.compare.compare_telemetry` diffs."""
    flat: Dict[str, object] = dict(node.flatten())
    if node.children:
        for block_name, block in node.aggregate().items():
            for leaf, value in block.items():
                flat[f"aggregate.{block_name}.{leaf}"] = value
    return flat


__all__ = [
    "DERIVED_RATIOS",
    "RollupNode",
    "build_rollup",
    "rollup_from_dict",
    "flatten_rollup",
    "merge_blocks",
]
