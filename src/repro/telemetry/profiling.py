"""Phase-scoped wall-time profiling for the vectorized pipelines.

The batch/bulk fast paths are staged (index generation, home matching,
probe walk, row encoding, DMA install); knowing *which* stage a regression
lives in is the difference between a five-minute fix and an afternoon of
bisection.  :class:`PhaseProfiler` accumulates wall time and call counts
per named phase through a ``with profile("phase"):`` context manager.

Profiling is **off by default** and near-free when disabled: the module
singleton hands back one shared no-op context manager, so an instrumented
stage costs a method call and a ``with`` enter/exit — nothing measurable
against the NumPy work the stages do.  Pipelines call the module-level
:func:`profile` helper, which routes through the singleton; benchmarks and
the CLI enable it around a workload and read :meth:`PhaseProfiler.as_dict`
into their reports.

Phases may nest (``bulk-build`` around ``bulk-plan`` + ``bulk-encode``);
each phase accumulates its own inclusive wall time, so nested totals
overlap by design — the report is a per-phase profile, not a flame graph.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.errors import ConfigurationError


class _NullSpan:
    """Shared do-nothing context manager for disabled profilers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One timed entry of a phase (supports re-entrant nesting)."""

    __slots__ = ("_profiler", "_phase", "_start")

    def __init__(self, profiler: "PhaseProfiler", phase: str) -> None:
        self._profiler = profiler
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._profiler._record(
            self._phase, time.perf_counter() - self._start
        )
        return False


class PhaseProfiler:
    """Accumulated wall time and call counts per named phase."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    def profile(self, phase: str):
        """Context manager timing one entry of ``phase`` (no-op when
        disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, phase)

    def _record(self, phase: str, seconds: float) -> None:
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds
        self._calls[phase] = self._calls.get(phase, 0) + 1

    def enable(self) -> "PhaseProfiler":
        self.enabled = True
        return self

    def disable(self) -> "PhaseProfiler":
        self.enabled = False
        return self

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()

    @property
    def phases(self):
        return sorted(self._seconds)

    def seconds(self, phase: str) -> float:
        return self._seconds.get(phase, 0.0)

    def calls(self, phase: str) -> int:
        return self._calls.get(phase, 0)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"seconds": ..., "calls": ...}}``, phases sorted."""
        return {
            phase: {
                "seconds": self._seconds[phase],
                "calls": self._calls[phase],
            }
            for phase in sorted(self._seconds)
        }


#: The process-wide profiler the instrumented pipelines report into.
_DEFAULT = PhaseProfiler(enabled=False)


def get_profiler() -> PhaseProfiler:
    """The module singleton behind :func:`profile`."""
    return _DEFAULT


def set_profiler(profiler: PhaseProfiler) -> PhaseProfiler:
    """Swap the singleton (tests install a private one); returns the old."""
    global _DEFAULT
    if profiler is None:
        raise ConfigurationError("profiler must not be None")
    previous = _DEFAULT
    _DEFAULT = profiler
    return previous


def profile(phase: str):
    """Time one entry of ``phase`` against the process-wide profiler."""
    return _DEFAULT.profile(phase)


class enabled_profiler:
    """Scoped enable: ``with enabled_profiler() as prof:`` runs a workload
    with a fresh singleton profiler and restores the previous one after."""

    def __init__(self) -> None:
        self._profiler = PhaseProfiler(enabled=True)
        self._previous: Optional[PhaseProfiler] = None

    def __enter__(self) -> PhaseProfiler:
        self._previous = set_profiler(self._profiler)
        return self._profiler

    def __exit__(self, *exc) -> bool:
        set_profiler(self._previous)
        return False


__all__ = [
    "PhaseProfiler",
    "get_profiler",
    "set_profiler",
    "profile",
    "enabled_profiler",
]
