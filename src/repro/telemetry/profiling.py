"""Phase-scoped wall-time profiling for the vectorized pipelines.

The batch/bulk fast paths are staged (index generation, home matching,
probe walk, row encoding, DMA install); knowing *which* stage a regression
lives in is the difference between a five-minute fix and an afternoon of
bisection.  :class:`PhaseProfiler` accumulates wall time and call counts
per named phase through a ``with profile("phase"):`` context manager.

Profiling is **off by default** and near-free when disabled: the module
singleton hands back one shared no-op context manager, so an instrumented
stage costs a method call and a ``with`` enter/exit — nothing measurable
against the NumPy work the stages do.  Pipelines call the module-level
:func:`profile` helper, which routes through the singleton; benchmarks and
the CLI enable it around a workload and read :meth:`PhaseProfiler.as_dict`
into their reports.

Phases may nest (``bulk-build`` around ``bulk-plan`` + ``bulk-encode``);
each phase accumulates its own inclusive wall time, so nested totals
overlap by design — the report is a per-phase profile, not a flame graph.

Two serving-tier extensions ride on the same spans:

* ``track_latency=True`` additionally folds every span duration into a
  per-phase :class:`~repro.telemetry.histogram.LatencyHistogram`, so a
  phase reports p50/p99 alongside its total — the difference between "the
  probe walk is slow" and "one probe-walk chunk in a hundred is slow";
* :meth:`PhaseProfiler.merge` folds a serialized ``as_dict()`` payload
  back in (optionally under a prefix) — the cross-process span capture
  path: :class:`~repro.core.parallel.ParallelBatchEngine` workers profile
  their own match phases and ship the dict home with the stats deltas,
  and the parent merges them in shard order under ``worker.*``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.telemetry.histogram import (
    DEFAULT_RELATIVE_ERROR,
    LatencyHistogram,
    is_sketch_dict,
)


class _NullSpan:
    """Shared do-nothing context manager for disabled profilers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One timed entry of a phase (supports re-entrant nesting)."""

    __slots__ = ("_profiler", "_phase", "_start")

    def __init__(self, profiler: "PhaseProfiler", phase: str) -> None:
        self._profiler = profiler
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._profiler._record(
            self._phase, time.perf_counter() - self._start
        )
        return False


class PhaseProfiler:
    """Accumulated wall time and call counts per named phase."""

    def __init__(
        self,
        enabled: bool = False,
        track_latency: bool = False,
        relative_error: Optional[float] = None,
    ) -> None:
        self.enabled = enabled
        self.track_latency = track_latency
        self.relative_error = (
            DEFAULT_RELATIVE_ERROR if relative_error is None else relative_error
        )
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._latency: Dict[str, LatencyHistogram] = {}

    def profile(self, phase: str):
        """Context manager timing one entry of ``phase`` (no-op when
        disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, phase)

    def _record(self, phase: str, seconds: float) -> None:
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds
        self._calls[phase] = self._calls.get(phase, 0) + 1
        if self.track_latency:
            hist = self._latency.get(phase)
            if hist is None:
                hist = self._latency[phase] = LatencyHistogram(
                    self.relative_error
                )
            hist.observe(seconds)

    def enable(self) -> "PhaseProfiler":
        self.enabled = True
        return self

    def disable(self) -> "PhaseProfiler":
        self.enabled = False
        return self

    def reset(self) -> None:
        self._seconds.clear()
        self._calls.clear()
        self._latency.clear()

    @property
    def phases(self):
        return sorted(self._seconds)

    def seconds(self, phase: str) -> float:
        return self._seconds.get(phase, 0.0)

    def calls(self, phase: str) -> int:
        return self._calls.get(phase, 0)

    def latency(self, phase: str) -> Optional[LatencyHistogram]:
        """The span-latency sketch for ``phase`` (``None`` unless
        ``track_latency`` was on while the phase ran)."""
        return self._latency.get(phase)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"seconds": ..., "calls": ...[, "latency": ...]}}``,
        phases sorted."""
        report: Dict[str, Dict[str, float]] = {}
        for phase in sorted(self._seconds):
            entry = {
                "seconds": self._seconds[phase],
                "calls": self._calls[phase],
            }
            hist = self._latency.get(phase)
            if hist is not None:
                entry["latency"] = hist.as_dict()
            report[phase] = entry
        return report

    def merge(self, phases: Dict[str, dict], prefix: str = "") -> None:
        """Fold a serialized :meth:`as_dict` payload into this profiler.

        ``prefix`` namespaces the incoming phases (the parallel engine
        merges worker payloads under ``worker.``).  Seconds and calls sum;
        span-latency sketches merge exactly, so parent-side percentiles
        cover every worker span regardless of shard order.
        """
        for phase in sorted(phases):
            entry = phases[phase]
            name = prefix + phase
            self._seconds[name] = self._seconds.get(name, 0.0) + float(
                entry.get("seconds", 0.0)
            )
            self._calls[name] = self._calls.get(name, 0) + int(
                entry.get("calls", 0)
            )
            payload = entry.get("latency")
            if is_sketch_dict(payload):
                incoming = LatencyHistogram.from_dict(payload)
                mine = self._latency.get(name)
                if mine is None:
                    self._latency[name] = incoming
                else:
                    mine.merge(incoming)


#: The process-wide profiler the instrumented pipelines report into.
_DEFAULT = PhaseProfiler(enabled=False)


def get_profiler() -> PhaseProfiler:
    """The module singleton behind :func:`profile`."""
    return _DEFAULT


def set_profiler(profiler: PhaseProfiler) -> PhaseProfiler:
    """Swap the singleton (tests install a private one); returns the old."""
    global _DEFAULT
    if profiler is None:
        raise ConfigurationError("profiler must not be None")
    previous = _DEFAULT
    _DEFAULT = profiler
    return previous


def profile(phase: str):
    """Time one entry of ``phase`` against the process-wide profiler."""
    return _DEFAULT.profile(phase)


class enabled_profiler:
    """Scoped enable: ``with enabled_profiler() as prof:`` runs a workload
    with a fresh singleton profiler and restores the previous one after."""

    def __init__(
        self,
        track_latency: bool = False,
        relative_error: Optional[float] = None,
    ) -> None:
        self._profiler = PhaseProfiler(
            enabled=True,
            track_latency=track_latency,
            relative_error=relative_error,
        )
        self._previous: Optional[PhaseProfiler] = None

    def __enter__(self) -> PhaseProfiler:
        self._previous = set_profiler(self._profiler)
        return self._profiler

    def __exit__(self, *exc) -> bool:
        set_profiler(self._previous)
        return False


__all__ = [
    "PhaseProfiler",
    "get_profiler",
    "set_profiler",
    "profile",
    "enabled_profiler",
]
