"""Uniform metrics registry: counters, gauges, histograms, stat providers.

The stack's counters live where they are cheapest to maintain —
:class:`~repro.core.stats.SearchStats` on slices and groups,
:class:`~repro.memory.array.ArrayStats` on memory arrays, planner totals on
:class:`~repro.core.bulk.BulkPlan` — but every experiment wants the same
thing from them: one structured, diffable snapshot of *everything* that
moved during a run.  A :class:`MetricsRegistry` is that aggregation point:

* explicit instruments — :class:`CounterMetric` (monotonic),
  :class:`GaugeMetric` (point-in-time value), :class:`HistogramMetric`
  (exact integer-valued distribution, like the AMAL access histogram);
* registered *providers* — any object (or zero-argument callable) exposing
  ``as_dict()``, mounted under a dotted prefix and re-read at snapshot
  time, so component-owned stats stay component-owned;
* ``snapshot()`` / ``as_dict()`` — one plain-dict export with stable keys,
  which :mod:`repro.telemetry.compare` diffs across runs and the benchmark
  harness embeds into ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Callable, Dict, Optional, Union

from repro.errors import ConfigurationError


class CounterMetric:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class GaugeMetric:
    """A point-in-time value (load factor, record count, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0


class HistogramMetric:
    """An exact distribution over integer-valued observations.

    Mirrors the paper's access-count histograms: the full shape is kept
    (a ``Counter``), not quantile sketches — behavioral runs are small
    enough that exactness is affordable and diffs stay deterministic.
    """

    __slots__ = ("name", "counts")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: Counter = Counter()

    def observe(self, value: int, count: int = 1) -> None:
        if count < 0:
            raise ConfigurationError(
                f"histogram {self.name!r} observation count must be >= 0"
            )
        if count:
            self.counts[int(value)] += count

    def observe_many(self, values) -> None:
        """Fold a whole array/sequence of observations in at once."""
        self.counts.update(int(v) for v in values)

    @property
    def observations(self) -> int:
        return sum(self.counts.values())

    @property
    def total(self) -> int:
        return sum(value * count for value, count in self.counts.items())

    @property
    def mean(self) -> float:
        n = self.observations
        return self.total / n if n else 0.0

    @property
    def max(self) -> int:
        return max(self.counts) if self.counts else 0

    def reset(self) -> None:
        self.counts.clear()

    def as_dict(self) -> Dict[str, object]:
        return {
            "counts": {str(k): v for k, v in sorted(self.counts.items())},
            "observations": self.observations,
            "total": self.total,
            "mean": self.mean,
            "max": self.max,
        }


#: A provider is an object with ``as_dict()`` or a callable returning a dict.
Provider = Union[Callable[[], Dict[str, object]], object]


class MetricsRegistry:
    """Get-or-create instrument store plus provider mounts.

    Instrument names are dotted paths (``"batch.scalar_fallbacks"``); a
    name identifies exactly one instrument and one kind — asking for an
    existing name as a different kind raises ``ConfigurationError``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, CounterMetric] = {}
        self._gauges: Dict[str, GaugeMetric] = {}
        self._histograms: Dict[str, HistogramMetric] = {}
        self._providers: Dict[str, Provider] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------

    def _check_free(self, name: str, table: Dict) -> None:
        for kind, existing in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if existing is not table and name in existing:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {kind}"
                )

    def counter(self, name: str) -> CounterMetric:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = CounterMetric(name)
        return metric

    def gauge(self, name: str) -> GaugeMetric:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = GaugeMetric(name)
        return metric

    def histogram(self, name: str) -> HistogramMetric:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = HistogramMetric(name)
        return metric

    # ------------------------------------------------------------------
    # Providers (component-owned stats)
    # ------------------------------------------------------------------

    def register_provider(self, prefix: str, provider: Provider) -> None:
        """Mount an ``as_dict()``-bearing object (or dict factory) under a
        dotted prefix; it is re-read on every :meth:`snapshot`."""
        if not prefix:
            raise ConfigurationError("provider prefix must be non-empty")
        if prefix in self._providers:
            raise ConfigurationError(
                f"provider prefix {prefix!r} already registered"
            )
        if not callable(provider) and not hasattr(provider, "as_dict"):
            raise ConfigurationError(
                f"provider for {prefix!r} needs as_dict() or to be callable"
            )
        self._providers[prefix] = provider

    def unregister_provider(self, prefix: str) -> None:
        self._providers.pop(prefix, None)

    @property
    def provider_prefixes(self):
        return sorted(self._providers)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """One structured, JSON-serializable view of everything registered."""
        stats: Dict[str, Dict[str, object]] = {}
        for prefix in sorted(self._providers):
            provider = self._providers[prefix]
            if callable(provider):
                stats[prefix] = dict(provider())
            else:
                stats[prefix] = dict(provider.as_dict())
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.as_dict()
                for name, metric in sorted(self._histograms.items())
            },
            "stats": stats,
        }

    def as_dict(self) -> Dict[str, object]:
        """Alias of :meth:`snapshot` (the uniform export spelling)."""
        return self.snapshot()

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def reset(self) -> None:
        """Zero every owned instrument (providers reset themselves)."""
        for table in (self._counters, self._gauges, self._histograms):
            for metric in table.values():
                metric.reset()


__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
]
