"""Diff two telemetry snapshots and flag regressions mechanically.

``compare_telemetry`` consumes two snapshot dicts (as produced by
:meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`, the benchmark
harness, or any nested JSON of numeric leaves), flattens them to dotted
paths, and classifies every changed leaf:

* most metrics are **costs** (AMAL, bucket accesses, per-phase seconds,
  spill counts): an increase beyond the threshold is a regression;
* metrics whose path ends in a known **goodness** suffix (``per_sec``,
  ``speedup``, ``hit_rate``, ``throughput``): a *decrease* beyond the
  threshold is a regression.

The output is a :class:`ComparisonReport` listing regressions,
improvements, and leaves added/removed between the runs — the artifact the
CI job and the ``repro telemetry diff`` subcommand print, so perf drifts
in the batch/bulk paths are caught by a diff, not by eyeballing stdout.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.telemetry.histogram import is_sketch_dict

#: Leaf-name suffixes where higher is better (a drop is the regression).
GOODNESS_SUFFIXES = ("per_sec", "speedup", "hit_rate", "throughput")

#: Sketch-dict keys that encode the histogram rather than measure it.
_SKETCH_ENCODING_KEYS = frozenset(
    {"kind", "buckets", "relative_error", "zero_count"}
)

#: Default relative-change threshold (5%).
DEFAULT_THRESHOLD = 0.05


class IncomparableRunsError(ConfigurationError):
    """The two snapshots were produced under different configurations.

    Raised when both snapshots carry a top-level ``"metadata"`` block (the
    benchmark harness writes the run's engine spec, worker count, and
    result representation there) and the blocks disagree — diffing a
    4-worker parallel run against a single-core baseline would report a
    config change as a perf delta, so the comparison is refused outright.
    """


def flatten_numeric(tree: Dict, prefix: str = "") -> Dict[str, float]:
    """Flatten a nested dict to ``{dotted.path: value}`` numeric leaves.

    Booleans and strings are skipped — the diff is over measurements, not
    configuration echoes.  For the same reason the top-level ``metadata``
    block (run configuration written by the benchmark harness) is excluded
    wholesale; :func:`compare_telemetry` checks it for *equality* instead.
    """
    flat: Dict[str, float] = {}
    for key, value in tree.items():
        if not prefix and key == "metadata":
            continue
        path = f"{prefix}.{key}" if prefix else str(key)
        if is_sketch_dict(value):
            # Diff a latency sketch by its summary leaves (count, mean,
            # percentiles).  The internal bucket map is an encoding
            # detail: any shift in the observed values renumbers bucket
            # indices wholesale, which would read as leaves appearing
            # from zero rather than as the percentile movement it is.
            for leaf, number in value.items():
                if leaf in _SKETCH_ENCODING_KEYS:
                    continue
                if isinstance(number, (int, float)) and not isinstance(
                    number, bool
                ):
                    flat[f"{path}.{leaf}"] = float(number)
        elif isinstance(value, dict):
            flat.update(flatten_numeric(value, path))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
    return flat


def is_goodness_metric(path: str) -> bool:
    """True when a larger value of this leaf is *better*."""
    leaf = path.rsplit(".", 1)[-1]
    return any(leaf.endswith(suffix) for suffix in GOODNESS_SUFFIXES)


@dataclass(frozen=True)
class MetricDelta:
    """One changed numeric leaf between two snapshots."""

    path: str
    baseline: float
    current: float
    #: Signed relative change, ``(current - baseline) / |baseline|``
    #: (``inf`` when the baseline is zero and the value appeared).
    change: float
    #: True when the change direction is the bad one for this metric.
    regression: bool

    def describe(self) -> str:
        if math.isinf(self.change):
            magnitude = "from zero"
        else:
            magnitude = f"{self.change:+.1%}"
        tag = "REGRESSION" if self.regression else "improvement"
        return (
            f"{tag:<11} {self.path}: "
            f"{self.baseline:g} -> {self.current:g} ({magnitude})"
        )


@dataclass
class ComparisonReport:
    """Everything that moved between two snapshots, classified."""

    threshold: float
    regressions: List[MetricDelta] = field(default_factory=list)
    improvements: List[MetricDelta] = field(default_factory=list)
    unchanged: int = 0
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing regressed beyond the threshold."""
        return not self.regressions

    def as_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "ok": self.ok,
            "regressions": [vars(d) for d in self.regressions],
            "improvements": [vars(d) for d in self.improvements],
            "unchanged": self.unchanged,
            "added": self.added,
            "removed": self.removed,
        }

    def format(self) -> str:
        lines = [
            f"telemetry diff (threshold {self.threshold:.1%}): "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{self.unchanged} leaf/leaves unchanged"
        ]
        for delta in self.regressions + self.improvements:
            lines.append("  " + delta.describe())
        if self.added:
            lines.append(f"  added: {', '.join(self.added)}")
        if self.removed:
            lines.append(f"  removed: {', '.join(self.removed)}")
        return "\n".join(lines)


def compare_telemetry(
    baseline: Dict,
    current: Dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> ComparisonReport:
    """Diff two snapshot trees; flag changes beyond ``threshold``.

    Args:
        baseline / current: nested dicts of numeric leaves (snapshots,
            ``BENCH_*.json`` payloads, phase tables...).
        threshold: relative change that counts as a regression (or an
            improvement) — smaller moves land in ``unchanged``.

    Raises:
        IncomparableRunsError: both snapshots carry a ``"metadata"``
            config block and the blocks differ — the runs measured
            different configurations and a numeric diff would be
            meaningless.
    """
    base_meta = baseline.get("metadata")
    cur_meta = current.get("metadata")
    if (
        isinstance(base_meta, dict)
        and isinstance(cur_meta, dict)
        and base_meta != cur_meta
    ):
        diffs = []
        for key in sorted(set(base_meta) | set(cur_meta)):
            left = base_meta.get(key, "<absent>")
            right = cur_meta.get(key, "<absent>")
            if left != right:
                diffs.append(f"{key}: {left!r} != {right!r}")
        raise IncomparableRunsError(
            "refusing to diff runs with different configurations "
            f"({'; '.join(diffs)})"
        )
    base_flat = flatten_numeric(baseline)
    cur_flat = flatten_numeric(current)
    report = ComparisonReport(threshold=threshold)
    report.added = sorted(set(cur_flat) - set(base_flat))
    report.removed = sorted(set(base_flat) - set(cur_flat))

    for path in sorted(set(base_flat) & set(cur_flat)):
        base, cur = base_flat[path], cur_flat[path]
        if base == cur:
            report.unchanged += 1
            continue
        if base == 0.0:
            change = math.inf if cur > 0 else -math.inf
        else:
            change = (cur - base) / abs(base)
        if abs(change) <= threshold:
            report.unchanged += 1
            continue
        goodness = is_goodness_metric(path)
        worse = (change < 0) if goodness else (change > 0)
        delta = MetricDelta(
            path=path,
            baseline=base,
            current=cur,
            change=change,
            regression=worse,
        )
        (report.regressions if worse else report.improvements).append(delta)

    report.regressions.sort(key=lambda d: -abs(d.change))
    report.improvements.sort(key=lambda d: -abs(d.change))
    return report


def load_snapshot(path) -> Dict:
    """Read one snapshot/benchmark JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``compare_telemetry baseline.json current.json``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="compare_telemetry",
        description="diff two telemetry snapshots and flag regressions",
    )
    parser.add_argument("baseline", help="baseline snapshot JSON")
    parser.add_argument("current", help="current snapshot JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative change flagged as a regression (default 0.05)",
    )
    args = parser.parse_args(argv)
    try:
        report = compare_telemetry(
            load_snapshot(args.baseline),
            load_snapshot(args.current),
            threshold=args.threshold,
        )
    except IncomparableRunsError as exc:
        print(f"error: {exc}")
        return 2
    print(report.format())
    return 0 if report.ok else 1


__all__ = [
    "IncomparableRunsError",
    "MetricDelta",
    "ComparisonReport",
    "compare_telemetry",
    "flatten_numeric",
    "is_goodness_metric",
    "load_snapshot",
    "main",
    "DEFAULT_THRESHOLD",
    "GOODNESS_SUFFIXES",
]

if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
