"""Behavioral ternary CAM (Section 2.2).

Stored keys are :class:`~repro.core.key.TernaryKey` patterns; a search key
matches an entry when every non-don't-care bit agrees.  The priority encoder
returns the lowest-index match, so longest-prefix-match falls out of storing
prefixes sorted by descending length — "the priority encoder in TCAM can be
used to perform LPM when prefixes in TCAM are sorted on prefix length".

This model is both the paper's comparison baseline (Figures 6/8) and the
victim/overflow store of Section 4.3 — it satisfies the
:class:`~repro.core.subsystem.OverflowStore` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import CapacityError, ConfigurationError, KeyFormatError, LookupError_
from repro.cam.cam import CamStats
from repro.core.key import TernaryKey
from repro.core.record import Record
from repro.utils.bits import mask_of

KeyLike = Union[int, TernaryKey]


@dataclass(frozen=True)
class TcamSearchResult:
    """Outcome of one TCAM search (mirrors the CA-RAM SearchResult shape
    closely enough for the subsystem's overflow protocol)."""

    hit: bool
    index: Optional[int]
    record: Optional[Record]
    match_count: int

    @property
    def data(self) -> Optional[int]:
        return self.record.data if self.record else None


@dataclass
class _TcamEntry:
    key: TernaryKey
    data: int


class TCAM:
    """A fixed-capacity ternary CAM with sorted-insert support.

    Args:
        entries: number of rows.
        key_bits: key width per entry.
    """

    def __init__(self, entries: int, key_bits: int) -> None:
        if entries <= 0:
            raise ConfigurationError(f"entries must be positive: {entries}")
        if key_bits <= 0:
            raise ConfigurationError(f"key_bits must be positive: {key_bits}")
        self._capacity = entries
        self._key_bits = key_bits
        self._entries: List[Optional[_TcamEntry]] = [None] * entries
        self.stats = CamStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def key_bits(self) -> int:
        return self._key_bits

    @property
    def entry_count(self) -> int:
        return sum(1 for e in self._entries if e is not None)

    def _normalize(self, key: KeyLike) -> TernaryKey:
        if isinstance(key, TernaryKey):
            if key.width != self._key_bits:
                raise KeyFormatError(
                    f"key width {key.width} != TCAM width {self._key_bits}"
                )
            return key
        key = int(key)
        if not 0 <= key <= mask_of(self._key_bits):
            raise KeyFormatError(
                f"key {key:#x} does not fit in {self._key_bits} bits"
            )
        return TernaryKey.exact(key, self._key_bits)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, key: KeyLike, data: int = 0, index: Optional[int] = None) -> int:
        """Store a pattern at ``index`` or the first free row; returns the row."""
        pattern = self._normalize(key)
        if index is not None:
            if not 0 <= index < self._capacity:
                raise ConfigurationError(f"index {index} out of range")
            if self._entries[index] is not None:
                raise CapacityError(f"entry {index} already occupied")
            self._entries[index] = _TcamEntry(pattern, data)
            return index
        for row, entry in enumerate(self._entries):
            if entry is None:
                self._entries[row] = _TcamEntry(pattern, data)
                return row
        raise CapacityError("TCAM is full")

    def load_sorted(self, records: List[Record]) -> None:
        """Load records in priority order starting at row 0.

        For LPM the caller sorts by descending prefix length, matching the
        paper's TCAM usage.  Replaces the current contents.
        """
        if len(records) > self._capacity:
            raise CapacityError(
                f"{len(records)} records exceed TCAM capacity {self._capacity}"
            )
        self._entries = [None] * self._capacity
        for row, record in enumerate(records):
            self._entries[row] = _TcamEntry(
                self._normalize(record.key), record.data
            )

    def delete(self, key: KeyLike) -> int:
        """Remove every entry with exactly this pattern; returns how many."""
        pattern = self._normalize(key)
        removed = 0
        for row, entry in enumerate(self._entries):
            if entry is not None and entry.key == pattern:
                self._entries[row] = None
                removed += 1
        if not removed:
            raise LookupError_(f"pattern {pattern} not present")
        return removed

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, key: KeyLike, search_mask: int = 0) -> TcamSearchResult:
        """Fully parallel ternary search with priority encoding.

        ``search_mask`` marks don't-care bits in the *search* key (the
        paper's search-key bit masking).
        """
        probe = self._normalize(key)
        search_mask |= probe.mask
        self.stats.searches += 1
        self.stats.rows_activated += self._capacity
        first: Optional[int] = None
        matches = 0
        for row, entry in enumerate(self._entries):
            if entry is None:
                continue
            if entry.key.matches(probe.value, self._key_bits, search_mask):
                matches += 1
                if first is None:
                    first = row
        if first is None:
            return TcamSearchResult(hit=False, index=None, record=None, match_count=0)
        found = self._entries[first]
        assert found is not None
        return TcamSearchResult(
            hit=True,
            index=first,
            record=Record(key=found.key, data=found.data),
            match_count=matches,
        )

    def lookup(self, key: KeyLike) -> Optional[int]:
        """Convenience: matched entry's data, or None."""
        return self.search(key).data


__all__ = ["TCAM", "TcamSearchResult"]
