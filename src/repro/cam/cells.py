"""Published cell-level constants behind Figures 6 and 8.

The paper insists on "only actual product-grade implementation results
published by a single research and development organization using the same
advanced 130nm process technology to allow a fair comparison":

* Noda et al. 2003 — 16T SRAM-based TCAM cell (~9 µm²) and 8T planar
  dynamic TCAM cell (4.79 µm²).
* Noda et al. 2005 — 6T dynamic TCAM cell (3.59 µm²), 143 MHz devices.
* Morishita et al. 2005 — embedded DRAM cell (0.35 µm²), 312 MHz
  random-cycle macro ("operated at over twice the clock rate of the TCAM").
* Yamagata et al. 1992 — 288-kb stacked-capacitor CAM (trigram baseline).

The CA-RAM "cell" for a ternary symbol costs two DRAM bits plus the ~7%
match-processor overhead the paper derives from its prototype (Section 3.4).

Power constants are calibrated from Kasai et al. 2003 (9.4 Mbit TCAM,
3.2 W at 200 MHz → per-bit-search energy) and the paper's own 60.8 mW match
processor synthesis; the derivation lives in :mod:`repro.cost.power`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CellSpec:
    """One published storage-cell implementation.

    Attributes:
        name: short identifier used in reports.
        reference: citation tag from the paper's bibliography.
        area_um2_per_cell: silicon area of one cell.
        bits_per_cell: information bits the cell encodes (a TCAM cell holds
            one ternary symbol = 2 bits of storage encoding 3 values; we
            follow the paper and compare per *symbol*).
        ternary: whether the cell natively stores don't-care symbols.
        process_nm: process technology node.
        clock_hz: representative operating frequency of the published device.
    """

    name: str
    reference: str
    area_um2_per_cell: float
    bits_per_cell: int
    ternary: bool
    process_nm: int
    clock_hz: float


TCAM_16T_SRAM_NODA03 = CellSpec(
    name="16T SRAM TCAM",
    reference="Noda et al. 2003 [23]",
    area_um2_per_cell=9.0,
    bits_per_cell=2,
    ternary=True,
    process_nm=130,
    clock_hz=143e6,
)

TCAM_8T_DYNAMIC_NODA03 = CellSpec(
    name="8T dynamic TCAM",
    reference="Noda et al. 2003 [23]",
    area_um2_per_cell=4.79,
    bits_per_cell=2,
    ternary=True,
    process_nm=130,
    clock_hz=143e6,
)

TCAM_6T_DYNAMIC_NODA05 = CellSpec(
    name="6T dynamic TCAM",
    reference="Noda et al. 2005 [24]",
    area_um2_per_cell=3.59,
    bits_per_cell=2,
    ternary=True,
    process_nm=130,
    clock_hz=143e6,
)

DRAM_CELL_MORISHITA = CellSpec(
    name="embedded DRAM",
    reference="Morishita et al. 2005 [20]",
    area_um2_per_cell=0.35,
    bits_per_cell=1,
    ternary=False,
    process_nm=130,
    clock_hz=312e6,
)

CAM_STACKED_YAMAGATA92 = CellSpec(
    name="stacked-capacitor CAM",
    reference="Yamagata et al. 1992 [31]",
    # The paper performs an unspecified "optimistic area scaling" of the
    # 1992 0.8 um-class 288-kb part to 130 nm.  An ideal linear shrink of a
    # ~45-60 um^2 cell gives 1.2-1.6 um^2; a realistic (optimistic-to-CAM
    # but not ideal) shrink lands higher.  We use 2.6 um^2/bit, which is
    # inside that plausible range and reproduces the paper's reported ~5.9x
    # Figure 8 area ratio for the trigram application.
    area_um2_per_cell=2.6,
    bits_per_cell=1,
    ternary=False,
    process_nm=130,
    clock_hz=100e6,
)

#: The paper's measured overhead of adding match processors to a DRAM array
#: (Section 3.4: "we determined a ~7% overhead due to the addition of match
#: processors", at 16 slices of 64K cells each).
MATCH_PROCESSOR_AREA_OVERHEAD = 0.07

#: CA-RAM slice count assumed in the Figure 6 comparison.
FIGURE6_SLICE_COUNT = 16

#: Cells per slice assumed in the Figure 6 comparison ("one slice for 64K
#: cells").
FIGURE6_CELLS_PER_SLICE = 64 * 1024

#: Assumed geometry of one Figure-6 slice: 64K ternary cells as 256 rows of
#: 256 symbols (512 storage bits) — a square-ish array, the layout a memory
#: compiler would produce.
FIGURE6_ROWS_PER_SLICE = 256
FIGURE6_ROW_SYMBOLS = 256


def ca_ram_ternary_cell_area(dram: CellSpec = DRAM_CELL_MORISHITA) -> float:
    """Effective CA-RAM area per ternary symbol, µm².

    Two DRAM bits encode one ternary symbol ("we use two bits per cell in
    the case of CA-RAM, not to favor our own approach"), inflated by the
    match-processor overhead.
    """
    return dram.area_um2_per_cell * 2 * (1.0 + MATCH_PROCESSOR_AREA_OVERHEAD)


def ca_ram_binary_cell_area(dram: CellSpec = DRAM_CELL_MORISHITA) -> float:
    """Effective CA-RAM area per binary bit, µm² (non-ternary databases)."""
    return dram.area_um2_per_cell * (1.0 + MATCH_PROCESSOR_AREA_OVERHEAD)


PUBLISHED_CELLS: Dict[str, CellSpec] = {
    spec.name: spec
    for spec in (
        TCAM_16T_SRAM_NODA03,
        TCAM_8T_DYNAMIC_NODA03,
        TCAM_6T_DYNAMIC_NODA05,
        DRAM_CELL_MORISHITA,
        CAM_STACKED_YAMAGATA92,
    )
}

__all__ = [
    "CellSpec",
    "TCAM_16T_SRAM_NODA03",
    "TCAM_8T_DYNAMIC_NODA03",
    "TCAM_6T_DYNAMIC_NODA05",
    "DRAM_CELL_MORISHITA",
    "CAM_STACKED_YAMAGATA92",
    "MATCH_PROCESSOR_AREA_OVERHEAD",
    "FIGURE6_SLICE_COUNT",
    "FIGURE6_CELLS_PER_SLICE",
    "ca_ram_ternary_cell_area",
    "ca_ram_binary_cell_area",
    "PUBLISHED_CELLS",
]
