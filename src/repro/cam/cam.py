"""Behavioral binary CAM (Section 2.2, Figure 2).

"CAM searches its entire memory to match the input data ('search key') with
the set of stored data ('stored keys').  When there are multiple entries
that match the search key, a priority encoder will choose the
highest-priority entry."

Priority is by entry index: lower index wins (the hardware convention the
paper relies on for LPM in TCAMs).  Every search logically activates every
row — the source of CAM's power cost — which the model exposes via
``stats.rows_activated``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import CapacityError, ConfigurationError, KeyFormatError, LookupError_
from repro.utils.bits import mask_of


@dataclass(frozen=True)
class CamSearchResult:
    """Outcome of one CAM search.

    Attributes:
        hit: whether any entry matched.
        index: the priority-encoded (lowest) matching entry index.
        data: the associated data word, or None.
        match_count: how many entries matched before priority encoding.
    """

    hit: bool
    index: Optional[int]
    data: Optional[int]
    match_count: int


@dataclass
class CamStats:
    """Power-relevant activity counters."""

    searches: int = 0
    rows_activated: int = 0

    def reset(self) -> None:
        self.searches = 0
        self.rows_activated = 0


@dataclass
class _CamEntry:
    key: int
    data: int


class BinaryCAM:
    """A fixed-capacity binary CAM with per-entry associated data.

    Args:
        entries: number of rows (``w`` in the paper's power model).
        key_bits: stored-key width (``n``).
    """

    def __init__(self, entries: int, key_bits: int) -> None:
        if entries <= 0:
            raise ConfigurationError(f"entries must be positive: {entries}")
        if key_bits <= 0:
            raise ConfigurationError(f"key_bits must be positive: {key_bits}")
        self._capacity = entries
        self._key_bits = key_bits
        self._entries: List[Optional[_CamEntry]] = [None] * entries
        self.stats = CamStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def key_bits(self) -> int:
        return self._key_bits

    @property
    def entry_count(self) -> int:
        return sum(1 for e in self._entries if e is not None)

    def _check_key(self, key: int) -> int:
        key = int(key)
        if not 0 <= key <= mask_of(self._key_bits):
            raise KeyFormatError(
                f"key {key:#x} does not fit in {self._key_bits} bits"
            )
        return key

    def insert(self, key: int, data: int = 0, index: Optional[int] = None) -> int:
        """Store a key at ``index`` (or the first free row).  Returns the row.

        Raises:
            CapacityError: when the CAM is full (or the row is occupied).
        """
        key = self._check_key(key)
        if index is not None:
            if not 0 <= index < self._capacity:
                raise ConfigurationError(f"index {index} out of range")
            if self._entries[index] is not None:
                raise CapacityError(f"entry {index} already occupied")
            self._entries[index] = _CamEntry(key, data)
            return index
        for row, entry in enumerate(self._entries):
            if entry is None:
                self._entries[row] = _CamEntry(key, data)
                return row
        raise CapacityError("CAM is full")

    def search(self, key: int) -> CamSearchResult:
        """Fully parallel exact-match search with priority encoding."""
        key = self._check_key(key)
        self.stats.searches += 1
        self.stats.rows_activated += self._capacity
        first: Optional[int] = None
        matches = 0
        for row, entry in enumerate(self._entries):
            if entry is not None and entry.key == key:
                matches += 1
                if first is None:
                    first = row
        if first is None:
            return CamSearchResult(hit=False, index=None, data=None, match_count=0)
        found = self._entries[first]
        assert found is not None
        return CamSearchResult(
            hit=True, index=first, data=found.data, match_count=matches
        )

    def delete(self, key: int) -> int:
        """Remove every entry holding ``key``; returns how many."""
        key = self._check_key(key)
        removed = 0
        for row, entry in enumerate(self._entries):
            if entry is not None and entry.key == key:
                self._entries[row] = None
                removed += 1
        if not removed:
            raise LookupError_(f"key {key:#x} not present")
        return removed

    def read(self, index: int) -> Optional[int]:
        """RAM-style read of one entry's key (None when empty)."""
        if not 0 <= index < self._capacity:
            raise ConfigurationError(f"index {index} out of range")
        entry = self._entries[index]
        return entry.key if entry is not None else None


__all__ = ["BinaryCAM", "CamSearchResult", "CamStats"]
