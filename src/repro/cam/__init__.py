"""Baseline content-addressable memories: behavioral binary CAM and TCAM,
plus the published silicon constants the paper's comparisons are built on."""

from repro.cam.cam import BinaryCAM, CamSearchResult
from repro.cam.cells import (
    CellSpec,
    DRAM_CELL_MORISHITA,
    TCAM_16T_SRAM_NODA03,
    TCAM_8T_DYNAMIC_NODA03,
    TCAM_6T_DYNAMIC_NODA05,
    CAM_STACKED_YAMAGATA92,
    PUBLISHED_CELLS,
)
from repro.cam.tcam import TCAM

__all__ = [
    "BinaryCAM",
    "CamSearchResult",
    "TCAM",
    "CellSpec",
    "DRAM_CELL_MORISHITA",
    "TCAM_16T_SRAM_NODA03",
    "TCAM_8T_DYNAMIC_NODA03",
    "TCAM_6T_DYNAMIC_NODA05",
    "CAM_STACKED_YAMAGATA92",
    "PUBLISHED_CELLS",
]
